"""Robustness tests for the resilient sweep scheduler and the disk-cache GC.

A sweep with a poisoned cell (raising, stalling, crashing or returning
garbage) must always complete, record a structured :class:`SweepFailure`
with the attempt count, and leave the surviving cells' journals
byte-identical to a clean run.  Corrupt disk-cache shards are skipped with
a warning and repaired by compaction.
"""

from __future__ import annotations

import json
import logging
import os

import pytest

from repro.sweep import (
    DiskEvaluationCache,
    SweepRunner,
    build_grid,
    cache_dir_stats,
    compact_cache_dir,
    run_sweep_task,
)
from repro.sweep.runner import FAIL_TASKS_ENV, STALL_TASKS_ENV

TINY = dict(tolerance_ms=10.0, iterations=25, num_candidates=1, top_bundles=2, seed=1)


def journal_dumps(outcomes):
    return {o.task.name: json.dumps(o.journal, sort_keys=True) for o in outcomes}


# Module-level so it pickles under any multiprocessing start method.
def _flaky_task(task, cache_dir, prepared):
    """Fails the flagged cell once, then succeeds (flag file = attempt marker)."""
    flag_dir = os.environ["REPRO_TEST_FLAKY_DIR"]
    marker = os.path.join(flag_dir, task.name.replace("/", "_"))
    if task.name in os.environ.get("REPRO_TEST_FLAKY_TASKS", "").split(",") \
            and not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("attempted\n")
        raise RuntimeError(f"transient failure for {task.name}")
    return run_sweep_task(task, cache_dir, prepared)


def _garbage_task(task, cache_dir, prepared):
    return {"definitely": "not a SweepOutcome"}


def _dying_task(task, cache_dir, prepared):
    """Simulates a segfault/OOM-kill: the worker exits without reporting."""
    if task.strategy == "random":
        os._exit(13)
    return run_sweep_task(task, cache_dir, prepared)


# ------------------------------------------------------------- poisoned cells
class TestPoisonedCells:
    @pytest.fixture()
    def grid(self):
        return build_grid("pynq-z1", "scd,random", [40.0], **TINY)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_raising_cell_yields_failure_record(self, grid, workers, monkeypatch):
        monkeypatch.setenv(FAIL_TASKS_ENV, "PYNQ-Z1-random-40fps")
        result = SweepRunner(grid, workers=workers, retries=1).run()
        assert [o.task.name for o in result.outcomes] == ["PYNQ-Z1-scd-40fps"]
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.task.name == "PYNQ-Z1-random-40fps"
        assert failure.kind == "error"
        assert failure.attempts == 2, "one retry means two attempts"
        assert "injected failure" in failure.error
        assert not result.ok

    def test_surviving_cells_identical_to_clean_run(self, grid, monkeypatch):
        """Acceptance: a poisoned grid completes and the survivors' journals
        are byte-identical to the same cells of an unpoisoned sweep."""
        clean = SweepRunner(grid, workers=2).run()
        monkeypatch.setenv(FAIL_TASKS_ENV, "PYNQ-Z1-random-40fps")
        poisoned = SweepRunner(grid, workers=2, retries=0).run()
        clean_journals = journal_dumps(clean.outcomes)
        for outcome in poisoned.outcomes:
            assert outcome.journal is not None
            assert journal_dumps([outcome])[outcome.task.name] == \
                clean_journals[outcome.task.name]
        payload = json.loads(json.dumps(poisoned.as_dict()))
        assert payload["failures"][0]["attempts"] == 1

    def test_timed_out_cell_is_killed_and_recorded(self, grid, monkeypatch):
        """Acceptance: a cell exceeding its wall-clock timeout cannot hang the
        sweep; it is terminated, retried and recorded with its retry count."""
        monkeypatch.setenv(STALL_TASKS_ENV, "PYNQ-Z1-scd-40fps")
        result = SweepRunner(grid, workers=2, timeout_s=0.5, retries=1).run()
        assert [o.task.name for o in result.outcomes] == ["PYNQ-Z1-random-40fps"]
        failure = result.failures[0]
        assert failure.kind == "timeout"
        assert failure.attempts == 2
        assert "timeout" in failure.error
        assert result.wall_time_s < 30.0, "the stalled cell must not hang the sweep"

    def test_timeout_with_single_worker_slot(self, monkeypatch):
        # workers=1 plus a timeout routes through the stealing scheduler so
        # the stuck process can still be killed.
        grid = build_grid("pynq-z1", "scd", [40.0], **TINY)
        monkeypatch.setenv(STALL_TASKS_ENV, "PYNQ-Z1-scd-40fps")
        result = SweepRunner(grid, workers=1, timeout_s=0.5, retries=0).run()
        assert not result.outcomes
        assert result.failures[0].kind == "timeout"
        assert result.failures[0].attempts == 1

    def test_acceptance_timeout_cell_workers_1_vs_n(self, monkeypatch):
        """Acceptance criterion, end to end: a grid with a cell whose worker
        exceeds its timeout completes, records the failure with its retry
        count in ``SweepResult.as_dict()``, and the workers=1 vs workers=N
        journals are byte-identical for the surviving cells."""
        grid = build_grid("pynq-z1", "scd,random", [40.0, 30.0], **TINY)
        monkeypatch.setenv(STALL_TASKS_ENV, "PYNQ-Z1-scd-40fps")
        single = SweepRunner(grid, workers=1, timeout_s=0.5, retries=1).run()
        pooled = SweepRunner(grid, workers=3, timeout_s=0.5, retries=1).run()
        for result in (single, pooled):
            assert len(result.outcomes) == 3 and len(result.failures) == 1
            payload = json.loads(json.dumps(result.as_dict()))
            failure = payload["failures"][0]
            assert failure["kind"] == "timeout"
            assert failure["attempts"] == 2
            assert failure["task"]["strategy"] == "scd"
        assert journal_dumps(single.outcomes) == journal_dumps(pooled.outcomes)

    def test_transient_failure_recovers_on_retry(self, grid, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLAKY_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_TEST_FLAKY_TASKS", "PYNQ-Z1-scd-40fps")
        result = SweepRunner(grid, workers=2, retries=1, task_fn=_flaky_task).run()
        assert result.ok
        by_name = {o.task.name: o for o in result.outcomes}
        assert by_name["PYNQ-Z1-scd-40fps"].attempts == 2
        assert by_name["PYNQ-Z1-random-40fps"].attempts == 1

    @pytest.mark.parametrize("workers,schedule", [(1, "steal"), (2, "steal"), (2, "chunked")])
    def test_garbage_result_yields_invalid_result_failure(self, grid, workers, schedule):
        result = SweepRunner(grid, workers=workers, schedule=schedule,
                             retries=0, share_preparation=False,
                             task_fn=_garbage_task).run()
        assert not result.outcomes
        assert {f.kind for f in result.failures} == {"invalid-result"}
        assert all(f.attempts == 1 for f in result.failures)

    def test_crashed_worker_recorded_under_stealing(self, grid):
        """A worker that dies without reporting (segfault-style) becomes a
        'crash' failure; the healthy cell still completes."""
        result = SweepRunner(grid, workers=2, retries=0, task_fn=_dying_task).run()
        assert [o.task.name for o in result.outcomes] == ["PYNQ-Z1-scd-40fps"]
        assert result.failures[0].kind == "crash"
        assert result.failures[0].task.strategy == "random"

    def test_crashed_worker_does_not_escape_chunked_schedule(self, grid):
        """Regression: a hard-dying worker breaks the whole chunked pool
        (poisoning every in-flight future). The runner must not raise
        BrokenProcessPool out of run(), must not charge the broken round to
        innocent cells, and must re-attribute the crash to the actual
        culprit by degrading to per-task process isolation."""
        result = SweepRunner(grid, workers=2, schedule="chunked",
                             retries=1, task_fn=_dying_task).run()
        assert [o.task.name for o in result.outcomes] == ["PYNQ-Z1-scd-40fps"], \
            "the innocent cell must survive the broken pool"
        assert len(result.failures) == 1
        dying = result.failures[0]
        assert dying.task.strategy == "random"
        assert dying.kind == "crash"
        assert dying.attempts == 2, "only real isolated executions count"

    def test_chunked_schedule_records_raises_too(self, grid, monkeypatch):
        monkeypatch.setenv(FAIL_TASKS_ENV, "PYNQ-Z1-random-40fps")
        result = SweepRunner(grid, workers=2, schedule="chunked", retries=0).run()
        assert [o.task.name for o in result.outcomes] == ["PYNQ-Z1-scd-40fps"]
        assert result.failures[0].kind == "error"


# --------------------------------------------------------- corrupt cache dirs
class TestCorruptShards:
    def _seed_cache(self, tmp_path):
        task = build_grid("pynq-z1", "scd", [40.0], **TINY)[0]
        run_sweep_task(task, str(tmp_path))
        return task

    def test_corrupt_lines_skipped_with_warning(self, tmp_path, caplog):
        task = self._seed_cache(tmp_path)
        shard = next(tmp_path.glob("*.jsonl"))
        with shard.open("a") as handle:
            handle.write("{torn json\n")
            handle.write('{"namespace": 3, "key": null}\n')
        with caplog.at_level(logging.WARNING, logger="repro.sweep.disk_cache"):
            warm = run_sweep_task(task, str(tmp_path))
        assert warm.estimator_calls == 0, "valid entries still serve from disk"
        assert any("corrupt line" in record.message for record in caplog.records)

    def test_truncated_shard_tail_survives(self, tmp_path):
        task = self._seed_cache(tmp_path)
        shard = next(tmp_path.glob("*.jsonl"))
        text = shard.read_text()
        shard.write_text(text[: len(text) - 25])  # chop mid-record
        warm = run_sweep_task(task, str(tmp_path))
        assert warm.disk_hits > 0, "untouched entries still load"

    def test_compaction_repairs_corruption(self, tmp_path):
        task = self._seed_cache(tmp_path)
        shard = next(tmp_path.glob("*.jsonl"))
        with shard.open("a") as handle:
            handle.write("{torn json\n")
        report = compact_cache_dir(tmp_path)
        assert report.corrupt_lines_dropped == 1
        assert report.entries_kept == report.entries_before
        stats = cache_dir_stats(tmp_path)
        assert stats.corrupt_lines == 0
        warm = run_sweep_task(task, str(tmp_path))
        assert warm.estimator_calls == 0, "repaired cache must still hit"


# ------------------------------------------------------------ compaction / GC
class TestCompaction:
    def test_dedup_collapses_parallel_shards(self, tmp_path, engine, initial):
        # Two concurrent writers (cold sweep cells of one device) estimate
        # the same config into separate shards; compaction folds the shards
        # into one and drops the duplicate without losing the entry.
        a = DiskEvaluationCache(engine.estimate, tmp_path, device="PYNQ-Z1",
                                shard="task-a")
        b = DiskEvaluationCache(engine.estimate, tmp_path, device="PYNQ-Z1",
                                shard="task-b")
        a.evaluate(initial)
        b.evaluate(initial)
        before = cache_dir_stats(tmp_path)
        assert before.duplicates == 1 and before.total_shards == 2
        report = compact_cache_dir(tmp_path)
        assert report.duplicates_dropped == 1
        assert report.shards_after == 1 < report.shards_before
        after = cache_dir_stats(tmp_path)
        assert after.duplicates == 0 and after.entries == 1
        warm = DiskEvaluationCache(engine.estimate, tmp_path, device="PYNQ-Z1")
        assert initial in warm

    def test_warm_sweep_after_compaction(self, tmp_path):
        tasks = build_grid("pynq-z1", "scd,random", [40.0], **TINY)
        cold = SweepRunner(tasks, workers=1, cache_dir=tmp_path).run()
        assert cold.estimator_calls > 0
        compact_cache_dir(tmp_path)
        warm = SweepRunner(tasks, workers=1, cache_dir=tmp_path).run()
        assert warm.estimator_calls == 0, "compaction must not lose entries"

    def test_age_eviction(self, tmp_path, engine, initial):
        cache = DiskEvaluationCache(engine.estimate, tmp_path, device="PYNQ-Z1")
        cache.evaluate(initial)
        # Pretend 10 days pass: everything is older than a 5-day budget.
        now = __import__("time").time() + 10 * 86400
        report = compact_cache_dir(tmp_path, max_age_days=5.0, now=now)
        assert report.evicted_by_age == 1
        assert report.entries_kept == 0
        assert cache_dir_stats(tmp_path).entries == 0

    def test_size_eviction_drops_oldest_first(self, tmp_path, engine, initial):
        cache = DiskEvaluationCache(engine.estimate, tmp_path, device="PYNQ-Z1")
        older = initial
        newer = initial.with_updates(parallel_factor=32)
        cache.evaluate(older)
        # Make the first record strictly older on the record timestamp.
        shard = next(tmp_path.glob("*.jsonl"))
        record = json.loads(shard.read_text())
        record["ts"] = record["ts"] - 1000.0
        shard.write_text(json.dumps(record, sort_keys=True) + "\n")
        DiskEvaluationCache(engine.estimate, tmp_path, device="PYNQ-Z1",
                            shard="second").evaluate(newer)
        one_record_mb = (len(json.dumps(record)) + 200) / (1024 * 1024)
        report = compact_cache_dir(tmp_path, max_size_mb=one_record_mb)
        assert report.evicted_by_size == 1
        reloaded = DiskEvaluationCache(engine.estimate, tmp_path, device="PYNQ-Z1")
        assert newer in reloaded and older not in reloaded

    def test_records_without_timestamp_use_shard_mtime(self, tmp_path, engine, initial):
        cache = DiskEvaluationCache(engine.estimate, tmp_path, device="PYNQ-Z1")
        cache.evaluate(initial)
        shard = next(tmp_path.glob("*.jsonl"))
        record = json.loads(shard.read_text())
        del record["ts"]  # pre-GC cache format
        shard.write_text(json.dumps(record, sort_keys=True) + "\n")
        report = compact_cache_dir(tmp_path, max_age_days=365.0)
        assert report.entries_kept == 1, "fresh mtime keeps the legacy record"

    def test_invalid_budgets_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_age_days"):
            compact_cache_dir(tmp_path, max_age_days=0.0)
        with pytest.raises(ValueError, match="max_size_mb"):
            compact_cache_dir(tmp_path, max_size_mb=-1.0)

    def test_empty_directory(self, tmp_path):
        report = compact_cache_dir(tmp_path / "fresh")
        assert report.entries_before == 0 and report.shards_after == 0
        stats = cache_dir_stats(tmp_path / "fresh")
        assert stats.entries == 0 and stats.total_shards == 0


@pytest.fixture(scope="module")
def engine():
    from repro.core.auto_hls import AutoHLS
    from repro.hw.device import PYNQ_Z1

    return AutoHLS(PYNQ_Z1)


@pytest.fixture(scope="module")
def initial():
    from repro.core.bundle_generation import get_bundle
    from repro.core.dnn_config import DNNConfig
    from repro.detection.task import TINY_DETECTION_TASK

    return DNNConfig(bundle=get_bundle(13), task=TINY_DETECTION_TASK, num_repetitions=2,
                     channel_expansion=(1.5, 1.5), downsample=(1, 1),
                     stem_channels=16, parallel_factor=16, max_channels=128)
