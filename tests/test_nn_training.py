"""Tests for the trainer and initializers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Conv2D, Dense, Flatten, ReLU, Sequential, Trainer
from repro.nn.initializers import get_initializer, he_normal, ones, xavier_uniform, zeros
from repro.nn.training import iterate_minibatches


class TestInitializers:
    def test_he_normal_scale(self):
        w = he_normal((64, 32, 3, 3), rng=0)
        expected_std = np.sqrt(2.0 / (32 * 9))
        assert np.std(w) == pytest.approx(expected_std, rel=0.1)

    def test_xavier_uniform_bounds(self):
        w = xavier_uniform((100, 100), rng=0)
        limit = np.sqrt(6.0 / 200)
        assert np.max(np.abs(w)) <= limit + 1e-6

    def test_zeros_ones(self):
        assert np.all(zeros((3, 3)) == 0.0)
        assert np.all(ones((3,)) == 1.0)

    def test_registry(self):
        assert get_initializer("he_normal") is he_normal
        with pytest.raises(KeyError):
            get_initializer("orthogonal")


class TestMinibatches:
    def test_covers_all_samples(self, rng):
        x = np.arange(10)[:, None].astype(np.float32)
        y = np.arange(10)[:, None].astype(np.float32)
        seen = []
        for xb, yb in iterate_minibatches(x, y, batch_size=3, rng=0):
            assert len(xb) == len(yb)
            seen.extend(xb[:, 0].tolist())
        assert sorted(seen) == list(range(10))

    def test_no_shuffle_preserves_order(self):
        x = np.arange(6)[:, None].astype(np.float32)
        batches = list(iterate_minibatches(x, x, batch_size=2, shuffle=False))
        np.testing.assert_array_equal(batches[0][0][:, 0], [0, 1])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            list(iterate_minibatches(np.zeros(4), np.zeros(5), batch_size=2))

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(iterate_minibatches(np.zeros(4), np.zeros(4), batch_size=0))


class TestTrainer:
    def _toy_regression(self, rng):
        """y = mean of the inputs, learnable by a linear model."""
        x = rng.normal(size=(64, 8)).astype(np.float32)
        y = x.mean(axis=1, keepdims=True).repeat(4, axis=1).astype(np.float32)
        return x, y

    def test_loss_decreases_on_toy_problem(self, rng):
        x, y = self._toy_regression(rng)
        model = Sequential([Dense(8, 16, rng=0), ReLU(), Dense(16, 4, rng=1)])
        trainer = Trainer(model, loss="mse", lr=0.01, batch_size=16, rng=0)
        history = trainer.fit(x, y, epochs=15)
        assert history.train_loss[-1] < history.train_loss[0] * 0.5

    def test_validation_metric_recorded(self, rng):
        x, y = self._toy_regression(rng)
        model = Sequential([Dense(8, 4, rng=0)])
        trainer = Trainer(
            model, loss="mse", lr=0.01, batch_size=16,
            metric_fn=lambda p, t: float(-np.mean((p - t) ** 2)), rng=0,
        )
        history = trainer.fit(x[:48], y[:48], x[48:], y[48:], epochs=5)
        assert history.epochs == 5
        assert len(history.val_metric) == 5
        assert np.isfinite(history.best_metric())

    def test_invalid_epochs(self, rng):
        x, y = self._toy_regression(rng)
        model = Sequential([Dense(8, 4, rng=0)])
        trainer = Trainer(model, loss="mse")
        with pytest.raises(ValueError):
            trainer.fit(x, y, epochs=0)

    def test_lr_schedule_applied(self, rng):
        x, y = self._toy_regression(rng)
        model = Sequential([Dense(8, 4, rng=0)])
        trainer = Trainer(model, loss="mse", lr=0.1, lr_step=1, lr_gamma=0.5, rng=0)
        trainer.fit(x, y, epochs=2)
        assert trainer.optimizer.lr == pytest.approx(0.025)

    def test_conv_model_trains_on_images(self, rng):
        """End-to-end gradient flow through a small convolutional model."""
        x = rng.normal(size=(32, 1, 8, 8)).astype(np.float32)
        y = x.mean(axis=(1, 2, 3), keepdims=False)[:, None].repeat(4, axis=1).astype(np.float32)
        model = Sequential([
            Conv2D(1, 4, 3, stride=2, rng=0), ReLU(), Flatten(), Dense(4 * 4 * 4, 4, rng=1),
        ])
        trainer = Trainer(model, loss="mse", lr=5e-3, batch_size=8, rng=0)
        history = trainer.fit(x, y, epochs=10)
        assert history.train_loss[-1] < history.train_loss[0]
