"""Tests for the process-based sweep engine (:mod:`repro.sweep`)."""

from __future__ import annotations

import json

import pytest

from repro.core.auto_hls import AutoHLS
from repro.core.bundle_generation import get_bundle
from repro.core.dnn_config import DNNConfig
from repro.detection.task import TINY_DETECTION_TASK
from repro.hw.device import PYNQ_Z1, resolve_devices
from repro.search import EvaluationCache
from repro.sweep import (
    DiskEvaluationCache,
    PreparedDevice,
    SweepFailure,
    SweepOutcome,
    SweepRunner,
    SweepTask,
    build_grid,
    coefficients_fingerprint,
    compare,
    expected_cost,
    prepare_device,
    run_sweep_task,
)

#: Shared tiny sweep budget: every task completes in well under a second.
TINY = dict(tolerance_ms=10.0, iterations=25, num_candidates=1, top_bundles=2, seed=1)


@pytest.fixture(scope="module")
def engine():
    return AutoHLS(PYNQ_Z1)


@pytest.fixture(scope="module")
def initial():
    return DNNConfig(bundle=get_bundle(13), task=TINY_DETECTION_TASK, num_repetitions=2,
                     channel_expansion=(1.5, 1.5), downsample=(1, 1),
                     stem_channels=16, parallel_factor=16, max_channels=128)


class CountingEstimator:
    def __init__(self, estimator):
        self.estimator = estimator
        self.calls = 0

    def __call__(self, config):
        self.calls += 1
        return self.estimator(config)


def journal_views(outcomes):
    """The execution-mode-independent portion of each outcome."""
    return [
        (o.journal, o.selected_bundles, o.num_candidates, o.best_latency_ms,
         o.best_gap_ms, o.evaluations)
        for o in outcomes
    ]


# -------------------------------------------------------------- device lookup
class TestResolveDevices:
    def test_comma_separated_spec(self):
        devices = resolve_devices("pynq-z1,ultra96")
        assert [d.name for d in devices] == ["PYNQ-Z1", "Ultra96"]

    def test_sequence_spec_preserves_order_and_dedupes(self):
        devices = resolve_devices(["ultra96", "PYNQ-Z1", "ultra96"])
        assert [d.name for d in devices] == ["Ultra96", "PYNQ-Z1"]

    def test_all_keyword(self):
        assert {d.name for d in resolve_devices("all")} == {"PYNQ-Z1", "Ultra96", "ZC706"}

    def test_unknown_device(self):
        with pytest.raises(KeyError, match="virtex"):
            resolve_devices("virtex")

    def test_empty_spec(self):
        with pytest.raises(ValueError):
            resolve_devices(" , ")


# ----------------------------------------------------------------------- grid
class TestBuildGrid:
    def test_grid_is_full_cross_product_in_order(self):
        tasks = build_grid("pynq-z1,ultra96", "scd,random", [20.0, 30.0], **TINY)
        assert len(tasks) == 8
        assert [(t.device, t.strategy, t.fps) for t in tasks[:4]] == [
            ("PYNQ-Z1", "scd", 20.0), ("PYNQ-Z1", "scd", 30.0),
            ("PYNQ-Z1", "random", 20.0), ("PYNQ-Z1", "random", 30.0),
        ]
        assert all(t.device == "Ultra96" for t in tasks[4:])

    def test_task_name(self):
        task = build_grid("pynq-z1", ["scd"], [40.0], **TINY)[0]
        assert task.name == "PYNQ-Z1-scd-40fps"

    def test_task_uid_folds_in_budget_and_seed(self):
        task = build_grid("pynq-z1", ["scd"], [40.0], **TINY)[0]
        assert task.uid == "PYNQ-Z1-scd-40fps-t10-i25-c1-b2-s1"
        assert task.uid.startswith(task.name)

    def test_task_round_trips_through_dict(self):
        from repro.utils.serialization import to_jsonable

        task = build_grid("pynq-z1", "scd", [40.0], clocks_mhz=[125.0],
                          utilizations=[0.8], **TINY)[0]
        clone = SweepTask.from_dict(json.loads(json.dumps(to_jsonable(task))))
        assert clone == task and clone.uid == task.uid

    def test_shared_budget_applied(self):
        task = build_grid("pynq-z1", "scd", [40.0], **TINY)[0]
        assert task.iterations == 25 and task.num_candidates == 1 and task.seed == 1

    def test_duplicate_axes_deduplicated(self):
        # Duplicate cells would run twice and share a disk-cache shard.
        tasks = build_grid("pynq-z1,pynq-z1", "scd,scd", [40.0, 40.0], **TINY)
        assert len(tasks) == 1
        names = [t.name for t in build_grid("pynq-z1", "scd,random,scd", [40, 40.0], **TINY)]
        assert names == ["PYNQ-Z1-scd-40fps", "PYNQ-Z1-random-40fps"]

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="annealing"):
            build_grid("pynq-z1", "gradient-descent", [40.0])

    def test_empty_strategies_or_targets(self):
        with pytest.raises(ValueError):
            build_grid("pynq-z1", " , ", [40.0])
        with pytest.raises(ValueError):
            build_grid("pynq-z1", "scd", [])

    def test_budget_validated_before_workers_spawn(self):
        with pytest.raises(ValueError, match="tolerance_ms"):
            build_grid("pynq-z1", "scd", [40.0], tolerance_ms=0.0)
        with pytest.raises(ValueError, match="positive"):
            build_grid("pynq-z1", "scd", [-40.0])
        with pytest.raises(ValueError, match="positive"):
            build_grid("pynq-z1", "scd", [40.0], iterations=0)

    def test_clock_axis(self):
        tasks = build_grid("pynq-z1", "scd", [40.0], clocks_mhz=[100.0, 125.0], **TINY)
        assert [(t.clock_mhz, t.name) for t in tasks] == [
            (100.0, "PYNQ-Z1-scd-40fps-100MHz"),
            (125.0, "PYNQ-Z1-scd-40fps-125MHz"),
        ]
        # Default axis keeps clock_mhz=None and the legacy cell name.
        default = build_grid("pynq-z1", "scd", [40.0], **TINY)[0]
        assert default.clock_mhz is None and default.name == "PYNQ-Z1-scd-40fps"

    def test_clock_axis_validated_per_device(self):
        # 200 MHz is fine for ZC706 but above the PYNQ-Z1 maximum.
        with pytest.raises(ValueError, match="PYNQ-Z1 supports at most"):
            build_grid("zc706,pynq-z1", "scd", [40.0], clocks_mhz=[200.0], **TINY)
        with pytest.raises(ValueError, match="positive"):
            build_grid("pynq-z1", "scd", [40.0], clocks_mhz=[-50.0], **TINY)
        with pytest.raises(ValueError):
            build_grid("pynq-z1", "scd", [40.0], clocks_mhz=[], **TINY)

    def test_utilization_axis(self):
        tasks = build_grid("pynq-z1", "scd", [40.0], utilizations=[1.0, 0.7], **TINY)
        assert [(t.utilization, t.name) for t in tasks] == [
            (1.0, "PYNQ-Z1-scd-40fps"),
            (0.7, "PYNQ-Z1-scd-40fps-u0.7"),
        ]
        with pytest.raises(ValueError, match="utilization"):
            build_grid("pynq-z1", "scd", [40.0], utilizations=[1.5], **TINY)
        with pytest.raises(ValueError, match="utilization"):
            build_grid("pynq-z1", "scd", [40.0], utilizations=[0.0], **TINY)

    def test_new_axes_deduplicated(self):
        tasks = build_grid("pynq-z1", "scd", [40.0], clocks_mhz=[100.0, 100],
                           utilizations=[0.8, 0.8], **TINY)
        assert len(tasks) == 1


# ----------------------------------------------------------------- disk cache
class TestDiskEvaluationCache:
    def test_persists_across_instances(self, tmp_path, engine, initial):
        counting = CountingEstimator(engine.estimate)
        first = DiskEvaluationCache(counting, tmp_path, device="PYNQ-Z1")
        estimate = first.evaluate(initial)
        assert counting.calls == 1 and first.misses == 1

        reloaded = DiskEvaluationCache(counting, tmp_path, device="PYNQ-Z1")
        again = reloaded.evaluate(initial)
        assert counting.calls == 1, "reload must serve from disk"
        assert reloaded.hits == 1 and reloaded.misses == 0
        assert again.latency_ms == estimate.latency_ms
        assert again.resources == estimate.resources
        assert initial in reloaded

    def test_namespace_separates_device_clock_and_context(self, tmp_path, engine, initial):
        counting = CountingEstimator(engine.estimate)
        DiskEvaluationCache(counting, tmp_path, device="PYNQ-Z1").evaluate(initial)
        for kwargs in (
            {"device": "Ultra96"},
            {"device": "PYNQ-Z1", "clock_mhz": 150.0},
            {"device": "PYNQ-Z1", "context": "fit-abc"},
        ):
            cache = DiskEvaluationCache(counting, tmp_path, shard=str(kwargs), **kwargs)
            assert len(cache) == 0, f"namespace {kwargs} must not see other entries"
            cache.evaluate(initial)
        assert counting.calls == 4

    def test_layered_under_memory_cache(self, tmp_path, engine, initial):
        counting = CountingEstimator(engine.estimate)
        disk = DiskEvaluationCache(counting, tmp_path, device="PYNQ-Z1")
        memory = EvaluationCache(disk)
        for _ in range(3):
            memory.evaluate(initial)
        # The memory layer absorbs the repeats; disk sees exactly one request.
        assert memory.hits == 2 and memory.misses == 1
        assert disk.misses == 1 and disk.hits == 0 and counting.calls == 1

        warm = EvaluationCache(DiskEvaluationCache(counting, tmp_path, device="PYNQ-Z1"))
        warm.evaluate(initial)
        assert counting.calls == 1, "warm stack must not re-invoke the estimator"

    def test_shards_of_same_namespace_share_entries(self, tmp_path, engine, initial):
        # Two writers (sweep tasks) of one namespace use distinct shard
        # files but see each other's results on reload.
        counting = CountingEstimator(engine.estimate)
        DiskEvaluationCache(counting, tmp_path, device="PYNQ-Z1",
                            shard="task-a").evaluate(initial)
        other = DiskEvaluationCache(counting, tmp_path, device="PYNQ-Z1",
                                    shard="task-b")
        assert other.evaluate(initial)
        assert counting.calls == 1
        assert len(list(tmp_path.glob("*.jsonl"))) == 1, "no second shard written"

    def test_tolerates_torn_and_foreign_lines(self, tmp_path, engine, initial):
        counting = CountingEstimator(engine.estimate)
        DiskEvaluationCache(counting, tmp_path, device="PYNQ-Z1").evaluate(initial)
        shard = next(tmp_path.glob("*.jsonl"))
        with shard.open("a") as handle:
            handle.write('{"torn": ')  # interrupted write
        reloaded = DiskEvaluationCache(counting, tmp_path, device="PYNQ-Z1")
        assert reloaded.evaluate(initial)
        assert counting.calls == 1

    def test_record_timestamps_come_from_injected_clock(self, tmp_path, engine, initial):
        # PR 6 contract: every persisted timestamp flows through the injected
        # clock, so a frozen clock yields byte-stable shard records.
        counting = CountingEstimator(engine.estimate)
        frozen = DiskEvaluationCache(counting, tmp_path, device="PYNQ-Z1",
                                     clock=lambda: 1700000000.1234)
        frozen.evaluate(initial)
        shard = next(tmp_path.glob("*.jsonl"))
        records = [json.loads(line) for line in shard.read_text().splitlines()]
        assert records and all(r["ts"] == 1700000000.123 for r in records)
        # Two frozen-clock runs in fresh directories produce identical bytes.
        again = DiskEvaluationCache(counting, tmp_path / "other", device="PYNQ-Z1",
                                    clock=lambda: 1700000000.1234)
        again.evaluate(initial)
        other = next((tmp_path / "other").glob("*.jsonl"))
        assert other.read_bytes() == shard.read_bytes()

    def test_fingerprint_stable_and_sensitive(self, engine):
        base = engine.coefficients
        assert coefficients_fingerprint(base) == coefficients_fingerprint(base)
        changed = base.with_updates(alpha=base.alpha * 2)
        assert coefficients_fingerprint(base) != coefficients_fingerprint(changed)


# --------------------------------------------------------------------- worker
class TestRunSweepTask:
    def test_cold_runs_are_deterministic(self, tmp_path):
        task = build_grid("pynq-z1", "random", [40.0], **TINY)[0]
        a = run_sweep_task(task, str(tmp_path / "a"))
        b = run_sweep_task(task, str(tmp_path / "b"))
        assert journal_views([a]) == journal_views([b])
        assert a.journal["records"], "journal must contain evaluations"
        assert a.journal["metadata"]["device"] == "PYNQ-Z1"

    def test_without_cache_dir(self):
        task = build_grid("pynq-z1", "scd", [40.0], **TINY)[0]
        outcome = run_sweep_task(task)
        assert outcome.disk_hits == 0 and outcome.disk_misses == 0
        assert outcome.estimator_calls == outcome.memory_misses > 0

    def test_outcome_is_jsonable(self, tmp_path):
        from repro.utils.serialization import to_jsonable

        task = build_grid("pynq-z1", "scd", [40.0], **TINY)[0]
        outcome = run_sweep_task(task, str(tmp_path))
        json.dumps(to_jsonable(outcome))


# --------------------------------------------------------------------- runner
class TestSweepRunner:
    def test_process_pool_matches_serial_journals(self, tmp_path):
        tasks = build_grid("pynq-z1,ultra96", "scd,random", [40.0], **TINY)
        serial = SweepRunner(tasks, workers=1, cache_dir=tmp_path / "serial").run()
        pooled = SweepRunner(tasks, workers=2, cache_dir=tmp_path / "pooled").run()
        assert journal_views(serial.outcomes) == journal_views(pooled.outcomes)
        assert [o.task for o in pooled.outcomes] == tasks, "task order preserved"
        assert pooled.workers == 2 and len(pooled) == len(tasks)

    def test_warm_disk_cache_skips_every_estimator_call(self, tmp_path):
        tasks = build_grid("pynq-z1", "scd,random", [40.0], **TINY)
        cold = SweepRunner(tasks, workers=1, cache_dir=tmp_path).run()
        warm = SweepRunner(tasks, workers=1, cache_dir=tmp_path).run()
        assert journal_views(cold.outcomes) == journal_views(warm.outcomes)
        for outcome in warm.outcomes:
            assert outcome.disk_hit_rate == 1.0
            assert outcome.estimator_calls == 0
        assert cold.estimator_calls > 0
        assert warm.estimator_calls < cold.estimator_calls

    def test_result_save_round_trip(self, tmp_path):
        tasks = build_grid("pynq-z1", "scd", [40.0], **TINY)
        result = SweepRunner(tasks, workers=1).run()
        path = result.save(tmp_path / "sweep.json")
        payload = json.loads(path.read_text())
        assert payload["workers"] == 1
        assert len(payload["outcomes"]) == 1
        assert payload["outcomes"][0]["journal"]["records"]

    def test_invalid_arguments(self):
        tasks = build_grid("pynq-z1", "scd", [40.0], **TINY)
        with pytest.raises(ValueError):
            SweepRunner([], workers=1)
        with pytest.raises(ValueError):
            SweepRunner(tasks, workers=0)


# -------------------------------------------------------- CoDesignFlow wiring
class TestCoDesignFlowCacheWiring:
    def _flow(self, **kwargs):
        from repro.core import CoDesignFlow, CoDesignInputs, LatencyTarget

        inputs = CoDesignInputs(
            task=TINY_DETECTION_TASK, device=PYNQ_Z1,
            latency_targets=(LatencyTarget(fps=120.0, tolerance_ms=2.0),),
        )
        return CoDesignFlow(inputs, top_n_bundles=2, scd_iterations=20, **kwargs)

    def test_evaluation_cache_constructor_kwarg(self, engine):
        shared = EvaluationCache(engine.estimate)
        flow = self._flow(evaluation_cache=shared)
        assert flow.auto_dnn.cache is shared

    def test_attach_evaluation_cache_drops_stale_worker_pool(self, engine):
        flow = self._flow()
        stale_pool = flow.auto_dnn._parallel_for(2)
        assert flow.auto_dnn._parallel is stale_pool
        flow.attach_evaluation_cache(EvaluationCache(engine.estimate))
        # A kept pool would keep batching through the old cache's estimator,
        # silently bypassing the newly attached (e.g. disk-backed) cache.
        assert flow.auto_dnn._parallel is None


# -------------------------------------------------------------------- compare
def _outcome(device, strategy, fps, *, records, cached, candidates, gap,
             disk=(0, 0), calls=10, duration=0.5):
    return SweepOutcome(
        task=SweepTask(device=device, strategy=strategy, fps=fps, **TINY),
        journal={
            "records": [{"cached": i < cached} for i in range(records)],
            "candidates": [{"index": i} for i in range(candidates)],
        },
        selected_bundles=[13],
        num_candidates=candidates,
        best_latency_ms=None if gap is None else 1000.0 / fps + gap,
        best_gap_ms=gap,
        evaluations=records,
        memory_hits=cached,
        memory_misses=records - cached,
        disk_hits=disk[0],
        disk_misses=disk[1],
        estimator_calls=calls,
        duration_s=duration,
    )


class TestCompare:
    def fixed_outcomes(self):
        return [
            _outcome("PYNQ-Z1", "scd", 20.0, records=40, cached=10, candidates=2,
                     gap=1.25, disk=(30, 10), calls=10, duration=0.25),
            _outcome("PYNQ-Z1", "random", 20.0, records=60, cached=30, candidates=3,
                     gap=0.75, disk=(50, 10), calls=10, duration=0.5),
            _outcome("Ultra96", "scd", 20.0, records=20, cached=5, candidates=1,
                     gap=0.5, disk=(0, 20), calls=20, duration=0.25),
            _outcome("Ultra96", "random", 20.0, records=30, cached=15, candidates=0,
                     gap=None, disk=(0, 30), calls=30, duration=0.5),
        ]

    def test_report_golden_text(self):
        report = compare(self.fixed_outcomes())
        assert report.render() == GOLDEN_REPORT

    def test_strategy_rows_are_journal_driven(self):
        report = compare(self.fixed_outcomes())
        random_row = next(s for s in report.strategies if s.strategy == "random")
        assert random_row.evaluations == 90       # 60 + 30 journal records
        assert random_row.cached_evaluations == 45
        assert random_row.candidates == 3
        assert random_row.cache_hit_rate == 0.5
        assert random_row.disk_hit_rate == pytest.approx(50 / 90)

    def test_winner_picks_smallest_gap_and_skips_empty(self):
        report = compare(self.fixed_outcomes())
        winners = {w.device: w for w in report.winners}
        assert winners["PYNQ-Z1"].strategy == "random"     # 0.75 < 1.25
        assert winners["Ultra96"].strategy == "scd"        # None ranks last
        assert winners["Ultra96"].best_gap_ms == 0.5

    def test_as_dict_round_trips_through_json(self):
        report = compare(self.fixed_outcomes())
        payload = json.loads(json.dumps(report.as_dict()))
        assert {"strategies", "winners", "totals"} <= set(payload)
        assert payload["totals"]["tasks"] == 4
        assert payload["totals"]["evaluations"] == 150

    def test_accepts_sweep_result(self, tmp_path):
        tasks = build_grid("pynq-z1", "scd", [40.0], **TINY)
        result = SweepRunner(tasks, workers=1).run()
        report = compare(result)
        assert report.totals["tasks"] == 1

    def test_empty_outcomes_rejected(self):
        with pytest.raises(ValueError):
            compare([])


GOLDEN_REPORT = """\
Per-strategy comparison
strategy | tasks | evals | cache hit | cands | best gap (ms) | est. calls | disk hit | wall (s)
---------+-------+-------+-----------+-------+---------------+------------+----------+---------
random   | 2     | 90    | 50.0%     | 3     | 0.75          | 40         | 55.6%    | 1.00
scd      | 2     | 60    | 25.0%     | 3     | 0.50          | 30         | 50.0%    | 0.50

Per-device winners
device  | target | winner | best gap (ms) | cands
--------+--------+--------+---------------+------
PYNQ-Z1 | 20 FPS | random | 0.75          | 3
Ultra96 | 20 FPS | scd    | 0.50          | 1

Pareto front [backend=fpga] (gap vs evaluations)
device  | target | strategy | best gap (ms) | evals
--------+--------+----------+---------------+------
Ultra96 | 20 FPS | scd      | 0.50          | 20

Totals: 4 tasks, 150 evaluations, 6 candidates, 70 estimator calls"""


# ------------------------------------------------------------------------ CLI
class TestSweepCLI:
    def test_sweep_command_cold_then_warm(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = tmp_path / "cache"
        report = tmp_path / "report.json"
        argv = [
            "sweep", "--devices", "pynq-z1,ultra96", "--strategies", "scd,random",
            "--fps", "40", "--tolerance-ms", "10", "--top-bundles", "2",
            "--candidates", "1", "--iterations", "25", "--seed", "1",
            "--workers", "2", "--cache-dir", str(cache_dir),
            "--report", str(report),
        ]
        assert main(argv) == 0
        cold_out = capsys.readouterr().out
        assert "Sweep: 4 tasks on 2 processes" in cold_out
        assert "Per-strategy comparison" in cold_out
        payload = json.loads(report.read_text())
        assert {"sweep", "comparison"} <= set(payload)
        assert len(payload["sweep"]["outcomes"]) == 4

        assert main(argv) == 0
        warm_out = capsys.readouterr().out
        assert "disk cache 100% hit rate" in warm_out
        assert "0 estimator calls" in warm_out

    def test_sweep_command_rejects_unknown_strategy(self):
        from repro.cli import main

        with pytest.raises(ValueError, match="Unknown search strategy"):
            main(["sweep", "--strategies", "bogus", "--fps", "40"])

    def test_sweep_command_rejects_unknown_device(self, capsys):
        from repro.cli import main

        # Rejected at the parser (usage error, exit code 2), not deep in the
        # runner; the message lists the registered backends and devices.
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--devices", "bogus", "--fps", "40"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "Unknown fpga device 'bogus'" in err
        assert "Registered backends" in err

    def test_sweep_command_rejects_unknown_backend(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--devices", "tpu:v4", "--fps", "40"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "Unknown backend 'tpu'" in err
        assert "Registered backends" in err


class TestCLIArgumentHardening:
    """Bad numeric arguments die as argparse usage errors (exit code 2),
    not as tracebacks deep inside the runner after workers spawned."""

    @pytest.mark.parametrize("argv", [
        ["sweep", "--workers", "0"],
        ["sweep", "--workers", "-3"],
        ["sweep", "--workers", "two"],
        ["sweep", "--timeout-s", "-1"],
        ["sweep", "--timeout-s", "0"],
        ["sweep", "--retries", "-1"],
        ["sweep", "--retry-backoff-s", "-0.5"],
        ["sweep", "--timeout-scale", "0"],
        ["sweep", "--iterations", "0"],
        ["sweep", "--fps", "-40"],
        ["search", "--workers", "0"],
        ["shard", "worker", "--connect", "x", "--workers", "0"],
        ["shard", "coordinator", "--lease-ttl-s", "0"],
        ["shard", "coordinator", "--retries", "-1"],
    ])
    def test_invalid_numeric_arguments_exit_2(self, argv, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "error: argument" in err

    def test_valid_arguments_still_parse(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "sweep", "--devices", "pynq-z1", "--strategies", "scd",
            "--fps", "40", "--tolerance-ms", "10", "--top-bundles", "2",
            "--candidates", "1", "--iterations", "25", "--seed", "1",
            "--workers", "1", "--retries", "0", "--retry-backoff-s", "0",
        ]) == 0


# ----------------------------------------------------------------- run diffing
class TestCompareDiff:
    def _result(self, tmp_path, name, fps=(40.0,), cache=None):
        tasks = build_grid("pynq-z1", "scd", list(fps), **TINY)
        result = SweepRunner(tasks, workers=1, cache_dir=cache).run()
        path = result.save(tmp_path / name)
        return result, path

    def test_identical_runs_diff_clean(self, tmp_path):
        from repro.sweep import diff_results

        _, a = self._result(tmp_path, "a.json")
        _, b = self._result(tmp_path, "b.json")
        diff = diff_results(a, b)
        assert diff.identical
        assert len(diff.rows) == 1 and diff.rows[0].status_a == "ok"
        assert "identical cell for cell" in diff.render()

    def test_missing_and_failed_cells_reported(self, tmp_path):
        from repro.sweep import SweepResult, diff_results

        result_a, path_a = self._result(tmp_path, "a.json", fps=(40.0, 30.0))
        # Run B: one cell missing, the other failed.
        failed = SweepResult(
            outcomes=[],
            workers=1,
            failures=[SweepFailure(task=result_a.outcomes[0].task, kind="timeout",
                                   error="exceeded 1s", attempts=2)],
        )
        path_b = failed.save(tmp_path / "b.json")
        diff = diff_results(path_a, path_b)
        assert not diff.identical
        by_status = {(r.status_a, r.status_b) for r in diff.rows}
        assert by_status == {("ok", "failed"), ("ok", "missing")}
        rendered = diff.render()
        assert "ok -> failed" in rendered and "ok -> missing" in rendered
        assert "2/2 cell(s) differ" in rendered
        assert diff.render(only_changed=True).count("->") == 2

    def test_checkpoint_aware_sources(self, tmp_path):
        """A _checkpoint.jsonl diffs directly against a saved result."""
        from repro.sweep import CHECKPOINT_FILENAME, diff_results

        cache = tmp_path / "cache"
        result, path = self._result(tmp_path, "a.json", cache=str(cache))
        diff = diff_results(cache / CHECKPOINT_FILENAME, path)
        assert diff.identical and len(diff.rows) == 1
        # And an in-memory result works as either side.
        assert diff_results(result, path).identical

    def test_latency_and_evaluation_deltas(self):
        from repro.sweep import SweepResult, diff_results

        def result_with(latency, evals):
            outcome = _outcome("PYNQ-Z1", "scd", 20.0, records=evals, cached=0,
                               candidates=1, gap=None)
            outcome.best_latency_ms = latency
            outcome.best_gap_ms = abs(latency - 50.0)
            outcome.evaluations = evals
            return SweepResult(outcomes=[outcome], workers=1)

        diff = diff_results(result_with(48.0, 40), result_with(51.0, 44),
                            label_a="old", label_b="new")
        row = diff.rows[0]
        assert row.latency_delta_ms == pytest.approx(3.0)
        assert row.gap_delta_ms == pytest.approx(-1.0)
        assert row.evaluations_b - row.evaluations_a == 4
        payload = json.loads(json.dumps(diff.as_dict()))
        assert payload["a"] == "old" and payload["changed"] == 1
        assert payload["rows"][0]["latency_delta_ms"] == pytest.approx(3.0)

    def test_compare_cli_diff(self, tmp_path, capsys):
        from repro.cli import main

        _, a = self._result(tmp_path, "a.json")
        _, b = self._result(tmp_path, "b.json")
        report = tmp_path / "diff.json"
        assert main(["compare", "--diff", str(a), str(b),
                     "--report", str(report)]) == 0
        out = capsys.readouterr().out
        assert "identical cell for cell" in out
        payload = json.loads(report.read_text())
        assert payload["identical"] is True

    def test_compare_cli_requires_diff(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["compare"])


# -------------------------------------------------------- shared preparation
class TestPreparedDevice:
    def test_prepared_matches_inline_preparation(self, tmp_path):
        """Skipping steps 1-2 via the artifact must not change the journal."""
        task = build_grid("pynq-z1", "random", [40.0], **TINY)[0]
        inline = run_sweep_task(task, str(tmp_path / "a"))
        prepared = prepare_device(task)
        shared = run_sweep_task(task, str(tmp_path / "b"), prepared=prepared)
        assert json.dumps(inline.journal, sort_keys=True) == \
            json.dumps(shared.journal, sort_keys=True)
        assert inline.selected_bundles == shared.selected_bundles \
            == list(prepared.selected_bundle_ids)
        assert shared.used_shared_prep and not inline.used_shared_prep

    def test_preparation_runs_once_per_device_per_sweep(self, monkeypatch):
        """Acceptance: model fit + bundle selection once per device, not per cell."""
        from repro.sweep import runner as runner_module

        calls: list[tuple] = []
        real = runner_module.prepare_device

        def counting(task):
            calls.append(task.prep_key)
            return real(task)

        monkeypatch.setattr(runner_module, "prepare_device", counting)
        tasks = build_grid("pynq-z1", "scd,random", [40.0, 30.0], **TINY)
        result = SweepRunner(tasks, workers=1).run()
        assert len(tasks) == 4
        assert len(calls) == 1, "one device grid must prepare exactly once"
        assert all(outcome.used_shared_prep for outcome in result.outcomes)

        calls.clear()
        tasks = build_grid("pynq-z1,ultra96", "scd,random", [40.0], **TINY)
        SweepRunner(tasks, workers=1).run()
        assert len(calls) == 2, "one preparation per device"

    def test_workers_receive_prepared_artifact(self):
        tasks = build_grid("pynq-z1", "scd,random", [40.0], **TINY)
        result = SweepRunner(tasks, workers=2).run()
        assert all(outcome.used_shared_prep for outcome in result.outcomes)
        assert len(result.preparations) == 1
        assert result.prep_time_s > 0

    def test_per_cell_preparation_opt_out(self):
        tasks = build_grid("pynq-z1", "scd", [40.0], **TINY)
        result = SweepRunner(tasks, workers=1, share_preparation=False).run()
        assert not result.preparations
        assert not result.outcomes[0].used_shared_prep

    def test_mismatched_artifact_rejected(self):
        tasks = build_grid("pynq-z1,ultra96", "scd", [40.0], **TINY)
        prepared = prepare_device(tasks[0])
        assert prepared.matches(tasks[0]) and not prepared.matches(tasks[1])
        with pytest.raises(ValueError, match="does not match"):
            run_sweep_task(tasks[1], prepared=prepared)

    def test_wrong_clock_artifact_rejected_for_default_clock_task(self):
        """A default-clock task means the device default (100 MHz here); an
        artifact fitted at another clock carries wrong coefficients and
        must not pass the guard."""
        default_task = build_grid("pynq-z1", "scd", [40.0], **TINY)[0]
        fast_task = build_grid("pynq-z1", "scd", [40.0], clocks_mhz=[125.0], **TINY)[0]
        fast_prepared = prepare_device(fast_task)
        assert not fast_prepared.matches(default_task)
        with pytest.raises(ValueError, match="does not match"):
            run_sweep_task(default_task, prepared=fast_prepared)
        # The device-default artifact matches both spellings of 100 MHz.
        default_prepared = prepare_device(default_task)
        explicit_task = build_grid("pynq-z1", "scd", [40.0],
                                   clocks_mhz=[100.0], **TINY)[0]
        assert default_prepared.matches(default_task)
        assert default_prepared.matches(explicit_task)

    def test_artifact_as_dict_is_compact_json(self):
        prepared = prepare_device(build_grid("pynq-z1", "scd", [40.0], **TINY)[0])
        payload = json.loads(json.dumps(prepared.as_dict()))
        assert payload["device"] == "PYNQ-Z1"
        assert payload["clock_mhz"] == 100.0
        assert payload["selected_bundle_ids"]
        assert "coefficients" not in payload, "full coefficients stay pickle-only"
        assert payload["fingerprint"] == coefficients_fingerprint(prepared.coefficients)


# ------------------------------------------------------- cost-aware schedule
class TestCostOrdering:
    def test_heuristic_cost_scales_with_budget(self):
        small = SweepTask(device="PYNQ-Z1", strategy="scd", fps=40.0, iterations=10)
        large = SweepTask(device="PYNQ-Z1", strategy="scd", fps=40.0, iterations=100)
        assert expected_cost(large) > expected_cost(small)

    def test_journal_timings_override_heuristic(self):
        task = SweepTask(device="PYNQ-Z1", strategy="scd", fps=40.0)
        assert expected_cost(task, {task.uid: 12.5}) == 12.5
        # The display name still works as a legacy-hint fallback, but the
        # uid wins when both are present (budget-aliasing bugfix).
        assert expected_cost(task, {task.name: 12.5}) == 12.5
        assert expected_cost(task, {task.uid: 7.5, task.name: 12.5}) == 7.5
        assert expected_cost(task, {"other": 12.5}) == expected_cost(task)
        assert expected_cost(task, {task.uid: "garbage"}) == expected_cost(task)

    def test_timings_file_written_and_reloaded(self, tmp_path):
        tasks = build_grid("pynq-z1", "scd", [40.0], **TINY)
        SweepRunner(tasks, workers=1, cache_dir=tmp_path).run()
        timings = json.loads((tmp_path / "_timings.json").read_text())
        # Entries are uid-keyed, timestamped records (age-prunable by gc).
        assert set(timings) == {tasks[0].uid}
        assert timings[tasks[0].uid]["duration_s"] > 0
        assert timings[tasks[0].uid]["ts"] > 0
        runner = SweepRunner(tasks, workers=1, cache_dir=tmp_path)
        assert runner._load_cost_hints() == \
            {tasks[0].uid: timings[tasks[0].uid]["duration_s"]}

    def test_corrupt_timings_file_ignored(self, tmp_path):
        (tmp_path / "_timings.json").write_text("{not json")
        tasks = build_grid("pynq-z1", "scd", [40.0], **TINY)
        runner = SweepRunner(tasks, workers=1, cache_dir=tmp_path)
        assert runner._load_cost_hints() == {}
        result = runner.run()  # and the sweep itself is unaffected
        assert result.ok

    def test_timings_not_loaded_by_disk_cache(self, tmp_path, engine, initial):
        (tmp_path / "_timings.json").write_text('{"PYNQ-Z1-scd-40fps": 1.0}')
        cache = DiskEvaluationCache(engine.estimate, tmp_path, device="PYNQ-Z1")
        assert len(cache) == 0


# --------------------------------------------------------- runner validation
class TestRunnerOptions:
    def test_schedule_and_timeout_validation(self):
        tasks = build_grid("pynq-z1", "scd", [40.0], **TINY)
        with pytest.raises(ValueError, match="schedule"):
            SweepRunner(tasks, schedule="magic")
        with pytest.raises(ValueError, match="timeout_s"):
            SweepRunner(tasks, timeout_s=0.0)
        with pytest.raises(ValueError, match="retries"):
            SweepRunner(tasks, retries=-1)
        with pytest.raises(ValueError, match="work-stealing"):
            SweepRunner(tasks, schedule="chunked", timeout_s=5.0)

    def test_result_dict_includes_failures_and_schedule(self):
        task = SweepTask(device="PYNQ-Z1", strategy="scd", fps=40.0)
        from repro.sweep import SweepResult

        result = SweepResult(
            outcomes=[],
            workers=2,
            failures=[SweepFailure(task=task, kind="timeout",
                                   error="exceeded 1s", attempts=2)],
            schedule="steal",
        )
        payload = json.loads(json.dumps(result.as_dict()))
        assert payload["schedule"] == "steal"
        assert payload["failures"][0]["kind"] == "timeout"
        assert payload["failures"][0]["attempts"] == 2
        assert payload["failures"][0]["task"]["device"] == "PYNQ-Z1"
        assert not result.ok
        assert "FAILED" in result.summary()
