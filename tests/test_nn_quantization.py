"""Tests (including property-based tests) for fixed-point quantization."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import Conv2D, Sequential
from repro.nn.quantization import (
    FLOAT32,
    SCHEMES,
    W8A8,
    W8A16,
    W16A16,
    FixedPointQuantizer,
    QuantizationScheme,
    quantize_model_weights,
    scheme_for_activation,
)


class TestQuantizationScheme:
    def test_macs_per_dsp_packing(self):
        assert W8A8.macs_per_dsp == 2
        assert W8A16.macs_per_dsp == 2  # packing keyed on weight bits
        assert W16A16.macs_per_dsp == 1

    def test_bytes(self):
        assert W8A8.weight_bytes == 1.0
        assert W16A16.feature_bytes == 2.0

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            QuantizationScheme("bad", weight_bits=0, feature_bits=8)
        with pytest.raises(ValueError):
            QuantizationScheme("bad", weight_bits=8, feature_bits=64)

    def test_scheme_for_activation(self):
        assert scheme_for_activation("relu4").feature_bits == 8
        assert scheme_for_activation("relu8").feature_bits == 10
        assert scheme_for_activation("relu").feature_bits == 16
        with pytest.raises(KeyError):
            scheme_for_activation("swish")

    def test_registry_contains_defaults(self):
        assert "w8a8" in SCHEMES
        assert SCHEMES["float32"] is FLOAT32


class TestFixedPointQuantizer:
    def test_quantize_dequantize_small_error(self, rng):
        quantizer = FixedPointQuantizer(8)
        x = rng.normal(size=1000).astype(np.float32)
        err = quantizer.quantization_error(x)
        assert err < 0.05 * np.std(x)

    def test_more_bits_less_error(self, rng):
        x = rng.normal(size=1000).astype(np.float32)
        err4 = FixedPointQuantizer(4).quantization_error(x)
        err8 = FixedPointQuantizer(8).quantization_error(x)
        err16 = FixedPointQuantizer(16).quantization_error(x)
        assert err16 <= err8 <= err4

    def test_integer_range_respected(self, rng):
        quantizer = FixedPointQuantizer(8)
        q, _ = quantizer.quantize(rng.normal(size=500).astype(np.float32) * 100)
        assert q.max() <= 127 and q.min() >= -128

    def test_zero_tensor(self):
        quantizer = FixedPointQuantizer(8)
        q, scale = quantizer.quantize(np.zeros(10, dtype=np.float32))
        assert scale == 1.0
        assert np.all(q == 0)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            FixedPointQuantizer(1)

    def test_quantize_model_weights_inplace(self, rng):
        model = Sequential([Conv2D(3, 4, 3, rng=0)])
        before = model.state_dict()
        scales = quantize_model_weights(model, W8A8)
        after = model.state_dict()
        assert set(scales) == {p.name for p in model.parameters()}
        # Weights changed slightly but stayed close.
        for key in before:
            assert np.max(np.abs(before[key] - after[key])) < 0.05 * (np.abs(before[key]).max() + 1e-9)


class TestQuantizerProperties:
    @given(arrays(np.float32, st.integers(1, 200),
                  elements=st.floats(-100, 100, width=32)))
    @settings(max_examples=50, deadline=None)
    def test_fake_quantize_idempotent(self, x):
        """Quantizing an already-quantized tensor changes nothing."""
        quantizer = FixedPointQuantizer(8)
        once = quantizer.fake_quantize(x)
        twice = quantizer.fake_quantize(once)
        np.testing.assert_allclose(once, twice, rtol=1e-5, atol=1e-6)

    @given(arrays(np.float32, st.integers(1, 200),
                  elements=st.floats(-1000, 1000, width=32)),
           st.integers(2, 16))
    @settings(max_examples=50, deadline=None)
    def test_error_bounded_by_scale(self, x, bits):
        """The absolute quantization error never exceeds one quantization step."""
        quantizer = FixedPointQuantizer(bits)
        scale = quantizer.scale_for(x)
        err = np.max(np.abs(x - quantizer.fake_quantize(x))) if x.size else 0.0
        assert err <= scale * 1.0 + 1e-6

    @given(arrays(np.float32, st.integers(1, 100),
                  elements=st.floats(-50, 50, width=32)))
    @settings(max_examples=50, deadline=None)
    def test_quantized_values_in_range(self, x):
        quantizer = FixedPointQuantizer(6)
        q, _ = quantizer.quantize(x)
        assert q.max(initial=0) <= quantizer.qmax
        assert q.min(initial=0) >= quantizer.qmin

    def test_subnormal_inputs_stay_in_range(self):
        """Regression: a subnormal-float32 tensor produced a scale below the
        float32 range; dividing in float32 then gave 0/0 = NaN, which cast
        to INT32_MIN instead of a value in [qmin, qmax]."""
        quantizer = FixedPointQuantizer(6)
        for dtype, tiny in ((np.float32, 1e-45), (np.float16, 6e-8)):
            x = np.array([0.0, tiny], dtype=dtype)
            q, scale = quantizer.quantize(x)
            assert q.tolist() == [0, quantizer.qmax], dtype
            assert scale > 0
