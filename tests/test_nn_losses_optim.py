"""Tests for losses, optimizers and LR schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers.base import Parameter
from repro.nn.losses import IoULoss, L1Loss, MSELoss, SmoothL1Loss, make_loss
from repro.nn.optim import SGD, Adam, Optimizer, StepLR


class TestLosses:
    def test_mse_zero_on_perfect(self, rng):
        pred = rng.random((8, 4)).astype(np.float32)
        loss, grad = MSELoss()(pred, pred.copy())
        assert loss == pytest.approx(0.0)
        np.testing.assert_allclose(grad, 0.0)

    def test_mse_gradient_direction(self):
        pred = np.array([[0.5, 0.5, 0.5, 0.5]], dtype=np.float32)
        target = np.array([[1.0, 1.0, 1.0, 1.0]], dtype=np.float32)
        _, grad = MSELoss()(pred, target)
        assert np.all(grad < 0.0)  # moving pred up reduces the loss

    def test_l1_matches_mean_abs(self, rng):
        pred = rng.random((4, 4)).astype(np.float32)
        target = rng.random((4, 4)).astype(np.float32)
        loss, _ = L1Loss()(pred, target)
        assert loss == pytest.approx(float(np.mean(np.abs(pred - target))), rel=1e-6)

    def test_smooth_l1_quadratic_region(self):
        pred = np.array([[0.55, 0.5, 0.5, 0.5]], dtype=np.float32)
        target = np.full((1, 4), 0.5, dtype=np.float32)
        loss_small, _ = SmoothL1Loss(beta=0.1)(pred, target)
        pred_big = np.array([[1.5, 0.5, 0.5, 0.5]], dtype=np.float32)
        loss_big, _ = SmoothL1Loss(beta=0.1)(pred_big, target)
        assert loss_big > loss_small

    def test_smooth_l1_invalid_beta(self):
        with pytest.raises(ValueError):
            SmoothL1Loss(beta=0.0)

    def test_iou_loss_perfect_overlap(self):
        boxes = np.array([[0.5, 0.5, 0.2, 0.2]], dtype=np.float32)
        loss, _ = IoULoss()(boxes, boxes.copy())
        assert loss == pytest.approx(0.0, abs=1e-3)

    def test_iou_loss_disjoint_boxes(self):
        pred = np.array([[0.2, 0.2, 0.1, 0.1]], dtype=np.float32)
        target = np.array([[0.8, 0.8, 0.1, 0.1]], dtype=np.float32)
        loss, grad = IoULoss()(pred, target)
        assert loss == pytest.approx(1.0, abs=1e-5)
        assert grad.shape == pred.shape

    def test_make_loss_registry(self):
        assert isinstance(make_loss("mse"), MSELoss)
        assert isinstance(make_loss("iou"), IoULoss)
        with pytest.raises(KeyError):
            make_loss("hinge")


def _quadratic_problem():
    """A single parameter whose optimum is at 3.0 under loss (p - 3)^2."""
    return Parameter(np.array([0.0], dtype=np.float32), name="p")


def _step(optimizer: Optimizer, param: Parameter) -> float:
    optimizer.zero_grad()
    param.grad[...] = 2.0 * (param.value - 3.0)
    optimizer.step()
    return float((param.value[0] - 3.0) ** 2)


class TestOptimizers:
    def test_sgd_converges(self):
        param = _quadratic_problem()
        opt = SGD([param], lr=0.1)
        losses = [_step(opt, param) for _ in range(100)]
        assert losses[-1] < 1e-4
        assert losses[-1] < losses[0]

    def test_sgd_momentum_converges(self):
        param = _quadratic_problem()
        opt = SGD([param], lr=0.05, momentum=0.9)
        for _ in range(200):
            _step(opt, param)
        assert float(param.value[0]) == pytest.approx(3.0, abs=1e-2)

    def test_sgd_weight_decay_shrinks(self):
        param = Parameter(np.array([5.0], dtype=np.float32))
        opt = SGD([param], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        opt.step()
        assert float(param.value[0]) < 5.0

    def test_adam_converges(self):
        param = _quadratic_problem()
        opt = Adam([param], lr=0.2)
        for _ in range(200):
            _step(opt, param)
        assert float(param.value[0]) == pytest.approx(3.0, abs=1e-2)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([_quadratic_problem()], lr=0.0)

    def test_empty_parameters(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([_quadratic_problem()], lr=0.1, momentum=1.0)


class TestStepLR:
    def test_decays_on_schedule(self):
        param = _quadratic_problem()
        opt = SGD([param], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.5)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        assert opt.lr == 0.5
        sched.step()
        sched.step()
        assert opt.lr == 0.25

    def test_invalid_arguments(self):
        param = _quadratic_problem()
        opt = SGD([param], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=1, gamma=0.0)
