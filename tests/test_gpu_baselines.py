"""Tests for the GPU models, contest-entry baselines and the top-down flow."""

from __future__ import annotations

import pytest

from repro.baselines.entries import ContestEntry, fpga_contest_entries, gpu_contest_entries
from repro.baselines.topdown import TopDownFlow, _prune_channels
from repro.baselines.workloads import (
    heavy_fpga_workload,
    lightweight_fpga_workload,
    ssd_compressed_workload,
    tiny_yolo_workload,
    yolo_workload,
)
from repro.detection.accuracy_model import SurrogateAccuracyModel
from repro.gpu.device import JETSON_TX2, GPUDevice
from repro.gpu.latency import GPULatencyModel
from repro.gpu.power import GPUPowerModel
from repro.hw.device import PYNQ_Z1


class TestGPUDevice:
    def test_tx2_peak_throughput(self):
        # 256 cores at 854 MHz -> ~218 GMAC/s peak.
        assert JETSON_TX2.peak_macs_per_second == pytest.approx(256 * 854e6)
        assert JETSON_TX2.peak_gflops == pytest.approx(2 * 256 * 0.854, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            GPUDevice(name="bad", clock_mhz=0, cuda_cores=128,
                      memory_bandwidth_gbps=10, idle_power_w=2, max_power_w=10)
        with pytest.raises(ValueError):
            GPUDevice(name="bad", clock_mhz=100, cuda_cores=128,
                      memory_bandwidth_gbps=10, idle_power_w=10, max_power_w=5)


class TestGPULatency:
    def test_yolo_slower_than_tiny_yolo(self):
        model = GPULatencyModel(JETSON_TX2)
        assert model.latency_ms(yolo_workload()) > model.latency_ms(tiny_yolo_workload())

    def test_latency_in_embedded_gpu_range(self):
        model = GPULatencyModel(JETSON_TX2)
        latency = model.latency_ms(yolo_workload(), precision_bytes=2.0)
        # The contest GPU entries run full detectors in tens of milliseconds.
        assert 10.0 < latency < 300.0

    def test_fp16_faster_than_fp32_when_memory_bound(self):
        model = GPULatencyModel(JETSON_TX2, compute_efficiency=0.9)
        wl = tiny_yolo_workload()
        assert model.latency_ms(wl, precision_bytes=2.0) <= model.latency_ms(wl, precision_bytes=4.0)

    def test_fps_inverse_of_latency(self):
        model = GPULatencyModel(JETSON_TX2)
        wl = tiny_yolo_workload()
        assert model.fps(wl) == pytest.approx(1000.0 / model.latency_ms(wl))

    def test_validation(self):
        with pytest.raises(ValueError):
            GPULatencyModel(JETSON_TX2, compute_efficiency=0.0)
        with pytest.raises(ValueError):
            GPULatencyModel(JETSON_TX2, memory_efficiency=1.5)


class TestGPUPower:
    def test_power_between_idle_and_max(self):
        model = GPUPowerModel(JETSON_TX2)
        assert JETSON_TX2.idle_power_w < model.board_power_w() <= JETSON_TX2.max_power_w

    def test_gpu_power_far_above_fpga_power(self):
        gpu = GPUPowerModel(JETSON_TX2).board_power_w()
        assert gpu > 4 * PYNQ_Z1.static_power_w

    def test_energy_report(self):
        report = GPUPowerModel(JETSON_TX2).energy_report(latency_ms=40.0, num_frames=50_000)
        assert report.fps == pytest.approx(25.0)
        assert report.energy_per_frame_j == pytest.approx(report.power_w / report.fps, rel=1e-6)

    def test_invalid_latency(self):
        with pytest.raises(ValueError):
            GPUPowerModel(JETSON_TX2).energy_report(latency_ms=0.0)


class TestBaselineWorkloads:
    def test_ssd_is_conv_heavy(self):
        wl = ssd_compressed_workload()
        assert all(l.kind in ("conv", "pool", "head") for l in wl.layers)
        assert wl.total_macs > 1e8

    def test_ordering_of_fpga_workload_sizes(self):
        assert (lightweight_fpga_workload().total_macs
                < ssd_compressed_workload().total_macs
                < heavy_fpga_workload().total_macs)

    def test_yolo_much_bigger_than_edge_designs(self):
        assert yolo_workload().total_macs > 10 * ssd_compressed_workload().total_macs


class TestContestEntries:
    def test_table2_rows_present(self):
        fpga = fpga_contest_entries()
        gpu = gpu_contest_entries()
        assert len(fpga) == 3 and len(gpu) == 3
        assert fpga[0].model_name == "SSD"
        assert gpu[0].model_name == "Yolo"

    def test_reported_numbers_match_paper(self):
        fpga1 = fpga_contest_entries()[0]
        assert fpga1.reported_iou == pytest.approx(0.624)
        assert fpga1.reported_power_w == pytest.approx(4.2)
        gpu1 = gpu_contest_entries()[0]
        assert gpu1.reported_iou == pytest.approx(0.698)

    def test_every_entry_has_workload(self):
        for entry in fpga_contest_entries() + gpu_contest_entries():
            assert entry.workload is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            ContestEntry(name="x", category="tpu", model_name="m", reported_iou=0.5,
                         reported_latency_ms=1, reported_fps=1, reported_power_w=1,
                         reported_energy_kj=1, reported_j_per_pic=1, clock_mhz=100)
        with pytest.raises(ValueError):
            ContestEntry(name="x", category="fpga", model_name="m", reported_iou=1.5,
                         reported_latency_ms=1, reported_fps=1, reported_power_w=1,
                         reported_energy_kj=1, reported_j_per_pic=1, clock_mhz=100)


class TestTopDownFlow:
    def test_pruning_reduces_channels_and_macs(self):
        wl = ssd_compressed_workload()
        pruned = _prune_channels(wl, 0.5)
        assert pruned.total_macs < wl.total_macs
        assert pruned.max_channels < wl.max_channels

    def test_invalid_keep_ratio(self):
        with pytest.raises(ValueError):
            _prune_channels(ssd_compressed_workload(), 0.0)

    def test_flow_meets_budget(self):
        flow = TopDownFlow(PYNQ_Z1, accuracy_model=SurrogateAccuracyModel(noise=0.0))
        result = flow.run(ssd_compressed_workload(), latency_budget_ms=30.0)
        assert result.latency_ms <= 30.0 or result.compression_steps == flow.max_steps
        assert 0.0 < result.accuracy < 1.0
        assert result.fps == pytest.approx(1000.0 / result.latency_ms)

    def test_tighter_budget_more_compression(self):
        flow = TopDownFlow(PYNQ_Z1, accuracy_model=SurrogateAccuracyModel(noise=0.0))
        loose = flow.run(ssd_compressed_workload(), latency_budget_ms=80.0)
        tight = flow.run(ssd_compressed_workload(), latency_budget_ms=25.0)
        assert tight.pruning_ratio <= loose.pruning_ratio
        assert tight.accuracy <= loose.accuracy + 1e-9

    def test_invalid_budget(self):
        flow = TopDownFlow(PYNQ_Z1)
        with pytest.raises(ValueError):
            flow.run(ssd_compressed_workload(), latency_budget_ms=0.0)

    def test_codesign_beats_topdown_at_comparable_latency(self):
        """The methodological headline: bottom-up co-design yields higher IoU."""
        from repro.experiments.ablations import run_codesign_vs_topdown

        comparison = run_codesign_vs_topdown(latency_budget_ms=40.0)
        assert comparison.iou_gain > 0.0
