"""Batched-evaluation wiring tests: caches, evaluators, explorers, sweeps.

The vectorized estimator (tested for bit-exactness in
``test_hw_batch.py``) is wired into every layer of the pipeline.  These
tests assert the wiring contracts:

* ``EvaluationCache`` / ``DiskEvaluationCache`` dispatch whole batches to an
  estimator's ``estimate_batch`` and keep their hit / miss accounting
  identical to the scalar path,
* shard files written by the batched disk path are byte-identical to the
  scalar ones under a frozen clock,
* ``BundleEvaluator`` produces identical records with ``batched`` on or off,
* explorer session journals and whole-sweep fingerprints do not depend on
  which path scored the candidates.
"""

from __future__ import annotations

import json

import pytest

from repro.core.auto_hls import AutoHLS
from repro.core.bundle_evaluation import (
    BundleEvaluation,
    BundleEvaluator,
    best_evaluation_per_bundle,
)
from repro.core.bundle_generation import get_bundle
from repro.core.constraints import LatencyTarget, ResourceConstraint
from repro.core.dnn_config import DNNConfig
from repro.detection.task import TINY_DETECTION_TASK
from repro.hw.device import PYNQ_Z1
from repro.hw.resource import ResourceVector
from repro.search.base import create_explorer
from repro.search.cache import EvaluationCache, resolve_batch_estimator
from repro.search.session import SearchSession
from repro.sweep import SweepRunner, build_grid
from repro.sweep.disk_cache import DiskEvaluationCache
from repro.utils.serialization import to_jsonable

FROZEN_CLOCK = 1700000000.1234


def make_config(pf: int = 8, reps: int = 2, name: str = "") -> DNNConfig:
    return DNNConfig(
        bundle=get_bundle(13),
        task=TINY_DETECTION_TASK,
        num_repetitions=reps,
        channel_expansion=(1.5,) * reps,
        downsample=(1,) * reps,
        stem_channels=16,
        activation="relu4",
        parallel_factor=pf,
        max_channels=64,
        name=name,
    )


class SpyEstimator:
    """Scalar + batched estimator counting which path was exercised."""

    def __init__(self, device=PYNQ_Z1):
        self.auto = AutoHLS(device)
        self.scalar_calls = 0
        self.batch_calls = 0
        self.batched_configs = 0

    def __call__(self, config):
        self.scalar_calls += 1
        return self.auto.estimate(config)

    def estimate_batch(self, configs):
        self.batch_calls += 1
        self.batched_configs += len(configs)
        return self.auto.estimate_batch(configs)


class TestResolveBatchEstimator:
    def test_object_with_estimate_batch(self):
        spy = SpyEstimator()
        assert resolve_batch_estimator(spy) == spy.estimate_batch

    def test_bound_method_owner(self):
        auto = AutoHLS(PYNQ_Z1)
        resolved = resolve_batch_estimator(auto.estimate)
        assert resolved is not None
        assert resolved.__self__ is auto

    def test_plain_callable_has_none(self):
        assert resolve_batch_estimator(lambda config: None) is None

    def test_disk_cache_is_batchable(self, tmp_path):
        disk = DiskEvaluationCache(
            AutoHLS(PYNQ_Z1).estimate, tmp_path, device="pynq-z1"
        )
        assert resolve_batch_estimator(disk) == disk.estimate_batch


class TestEvaluationCacheBatch:
    def test_batch_dispatch_and_accounting(self):
        spy = SpyEstimator()
        cache = EvaluationCache(spy)
        configs = [make_config(4), make_config(8), make_config(16), make_config(4)]
        results = cache.evaluate_batch(configs)
        # One vectorized call scored the three unique configs; the in-batch
        # duplicate was deduplicated before dispatch.
        assert spy.batch_calls == 1 and spy.batched_configs == 3
        assert spy.scalar_calls == 0
        assert cache.misses == 3 and cache.hits == 1
        assert results[0] == results[3]
        # Second pass: pure cache hits, no estimator traffic.
        again = cache.evaluate_batch(configs)
        assert again == results
        assert spy.batch_calls == 1 and cache.hits == 5

    def test_batch_results_match_scalar_cache(self):
        configs = [make_config(4), make_config(8), make_config(16)]
        batched = EvaluationCache(SpyEstimator()).evaluate_batch(configs)
        scalar_cache = EvaluationCache(AutoHLS(PYNQ_Z1).estimate)
        scalar = [scalar_cache.evaluate(config) for config in configs]
        assert batched == scalar

    def test_single_missing_config_stays_scalar(self):
        spy = SpyEstimator()
        cache = EvaluationCache(spy)
        cache.evaluate_batch([make_config(4)])
        assert spy.batch_calls == 0 and spy.scalar_calls == 1

    def test_get_many_is_a_pure_read(self):
        spy = SpyEstimator()
        cache = EvaluationCache(spy)
        known, unknown = make_config(4), make_config(8)
        value = cache.evaluate(known)
        hits, misses = cache.hits, cache.misses
        looked_up = cache.get_many([known, unknown, known])
        assert looked_up == [value, None, value]
        assert cache.hits == hits + 2
        assert cache.misses == misses  # never bumped by a lookup
        assert spy.scalar_calls == 1 and spy.batch_calls == 0

    def test_put_many_roundtrip_is_counter_neutral(self):
        auto = AutoHLS(PYNQ_Z1)
        configs = [make_config(4), make_config(8)]
        estimates = auto.estimate_batch(configs)
        cache = EvaluationCache(auto.estimate)
        cache.put_many(configs, estimates)
        assert cache.misses == 0 and len(cache) == 2
        assert cache.evaluate(configs[0]) == estimates[0]
        assert cache.hits == 1 and cache.misses == 0

    def test_put_many_length_mismatch(self):
        cache = EvaluationCache(AutoHLS(PYNQ_Z1).estimate)
        with pytest.raises(ValueError):
            cache.put_many([make_config(4)], [])


class TestDiskCacheBatch:
    def _disk(self, tmp_path, estimator, shard="main"):
        return DiskEvaluationCache(
            estimator, tmp_path, device="pynq-z1", shard=shard,
            clock=lambda: FROZEN_CLOCK,
        )

    def test_estimate_batch_accounting_and_persistence(self, tmp_path):
        spy = SpyEstimator()
        disk = self._disk(tmp_path, spy)
        configs = [make_config(4), make_config(8), make_config(16)]
        results = disk.estimate_batch(configs)
        assert spy.batch_calls == 1 and spy.scalar_calls == 0
        # misses == real estimator invocations, exactly as the scalar path.
        assert disk.misses == 3 and disk.hits == 0
        again = disk.estimate_batch(configs)
        assert again == results
        assert disk.misses == 3 and disk.hits == 3
        # A fresh instance reloads every record from the shard.
        reloaded = self._disk(tmp_path, spy, shard="other")
        assert reloaded.estimate_batch(configs) == results
        assert reloaded.misses == 0

    def test_batched_shard_bytes_match_scalar(self, tmp_path):
        configs = [make_config(4), make_config(8), make_config(16)]
        scalar_dir, batched_dir = tmp_path / "scalar", tmp_path / "batched"
        scalar_disk = self._disk(scalar_dir, AutoHLS(PYNQ_Z1).estimate)
        for config in configs:
            scalar_disk.evaluate(config)
        batched_disk = self._disk(batched_dir, SpyEstimator())
        batched_disk.estimate_batch(configs)
        assert (
            scalar_disk.shard_path.read_bytes()
            == batched_disk.shard_path.read_bytes()
        )
        assert scalar_disk.misses == batched_disk.misses == 3

    def test_get_many_and_put_many(self, tmp_path):
        auto = AutoHLS(PYNQ_Z1)
        configs = [make_config(4), make_config(8)]
        estimates = auto.estimate_batch(configs)
        disk = self._disk(tmp_path, auto.estimate)
        assert disk.get_many(configs) == [None, None]
        assert disk.misses == 0  # pure reads never count as misses
        disk.put_many(configs, estimates)
        assert disk.misses == 0 and len(disk) == 2
        assert disk.get_many(configs) == estimates
        assert disk.hits == 2
        # put_many persisted: a fresh instance serves both entries.
        fresh = self._disk(tmp_path, auto.estimate, shard="other")
        assert fresh.get_many(configs) == estimates

    def test_put_many_length_mismatch(self, tmp_path):
        disk = self._disk(tmp_path, AutoHLS(PYNQ_Z1).estimate)
        with pytest.raises(ValueError):
            disk.put_many([make_config(4)], [])


class TestBestEvaluationPerBundle:
    def _record(self, bundle_id, latency_ms, tag=""):
        return BundleEvaluation(
            bundle=get_bundle(bundle_id), parallel_factor=8,
            latency_ms=latency_ms, accuracy=0.5,
            resources=ResourceVector(), dsp=0.0, method=1,
            config=None,
        )

    def test_keeps_lowest_latency_per_bundle(self):
        records = [
            self._record(1, 5.0), self._record(2, 9.0),
            self._record(1, 3.0), self._record(2, 11.0),
        ]
        best = best_evaluation_per_bundle(records)
        assert [(r.bundle_id, r.latency_ms) for r in best] == [(1, 3.0), (2, 9.0)]

    def test_ties_keep_first_record(self):
        first, tied = self._record(1, 5.0), self._record(1, 5.0)
        assert best_evaluation_per_bundle([first, tied]) == [first]
        assert best_evaluation_per_bundle([first, tied])[0] is first

    def test_preserves_first_seen_bundle_order(self):
        records = [self._record(3, 2.0), self._record(1, 1.0), self._record(2, 4.0)]
        assert [r.bundle_id for r in best_evaluation_per_bundle(records)] == [3, 1, 2]

    def test_empty(self):
        assert best_evaluation_per_bundle([]) == []


def _evaluation_key(record):
    return (
        record.bundle_id, record.parallel_factor, record.latency_ms,
        record.accuracy, record.resources.lut, record.resources.ff,
        record.resources.dsp, record.resources.bram, record.method,
        record.config.describe(),
    )


def _fine_key(record):
    return (
        record.bundle_id, record.num_repetitions, record.activation,
        record.latency_ms, record.accuracy, record.resources.lut,
        record.resources.ff, record.resources.dsp, record.resources.bram,
        record.config.describe(),
    )


class TestBundleEvaluatorBatched:
    def test_coarse_records_identical(self):
        bundles = [get_bundle(i) for i in (1, 5, 13)]
        kwargs = dict(task=TINY_DETECTION_TASK, device=PYNQ_Z1, stem_channels=16)
        batched = BundleEvaluator(batched=True, **kwargs).coarse_evaluate(
            bundles, parallel_factors=(4, 8)
        )
        scalar = BundleEvaluator(batched=False, **kwargs).coarse_evaluate(
            bundles, parallel_factors=(4, 8)
        )
        assert [_evaluation_key(r) for r in batched] == [
            _evaluation_key(r) for r in scalar
        ]

    def test_fine_records_identical(self):
        bundles = [get_bundle(i) for i in (5, 13)]
        kwargs = dict(task=TINY_DETECTION_TASK, device=PYNQ_Z1, stem_channels=16)
        batched = BundleEvaluator(batched=True, **kwargs).fine_evaluate(
            bundles, repetition_counts=(2, 3)
        )
        scalar = BundleEvaluator(batched=False, **kwargs).fine_evaluate(
            bundles, repetition_counts=(2, 3)
        )
        assert [_fine_key(r) for r in batched] == [_fine_key(r) for r in scalar]

    def test_selection_identical(self):
        bundles = [get_bundle(i) for i in (1, 5, 9, 13, 17)]
        kwargs = dict(task=TINY_DETECTION_TASK, device=PYNQ_Z1, stem_channels=16)
        batched_eval = BundleEvaluator(batched=True, **kwargs)
        scalar_eval = BundleEvaluator(batched=False, **kwargs)
        batched = batched_eval.coarse_evaluate(bundles)
        scalar = scalar_eval.coarse_evaluate(bundles)
        assert batched_eval.pareto_bundles(batched) == scalar_eval.pareto_bundles(scalar)
        assert [
            b.bundle_id for b in batched_eval.select_top_bundles(batched, top_n=3)
        ] == [b.bundle_id for b in scalar_eval.select_top_bundles(scalar, top_n=3)]


def _force_scalar(monkeypatch):
    """Disable every batched dispatch, reverting to the scalar code paths."""
    import repro.search.cache as cache_module
    import repro.sweep.disk_cache as disk_module

    monkeypatch.setattr(cache_module, "resolve_batch_estimator", lambda e: None)
    monkeypatch.setattr(disk_module, "resolve_batch_estimator", lambda e: None)
    original_init = BundleEvaluator.__init__

    def scalar_init(self, *args, **kwargs):
        kwargs["batched"] = False
        original_init(self, *args, **kwargs)

    monkeypatch.setattr(BundleEvaluator, "__init__", scalar_init)


class TestJournalInvariance:
    def _journal_for(self, configs):
        auto = AutoHLS(PYNQ_Z1)
        session = SearchSession(name="probe")
        explorer = create_explorer(
            "random",
            estimator=auto.estimate,
            latency_target=LatencyTarget(fps=30.0, tolerance_ms=10.0),
            resource_constraint=ResourceConstraint.for_device(PYNQ_Z1),
            session=session,
        )
        explorer.score_generation(configs)
        return json.dumps(to_jsonable(session.as_dict()), sort_keys=True)

    def test_score_generation_journal_is_path_independent(self, monkeypatch):
        configs = [make_config(4), make_config(8), make_config(16), make_config(4)]
        batched = self._journal_for(configs)
        _force_scalar(monkeypatch)
        scalar = self._journal_for(configs)
        assert batched == scalar


class TestSweepInvariance:
    GRID = dict(
        tolerance_ms=10.0, iterations=12, num_candidates=1, top_bundles=2, seed=7
    )

    def _fingerprint(self, result):
        return [
            (
                outcome.task.name,
                json.dumps(outcome.journal, sort_keys=True),
                outcome.selected_bundles,
                outcome.num_candidates,
                outcome.best_latency_ms,
                outcome.best_gap_ms,
            )
            for outcome in result.outcomes
        ]

    def test_sweep_fingerprint_is_path_independent(self, monkeypatch):
        tasks = build_grid("pynq-z1", ["random", "scd"], [30.0], **self.GRID)
        batched = SweepRunner(tasks, workers=1).run()
        _force_scalar(monkeypatch)
        scalar = SweepRunner(tasks, workers=1).run()
        assert batched.ok and scalar.ok
        assert self._fingerprint(batched) == self._fingerprint(scalar)

    def test_disk_cached_sweep_accounting_is_path_independent(
        self, monkeypatch, tmp_path
    ):
        tasks = build_grid("pynq-z1", ["random"], [30.0], **self.GRID)
        batched = SweepRunner(tasks, workers=1, cache_dir=str(tmp_path / "b")).run()
        _force_scalar(monkeypatch)
        scalar = SweepRunner(tasks, workers=1, cache_dir=str(tmp_path / "s")).run()
        assert batched.ok and scalar.ok
        assert self._fingerprint(batched) == self._fingerprint(scalar)
        # Disk misses count real estimator invocations; the batched path
        # must invoke the estimator for exactly the same configs.
        assert [o.disk_misses for o in batched.outcomes] == [
            o.disk_misses for o in scalar.outcomes
        ]
        assert [o.disk_hits for o in batched.outcomes] == [
            o.disk_hits for o in scalar.outcomes
        ]
