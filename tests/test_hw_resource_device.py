"""Tests for resource vectors and the FPGA device catalogue."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.device import PYNQ_Z1, ULTRA96, ZC706, FPGADevice, get_device, list_devices
from repro.hw.resource import ResourceUtilization, ResourceVector


class TestResourceVector:
    def test_addition(self):
        a = ResourceVector(lut=100, ff=200, dsp=3, bram=4)
        b = ResourceVector(lut=50, ff=25, dsp=1, bram=2)
        c = a + b
        assert (c.lut, c.ff, c.dsp, c.bram) == (150, 225, 4, 6)

    def test_subtraction_and_scale(self):
        a = ResourceVector(lut=100, ff=200, dsp=4, bram=8)
        assert (a - a).lut == 0
        half = a.scale(0.5)
        assert half.dsp == 2 and half.bram == 4

    def test_multiplication_operators(self):
        a = ResourceVector(lut=10)
        assert (2 * a).lut == 20
        assert (a * 3).lut == 30

    def test_fits_within(self):
        usage = ResourceVector(lut=100, ff=100, dsp=10, bram=10)
        budget = ResourceVector(lut=200, ff=200, dsp=20, bram=20)
        assert usage.fits_within(budget)
        assert not budget.fits_within(usage)

    def test_fits_within_boundary(self):
        usage = ResourceVector(lut=200, ff=200, dsp=20, bram=20)
        assert usage.fits_within(usage)

    def test_max_with(self):
        a = ResourceVector(lut=10, dsp=5)
        b = ResourceVector(lut=5, dsp=8)
        m = a.max_with(b)
        assert m.lut == 10 and m.dsp == 8

    def test_as_dict_and_weighted(self):
        a = ResourceVector(lut=53200, ff=106400, dsp=220, bram=280)
        assert set(a.as_dict()) == {"lut", "ff", "dsp", "bram"}
        assert a.total_weighted() == pytest.approx(4.0)

    def test_zero(self):
        z = ResourceVector.zero()
        assert z.lut == z.ff == z.dsp == z.bram == 0.0

    @given(st.floats(0, 1e5), st.floats(0, 1e5), st.floats(0, 500), st.floats(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_addition_commutative(self, lut, ff, dsp, bram):
        a = ResourceVector(lut=lut, ff=ff, dsp=dsp, bram=bram)
        b = ResourceVector(lut=ff, ff=lut, dsp=bram, bram=dsp)
        assert (a + b) == (b + a)


class TestResourceUtilization:
    def test_max_fraction(self):
        util = ResourceUtilization(lut=0.5, ff=0.2, dsp=0.9, bram=0.7)
        assert util.max_fraction == 0.9
        assert util.within_budget()
        assert not util.within_budget(limit=0.8)

    def test_percent_dict(self):
        util = ResourceUtilization(lut=0.5, ff=0.2, dsp=0.9, bram=0.7)
        assert util.as_percent_dict()["dsp"] == pytest.approx(90.0)


class TestDeviceCatalogue:
    def test_pynq_z1_resources_match_paper(self):
        assert PYNQ_Z1.resources.dsp == 220
        assert PYNQ_Z1.resources.lut == 53_200
        assert PYNQ_Z1.resources.ff == 106_400
        # 4.9 Mbit of BRAM = 280 blocks of 18 Kbit.
        assert PYNQ_Z1.bram_bits() == pytest.approx(4.9e6, rel=0.06)

    def test_device_ordering_by_size(self):
        assert PYNQ_Z1.resources.dsp < ULTRA96.resources.dsp < ZC706.resources.dsp

    def test_get_device_case_insensitive(self):
        assert get_device("PYNQ-Z1") is PYNQ_Z1
        assert get_device("zc706") is ZC706
        with pytest.raises(KeyError):
            get_device("virtex-7")

    def test_list_devices(self):
        names = list_devices()
        assert "PYNQ-Z1" in names and len(names) >= 3

    def test_utilization(self):
        usage = ResourceVector(lut=26_600, ff=53_200, dsp=110, bram=140)
        util = PYNQ_Z1.utilization(usage)
        assert util.lut == pytest.approx(0.5)
        assert util.dsp == pytest.approx(0.5)

    def test_fits_with_margin(self):
        usage = ResourceVector(lut=40_000, ff=50_000, dsp=200, bram=200)
        assert PYNQ_Z1.fits(usage)
        assert not PYNQ_Z1.fits(usage, margin=0.5)

    def test_cycle_time(self):
        assert PYNQ_Z1.cycle_time_ns(100.0) == pytest.approx(10.0)
        assert PYNQ_Z1.cycle_time_ns(150.0) == pytest.approx(6.667, rel=1e-3)
        with pytest.raises(ValueError):
            PYNQ_Z1.cycle_time_ns(0.0)

    def test_device_validation(self):
        with pytest.raises(ValueError):
            FPGADevice(name="bad", resources=ResourceVector(), default_clock_mhz=200, max_clock_mhz=100)
        with pytest.raises(ValueError):
            FPGADevice(name="bad", resources=ResourceVector(), dram_bandwidth_gbps=0.0)
