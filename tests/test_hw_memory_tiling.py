"""Tests for buffer planning, DRAM traffic model and tiling."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.device import PYNQ_Z1, ZC706
from repro.hw.memory import (
    DRAMTrafficModel,
    bram_blocks_for_bits,
    layer_tile_traffic_bytes,
    plan_on_chip_buffers,
)
from repro.hw.tiling import CANDIDATE_TILES, TileConfig, choose_tile_config
from repro.hw.workload import LayerWorkload, NetworkWorkload


def small_workload(feature_bits=8, channels=64) -> NetworkWorkload:
    layers = [
        LayerWorkload(kind="conv", kernel=3, in_channels=3, out_channels=channels,
                      in_height=32, in_width=64, stride=2, bundle_index=-1),
        LayerWorkload(kind="dwconv", kernel=3, in_channels=channels, out_channels=channels,
                      in_height=16, in_width=32, bundle_index=0),
        LayerWorkload(kind="conv", kernel=1, in_channels=channels, out_channels=channels,
                      in_height=16, in_width=32, bundle_index=0),
        LayerWorkload(kind="head", kernel=1, in_channels=channels, out_channels=4,
                      in_height=16, in_width=32, bundle_index=-1),
    ]
    return NetworkWorkload(layers=layers, input_shape=(3, 32, 64),
                           weight_bits=8, feature_bits=feature_bits)


class TestBufferPlanning:
    def test_bram_blocks_rounding(self):
        assert bram_blocks_for_bits(0) == 0.0
        assert bram_blocks_for_bits(1) == 1.0
        assert bram_blocks_for_bits(18 * 1024) == 1.0
        assert bram_blocks_for_bits(18 * 1024 + 1) == 2.0

    def test_plan_scales_with_bits(self):
        a = plan_on_chip_buffers(8, 16, 128, 8, 8, 3, 128, 128)
        b = plan_on_chip_buffers(8, 16, 128, 16, 8, 3, 128, 128)
        assert b.data_buffer_bram >= a.data_buffer_bram
        assert b.total_bram >= a.total_bram

    def test_plan_scales_with_channels(self):
        a = plan_on_chip_buffers(8, 16, 64, 8, 8, 3, 64, 64)
        b = plan_on_chip_buffers(8, 16, 512, 8, 8, 3, 512, 512)
        assert b.total_bram > a.total_bram

    def test_double_buffer_factor(self):
        single = plan_on_chip_buffers(8, 16, 64, 8, 8, 3, 64, 64, double_buffer=False)
        double = plan_on_chip_buffers(8, 16, 64, 8, 8, 3, 64, 64, double_buffer=True)
        assert double.data_buffer_bram == pytest.approx(2 * single.data_buffer_bram)

    def test_as_resource(self):
        plan = plan_on_chip_buffers(8, 16, 64, 8, 8, 3, 64, 64)
        assert plan.as_resource().bram == plan.total_bram

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            plan_on_chip_buffers(0, 16, 64, 8, 8, 3, 64, 64)
        with pytest.raises(ValueError):
            plan_on_chip_buffers(8, 16, 64, 8, 8, 3, 64, 64, weight_group=0)


class TestDRAMTrafficModel:
    def test_transfer_latency_monotone_in_bytes(self):
        model = DRAMTrafficModel(PYNQ_Z1)
        assert model.transfer_latency_ms(1e6) > model.transfer_latency_ms(1e3)

    def test_setup_cost_per_burst(self):
        model = DRAMTrafficModel(PYNQ_Z1)
        assert model.transfer_latency_ms(1e4, bursts=10) > model.transfer_latency_ms(1e4, bursts=1)

    def test_faster_device_faster_transfer(self):
        slow = DRAMTrafficModel(PYNQ_Z1)
        fast = DRAMTrafficModel(ZC706)
        assert fast.transfer_latency_ms(1e6) < slow.transfer_latency_ms(1e6)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            DRAMTrafficModel(PYNQ_Z1).transfer_latency_ms(-1.0)

    def test_invalid_efficiency(self):
        with pytest.raises(ValueError):
            DRAMTrafficModel(PYNQ_Z1, dma_efficiency=0.0)

    def test_inter_bundle_latency_grows_with_bits(self):
        model = DRAMTrafficModel(PYNQ_Z1)
        narrow = model.inter_bundle_latency_ms(small_workload(feature_bits=8))
        wide = model.inter_bundle_latency_ms(small_workload(feature_bits=16))
        assert wide >= narrow

    def test_weight_streaming_latency_positive(self):
        model = DRAMTrafficModel(PYNQ_Z1)
        assert model.weight_streaming_latency_ms(small_workload()) > 0.0

    def test_io_latency_positive(self):
        model = DRAMTrafficModel(PYNQ_Z1)
        assert model.input_output_latency_ms(small_workload()) > 0.0

    def test_layer_tile_traffic_fraction(self):
        layer = LayerWorkload(kind="conv", kernel=3, in_channels=8, out_channels=8,
                              in_height=16, in_width=16)
        full = layer_tile_traffic_bytes(layer, 16 * 16, 8)
        half = layer_tile_traffic_bytes(layer, 16 * 8, 8)
        assert half == pytest.approx(full / 2)


class TestTiling:
    def test_tile_pixels_and_count(self):
        tile = TileConfig(8, 16)
        assert tile.pixels == 128
        assert tile.num_tiles(16, 32) == 4
        assert tile.num_tiles(17, 32) == 6  # ceil division

    def test_invalid_tile(self):
        with pytest.raises(ValueError):
            TileConfig(0, 8)
        with pytest.raises(ValueError):
            TileConfig(8, 8).num_tiles(0, 8)

    def test_choose_tile_fits_budget(self):
        wl = small_workload(channels=64)
        tile = choose_tile_config(wl, PYNQ_Z1)
        assert tile in CANDIDATE_TILES
        assert tile.tile_height <= 32 and tile.tile_width <= 64

    def test_wider_networks_get_smaller_tiles(self):
        narrow = choose_tile_config(small_workload(channels=32), PYNQ_Z1)
        wide = choose_tile_config(small_workload(channels=512), PYNQ_Z1)
        assert wide.pixels <= narrow.pixels

    def test_bigger_device_allows_bigger_tiles(self):
        wl = small_workload(channels=256)
        small_dev = choose_tile_config(wl, PYNQ_Z1)
        big_dev = choose_tile_config(wl, ZC706)
        assert big_dev.pixels >= small_dev.pixels

    def test_invalid_budget_fraction(self):
        with pytest.raises(ValueError):
            choose_tile_config(small_workload(), PYNQ_Z1, bram_budget_fraction=0.0)

    @given(st.integers(1, 64), st.integers(1, 64))
    @settings(max_examples=40, deadline=None)
    def test_num_tiles_covers_feature_map(self, h, w):
        tile = TileConfig(8, 16)
        count = tile.num_tiles(h, w)
        assert count * tile.pixels >= h * w
