"""Property-style determinism tests for the sweep engine (hypothesis).

The sweep's core contract is that a cell's journal depends only on the cell
itself: worker count, schedule, shared-vs-per-cell preparation and cost
hints are pure execution-mode knobs.  These properties drive randomized
grids through the different execution modes and require byte-identical
journals and identical comparison winners.

Budgets are tiny (a cell runs in ~50 ms) and ``max_examples`` is small so
the suite stays fast while still sampling the strategy / device / seed
space.
"""

from __future__ import annotations

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sweep import SweepRunner, build_grid, compare

SETTINGS = settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: Randomized-but-tiny grid axes.
grids = st.builds(
    lambda device, strategies, fps, seed, iterations: build_grid(
        device,
        strategies,
        fps,
        tolerance_ms=10.0,
        iterations=iterations,
        num_candidates=1,
        top_bundles=2,
        seed=seed,
    ),
    device=st.sampled_from(["pynq-z1", "ultra96"]),
    strategies=st.lists(
        st.sampled_from(["scd", "random", "annealing"]),
        min_size=1, max_size=2, unique=True,
    ),
    fps=st.lists(st.sampled_from([25.0, 40.0, 60.0]), min_size=1, max_size=2,
                 unique=True),
    seed=st.integers(min_value=0, max_value=2**16),
    iterations=st.integers(min_value=8, max_value=20),
)


def fingerprint(result):
    """Byte-level view of everything that must be execution-mode invariant."""
    return [
        (
            outcome.task.name,
            json.dumps(outcome.journal, sort_keys=True),
            outcome.selected_bundles,
            outcome.num_candidates,
            outcome.best_latency_ms,
            outcome.best_gap_ms,
        )
        for outcome in result.outcomes
    ]


def winners(result):
    return [(w.device, w.fps, w.strategy, w.best_gap_ms)
            for w in compare(result).winners]


@SETTINGS
@given(tasks=grids)
def test_worker_count_invariance(tasks):
    """workers=1 and workers=N produce byte-identical journals and winners."""
    serial = SweepRunner(tasks, workers=1).run()
    pooled = SweepRunner(tasks, workers=3).run()
    assert serial.ok and pooled.ok
    assert fingerprint(serial) == fingerprint(pooled)
    assert winners(serial) == winners(pooled)


@SETTINGS
@given(tasks=grids)
def test_schedule_invariance(tasks):
    """Chunked and work-stealing schedules are interchangeable."""
    stealing = SweepRunner(tasks, workers=2, schedule="steal").run()
    chunked = SweepRunner(tasks, workers=2, schedule="chunked").run()
    assert stealing.ok and chunked.ok
    assert fingerprint(stealing) == fingerprint(chunked)
    assert winners(stealing) == winners(chunked)


@SETTINGS
@given(tasks=grids)
def test_shared_preparation_invariance(tasks):
    """Hoisting the per-device fit out of the cells must not change results."""
    shared = SweepRunner(tasks, workers=1, share_preparation=True).run()
    per_cell = SweepRunner(tasks, workers=1, share_preparation=False).run()
    assert fingerprint(shared) == fingerprint(per_cell)
    assert all(outcome.used_shared_prep for outcome in shared.outcomes)
    assert not any(outcome.used_shared_prep for outcome in per_cell.outcomes)


@SETTINGS
@given(tasks=grids, costs=st.lists(st.floats(min_value=0.001, max_value=1e6),
                                   min_size=8, max_size=8))
def test_cost_hint_invariance(tasks, costs):
    """Arbitrary cost hints reorder dispatch, never results."""
    hints = {task.name: cost for task, cost in zip(tasks, costs)}
    baseline = SweepRunner(tasks, workers=2).run()
    hinted = SweepRunner(tasks, workers=2, cost_hints=hints).run()
    assert fingerprint(baseline) == fingerprint(hinted)
    assert [o.task for o in hinted.outcomes] == list(tasks), "task order preserved"


@SETTINGS
@given(tasks=grids)
def test_repeated_runs_are_identical(tasks):
    """Two sweeps of the same grid are bit-equal (no hidden global state)."""
    first = SweepRunner(tasks, workers=1).run()
    second = SweepRunner(tasks, workers=1).run()
    assert fingerprint(first) == fingerprint(second)
