"""Tests for the pluggable exploration engine (:mod:`repro.search`)."""

from __future__ import annotations

import json

import pytest

from repro.core.auto_dnn import AutoDNN
from repro.core.auto_hls import AutoHLS
from repro.core.bundle_evaluation import BundleEvaluation, BundleEvaluator
from repro.core.bundle_generation import get_bundle
from repro.core.constraints import LatencyTarget, ResourceConstraint
from repro.core.dnn_config import DNNConfig
from repro.core.scd import SCDUnit, apply_move
from repro.detection.accuracy_model import SurrogateAccuracyModel
from repro.detection.task import TINY_DETECTION_TASK
from repro.hw.device import PYNQ_Z1
from repro.hw.resource import ResourceVector
from repro.search import (
    EvaluationCache,
    ParallelEvaluator,
    SearchSession,
    available_strategies,
    config_cache_key,
    create_explorer,
    explorer_class,
)

STRATEGIES = ("scd", "random", "evolutionary", "regularized-evolution", "annealing")


@pytest.fixture(scope="module")
def engine():
    return AutoHLS(PYNQ_Z1)


@pytest.fixture(scope="module")
def constraint():
    return ResourceConstraint.for_device(PYNQ_Z1)


@pytest.fixture(scope="module")
def target():
    return LatencyTarget(fps=120.0, tolerance_ms=2.0)


@pytest.fixture(scope="module")
def initial():
    return DNNConfig(bundle=get_bundle(13), task=TINY_DETECTION_TASK, num_repetitions=2,
                     channel_expansion=(1.5, 1.5), downsample=(1, 1),
                     stem_channels=16, parallel_factor=16, max_channels=128)


def make_explorer(strategy, engine, target, constraint, *, rng=3, workers=1,
                  session=None, max_iterations=200, **kwargs):
    return create_explorer(
        strategy,
        estimator=engine.estimate,
        latency_target=target,
        resource_constraint=constraint,
        max_iterations=max_iterations,
        rng=rng,
        workers=workers,
        session=session,
        **kwargs,
    )


class CountingEstimator:
    """Wraps an estimator, counting real invocations."""

    def __init__(self, estimator):
        self.estimator = estimator
        self.calls = 0

    def __call__(self, config):
        self.calls += 1
        return self.estimator(config)


# --------------------------------------------------------------------- registry
class TestRegistry:
    def test_all_builtin_strategies_registered(self):
        assert set(STRATEGIES).issubset(set(available_strategies()))

    def test_explorer_class_resolution(self):
        for name in STRATEGIES:
            cls = explorer_class(name)
            assert cls.strategy_name == name

    def test_unknown_strategy_lists_available(self):
        with pytest.raises(KeyError, match="annealing"):
            explorer_class("gradient-descent")

    def test_create_explorer_requires_constraints(self, engine):
        with pytest.raises(ValueError):
            create_explorer("random", estimator=engine.estimate)

    def test_create_explorer_requires_estimator_or_cache(self, target, constraint):
        with pytest.raises(ValueError):
            create_explorer("random", latency_target=target, resource_constraint=constraint)


# ----------------------------------------------------------------------- cache
class TestEvaluationCache:
    def test_hit_miss_accounting(self, engine, initial):
        counting = CountingEstimator(engine.estimate)
        cache = EvaluationCache(counting)
        first = cache.evaluate(initial)
        second = cache.evaluate(initial)
        assert counting.calls == 1
        assert cache.hits == 1 and cache.misses == 1
        assert first.latency_ms == second.latency_ms
        stats = cache.stats()
        assert stats.evaluations == 2 and stats.hit_rate == 0.5 and stats.size == 1

    def test_distinct_configs_not_aliased(self, engine, initial):
        cache = EvaluationCache(engine.estimate)
        bigger = initial.with_updates(num_repetitions=3, channel_expansion=(1.5,) * 3,
                                      downsample=(1, 1, 0))
        assert cache.evaluate(initial).latency_ms != cache.evaluate(bigger).latency_ms
        assert cache.misses == 2

    def test_key_distinguishes_same_describe_configs(self, engine, initial):
        # Two configs whose describe() strings collide (same N, same max
        # channels) but whose down-sampling vectors differ must never share
        # a cache slot.
        a = initial.with_updates(num_repetitions=3, channel_expansion=(1.2,) * 3,
                                 downsample=(1, 1, 0))
        b = a.with_updates(downsample=(1, 0, 1))
        assert a.describe() == b.describe()
        assert config_cache_key(a) != config_cache_key(b)
        cache = EvaluationCache(engine.estimate)
        assert cache.evaluate(a).latency_ms != cache.evaluate(b).latency_ms
        assert cache.misses == 2

    def test_key_distinguishes_tasks(self, initial):
        # The input resolution changes every latency; configs differing only
        # in task must never share a slot (the disk cache outlives a search).
        from repro.detection.task import DAC_SDC_TASK

        other = initial.with_updates(task=DAC_SDC_TASK)
        assert config_cache_key(initial) != config_cache_key(other)

    def test_batch_deduplicates(self, engine, initial):
        counting = CountingEstimator(engine.estimate)
        cache = EvaluationCache(counting)
        other = initial.with_updates(parallel_factor=8)
        results = cache.evaluate_batch([initial, other, initial, other])
        assert counting.calls == 2
        assert cache.misses == 2 and cache.hits == 2
        assert results[0].latency_ms == results[2].latency_ms
        assert results[1].latency_ms == results[3].latency_ms

    def test_batch_with_info_marks_cached(self, engine, initial):
        cache = EvaluationCache(engine.estimate)
        cache.evaluate(initial)
        pairs = cache.evaluate_batch([initial], with_info=True)
        assert pairs[0][1] is True

    def test_clear_resets(self, engine, initial):
        cache = EvaluationCache(engine.estimate)
        cache.evaluate(initial)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_callable_protocol(self, engine, initial):
        cache = EvaluationCache(engine.estimate)
        assert cache(initial).latency_ms == engine.estimate(initial).latency_ms


# --------------------------------------------------------------------- parallel
class TestParallelEvaluator:
    def test_matches_serial_order(self, engine, initial):
        configs = [initial.with_updates(parallel_factor=pf) for pf in (4, 8, 16, 32)]
        serial = ParallelEvaluator(engine.estimate, workers=1).map(configs)
        with ParallelEvaluator(engine.estimate, workers=4) as parallel:
            threaded = parallel.map(configs)
        assert [e.latency_ms for e in serial] == [e.latency_ms for e in threaded]

    def test_invalid_workers(self, engine):
        with pytest.raises(ValueError):
            ParallelEvaluator(engine.estimate, workers=0)


# ------------------------------------------------------------------- strategies
class TestStrategies:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_finds_feasible_in_band_candidates(self, strategy, engine, target,
                                               constraint, initial):
        explorer = make_explorer(strategy, engine, target, constraint)
        result = explorer.explore(initial, num_candidates=1)
        assert len(result.candidates) >= 1
        for config, estimate in zip(result.candidates, result.estimates):
            assert target.within_band(estimate.latency_ms)
            assert constraint.satisfied_by(estimate.resources)
        keys = [config_cache_key(c) for c in result.candidates]
        assert len(keys) == len(set(keys))

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_same_seed_single_worker_is_deterministic(self, strategy, engine,
                                                      target, constraint, initial):
        journals = []
        outcomes = []
        for _ in range(2):
            session = SearchSession(strategy)
            explorer = make_explorer(strategy, engine, target, constraint,
                                     rng=7, workers=1, session=session)
            result = explorer.explore(initial, num_candidates=2)
            journals.append(session.as_dict())
            outcomes.append([c.describe() for c in result.candidates])
        assert journals[0] == journals[1]
        assert outcomes[0] == outcomes[1]

    def test_scd_explorer_matches_legacy_unit(self, engine, target, constraint, initial):
        legacy = SCDUnit(engine.estimate, target, constraint,
                         max_iterations=120, rng=3, cache=False)
        legacy_result = legacy.search(initial, num_candidates=2)
        explorer = make_explorer("scd", engine, target, constraint,
                                 rng=3, max_iterations=120)
        result = explorer.explore(initial, num_candidates=2)
        assert [c.describe() for c in result.candidates] == \
            [c.describe() for c in legacy_result.candidates]
        assert result.iterations == legacy_result.iterations

    def test_workers_do_not_change_results(self, engine, target, constraint, initial):
        outcomes = []
        for workers in (1, 4):
            explorer = make_explorer("evolutionary", engine, target, constraint,
                                     rng=3, workers=workers)
            result = explorer.explore(initial, num_candidates=2)
            explorer.close()
            outcomes.append([c.describe() for c in result.candidates])
        assert outcomes[0] == outcomes[1]

    def test_invalid_num_candidates(self, engine, target, constraint, initial):
        explorer = make_explorer("random", engine, target, constraint)
        with pytest.raises(ValueError):
            explorer.explore(initial, num_candidates=0)

    def test_annealing_zero_tolerance_band_does_not_divide_by_zero(
            self, engine, constraint, initial):
        """Regression: the default initial temperature is 4 * tolerance_ms,
        which is 0 for a zero-tolerance band and crashed the Metropolis step
        with a ZeroDivisionError; it must clamp to min_temperature."""

        class ZeroToleranceTarget:
            latency_ms = engine.estimate(initial).latency_ms
            tolerance_ms = 0.0

            def within_band(self, latency_ms):
                return abs(latency_ms - self.latency_ms) < self.tolerance_ms

        explorer = make_explorer("annealing", engine, ZeroToleranceTarget(),
                                 constraint, rng=3, max_iterations=25)
        result = explorer.explore(initial, num_candidates=1)
        assert not result.converged  # a zero-width band is unreachable
        assert result.evaluations <= 25

    def test_annealing_explicit_zero_temperature_clamped(self, engine, target,
                                                         constraint, initial):
        explorer = make_explorer("annealing", engine, target, constraint,
                                 rng=3, max_iterations=25,
                                 initial_temperature=0.0)
        result = explorer.explore(initial, num_candidates=1)
        assert result.evaluations <= 25

    def test_annealing_rejects_non_positive_min_temperature(self, engine, target,
                                                            constraint):
        with pytest.raises(ValueError, match="min_temperature"):
            make_explorer("annealing", engine, target, constraint,
                          min_temperature=0.0)

    def test_consider_does_not_alias_same_describe_candidates(
            self, engine, target, constraint, initial):
        """Regression: Explorer.consider dedup must use the structural cache
        key, not describe(), or distinct Pi/X candidates are dropped."""
        explorer = make_explorer("random", engine, target, constraint)
        a = initial.with_updates(num_repetitions=3, channel_expansion=(1.2,) * 3,
                                 downsample=(1, 1, 0))
        b = a.with_updates(downsample=(1, 0, 1))
        assert a.describe() == b.describe()
        in_band = LatencyTarget(fps=1000.0 / engine.estimate(a).latency_ms,
                                tolerance_ms=1000.0)
        explorer.latency_target = in_band
        assert explorer.consider(a, engine.estimate(a))
        assert explorer.consider(b, engine.estimate(b))
        assert not explorer.consider(a, engine.estimate(a))

    def test_regularized_evolution_ages_out_population(self, engine, target,
                                                       constraint, initial):
        """The population is a bounded FIFO: members die of age, so its size
        never exceeds population_size no matter how long the search runs."""
        from repro.search.strategies import RegularizedEvolutionExplorer

        explorer = make_explorer("regularized-evolution", engine, target,
                                 constraint, rng=3, max_iterations=60,
                                 population_size=5, sample_size=2)
        assert isinstance(explorer, RegularizedEvolutionExplorer)
        result = explorer.explore(initial, num_candidates=50)
        # 50 in-band candidates are unreachable in 60 evaluations; the point
        # is that the aging loop keeps cycling within its budget.
        assert result.evaluations <= 60
        assert result.iterations > 0

    def test_regularized_evolution_rejects_bad_parameters(self, engine, target,
                                                          constraint):
        with pytest.raises(ValueError, match="population_size"):
            make_explorer("regularized-evolution", engine, target, constraint,
                          population_size=1)
        with pytest.raises(ValueError, match="sample_size"):
            make_explorer("regularized-evolution", engine, target, constraint,
                          population_size=4, sample_size=5)

    def test_regularized_evolution_available_to_sweep_grid(self):
        """The sweep/search CLIs accept the strategy via the shared registry."""
        from repro.sweep import build_grid

        tasks = build_grid("pynq-z1", "regularized-evolution", [40.0],
                           tolerance_ms=10.0, iterations=25, num_candidates=1,
                           top_bundles=2, seed=1)
        assert tasks[0].strategy == "regularized-evolution"

    def test_evaluation_budget_respected(self, engine, target, constraint, initial):
        explorer = make_explorer("annealing", engine, target, constraint,
                                 max_iterations=10)
        result = explorer.explore(initial, num_candidates=50)
        assert result.evaluations <= 10
        assert not result.converged

    def test_journal_records_evaluations_and_candidates(self, engine, target,
                                                        constraint, initial):
        session = SearchSession("journaled")
        explorer = make_explorer("random", engine, target, constraint, session=session)
        result = explorer.explore(initial, num_candidates=1)
        assert len(session.records) == result.evaluations
        assert len(session.candidates) == len(result.candidates)
        assert session.strategies() == ["random"]
        assert all(r.strategy == "random" for r in session.records)


# ------------------------------------------------------------------ SCD caching
class TestSCDUnitCaching:
    def test_cache_reduces_estimator_calls(self, engine, target, constraint, initial):
        uncached_counter = CountingEstimator(engine.estimate)
        uncached = SCDUnit(uncached_counter, target, constraint,
                           max_iterations=120, rng=3, cache=False)
        uncached_result = uncached.search(initial, num_candidates=2)

        cached_counter = CountingEstimator(engine.estimate)
        cached = SCDUnit(cached_counter, target, constraint,
                         max_iterations=120, rng=3)
        cached_result = cached.search(initial, num_candidates=2)

        # Same seed -> identical search trajectory and results...
        assert [c.describe() for c in cached_result.candidates] == \
            [c.describe() for c in uncached_result.candidates]
        assert cached_result.iterations == uncached_result.iterations
        # ...but strictly fewer estimator invocations.
        assert cached_counter.calls < uncached_counter.calls
        assert cached.cache.hits > 0
        assert cached_counter.calls == cached.cache.misses

    def test_shared_cache_instance_reused(self, engine, target, constraint, initial):
        shared = EvaluationCache(engine.estimate)
        unit = SCDUnit(engine.estimate, target, constraint, rng=0, cache=shared)
        assert unit.cache is shared

    def test_move_set_shared_with_strategies(self, initial):
        # apply_move drives exactly the N / Pi / X coordinates of Algorithm 1.
        grown = apply_move("N", initial, +1, max_repetitions=8)
        assert grown.num_repetitions == initial.num_repetitions + 1
        with pytest.raises(ValueError):
            apply_move("Z", initial, +1)


# -------------------------------------------------------------------- sessions
class TestSearchSession:
    def test_save_load_round_trip(self, tmp_path, engine, target, constraint, initial):
        session = SearchSession("round-trip", metadata={"seed": 7})
        explorer = make_explorer("random", engine, target, constraint,
                                 rng=7, session=session)
        explorer.explore(initial, num_candidates=1)
        session.attach_cache_stats(explorer.cache.stats())

        path = session.save(tmp_path / "journal.json")
        loaded = SearchSession.load(path)
        assert loaded.as_dict() == session.as_dict()
        # A re-save of the loaded session is byte-identical.
        second = loaded.save(tmp_path / "journal2.json")
        assert path.read_bytes() == second.read_bytes()

    def test_saved_journal_is_plain_json(self, tmp_path, engine, target,
                                         constraint, initial):
        session = SearchSession("plain")
        explorer = make_explorer("annealing", engine, target, constraint,
                                 rng=1, session=session, max_iterations=20)
        explorer.explore(initial, num_candidates=1)
        path = session.save(tmp_path / "journal.json")
        payload = json.loads(path.read_text())
        assert payload["name"] == "plain"
        assert payload["records"], "journal must contain evaluation records"
        assert {"latency_ms", "config", "cached"} <= set(payload["records"][0])

    def test_summary_mentions_strategies(self):
        session = SearchSession("empty")
        assert "0 evaluations" in session.summary()


# -------------------------------------------------------------- AutoDNN wiring
@pytest.fixture(scope="module")
def autodnn_target():
    # AutoDNN maximises PF, so its tiny-task initial sits around 0.2 ms; this
    # band is reachable by growth moves within a small iteration budget.
    return LatencyTarget(fps=600.0, tolerance_ms=1.2)


class TestAutoDNNIntegration:
    def test_strategy_selection_and_session(self, engine, autodnn_target):
        target = autodnn_target
        session = SearchSession("autodnn")
        auto_dnn = AutoDNN(
            task=TINY_DETECTION_TASK,
            device=PYNQ_Z1,
            auto_hls=engine,
            accuracy_model=SurrogateAccuracyModel(noise=0.0),
            stem_channels=16,
            max_channels=128,
            rng=3,
            strategy="random",
        )
        candidates = auto_dnn.search(
            [get_bundle(13)], [target], activations=("relu4",),
            num_candidates=1, max_iterations=120, session=session,
        )
        assert candidates
        assert session.records
        assert session.cache_stats is not None
        assert auto_dnn.cache.stats().evaluations > 0

    def test_empty_shared_cache_is_not_discarded(self, engine):
        # An empty EvaluationCache is falsy (__len__ == 0); AutoDNN must
        # still adopt it so cross-component sharing works.
        shared = EvaluationCache(engine.estimate)
        auto_dnn = AutoDNN(
            task=TINY_DETECTION_TASK, device=PYNQ_Z1, auto_hls=engine,
            accuracy_model=SurrogateAccuracyModel(noise=0.0),
            stem_channels=16, max_channels=128, rng=3, cache=shared,
        )
        assert auto_dnn.cache is shared
        auto_dnn.initialize(get_bundle(13))
        assert shared.stats().evaluations > 0

    def test_per_call_workers_override_does_not_stick(self, engine, autodnn_target):
        auto_dnn = AutoDNN(
            task=TINY_DETECTION_TASK, device=PYNQ_Z1, auto_hls=engine,
            accuracy_model=SurrogateAccuracyModel(noise=0.0),
            stem_channels=16, max_channels=128, rng=3,
        )
        auto_dnn.search([get_bundle(13)], [autodnn_target], activations=("relu4",),
                        num_candidates=1, max_iterations=60, workers=4)
        assert auto_dnn.workers == 1
        auto_dnn.close()

    def test_per_call_strategy_override(self, engine, autodnn_target):
        target = autodnn_target
        auto_dnn = AutoDNN(
            task=TINY_DETECTION_TASK, device=PYNQ_Z1, auto_hls=engine,
            accuracy_model=SurrogateAccuracyModel(noise=0.0),
            stem_channels=16, max_channels=128, rng=3,
        )
        assert auto_dnn.strategy == "scd"
        candidates = auto_dnn.search(
            [get_bundle(13)], [target], activations=("relu4",),
            num_candidates=1, max_iterations=120, strategy="annealing",
        )
        assert candidates


# ------------------------------------------------------------------ CLI command
class TestSearchCLI:
    def test_search_command_with_journal(self, tmp_path, capsys):
        from repro.cli import main

        journal = tmp_path / "journal.json"
        code = main([
            "search", "--strategy", "random", "--fps", "40", "--tolerance-ms", "10",
            "--top-bundles", "2", "--candidates", "1", "--iterations", "30",
            "--seed", "1", "--journal", str(journal),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Search strategy 'random'" in out
        assert "cache:" in out
        payload = json.loads(journal.read_text())
        assert payload["metadata"]["strategy"] == "random"
        assert payload["records"]

    def test_search_command_rejects_unknown_strategy(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["search", "--strategy", "bogus"])


# -------------------------------------------------- bundle evaluation guards
class TestBundleEvaluatorGuards:
    def test_coarse_evaluate_rejects_empty_parallel_factors(self):
        evaluator = BundleEvaluator(TINY_DETECTION_TASK, PYNQ_Z1,
                                    accuracy_model=SurrogateAccuracyModel(noise=0.0),
                                    stem_channels=16)
        with pytest.raises(ValueError, match="parallel_factors"):
            evaluator.coarse_evaluate([get_bundle(1)], parallel_factors=())

    def test_select_top_bundles_rejects_degenerate_latencies(self):
        evaluator = BundleEvaluator(TINY_DETECTION_TASK, PYNQ_Z1,
                                    accuracy_model=SurrogateAccuracyModel(noise=0.0),
                                    stem_channels=16)
        config = evaluator._config_for(get_bundle(1), method=1, parallel_factor=8)
        degenerate = [
            BundleEvaluation(bundle=get_bundle(bid), parallel_factor=8,
                             latency_ms=0.0, accuracy=0.5 + 0.01 * bid,
                             resources=ResourceVector(), dsp=0.0, method=1,
                             config=config)
            for bid in (1, 3)
        ]
        with pytest.raises(ValueError, match="non-positive"):
            evaluator.select_top_bundles(degenerate, top_n=2)
