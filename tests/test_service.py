"""Tests for the persistent multi-tenant job service (:mod:`repro.service`)."""

from __future__ import annotations

import json
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import (
    SERVICE_LOG_FILENAME,
    JobQueue,
    ServiceClient,
    ServiceCoordinator,
    load_service_log,
)
from repro.shard import ShardProtocolError, ShardWorker, get_json, post_json
from repro.sweep import CHECKPOINT_FILENAME, load_checkpoint
from repro.sweep.spec import SweepSpec
from repro.utils.serialization import to_jsonable

#: Shared tiny sweep budget: every cell completes in well under a second.
TINY = dict(tolerance_ms=10.0, iterations=25, num_candidates=1, top_bundles=2,
            seed=1)


def tiny_spec(**overrides) -> SweepSpec:
    return SweepSpec(**{"fps": (10.0,), **TINY, **overrides})


def journal_map(checkpoint_path) -> dict[str, str]:
    """uid → canonical journal bytes for every outcome in a checkpoint."""
    status = load_checkpoint(checkpoint_path)
    return {
        uid: json.dumps(to_jsonable(outcome.journal), sort_keys=True)
        for uid, outcome in status.outcomes.items()
    }


def local_journal_map(spec: SweepSpec, tmp_path) -> dict[str, str]:
    """Journals of an uninterrupted single-machine run of ``spec``."""
    run_dir = tmp_path / "local-reference"
    spec.build_runner(cache_dir=str(run_dir), workers=1).run()
    return journal_map(run_dir / CHECKPOINT_FILENAME)


def run_worker(url: str, cache_dir, *, token=None, idle_timeout_s=3.0,
               task_fn=None) -> int:
    kwargs = dict(cache_dir=str(cache_dir), token=token,
                  idle_timeout_s=idle_timeout_s)
    if task_fn is not None:
        kwargs["task_fn"] = task_fn
    return ShardWorker(url, **kwargs).run()


def wait_for(predicate, timeout_s=60.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return False


# ------------------------------------------------------------------ SweepSpec
class TestSweepSpec:
    def test_round_trips_through_payload(self):
        spec = tiny_spec(strategies="scd,random", utilizations=(0.8,))
        assert SweepSpec.from_payload(spec.as_dict()) == spec

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown sweep spec field"):
            SweepSpec.from_payload({"stratagies": "scd"})

    def test_rejects_bad_axis_via_grid_validation(self):
        with pytest.raises(ValueError, match="strategy"):
            SweepSpec.from_payload({"strategies": "not-a-strategy"})
        with pytest.raises(ValueError):
            SweepSpec.from_payload({"devices": "no-such-device"})

    def test_rejects_bool_and_non_numeric_knobs(self):
        with pytest.raises(ValueError, match="'iterations'"):
            SweepSpec.from_payload({"iterations": True})
        with pytest.raises(ValueError, match="'fps'"):
            SweepSpec.from_payload({"fps": ["ten"]})

    def test_same_spec_same_uids(self):
        spec = tiny_spec(strategies="scd,random")
        uids = [t.uid for t in spec.build_tasks()]
        again = [t.uid for t in SweepSpec.from_payload(spec.as_dict()).build_tasks()]
        assert uids == again


# ------------------------------------------------------------------- JobQueue
class TestJobQueue:
    def test_submit_creates_dir_spec_and_journal(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = queue.submit(tiny_spec(), name="My Job!")
        assert job.uid == "j0001-My-Job"
        assert (job.directory / "job.json").exists()
        records, corrupt = load_service_log(tmp_path / SERVICE_LOG_FILENAME)
        assert corrupt == 0
        assert [r["kind"] for r in records] == ["header", "submitted"]

    def test_replay_requeues_unfinished_jobs(self, tmp_path):
        queue = JobQueue(tmp_path)
        running = queue.submit(tiny_spec(), name="running")
        done = queue.submit(tiny_spec(seed=2), name="done")
        queue.set_state(running, "running")
        queue.set_state(done, "done")
        # Simulate a SIGKILL'd coordinator: a fresh queue on the same root.
        revived = JobQueue(tmp_path)
        by_uid = {job.uid: job for job in revived.jobs()}
        assert by_uid[running.uid].state == "queued"
        assert by_uid[running.uid].recovered
        assert by_uid[done.uid].state == "done"
        assert not by_uid[done.uid].recovered
        # Sequence continues after the replayed uids.
        assert revived.submit(tiny_spec(seed=3)).uid.startswith("j0003")

    def test_torn_tail_is_tolerated(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = queue.submit(tiny_spec(), name="torn")
        queue.set_state(job, "running")
        path = tmp_path / SERVICE_LOG_FILENAME
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "state", "job": "' + job.uid)  # torn line
        revived = JobQueue(tmp_path)
        assert revived.corrupt_lines == 1
        assert revived.get(job.uid).state == "queued"  # requeued, not lost

    def test_cancelled_jobs_stay_cancelled_across_replay(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = queue.submit(tiny_spec())
        queue.set_state(job, "cancelled")
        assert JobQueue(tmp_path).get(job.uid).state == "cancelled"


# ----------------------------------------------------------- service lifecycle
class TestServiceLifecycle:
    def test_two_jobs_one_worker_byte_identical_to_local(self, tmp_path):
        spec_a = tiny_spec()
        spec_b = tiny_spec(devices="fpga:pynq-z1,gpu:jetson-tx2", seed=2)
        service = ServiceCoordinator(tmp_path / "root", max_active=2)
        service.start()
        try:
            client = ServiceClient(service.url)
            uid_a = client.submit(spec_a, name="a")["job"]
            uid_b = client.submit(spec_b, name="b")["job"]
            assert run_worker(service.url, tmp_path / "wcache") == 0
            assert client.wait(uid_a, timeout_s=60)["state"] == "done"
            assert client.wait(uid_b, timeout_s=60)["state"] == "done"
            for uid, spec in ((uid_a, spec_a), (uid_b, spec_b)):
                served = journal_map(
                    tmp_path / "root" / "jobs" / uid / CHECKPOINT_FILENAME)
                local = local_journal_map(spec, tmp_path / f"ref-{uid}")
                assert served == local, (
                    f"job {uid} journals must be byte-identical to a local run"
                )
        finally:
            service.stop()

    def test_result_endpoint_round_trips_sweep_payload(self, tmp_path):
        service = ServiceCoordinator(tmp_path / "root")
        service.start()
        try:
            client = ServiceClient(service.url)
            uid = client.submit(tiny_spec())["job"]
            # Result before the job settles is a protocol error (HTTP 400).
            with pytest.raises(ShardProtocolError, match="available once"):
                client.result(uid)
            assert run_worker(service.url, tmp_path / "wcache") == 0
            client.wait(uid, timeout_s=60)
            payload = client.result(uid)
            assert payload["state"] == "done"
            assert len(payload["sweep"]["outcomes"]) == 1
        finally:
            service.stop()

    def test_cancel_queued_job_settles_immediately(self, tmp_path):
        # max_active=1 and no worker: the first job camps on the admission
        # slot in "preparing", the second stays queued and cancels instantly.
        service = ServiceCoordinator(tmp_path / "root", max_active=1)
        service.start()
        try:
            client = ServiceClient(service.url)
            client.submit(tiny_spec(), name="hog")
            queued = client.submit(tiny_spec(seed=2), name="victim")["job"]
            wait_for(lambda: client.status(queued)["state"] == "queued",
                     timeout_s=5)
            reply = client.cancel(queued)
            assert reply["cancelled"]
            assert client.status(queued)["state"] == "cancelled"
            # Cancelling a terminal job is a no-op.
            assert client.cancel(queued)["cancelled"] is False
        finally:
            service.stop()

    def test_cancel_running_job_releases_its_leases(self, tmp_path):
        service = ServiceCoordinator(tmp_path / "root", tick_s=0.05)
        service.start()
        try:
            client = ServiceClient(service.url)
            uid = client.submit(tiny_spec(strategies="scd,random"))["job"]
            assert wait_for(lambda: client.status(uid)["state"] == "running",
                            timeout_s=15)
            client.cancel(uid)
            assert wait_for(
                lambda: client.status(uid)["state"] == "cancelled", timeout_s=15)
            # Workers arriving later find no leasable work for this job.
            worker_exit = run_worker(service.url, tmp_path / "wcache",
                                     idle_timeout_s=1.0)
            assert worker_exit == 0
            assert client.status(uid)["state"] == "cancelled"
        finally:
            service.stop()

    def test_worker_errors_fail_the_job(self, tmp_path):
        def boom(task, cache_dir, prepared=None):
            raise RuntimeError("injected cell failure")

        service = ServiceCoordinator(tmp_path / "root")
        service.start()
        try:
            client = ServiceClient(service.url)
            uid = client.submit(tiny_spec(retries=0, retry_backoff_s=0.0))["job"]
            assert run_worker(service.url, tmp_path / "wcache",
                              task_fn=boom, idle_timeout_s=2.0) == 0
            summary = client.wait(uid, timeout_s=60)
            assert summary["state"] == "failed"
            assert "1 of 1" in summary["error"]
            detail = client.status(uid)
            assert detail["failures"][0]["kind"] == "error"
        finally:
            service.stop()

    def test_metrics_reports_per_job_sections(self, tmp_path):
        service = ServiceCoordinator(tmp_path / "root")
        service.start()
        try:
            client = ServiceClient(service.url)
            uid = client.submit(tiny_spec(), name="metered")["job"]
            assert run_worker(service.url, tmp_path / "wcache") == 0
            client.wait(uid, timeout_s=60)
            metrics = client.metrics()
            assert metrics["service"] is True
            jobs = {j["job"]: j for j in metrics["jobs"]}
            assert jobs[uid]["counts"]["settled"] == 1
            assert metrics["counts"]["done"] is True
            assert metrics["lease_metrics"]["completed"] >= 1
        finally:
            service.stop()

    def test_idle_worker_exits_zero_on_timeout(self, tmp_path):
        service = ServiceCoordinator(tmp_path / "root")
        service.start()
        try:
            started = time.monotonic()
            code = run_worker(service.url, tmp_path / "wcache",
                              idle_timeout_s=1.0)
            elapsed = time.monotonic() - started
            assert code == 0
            assert elapsed < 30.0
        finally:
            service.stop()


# ------------------------------------------------------------------------ auth
class TestAuth:
    def test_mutating_routes_reject_missing_or_wrong_token(self, tmp_path):
        service = ServiceCoordinator(tmp_path / "root", token="s3cret")
        service.start()
        try:
            spec = tiny_spec()
            for bad_token in (None, "wrong"):
                with pytest.raises(ShardProtocolError, match="401"):
                    ServiceClient(service.url, token=bad_token).submit(spec)
                with pytest.raises(ShardProtocolError, match="401"):
                    post_json(service.url, "/v1/register", {"name": "x"},
                              token=bad_token)
                with pytest.raises(ShardProtocolError, match="401"):
                    ServiceClient(service.url, token=bad_token).cancel("j0001")
            # Reads stay open: dashboards don't need the secret.
            assert get_json(service.url, "/v1/jobs")["jobs"] == []
            # The right token passes end to end, worker included.
            client = ServiceClient(service.url, token="s3cret")
            uid = client.submit(spec)["job"]
            assert run_worker(service.url, tmp_path / "wcache",
                              token="s3cret") == 0
            assert client.wait(uid, timeout_s=60)["state"] == "done"
        finally:
            service.stop()

    def test_no_token_accepts_everything(self, tmp_path):
        service = ServiceCoordinator(tmp_path / "root")
        service.start()
        try:
            assert ServiceClient(service.url).submit(tiny_spec())["job"]
        finally:
            service.stop()


# -------------------------------------------------------------- crash recovery
class TestCrashRecovery:
    def test_killed_coordinator_resumes_and_matches_local(self, tmp_path):
        spec = tiny_spec(strategies="scd,random", fps=(10.0, 15.0))
        root = tmp_path / "root"
        checkpoint = None

        service = ServiceCoordinator(root)
        service.start()
        uid = ServiceClient(service.url).submit(spec, name="crashy")["job"]
        checkpoint = root / "jobs" / uid / CHECKPOINT_FILENAME
        worker = threading.Thread(
            target=run_worker, args=(service.url, tmp_path / "w1"),
            kwargs={"idle_timeout_s": 30.0}, daemon=True)
        worker.start()
        # Let at least one cell settle, then die without a terminal state.
        assert wait_for(lambda: len(journal_map(checkpoint)) >= 1)
        service.stop()
        settled_before = len(journal_map(checkpoint))
        assert settled_before < len(spec.build_tasks()), (
            "the kill must land mid-run for this test to exercise resume")

        revived = ServiceCoordinator(root)
        job = revived.queue.get(uid)
        assert job.state == "queued" and job.recovered
        revived.start()
        try:
            client = ServiceClient(revived.url)
            assert run_worker(revived.url, tmp_path / "w2") == 0
            summary = client.wait(uid, timeout_s=90)
            assert summary["state"] == "done"
            assert summary["counts"]["settled"] == len(spec.build_tasks())
            # Byte-identity: interrupted+resumed == uninterrupted local run.
            assert journal_map(checkpoint) == local_journal_map(spec, tmp_path)
            # The result endpoint rebuilds from the checkpoint (the run that
            # produced the in-memory result died with the first process).
            payload = client.result(uid)
            assert len(payload["sweep"]["outcomes"]) == len(spec.build_tasks())
        finally:
            revived.stop()

    def test_stop_before_admission_keeps_job_queued(self, tmp_path):
        root = tmp_path / "root"
        service = ServiceCoordinator(root, max_active=1)
        service.start()
        client = ServiceClient(service.url)
        client.submit(tiny_spec(), name="hog")
        queued = client.submit(tiny_spec(seed=2), name="waiting")["job"]
        service.stop()
        revived = JobQueue(root)
        assert revived.get(queued).state == "queued"


# ------------------------------------------------------------- cache exchange
class TestCacheExchange:
    def test_worker_push_then_fresh_worker_pull(self, tmp_path):
        service = ServiceCoordinator(tmp_path / "root")
        service.start()
        try:
            client = ServiceClient(service.url)
            uid = client.submit(tiny_spec())["job"]
            assert run_worker(service.url, tmp_path / "w1") == 0
            client.wait(uid, timeout_s=60)
            # The first worker pushed its estimator cache into the hub...
            from repro.sweep import read_cache_records

            hub = read_cache_records(service.cache_dir)
            assert hub, "completed cells must populate the shared cache"
            # ...and a fresh worker pulls it at registration.
            fresh_dir = tmp_path / "w2"
            assert run_worker(service.url, fresh_dir, idle_timeout_s=1.0) == 0
            pulled = read_cache_records(fresh_dir)
            assert {(r["namespace"], r["key"]) for r in hub} <= {
                (r["namespace"], r["key"]) for r in pulled}
        finally:
            service.stop()


# ------------------------------------------------- interleaving (property)
class TestInterleavingDeterminism:
    @settings(max_examples=3, deadline=None)
    @given(
        strategy_pair=st.sampled_from([("scd", "random"), ("random", "random"),
                                       ("scd", "scd")]),
        seed=st.sampled_from([1, 7]),
    )
    def test_interleaved_jobs_match_sequential_journals(
        self, tmp_path_factory, strategy_pair, seed
    ):
        """Two jobs interleaved over one fleet == each run alone, bytewise."""
        tmp_path = tmp_path_factory.mktemp("interleave")
        spec_a = tiny_spec(strategies=strategy_pair[0], seed=seed)
        spec_b = tiny_spec(strategies=strategy_pair[1], seed=seed + 10)
        service = ServiceCoordinator(tmp_path / "root", max_active=2)
        service.start()
        try:
            client = ServiceClient(service.url)
            uid_a = client.submit(spec_a)["job"]
            uid_b = client.submit(spec_b)["job"]
            assert run_worker(service.url, tmp_path / "wcache") == 0
            assert client.wait(uid_a, timeout_s=90)["state"] == "done"
            assert client.wait(uid_b, timeout_s=90)["state"] == "done"
        finally:
            service.stop()
        for uid, spec in ((uid_a, spec_a), (uid_b, spec_b)):
            interleaved = journal_map(
                tmp_path / "root" / "jobs" / uid / CHECKPOINT_FILENAME)
            alone = local_journal_map(spec, tmp_path / f"solo-{uid}")
            assert interleaved == alone


# --------------------------------------------------------- lease board units
class TestLeaseBoardServiceHooks:
    def _board(self, **kwargs):
        from repro.shard import LeaseBoard
        from repro.sweep import build_grid

        tasks = build_grid("pynq-z1", "scd", [10.0], **TINY)
        return LeaseBoard({0: tasks[0]}, [0], **kwargs)

    def test_lease_prefix_namespaces_lease_ids(self):
        board = self._board(lease_prefix="j0001:", job="j0001")
        board.adopt_worker("w1")
        cells = board.lease("w1", 1)
        assert cells[0].lease_id.startswith("j0001:")
        assert cells[0].lease_id.rpartition(":")[0] == "j0001"

    def test_adopt_worker_is_idempotent_and_enables_leasing(self):
        board = self._board()
        with pytest.raises(ShardProtocolError, match="unknown worker"):
            board.lease("ghost", 1)
        board.adopt_worker("ghost", "revenant")
        board.adopt_worker("ghost", "other-name")  # no-op, keeps the first
        assert board.lease("ghost", 1)
        assert board.worker_stats()[0]["name"] == "revenant"
