"""Smoke tests for every ``repro-codesign`` subcommand.

Each subcommand is exercised twice: once end-to-end with a tiny budget
(asserting on exit code and output), and once at the argument-parsing layer
(bad choices and missing required arguments must exit with argparse's
status 2, ``--help`` with 0).
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main

#: Tiny shared budget flags: every full run finishes in well under a second.
BUDGET = ["--fps", "40", "--tolerance-ms", "10", "--top-bundles", "2",
          "--candidates", "1", "--iterations", "20", "--seed", "1"]

ALL_COMMANDS = ["codesign", "search", "sweep", "cache", "experiment",
                "codegen", "bundles", "telemetry"]


def _exit_code(argv):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    return excinfo.value.code


# --------------------------------------------------------------- help / parse
class TestArgumentParsing:
    def test_top_level_help(self, capsys):
        assert _exit_code(["--help"]) == 0
        out = capsys.readouterr().out
        for command in ALL_COMMANDS:
            assert command in out, f"{command} missing from top-level help"

    @pytest.mark.parametrize("command", ALL_COMMANDS)
    def test_subcommand_help(self, command, capsys):
        assert _exit_code([command, "--help"]) == 0
        assert "usage" in capsys.readouterr().out

    def test_missing_command_is_a_parse_error(self, capsys):
        assert _exit_code([]) == 2
        assert "required" in capsys.readouterr().err

    @pytest.mark.parametrize("argv", [
        ["frobnicate"],                               # unknown command
        ["search", "--strategy", "gradient-descent"],  # bad choice
        ["sweep", "--schedule", "magic"],              # bad choice
        ["cache"],                                     # missing action
        ["cache", "stats"],                            # missing --cache-dir
        ["cache", "defrag", "--cache-dir", "x"],       # bad action
        ["experiment"],                                # missing name
        ["experiment", "fig99"],                       # bad choice
        ["codegen", "--design", "DNN9"],               # bad choice
        ["codesign", "--iterations"],                  # missing value
        ["telemetry"],                                 # missing action
        ["telemetry", "report"],                       # missing --cache-dir
        ["telemetry", "report", "--cache-dir", "x", "--top", "0"],  # bad value
        ["shard", "status"],                           # missing --connect
        ["sweep", "--log-level", "loud"],              # bad choice
    ])
    def test_parse_errors_exit_2(self, argv, capsys):
        assert _exit_code(argv) == 2
        assert "usage" in capsys.readouterr().err

    def test_common_flags_accepted_before_and_after_subcommand(self, capsys):
        for argv in (["-v", "bundles"], ["bundles", "-v"],
                     ["bundles", "--log-level", "debug"]):
            assert main(argv) == 0
            capsys.readouterr()


# ------------------------------------------------------------------ full runs
class TestCommandRuns:
    def test_codesign(self, capsys):
        assert main(["codesign", "--device", "pynq-z1"] + BUDGET) == 0
        assert "Co-design flow on PYNQ-Z1" in capsys.readouterr().out

    def test_search_with_journal(self, tmp_path, capsys):
        journal = tmp_path / "journal.json"
        code = main(["search", "--strategy", "random", "--journal", str(journal)]
                    + BUDGET)
        assert code == 0
        out = capsys.readouterr().out
        assert "Search strategy 'random'" in out
        assert json.loads(journal.read_text())["records"]

    def test_sweep_then_cache_stats_and_gc(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        report = tmp_path / "report.json"
        code = main(["sweep", "--devices", "pynq-z1", "--strategies", "scd",
                     "--cache-dir", str(cache_dir), "--report", str(report),
                     "--timeout-s", "120", "--retries", "1"] + BUDGET)
        assert code == 0
        out = capsys.readouterr().out
        assert "Sweep: 1 tasks" in out
        assert "shared preparations" in out
        payload = json.loads(report.read_text())
        assert payload["sweep"]["schedule"] == "steal"
        assert payload["sweep"]["failures"] == []
        assert payload["sweep"]["preparations"][0]["device"] == "PYNQ-Z1"

        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        stats_out = capsys.readouterr().out
        assert "PYNQ-Z1@100MHz" in stats_out

        assert main(["cache", "gc", "--cache-dir", str(cache_dir)]) == 0
        assert "compaction:" in capsys.readouterr().out

    def test_sweep_with_poisoned_cell_reports_and_exits_1(
            self, tmp_path, capsys, monkeypatch):
        from repro.sweep.runner import FAIL_TASKS_ENV

        monkeypatch.setenv(FAIL_TASKS_ENV, "PYNQ-Z1-random-40fps")
        code = main(["sweep", "--devices", "pynq-z1", "--strategies",
                     "scd,random", "--retries", "0", "--workers", "2"] + BUDGET)
        assert code == 1, "a sweep with failed cells signals partial failure"
        out = capsys.readouterr().out
        assert "1 FAILED" in out
        assert "PYNQ-Z1-random-40fps: FAILED (error)" in out
        assert "Per-strategy comparison" in out, "survivors are still compared"

    def test_sweep_poisoned_then_resume_completes(self, tmp_path, capsys, monkeypatch):
        """The checkpoint/resume acceptance flow at the CLI level: a failed
        sweep exits 1, the resumed run re-executes only the failed cell,
        exits 0 and still renders a complete comparison."""
        from repro.sweep.runner import FAIL_TASKS_ENV

        cache_dir = tmp_path / "cache"
        argv = ["sweep", "--devices", "pynq-z1", "--strategies", "scd,random",
                "--retries", "0", "--retry-backoff-s", "0",
                "--cache-dir", str(cache_dir)] + BUDGET
        monkeypatch.setenv(FAIL_TASKS_ENV, "PYNQ-Z1-random-40fps")
        assert main(argv) == 1
        capsys.readouterr()
        monkeypatch.delenv(FAIL_TASKS_ENV)
        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "1 reused from checkpoint" in out
        assert "1 reused cells" in out
        assert "Per-strategy comparison" in out
        assert "FAILED" not in out

    def test_sweep_resume_from_report_json(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        argv = ["sweep", "--devices", "pynq-z1", "--strategies", "scd"] + BUDGET
        assert main(argv + ["--report", str(report)]) == 0
        capsys.readouterr()
        assert main(argv + ["--from", str(report)]) == 0
        assert "1 reused from checkpoint" in capsys.readouterr().out

    def test_sweep_resume_without_checkpoint_starts_fresh(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        argv = ["sweep", "--devices", "pynq-z1", "--strategies", "scd",
                "--cache-dir", str(cache_dir), "--resume"] + BUDGET
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "No checkpoint at" in out
        assert "Sweep: 1 tasks" in out

    def test_sweep_resume_requires_cache_dir_or_from(self):
        with pytest.raises(ValueError, match="--resume needs --cache-dir"):
            main(["sweep", "--resume"] + BUDGET)

    def test_sweep_grid_axes_flags(self, capsys):
        code = main(["sweep", "--devices", "pynq-z1", "--strategies", "scd",
                     "--clocks", "100", "--utilizations", "0.9"] + BUDGET)
        assert code == 0
        assert "PYNQ-Z1-scd-40fps-100MHz-u0.9" in capsys.readouterr().out

    def test_sweep_rejects_timeout_with_chunked_schedule(self):
        with pytest.raises(ValueError, match="work-stealing"):
            main(["sweep", "--schedule", "chunked", "--timeout-s", "5"] + BUDGET)

    def test_cache_stats_on_empty_directory(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_cache_gc_rejects_bad_budget(self, tmp_path):
        with pytest.raises(ValueError, match="max_age_days"):
            main(["cache", "gc", "--cache-dir", str(tmp_path),
                  "--max-age-days", "0"])

    def test_experiment_fig4(self, capsys):
        assert main(["experiment", "fig4"]) == 0
        assert capsys.readouterr().out.strip()

    def test_codegen(self, tmp_path, capsys):
        code = main(["codegen", "--design", "DNN1", "--output", str(tmp_path)])
        assert code == 0
        assert any(path.suffix == ".cpp" for path in tmp_path.iterdir())
        assert "Generated files" in capsys.readouterr().out

    def test_bundles(self, capsys):
        assert main(["bundles"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) >= 18

    def test_sweep_with_telemetry_then_report(self, tmp_path, capsys):
        import repro.telemetry as telemetry

        cache_dir = tmp_path / "cache"
        try:
            code = main(["--telemetry", "sweep", "--devices", "pynq-z1",
                         "--strategies", "scd", "--cache-dir", str(cache_dir)]
                        + BUDGET)
        finally:
            telemetry.disable()
        assert code == 0
        capsys.readouterr()
        assert (cache_dir / "_telemetry.jsonl").exists()

        assert main(["telemetry", "report", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "Telemetry report for" in out
        assert "Cache hit rate" in out
        assert "slowest cells" in out
        assert "Spans (_telemetry.jsonl)" in out

        assert main(["telemetry", "report", "--cache-dir", str(cache_dir),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cells"]["completed"] == 1
        assert payload["telemetry"]["snapshot"] is not None

    def test_telemetry_report_without_telemetry_uses_checkpoint(
            self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(["sweep", "--devices", "pynq-z1", "--strategies", "scd",
                     "--cache-dir", str(cache_dir)] + BUDGET) == 0
        capsys.readouterr()
        assert not (cache_dir / "_telemetry.jsonl").exists()
        assert main(["telemetry", "report", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "Cells: 1 completed, 0 failed" in out

    def test_shard_status_unreachable_coordinator(self, capsys):
        assert main(["shard", "status", "--connect", "127.0.0.1:1"]) == 1
        assert "cannot reach coordinator" in capsys.readouterr().err
