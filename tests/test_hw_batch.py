"""Golden-equivalence suite for the vectorized batch estimator.

The contract of :mod:`repro.hw.batch` is bit-exactness: for every config,
``BatchedDNNEstimator.estimate_batch`` must reproduce the scalar
``DNNPerformanceModel`` estimate to *full float precision* — not within a
tolerance.  Journals, checkpoints and Pareto selections are byte-identical
between the two paths only because of this property, so every comparison in
this file uses ``==`` on raw floats, never ``pytest.approx``.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.telemetry as telemetry
from repro.core.bundle_generation import get_bundle
from repro.core.dnn_config import DNNConfig
from repro.detection.task import DAC_SDC_TASK, TINY_DETECTION_TASK
from repro.hw.analytical import (
    AnalyticalModelCoefficients,
    DEFAULT_COEFFICIENTS,
    DNNPerformanceModel,
    PerformanceEstimate,
)
from repro.hw.batch import BatchedDNNEstimator, estimate_batch
from repro.hw.device import PYNQ_Z1, ULTRA96
from repro.hw.tile_arch import TileArchAccelerator

# A refit-style coefficient set: every knob off its default, so coefficient
# mix-ups between the paths cannot cancel out.
REFIT = AnalyticalModelCoefficients(
    alpha=1.17, beta=0.93, phi=1.41, ctl_gamma=0.8,
    gamma_lut=311.0, gamma_ff=207.0, gamma_bram=1.5,
)


def scalar_estimate(config, device, coefficients, clock_mhz) -> PerformanceEstimate:
    """The reference scalar path, exactly as AutoHLS.estimate runs it."""
    accelerator = TileArchAccelerator.build(
        config.to_workload(), device,
        parallel_factor=config.parallel_factor, clock_mhz=clock_mhz,
    )
    return DNNPerformanceModel(accelerator, coefficients).estimate()


def assert_bit_identical(batched: PerformanceEstimate, scalar: PerformanceEstimate):
    assert batched.latency_ms == scalar.latency_ms
    assert batched.compute_ms == scalar.compute_ms
    assert batched.data_movement_ms == scalar.data_movement_ms
    assert batched.resources.lut == scalar.resources.lut
    assert batched.resources.ff == scalar.resources.ff
    assert batched.resources.dsp == scalar.resources.dsp
    assert batched.resources.bram == scalar.resources.bram


def config_grid(task) -> list[DNNConfig]:
    """A deliberately heterogeneous batch: several bundles, replication
    counts, elastic Pi / X vectors, activations, bit widths and parallel
    factors, all mixed into one call."""
    configs = []
    cases = [
        # (bundle_id, reps, expansion, downsample, activation, wb, stem)
        (13, 2, (1.5, 1.5), (1, 1), "relu4", 8, 16),
        (13, 3, (1.2, 1.8, 1.4), (1, 0, 1), "relu", 8, 24),
        (1, 1, (2.0,), (1,), "relu8", 8, 16),
        (5, 2, (1.0, 2.0), (0, 1), "relu4", 16, 32),
        (9, 3, (1.5, 1.3, 1.1), (1, 1, 0), "relu8", 8, 48),
        (17, 2, (1.7, 1.6), (1, 1), "relu", 16, 16),
    ]
    for bundle_id, reps, expansion, downsample, activation, wb, stem in cases:
        for pf in (3, 4, 8, 16):
            configs.append(DNNConfig(
                bundle=get_bundle(bundle_id),
                task=task,
                num_repetitions=reps,
                channel_expansion=expansion,
                downsample=downsample,
                stem_channels=stem,
                activation=activation,
                weight_bits=wb,
                parallel_factor=pf,
                max_channels=64 if task is TINY_DETECTION_TASK else 512,
            ))
    return configs


class TestGoldenEquivalence:
    @pytest.mark.parametrize("device,clock_mhz", [
        (PYNQ_Z1, None),          # device default clock
        (PYNQ_Z1, 142.5),         # non-default clock
        (ULTRA96, None),
        (ULTRA96, 201.25),
    ])
    @pytest.mark.parametrize("coefficients", [DEFAULT_COEFFICIENTS, REFIT])
    def test_batch_matches_scalar_exactly(self, device, clock_mhz, coefficients):
        configs = config_grid(TINY_DETECTION_TASK)
        estimator = BatchedDNNEstimator(device)
        batched = estimator.estimate_batch(
            configs, coefficients=coefficients, clock_mhz=clock_mhz
        )
        clock = clock_mhz or device.default_clock_mhz
        assert len(batched) == len(configs)
        for config, estimate in zip(configs, batched):
            assert_bit_identical(
                estimate, scalar_estimate(config, device, coefficients, clock)
            )

    def test_full_resolution_task(self, device):
        # The DAC-SDC input resolution exercises different tile choices.
        configs = config_grid(DAC_SDC_TASK)[:8]
        batched = BatchedDNNEstimator(device).estimate_batch(configs)
        for config, estimate in zip(configs, batched):
            assert_bit_identical(
                estimate,
                scalar_estimate(
                    config, device, DEFAULT_COEFFICIENTS, device.default_clock_mhz
                ),
            )

    def test_empty_batch(self, device):
        assert BatchedDNNEstimator(device).estimate_batch([]) == []

    def test_single_config_batch(self, tiny_config, device):
        [estimate] = BatchedDNNEstimator(device).estimate_batch([tiny_config])
        assert_bit_identical(
            estimate,
            scalar_estimate(
                tiny_config, device, DEFAULT_COEFFICIENTS, device.default_clock_mhz
            ),
        )

    def test_statics_cache_survives_coefficient_refit(self, tiny_config, device):
        # One estimator instance, two coefficient fits and two clocks: the
        # cached group statics must not leak anything coefficient- or
        # clock-dependent between calls.
        estimator = BatchedDNNEstimator(device)
        estimator.estimate_batch([tiny_config])  # warm the caches
        for coefficients, clock in [(REFIT, 87.5), (DEFAULT_COEFFICIENTS, None)]:
            resolved = clock or device.default_clock_mhz
            [estimate] = estimator.estimate_batch(
                [tiny_config], coefficients=coefficients, clock_mhz=clock
            )
            assert_bit_identical(
                estimate, scalar_estimate(tiny_config, device, coefficients, resolved)
            )

    def test_duplicate_configs_share_one_group(self, tiny_config, device):
        estimator = BatchedDNNEstimator(device)
        results = estimator.estimate_batch([tiny_config, tiny_config, tiny_config])
        assert results[0] == results[1] == results[2]
        assert len(estimator._groups) == 1

    def test_module_level_convenience(self, tiny_config, device):
        [estimate] = estimate_batch([tiny_config], device, clock_mhz=120.0)
        assert_bit_identical(
            estimate, scalar_estimate(tiny_config, device, DEFAULT_COEFFICIENTS, 120.0)
        )

    @given(
        bundle_id=st.sampled_from([1, 4, 8, 13, 18]),
        reps=st.integers(min_value=1, max_value=4),
        expansion=st.sampled_from([1.0, 1.2, 1.5, 1.7, 2.0]),
        downsample_bit=st.integers(min_value=0, max_value=1),
        stem=st.sampled_from([16, 32, 48]),
        activation=st.sampled_from(["relu", "relu4", "relu8"]),
        weight_bits=st.sampled_from([8, 16]),
        pf=st.sampled_from([1, 2, 3, 5, 8, 16, 32]),
    )
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_config_property(
        self, bundle_id, reps, expansion, downsample_bit, stem, activation,
        weight_bits, pf,
    ):
        config = DNNConfig(
            bundle=get_bundle(bundle_id),
            task=TINY_DETECTION_TASK,
            num_repetitions=reps,
            channel_expansion=(expansion,) * reps,
            downsample=(downsample_bit,) * reps,
            stem_channels=stem,
            activation=activation,
            weight_bits=weight_bits,
            parallel_factor=pf,
            max_channels=64,
        )
        [estimate] = BatchedDNNEstimator(PYNQ_Z1).estimate_batch([config])
        assert_bit_identical(
            estimate,
            scalar_estimate(
                config, PYNQ_Z1, DEFAULT_COEFFICIENTS, PYNQ_Z1.default_clock_mhz
            ),
        )


class TestEstimatorInternals:
    def test_workload_for_is_cached(self, tiny_config, device):
        estimator = BatchedDNNEstimator(device)
        workload = estimator.workload_for(tiny_config)
        assert workload is estimator.workload_for(tiny_config)
        reference = tiny_config.to_workload()
        assert workload.total_macs == reference.total_macs
        assert len(workload.layers) == len(reference.layers)

    def test_group_key_ignores_parallel_factor_and_name(self, bundle13, tiny_task, device):
        base = dict(
            bundle=bundle13, task=tiny_task, num_repetitions=2,
            channel_expansion=(1.5, 1.5), downsample=(1, 1),
            stem_channels=16, max_channels=64,
        )
        estimator = BatchedDNNEstimator(device)
        estimator.estimate_batch([
            DNNConfig(parallel_factor=4, name="a", **base),
            DNNConfig(parallel_factor=16, name="b", **base),
        ])
        assert len(estimator._groups) == 1

    def test_telemetry_counters(self, tiny_config, device):
        telemetry.disable()
        reg = telemetry.enable()
        try:
            BatchedDNNEstimator(device).estimate_batch([tiny_config, tiny_config])
            assert reg.counter("hw.estimate.count").value == 2
            assert reg.counter("hw.estimate.batch.calls").value == 1
        finally:
            telemetry.disable()


class TestResourcesHoistRegression:
    def test_bundle_resources_computed_once_per_estimate(self, tiny_config, device, monkeypatch):
        # Eq. 1 does not depend on the layer group being scored, so one
        # estimate() must evaluate BundlePerformanceModel.resources exactly
        # once — not once per bundle group (the pre-fix behaviour).
        from repro.hw.analytical import BundlePerformanceModel, bundle_layer_groups

        calls = {"resources": 0}
        original = BundlePerformanceModel.resources

        def counting(self):
            calls["resources"] += 1
            return original(self)

        monkeypatch.setattr(BundlePerformanceModel, "resources", counting)
        accelerator = TileArchAccelerator.build(
            tiny_config.to_workload(), device,
            parallel_factor=tiny_config.parallel_factor,
        )
        model = DNNPerformanceModel(accelerator)
        num_groups = len(bundle_layer_groups(accelerator.workload))
        assert num_groups >= 2, "test needs a multi-group workload to be meaningful"
        model.estimate()
        assert calls["resources"] == 1
