"""Tests for the HLS testbench/script generation and result serialization."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.auto_hls import AutoHLS
from repro.hw.device import PYNQ_Z1, ULTRA96
from repro.hw.hls.codegen import HLSCodeGenerator
from repro.hw.hls.testbench import (
    DEVICE_PARTS,
    generate_makefile,
    generate_support_files,
    generate_synthesis_script,
    generate_testbench,
)
from repro.hw.resource import ResourceVector
from repro.hw.tile_arch import TileArchAccelerator
from repro.utils.serialization import dump_json, load_json, to_jsonable

from tests.test_hw_tile_arch_pipeline import make_workload


@pytest.fixture(scope="module")
def design_and_accelerator():
    accelerator = TileArchAccelerator.build(make_workload(channels=32, reps=2), PYNQ_Z1, 16)
    design = HLSCodeGenerator(accelerator, design_name="toy_dnn").generate()
    return design, accelerator


class TestTestbenchGeneration:
    def test_testbench_references_design_and_dimensions(self, design_and_accelerator):
        design, accelerator = design_and_accelerator
        tb = generate_testbench(design, accelerator)
        c, h, w = accelerator.workload.input_shape
        assert f'#include "{design.name}.h"' in tb
        assert f"#define INPUT_HEIGHT   {h}" in tb
        assert f"#define INPUT_WIDTH    {w}" in tb
        assert f"{design.name}(frame, result, weights);" in tb

    def test_synthesis_script_targets_device_part_and_clock(self, design_and_accelerator):
        design, accelerator = design_and_accelerator
        script = generate_synthesis_script(design, accelerator)
        assert DEVICE_PARTS["PYNQ-Z1"] in script
        assert "create_clock -period 10.00" in script
        assert f"set_top {design.name}" in script

    def test_synthesis_script_for_other_device(self):
        accelerator = TileArchAccelerator.build(make_workload(channels=32), ULTRA96, 16)
        design = HLSCodeGenerator(accelerator, design_name="u96_dnn").generate()
        script = generate_synthesis_script(design, accelerator)
        assert DEVICE_PARTS["Ultra96"] in script

    def test_makefile_mentions_targets(self, design_and_accelerator):
        design, _ = design_and_accelerator
        makefile = generate_makefile(design)
        assert "csim:" in makefile and "hls:" in makefile

    def test_support_files_bundle(self, design_and_accelerator):
        design, accelerator = design_and_accelerator
        files = generate_support_files(design, accelerator)
        assert set(files) == {f"{design.name}_tb.cpp", "run_hls.tcl", "Makefile"}

    def test_auto_hls_includes_support_files(self, tiny_config, tmp_path):
        engine = AutoHLS(PYNQ_Z1)
        result = engine.generate(tiny_config, include_support_files=True)
        assert any(name.endswith("_tb.cpp") for name in result.design.files)
        assert "run_hls.tcl" in result.design.files
        paths = result.design.write_to(tmp_path)
        assert len(paths) == 5  # .h, .cpp, _tb.cpp, run_hls.tcl, Makefile

    def test_auto_hls_can_skip_support_files(self, tiny_config):
        engine = AutoHLS(PYNQ_Z1)
        result = engine.generate(tiny_config, include_support_files=False)
        assert set(result.design.files) == {f"{result.design.name}.h", f"{result.design.name}.cpp"}


class TestSerialization:
    def test_scalars_and_arrays(self):
        assert to_jsonable(np.float32(1.5)) == 1.5
        assert to_jsonable(np.int64(3)) == 3
        assert to_jsonable(np.array([1, 2])) == [1, 2]
        assert to_jsonable((1, "a", None)) == [1, "a", None]

    def test_dataclass_tagged(self):
        payload = to_jsonable(ResourceVector(lut=10, dsp=2))
        assert payload["__type__"] == "ResourceVector"
        assert payload["lut"] == 10

    def test_nested_experiment_result_roundtrip(self, tmp_path):
        from repro.experiments.table2 import run_table2

        result = run_table2(clocks=(100.0,))
        path = dump_json(result, tmp_path / "table2.json")
        loaded = load_json(path)
        assert loaded["__type__"] == "Table2Result"
        assert len(loaded["our_rows"]) == 3
        row = loaded["our_rows"][0]
        assert row["__type__"] == "Table2Row"
        assert 0.0 < row["iou"] < 1.0

    def test_unserialisable_objects_fall_back_to_str(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        assert to_jsonable(Opaque()) == "<opaque>"

    def test_dump_creates_parent_dirs(self, tmp_path):
        path = dump_json({"a": 1}, tmp_path / "nested" / "out.json")
        assert path.exists()
        assert load_json(path) == {"a": 1}

    def test_depth_guard(self):
        nested: dict = {}
        current = nested
        for _ in range(40):
            current["next"] = {}
            current = current["next"]
        # Deeply nested structures degrade to strings instead of recursing forever.
        payload = to_jsonable(nested)
        assert isinstance(payload, dict)
