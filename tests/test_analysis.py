"""Tests for the invariant linter (:mod:`repro.analysis`).

Every checker is proven twice: a fixture that must trigger it and a
near-miss encoding the blessed idiom that must stay silent.  On top of
that: the suppression grammar (justified, unjustified, unknown rule),
the baseline round-trip, and the self-run — the linter must exit clean
over this very repository, which is the property CI gates on.
"""

from __future__ import annotations

import json
import pathlib
import textwrap

import pytest

from repro.analysis import (
    BASELINE_FILENAME,
    available_rules,
    lint_file,
    lint_paths,
    load_baseline,
    save_baseline,
)
from repro.cli import main

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"

ALL_RULES = {
    "jsonl-contract",
    "lock-discipline",
    "no-unseeded-random",
    "no-wall-clock",
    "pickle-boundary",
    "telemetry-zero-cost",
}


def write(path: pathlib.Path, source: str) -> pathlib.Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def rules_of(findings) -> set[str]:
    return {finding.rule for finding in findings}


def lint_source(path: pathlib.Path, source: str) -> list:
    active, _ = lint_file(write(path, source))
    return active


# ------------------------------------------------------------------ registry
class TestRegistry:
    def test_all_six_rules_registered(self):
        assert set(available_rules()) == ALL_RULES

    def test_unknown_rule_filter_raises(self, tmp_path):
        with pytest.raises(ValueError, match="unknown rule"):
            lint_paths([tmp_path], rules=["no-such-rule"])


# -------------------------------------------------------------- no-wall-clock
class TestNoWallClock:
    def test_flags_direct_wall_clock_calls(self, tmp_path):
        findings = lint_source(tmp_path / "mod.py", """\
            import time
            import datetime

            def stamp(record):
                record["ts"] = time.time()
                record["day"] = datetime.datetime.now().isoformat()
                return record
        """)
        assert rules_of(findings) == {"no-wall-clock"}
        assert len(findings) == 2

    def test_allows_injected_clock_default_and_seam(self, tmp_path):
        findings = lint_source(tmp_path / "mod.py", """\
            import time

            class Writer:
                def __init__(self, clock=time.time):
                    self._clock = clock

                def append(self, record):
                    record["ts"] = self._clock()

            def save_timings(rows, now=None):
                now = time.time() if now is None else float(now)
                return [dict(row, ts=now) for row in rows]

            def elapsed(start):
                return time.perf_counter() - start
        """)
        assert findings == []

    def test_flags_call_in_else_branch_of_seam(self, tmp_path):
        # `if now is None:` blesses only its body — a wall-clock call in
        # the else branch bypasses the injected value entirely.
        findings = lint_source(tmp_path / "mod.py", """\
            import time

            def save(now=None):
                if now is None:
                    now = time.time()
                else:
                    now = time.time()
                return now
        """)
        assert rules_of(findings) == {"no-wall-clock"}
        assert len(findings) == 1


# -------------------------------------------------------- no-unseeded-random
class TestNoUnseededRandom:
    def test_flags_global_state_calls_in_scope(self, tmp_path):
        findings = lint_source(tmp_path / "sweep" / "mod.py", """\
            import random
            import numpy as np

            def jitter():
                return random.random() + np.random.rand()
        """)
        assert rules_of(findings) == {"no-unseeded-random"}
        assert len(findings) == 2

    def test_allows_seeded_generators(self, tmp_path):
        findings = lint_source(tmp_path / "search" / "mod.py", """\
            import random
            import numpy as np

            def make_rng(seed):
                return np.random.default_rng(seed)

            def make_shuffler(seed):
                return random.Random(seed)
        """)
        assert findings == []

    def test_out_of_scope_modules_are_not_linted(self, tmp_path):
        findings = lint_source(tmp_path / "plotting" / "mod.py", """\
            import random

            def jitter():
                return random.random()
        """)
        assert findings == []


# ------------------------------------------------------- telemetry-zero-cost
class TestTelemetryZeroCost:
    def test_flags_unguarded_registry_use(self, tmp_path):
        findings = lint_source(tmp_path / "mod.py", """\
            from repro import telemetry

            def record(n):
                reg = telemetry.registry()
                reg.counter("evals").inc(n)
        """)
        assert rules_of(findings) == {"telemetry-zero-cost"}

    def test_flags_chained_registry_call(self, tmp_path):
        findings = lint_source(tmp_path / "mod.py", """\
            from repro import telemetry

            def record(n):
                telemetry.registry().counter("evals").inc(n)
        """)
        assert rules_of(findings) == {"telemetry-zero-cost"}

    def test_allows_guarded_and_early_return_idioms(self, tmp_path):
        findings = lint_source(tmp_path / "mod.py", """\
            from repro import telemetry

            def record(n):
                reg = telemetry.registry()
                if reg is not None:
                    reg.counter("evals").inc(n)

            def record_or_bail(n):
                reg = telemetry.registry()
                if reg is None:
                    return
                reg.counter("evals").inc(n)
        """)
        assert findings == []


# ------------------------------------------------------------ pickle-boundary
class TestPickleBoundary:
    def test_flags_lock_in_wire_crossing_class(self, tmp_path):
        findings = lint_source(tmp_path / "mod.py", """\
            import threading

            class SweepTask:
                def __init__(self, name):
                    self.name = name
                    self._lock = threading.Lock()
        """)
        assert rules_of(findings) == {"pickle-boundary"}

    def test_flags_wire_marker_class_by_methods(self, tmp_path):
        findings = lint_source(tmp_path / "mod.py", """\
            import threading

            class LeaseRecord:
                def __init__(self):
                    self._cond = threading.Condition()

                def to_wire(self):
                    return {}

                @classmethod
                def from_wire(cls, payload):
                    return cls()
        """)
        assert rules_of(findings) == {"pickle-boundary"}

    def test_flags_prepared_target_and_subclasses(self, tmp_path):
        findings = lint_source(tmp_path / "mod.py", """\
            import threading

            class PreparedTarget:
                def __init__(self):
                    self._lock = threading.Lock()

            class GPUPrepared(PreparedTarget):
                def __init__(self):
                    super().__init__()
                    self._event = threading.Event()
        """)
        # Both the named payload class and its subclass (whose
        # to_wire/from_wire live on the base, outside this module) flag.
        assert rules_of(findings) == {"pickle-boundary"}
        assert len(findings) == 2

    def test_allows_non_boundary_class_and_opt_out(self, tmp_path):
        findings = lint_source(tmp_path / "mod.py", """\
            import threading

            class LocalBoard:
                def __init__(self):
                    self._lock = threading.Lock()

            class SweepOutcome:
                def __init__(self):
                    self._lock = threading.Lock()

                def __getstate__(self):
                    state = self.__dict__.copy()
                    del state["_lock"]
                    return state
        """)
        assert findings == []


# ------------------------------------------------------------ lock-discipline
class TestLockDiscipline:
    def test_flags_fsync_and_events_under_lock(self, tmp_path):
        findings = lint_source(tmp_path / "shard" / "mod.py", """\
            import os
            import threading

            from repro import telemetry

            class Board:
                def __init__(self):
                    self._lock = threading.Lock()

                def settle(self, handle, callback):
                    with self._lock:
                        os.fsync(handle.fileno())
                        telemetry.event("lease.settled")
                        self.on_settle(handle)
        """)
        assert rules_of(findings) == {"lock-discipline"}
        assert len(findings) == 3

    def test_allows_collect_then_fire_after_release(self, tmp_path):
        findings = lint_source(tmp_path / "shard" / "mod.py", """\
            import threading

            from repro import telemetry

            class Board:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._leases = {}

                def settle(self, uid):
                    events = []
                    with self._lock:
                        lease = self._leases.pop(uid, None)
                        if lease is not None:
                            events.append(("lease.settled", uid))
                    for name, ref in events:
                        telemetry.event(name, {"uid": ref})
        """)
        assert findings == []

    def test_out_of_scope_modules_are_not_linted(self, tmp_path):
        findings = lint_source(tmp_path / "plotting" / "mod.py", """\
            import os
            import threading

            LOCK = threading.Lock()

            def flush(handle):
                with LOCK:
                    os.fsync(handle.fileno())
        """)
        assert findings == []


# ------------------------------------------------------------- jsonl-contract
class TestJsonlContract:
    def test_flags_unfsynced_append_and_intolerant_reader(self, tmp_path):
        findings = lint_source(tmp_path / "mod.py", """\
            import json

            SIDECAR = "_events.jsonl"

            def append(path, record):
                with open(path, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(record) + "\\n")

            def read(path):
                with open(path, "r", encoding="utf-8") as handle:
                    return [json.loads(line) for line in handle]
        """)
        assert rules_of(findings) == {"jsonl-contract"}
        assert len(findings) == 2

    def test_allows_fsynced_append_and_tolerant_reader(self, tmp_path):
        findings = lint_source(tmp_path / "mod.py", """\
            import json
            import os

            SIDECAR = "_events.jsonl"

            def append(path, record):
                with open(path, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(record) + "\\n")
                    handle.flush()
                    os.fsync(handle.fileno())

            def read(path):
                records, corrupt = [], 0
                with open(path, "r", encoding="utf-8") as handle:
                    for line in handle:
                        try:
                            records.append(json.loads(line))
                        except json.JSONDecodeError:
                            corrupt += 1
                return records, corrupt
        """)
        assert findings == []

    def test_modules_without_sidecar_constant_are_not_linted(self, tmp_path):
        # Same careless code, but no module-level "_*.jsonl" declaration:
        # this is not a sidecar module (e.g. the best-effort disk cache).
        findings = lint_source(tmp_path / "mod.py", """\
            import json

            def append(path, record):
                with open(path, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(record) + "\\n")

            def read(path):
                with open(path) as handle:
                    return [json.loads(line) for line in handle]
        """)
        assert findings == []


# --------------------------------------------------------------- suppressions
class TestSuppressions:
    TRIGGER = """\
        import time

        def stamp():
            {comment_above}return time.time(){trailing}
    """

    def render(self, comment_above="", trailing=""):
        source = textwrap.dedent(self.TRIGGER)
        if comment_above:
            comment_above = f"{comment_above}\n    "
        return source.format(comment_above=comment_above, trailing=trailing)

    def test_justified_trailing_suppression(self, tmp_path):
        path = write(tmp_path / "mod.py", self.render(
            trailing="  # repro: disable=no-wall-clock -- display only, never persisted"))
        active, suppressed = lint_file(path)
        assert active == []
        assert [(f.rule, why) for f, why in suppressed] == [
            ("no-wall-clock", "display only, never persisted"),
        ]

    def test_justified_comment_line_suppression(self, tmp_path):
        path = write(tmp_path / "mod.py", self.render(
            comment_above="# repro: disable=no-wall-clock -- display only, never persisted"))
        active, suppressed = lint_file(path)
        assert active == []
        assert len(suppressed) == 1

    def test_unjustified_suppression_is_itself_a_finding(self, tmp_path):
        path = write(tmp_path / "mod.py", self.render(
            trailing="  # repro: disable=no-wall-clock"))
        active, suppressed = lint_file(path)
        assert suppressed == []
        assert rules_of(active) == {"suppression-format", "no-wall-clock"}

    def test_unknown_rule_in_suppression_is_flagged(self, tmp_path):
        path = write(tmp_path / "mod.py", self.render(
            trailing="  # repro: disable=no-such-rule -- because"))
        active, _ = lint_file(path)
        assert rules_of(active) == {"suppression-format", "no-wall-clock"}

    def test_suppression_does_not_leak_to_other_rules(self, tmp_path):
        path = write(tmp_path / "sweep" / "mod.py", textwrap.dedent("""\
            import random
            import time

            def stamp():
                # repro: disable=no-wall-clock -- display only
                return time.time(), random.random()
        """))
        active, suppressed = lint_file(path)
        assert rules_of(active) == {"no-unseeded-random"}
        assert [f.rule for f, _ in suppressed] == ["no-wall-clock"]


# ------------------------------------------------------------------- baseline
class TestBaseline:
    def test_round_trip_grandfathers_existing_findings(self, tmp_path):
        write(tmp_path / "pkg" / "mod.py", """\
            import time

            def stamp():
                return time.time()
        """)
        dirty = lint_paths([tmp_path / "pkg"])
        assert not dirty.ok and len(dirty.findings) == 1

        baseline_path = tmp_path / BASELINE_FILENAME
        save_baseline(baseline_path, dirty.findings)
        assert load_baseline(baseline_path) == {
            finding.fingerprint() for finding in dirty.findings
        }

        clean = lint_paths([tmp_path / "pkg"], baseline=baseline_path)
        assert clean.ok
        assert [f.rule for f in clean.baselined] == ["no-wall-clock"]

    def test_baseline_does_not_excuse_new_findings(self, tmp_path):
        target = write(tmp_path / "pkg" / "mod.py", """\
            import time

            def stamp():
                return time.time()
        """)
        baseline_path = tmp_path / BASELINE_FILENAME
        save_baseline(baseline_path, lint_paths([tmp_path / "pkg"]).findings)

        target.write_text(target.read_text() + textwrap.dedent("""\

            def stamp_ns():
                return time.time_ns()
        """))
        report = lint_paths([tmp_path / "pkg"], baseline=baseline_path)
        assert not report.ok
        assert len(report.findings) == 1 and len(report.baselined) == 1
        assert "time.time_ns" in report.findings[0].snippet

    def test_garbage_baseline_is_ignored_not_trusted(self, tmp_path):
        baseline_path = tmp_path / BASELINE_FILENAME
        baseline_path.write_text("{not json")
        assert load_baseline(baseline_path) == frozenset()

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == frozenset()


# -------------------------------------------------------------------- self-run
class TestSelfRun:
    def test_repo_is_clean_under_its_own_linter(self):
        report = lint_paths([SRC], baseline=REPO_ROOT / BASELINE_FILENAME)
        assert report.ok, report.render()
        # Every suppression in the tree carries its justification.
        assert all(why for _, why in report.suppressed)

    def test_cli_lint_exits_zero_on_repo(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_cli_json_report_shape(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert set(payload["rules"]) == ALL_RULES
        assert payload["files"] > 50

    def test_cli_rule_filter_and_list_rules(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "--rule", "no-wall-clock"]) == 0
        capsys.readouterr()
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule in out

    def test_cli_reports_failure_exit_code(self, capsys, tmp_path, monkeypatch):
        write(tmp_path / "mod.py", """\
            import time

            def stamp():
                return time.time()
        """)
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "--no-baseline", str(tmp_path)]) == 1
        assert "no-wall-clock" in capsys.readouterr().out
