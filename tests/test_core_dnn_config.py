"""Tests for the candidate DNN configuration and its builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bundle_generation import get_bundle
from repro.core.dnn_config import CHANNEL_ROUND, DNNConfig, _round_channels
from repro.detection.task import TINY_DETECTION_TASK


class TestChannelRounding:
    def test_rounds_to_multiple(self):
        assert _round_channels(13) % CHANNEL_ROUND == 0
        assert _round_channels(100) == 104 or _round_channels(100) == 96

    def test_minimum(self):
        assert _round_channels(1) == CHANNEL_ROUND


class TestDNNConfigValidation:
    def test_defaults_fill_expansion_and_downsample(self, bundle13, tiny_task):
        config = DNNConfig(bundle=bundle13, task=tiny_task, num_repetitions=3)
        assert len(config.channel_expansion) == 3
        assert len(config.downsample) == 3

    def test_length_mismatch_rejected(self, bundle13, tiny_task):
        with pytest.raises(ValueError):
            DNNConfig(bundle=bundle13, task=tiny_task, num_repetitions=3,
                      channel_expansion=(1.5, 1.5))

    def test_invalid_downsample_flag(self, bundle13, tiny_task):
        with pytest.raises(ValueError):
            DNNConfig(bundle=bundle13, task=tiny_task, num_repetitions=2,
                      channel_expansion=(1.5, 1.5), downsample=(1, 2))

    def test_invalid_repetitions(self, bundle13, tiny_task):
        with pytest.raises(ValueError):
            DNNConfig(bundle=bundle13, task=tiny_task, num_repetitions=0)

    def test_feature_bits_follow_activation(self, bundle13, tiny_task):
        relu4 = DNNConfig(bundle=bundle13, task=tiny_task, activation="relu4")
        relu = DNNConfig(bundle=bundle13, task=tiny_task, activation="relu")
        relu8 = DNNConfig(bundle=bundle13, task=tiny_task, activation="relu8")
        assert relu4.feature_bits == 8
        assert relu8.feature_bits == 10
        assert relu.feature_bits == 16

    def test_with_updates_returns_new_config(self, tiny_config):
        updated = tiny_config.with_updates(num_repetitions=3,
                                           channel_expansion=(1.5, 1.5, 1.5),
                                           downsample=(1, 1, 0))
        assert updated.num_repetitions == 3
        assert tiny_config.num_repetitions == 2  # original untouched


class TestChannelSchedule:
    def test_expansion_applied(self, bundle13, tiny_task):
        config = DNNConfig(bundle=bundle13, task=tiny_task, num_repetitions=3,
                           channel_expansion=(2.0, 2.0, 2.0), downsample=(1, 1, 1),
                           stem_channels=16, max_channels=512)
        schedule = config.channel_schedule()
        assert schedule == [32, 64, 128]

    def test_max_channels_cap(self, bundle13, tiny_task):
        config = DNNConfig(bundle=bundle13, task=tiny_task, num_repetitions=4,
                           channel_expansion=(2.0,) * 4, downsample=(1, 1, 1, 1),
                           stem_channels=64, max_channels=128)
        assert max(config.channel_schedule()) <= 128

    def test_spatial_schedule_halves_on_downsample(self, bundle13, tiny_task):
        config = DNNConfig(bundle=bundle13, task=tiny_task, num_repetitions=2,
                           channel_expansion=(1.5, 1.5), downsample=(1, 0),
                           stem_channels=16)
        sizes = config.spatial_schedule()
        # Input 32x64 -> stem /2 = 16x32 -> rep0 downsample = 8x16 -> rep1 same.
        assert sizes == [(8, 16), (8, 16)]


class TestWorkloadBuilder:
    def test_workload_structure(self, tiny_config):
        wl = tiny_config.to_workload()
        assert wl.layers[0].kind == "conv" and wl.layers[0].stride == 2  # stem
        assert wl.layers[-1].kind == "head"
        assert wl.num_bundles == tiny_config.num_repetitions
        assert wl.feature_bits == tiny_config.feature_bits
        assert wl.bundle_signature == tiny_config.bundle.signature

    def test_bundle_layer_kinds_follow_bundle(self, tiny_config):
        wl = tiny_config.to_workload()
        rep0 = wl.layers_in_bundle(0)
        kinds = [l.kind for l in rep0]
        assert kinds == ["dwconv", "activation", "conv", "activation"]

    def test_downsample_realised_as_stride(self, tiny_config):
        wl = tiny_config.to_workload()
        rep0 = wl.layers_in_bundle(0)
        assert rep0[0].stride == 2  # first compute layer carries the downsample

    def test_channels_monotone_nondecreasing(self, tiny_config):
        wl = tiny_config.to_workload()
        compute = [l for l in wl.layers if l.is_compute]
        for earlier, later in zip(compute, compute[1:-1]):
            assert later.in_channels >= earlier.in_channels or later.kind == "head"

    def test_more_reps_more_macs(self, bundle13, tiny_task):
        small = DNNConfig(bundle=bundle13, task=tiny_task, num_repetitions=1,
                          channel_expansion=(1.5,), downsample=(1,), stem_channels=16)
        large = DNNConfig(bundle=bundle13, task=tiny_task, num_repetitions=3,
                          channel_expansion=(1.5,) * 3, downsample=(1, 1, 0), stem_channels=16)
        assert large.to_workload().total_macs > small.to_workload().total_macs


class TestModelBuilder:
    def test_model_runs_forward_and_matches_workload(self, tiny_config, rng):
        model = tiny_config.to_model(rng=0)
        c, h, w = tiny_config.task.input_shape
        x = rng.normal(size=(2, c, h, w)).astype(np.float32)
        out = model.forward(x)
        assert out.shape == (2, 4)
        assert np.all((out >= 0) & (out <= 1))

    def test_model_params_close_to_workload_params(self, tiny_config):
        model = tiny_config.to_model(rng=0)
        wl = tiny_config.to_workload()
        # BatchNorm in the model adds a few parameters the workload does not
        # track, so allow a modest relative difference.
        assert model.num_params() == pytest.approx(wl.total_params, rel=0.25)

    def test_model_trainable(self, tiny_config, rng):
        model = tiny_config.to_model(rng=0)
        c, h, w = tiny_config.task.input_shape
        x = rng.normal(size=(2, c, h, w)).astype(np.float32)
        out = model.forward(x)
        grad = model.backward(np.ones_like(out))
        assert grad.shape == x.shape


class TestFeaturesAndDescribe:
    def test_features_reflect_workload(self, tiny_config):
        features = tiny_config.features(epochs=20)
        wl = tiny_config.to_workload()
        assert features.macs == wl.total_macs
        assert features.depth == wl.compute_depth
        assert features.max_channels == wl.max_channels
        assert features.epochs == 20
        assert features.bundle_signature == "dwconv3x3+conv1x1"

    def test_describe_mentions_structure(self, tiny_config):
        text = tiny_config.describe()
        assert "Bundle 13" in text
        assert "2 bundle replications" in text
        assert "8-bit feature map" in text
