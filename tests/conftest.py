"""Shared fixtures for the test suite.

Most fixtures are deliberately small (tiny input resolutions, few samples,
small parallel factors) so the full suite stays fast while still exercising
the real code paths.
"""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.core.bundle_generation import default_bundle_catalog, get_bundle
from repro.core.dnn_config import DNNConfig
from repro.detection.task import DAC_SDC_TASK, DetectionTask, TINY_DETECTION_TASK
from repro.hw.device import PYNQ_Z1
from repro.hw.tile_arch import TileArchAccelerator

# Keep the logs quiet during tests.
logging.getLogger("repro").setLevel(logging.ERROR)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_task() -> DetectionTask:
    """A reduced-resolution detection task used by most hardware/core tests."""
    return TINY_DETECTION_TASK


@pytest.fixture(scope="session")
def full_task() -> DetectionTask:
    """The full DAC-SDC task (used sparingly)."""
    return DAC_SDC_TASK


@pytest.fixture(scope="session")
def device():
    return PYNQ_Z1


@pytest.fixture(scope="session")
def bundle13():
    """The dw-conv3x3 + conv1x1 bundle used by the paper's final designs."""
    return get_bundle(13)


@pytest.fixture(scope="session")
def bundle1():
    return get_bundle(1)


@pytest.fixture(scope="session")
def catalog():
    return default_bundle_catalog()


@pytest.fixture
def tiny_config(bundle13, tiny_task) -> DNNConfig:
    """A small candidate DNN on the tiny task."""
    return DNNConfig(
        bundle=bundle13,
        task=tiny_task,
        num_repetitions=2,
        channel_expansion=(1.5, 1.5),
        downsample=(1, 1),
        stem_channels=16,
        activation="relu4",
        parallel_factor=8,
        max_channels=64,
        name="tiny-dnn",
    )


@pytest.fixture
def tiny_accelerator(tiny_config, device) -> TileArchAccelerator:
    """A Tile-Arch accelerator built for the tiny candidate."""
    return TileArchAccelerator.build(
        tiny_config.to_workload(), device, parallel_factor=tiny_config.parallel_factor
    )
