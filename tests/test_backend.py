"""Tests for the unified hardware-backend abstraction (:mod:`repro.backend`).

Covers target-spec parsing and registry errors, the GPU roofline engine
(scalar/batch bit-identity, golden equivalence against the Table 2 GPU
baseline), the wire round trip of :class:`PreparedTarget` on both backends,
the SCD unit-move batch path's journal invariance, mixed-backend sweeps and
the legacy FPGA byte-identity contract against a checkpoint generated
before the backend refactor.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import fields as dataclass_fields

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import (
    FPGABackend,
    GPUBackend,
    backend_catalog,
    backend_for,
    backend_name_for,
    get_backend,
    infer_backend,
    parse_target,
    resolve_targets,
)
from repro.core.auto_hls import AutoHLS
from repro.core.bundle_generation import get_bundle
from repro.core.constraints import LatencyTarget, ResourceConstraint
from repro.core.dnn_config import DNNConfig
from repro.core.scd import SCDUnit
from repro.detection.task import TINY_DETECTION_TASK
from repro.experiments.table2 import HOST_OVERHEAD_MS, _gpu_baseline_rows
from repro.baselines.entries import gpu_contest_entries
from repro.gpu import GPURooflineEngine, JETSON_TX2, get_gpu_device
from repro.hw.analytical import AnalyticalModelCoefficients
from repro.hw.device import PYNQ_Z1
from repro.search import SearchSession, create_explorer
from repro.sweep import (
    PreparedTarget,
    SweepRunner,
    build_grid,
    compare,
    diff_results,
    prepare_target,
)
from repro.utils.serialization import to_jsonable

FIXTURE = pathlib.Path(__file__).parent / "fixtures" / "legacy_fpga_checkpoint.jsonl"

#: Shared tiny sweep budget: every cell completes in well under a second.
TINY = dict(tolerance_ms=10.0, iterations=25, num_candidates=1, top_bundles=2, seed=1)

#: The grid parameters the legacy fixture checkpoint was generated with
#: (pre-refactor code, workers=1).
LEGACY = dict(tolerance_ms=8.0, iterations=10, num_candidates=1,
              top_bundles=2, seed=2019)


def _configs(n=6):
    """A spread of structurally distinct configs for batch-identity checks."""
    out = []
    for i in range(n):
        reps = 2 + i % 3
        out.append(DNNConfig(
            bundle=get_bundle(1 + (i * 5) % 17),
            task=TINY_DETECTION_TASK,
            num_repetitions=reps,
            channel_expansion=(1.5,) * reps,
            downsample=(1,) + (0,) * (reps - 1),
            stem_channels=16,
            parallel_factor=2 ** (2 + i % 4),
            max_channels=128,
        ))
    return out


# --------------------------------------------------------------- target specs
class TestTargetSpecs:
    def test_bare_name_defaults_to_fpga(self):
        target = parse_target("pynq-z1")
        assert target.backend.name == "fpga"
        assert target.canonical == "PYNQ-Z1"

    def test_prefixed_specs_resolve(self):
        assert parse_target("fpga:ultra96").canonical == "Ultra96"
        assert parse_target("gpu:jetson-tx2").canonical == "gpu:jetson-tx2"

    def test_mixed_spec_resolves_and_dedupes(self):
        targets = resolve_targets("fpga:pynq-z1,gpu:jetson-tx2,pynq-z1")
        assert [t.canonical for t in targets] == ["PYNQ-Z1", "gpu:jetson-tx2"]
        assert [t.backend.name for t in targets] == ["fpga", "gpu"]

    def test_all_expands_per_backend(self):
        assert {t.canonical for t in resolve_targets("all")} == \
            {"PYNQ-Z1", "Ultra96", "ZC706"}
        assert [t.canonical for t in resolve_targets("gpu:all")] == \
            ["gpu:jetson-tx2"]

    def test_unknown_backend_lists_catalog(self):
        with pytest.raises(ValueError) as excinfo:
            resolve_targets("tpu:v4")
        assert "Unknown backend 'tpu'" in str(excinfo.value)
        assert "Registered backends" in str(excinfo.value)
        assert "gpu (jetson-tx2)" in str(excinfo.value)

    def test_unknown_device_lists_catalog(self):
        with pytest.raises(ValueError, match="Unknown fpga device 'virtex'"):
            resolve_targets("virtex")
        with pytest.raises(ValueError, match="Unknown gpu device"):
            resolve_targets("gpu:a100")

    def test_backend_name_for_canonical_strings(self):
        assert backend_name_for("PYNQ-Z1") == "fpga"
        assert backend_name_for("gpu:jetson-tx2") == "gpu"
        assert backend_for("gpu:jetson-tx2") is get_backend("gpu")


# ------------------------------------------------------------------- registry
class TestBackendRegistry:
    def test_builtin_backends_registered(self):
        fpga = get_backend("fpga")
        gpu = get_backend("gpu")
        assert isinstance(fpga, FPGABackend) and fpga.requires_fit
        assert isinstance(gpu, GPUBackend) and not gpu.requires_fit
        catalog = backend_catalog()
        assert "fpga (" in catalog and "gpu (" in catalog

    def test_get_backend_unknown(self):
        with pytest.raises(ValueError, match="Registered backends"):
            get_backend("asic")

    def test_infer_backend_from_device_object(self):
        assert infer_backend(PYNQ_Z1).name == "fpga"
        assert infer_backend(JETSON_TX2).name == "gpu"

    def test_gpu_resource_budget_is_unbounded(self):
        constraint = get_backend("gpu").resource_constraint(JETSON_TX2)
        assert isinstance(constraint, ResourceConstraint)
        engine = AutoHLS(PYNQ_Z1)
        estimate = engine.estimate(_configs(1)[0])
        assert constraint.satisfied_by(estimate.resources)


# ------------------------------------------------------------------ GPU engine
class TestGPURooflineEngine:
    def test_batch_estimates_are_bit_identical_to_scalar(self):
        engine = GPURooflineEngine(JETSON_TX2)
        configs = _configs(8)
        scalar = [engine.estimate(c) for c in configs]
        batch = engine.estimate_batch(configs)
        assert [e.latency_ms for e in batch] == [e.latency_ms for e in scalar]

    def test_clock_is_fixed(self):
        device = get_gpu_device("jetson-tx2")
        backend = get_backend("gpu")
        assert backend.validate_clock(device, 854.0) == 854.0
        with pytest.raises(ValueError, match="fixed"):
            backend.validate_clock(device, 500.0)

    def test_build_grid_rejects_clock_sweep_on_gpu(self):
        with pytest.raises(ValueError, match="fixed"):
            build_grid("gpu:jetson-tx2", "scd", [40.0], clocks_mhz=[500.0], **TINY)

    def test_fingerprint_is_stable_and_fit_free(self):
        engine = GPURooflineEngine(JETSON_TX2)
        assert engine.coefficients is None
        fingerprint = get_backend("gpu").engine_fingerprint(engine)
        assert fingerprint.startswith("gpu-roofline-")
        assert fingerprint == get_backend("gpu").engine_fingerprint(
            GPURooflineEngine(JETSON_TX2)
        )


# ------------------------------------------------- golden equivalence: Table 2
class TestGPUGoldenVsTable2:
    """GPUBackend reproduces the Table 2 GPU baseline rows exactly."""

    NUM_FRAMES = 50_000

    def test_latency_and_energy_match_table2_rows(self):
        backend = get_backend("gpu")
        device = get_gpu_device("jetson-tx2")
        engine = backend.create_engine(device)
        power = backend.power_model(device)
        rows = _gpu_baseline_rows(gpu_contest_entries(), self.NUM_FRAMES)
        assert rows, "Table 2 must carry GPU baseline rows"
        for entry, row in zip(
            [e for e in gpu_contest_entries() if e.workload is not None], rows
        ):
            latency = engine.latency_model.latency_ms(
                entry.workload, precision_bytes=engine.precision_bytes
            )
            assert latency == row.latency_ms
            energy = power.energy_report(
                latency, num_frames=self.NUM_FRAMES,
                overhead_ms_per_frame=HOST_OVERHEAD_MS,
            )
            assert energy.fps == row.fps
            assert energy.power_w == row.power_w
            assert energy.total_energy_kj == row.energy_kj
            assert energy.energy_per_frame_j == row.j_per_pic


# --------------------------------------------------- PreparedTarget wire trips
# Coefficients validate on construction (alpha > 0, the rest >= 0), so draw
# from the positive range; exactness of the wire trip is what's under test.
finite = st.floats(min_value=1e-6, max_value=1e9, allow_nan=False)
coeff_names = [f.name for f in dataclass_fields(AnalyticalModelCoefficients)]


class TestPreparedTargetWire:
    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(finite, min_size=len(coeff_names),
                        max_size=len(coeff_names)),
        clock=st.floats(min_value=1.0, max_value=1000.0, allow_nan=False),
        utilization=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
    )
    def test_fpga_round_trip_is_exact(self, values, clock, utilization):
        prepared = PreparedTarget(
            device="PYNQ-Z1",
            clock_mhz=clock,
            utilization=utilization,
            top_bundles=3,
            coefficients=AnalyticalModelCoefficients(
                **dict(zip(coeff_names, values))
            ),
            selected_bundle_ids=(13, 7, 1),
            fingerprint="deadbeef",
            backend="fpga",
        )
        wire = json.loads(json.dumps(prepared.to_wire()))
        rebuilt = PreparedTarget.from_wire(wire)
        assert rebuilt.coefficients == prepared.coefficients
        # Duration is telemetry, not model state; everything else is exact.
        assert rebuilt == prepared

    @settings(max_examples=30, deadline=None)
    @given(
        utilization=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
        top_bundles=st.integers(min_value=1, max_value=18),
    )
    def test_gpu_round_trip_is_exact(self, utilization, top_bundles):
        prepared = PreparedTarget(
            device="gpu:jetson-tx2",
            clock_mhz=854.0,
            utilization=utilization,
            top_bundles=top_bundles,
            coefficients=None,
            selected_bundle_ids=tuple(range(1, top_bundles + 1)),
            fingerprint="gpu-roofline-ce0.42-me0.6-kl55us-pb2",
            backend="gpu",
        )
        wire = json.loads(json.dumps(prepared.to_wire()))
        assert "coefficients" not in wire
        assert PreparedTarget.from_wire(wire) == prepared

    def test_fpga_payload_without_coefficients_rejected(self):
        payload = {
            "device": "PYNQ-Z1", "clock_mhz": 100.0, "utilization": 1.0,
            "top_bundles": 2, "selected_bundle_ids": [13], "fingerprint": "x",
        }
        with pytest.raises(ValueError, match="coefficients"):
            PreparedTarget.from_wire(payload)


# ------------------------------------------------------- SCD unit-move batching
class TestSCDBatchInvariance:
    def _journal(self, monkeypatch, *, scalar: bool) -> dict:
        if scalar:
            # Force the historical one-probe-at-a-time loop.
            monkeypatch.setattr(
                SCDUnit, "_score_units",
                lambda self, configs: [self._latency(c) for c in configs],
            )
        session = SearchSession(name="scd-batch-invariance")
        engine = AutoHLS(PYNQ_Z1)
        explorer = create_explorer(
            "scd",
            estimator=engine.estimate,
            latency_target=LatencyTarget(fps=40.0, tolerance_ms=10.0),
            resource_constraint=ResourceConstraint.for_device(PYNQ_Z1),
            max_iterations=40,
            rng=7,
            session=session,
        )
        explorer.explore(_configs(1)[0], num_candidates=2)
        explorer.close()
        return session.as_dict()

    def test_batched_probes_leave_journal_fingerprint_unchanged(self, monkeypatch):
        batched = self._journal(monkeypatch, scalar=False)
        scalar = self._journal(monkeypatch, scalar=True)
        assert json.dumps(to_jsonable(batched), sort_keys=True) == \
            json.dumps(to_jsonable(scalar), sort_keys=True)
        assert batched["records"], "the search must have journaled evaluations"


# ------------------------------------------------------- mixed-backend sweeps
class TestMixedBackendSweep:
    def test_grid_prepares_runs_and_compares_across_backends(self, tmp_path):
        tasks = build_grid("fpga:pynq-z1,gpu:jetson-tx2", "scd,random",
                           [20.0], **TINY)
        assert [t.device for t in tasks] == \
            ["PYNQ-Z1", "PYNQ-Z1", "gpu:jetson-tx2", "gpu:jetson-tx2"]
        assert {t.backend for t in tasks} == {"fpga", "gpu"}

        result = SweepRunner(tasks, workers=2, cache_dir=tmp_path).run()
        assert result.ok and len(result) == len(tasks)

        report = compare(result)
        assert set(report.pareto_fronts) == {"fpga", "gpu"}
        rendered = report.render()
        assert "Pareto front [backend=fpga]" in rendered
        assert "Pareto front [backend=gpu]" in rendered
        assert "Cross-backend Pareto front" in rendered

        diff = diff_results(result, result, label_a="a", label_b="b")
        assert diff.identical
        assert {row.backend for row in diff.rows} == {"fpga", "gpu"}

    def test_gpu_preparation_is_fit_free(self):
        task = build_grid("gpu:jetson-tx2", "scd", [20.0], **TINY)[0]
        prepared = prepare_target(task)
        assert prepared.backend == "gpu"
        assert prepared.coefficients is None
        assert prepared.fingerprint.startswith("gpu-roofline-")
        assert prepared.matches(task)
        assert prepared.selected_bundle_ids == (1, 2)
        wire = json.loads(json.dumps(prepared.to_wire()))
        rebuilt = PreparedTarget.from_wire(wire)
        assert rebuilt.matches(task) and rebuilt.backend == "gpu"


# ----------------------------------------------- legacy FPGA byte-identity
class TestLegacyFPGAByteIdentity:
    """The non-negotiable invariant: FPGA-only sweeps using legacy device
    names are byte-identical to pre-refactor runs (fixture checkpoint was
    generated before the backend seam existed)."""

    def _legacy(self):
        from repro.sweep import SweepTask

        outcomes = {}
        for line in FIXTURE.read_text().splitlines():
            record = json.loads(line)
            if record.get("kind") == "outcome":
                task = SweepTask.from_dict(record["outcome"]["task"])
                outcomes[task.uid] = record["outcome"]
        return outcomes

    def _tasks(self):
        return build_grid("pynq-z1", "scd,random", [20.0], **LEGACY)

    def test_fresh_run_reproduces_prerefactor_outcomes(self, tmp_path):
        legacy = self._legacy()
        result = SweepRunner(self._tasks(), workers=1, cache_dir=tmp_path).run()
        assert {o.task.uid for o in result.outcomes} == set(legacy)
        for outcome in result.outcomes:
            fresh = to_jsonable(outcome)
            old = dict(legacy[outcome.task.uid])
            # Wall-clock durations are the only environment-dependent field.
            fresh.pop("duration_s")
            old.pop("duration_s")
            assert json.dumps(fresh, sort_keys=True) == \
                json.dumps(old, sort_keys=True)

    def test_resume_from_prerefactor_checkpoint_reuses_everything(self, tmp_path):
        legacy = self._legacy()
        result = SweepRunner(
            self._tasks(), workers=1, cache_dir=tmp_path,
            resume_from=str(FIXTURE),
        ).run()
        assert result.reused == len(legacy)
        for outcome in result.outcomes:
            assert to_jsonable(outcome) == legacy[outcome.task.uid]
