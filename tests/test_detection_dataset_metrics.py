"""Tests for the synthetic dataset, IoU metrics and task descriptions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection.dataset import DetectionSample, SyntheticDetectionDataset
from repro.detection.metrics import box_iou, mean_iou
from repro.detection.task import DAC_SDC_TASK, TINY_DETECTION_TASK, DetectionTask


class TestSyntheticDataset:
    def test_deterministic_given_seed(self):
        a = SyntheticDetectionDataset(num_samples=4, seed=7)
        b = SyntheticDetectionDataset(num_samples=4, seed=7)
        sa, sb = a[2], b[2]
        np.testing.assert_array_equal(sa.image, sb.image)
        np.testing.assert_array_equal(sa.box, sb.box)

    def test_different_seed_differs(self):
        a = SyntheticDetectionDataset(num_samples=2, seed=1)[0]
        b = SyntheticDetectionDataset(num_samples=2, seed=2)[0]
        assert not np.allclose(a.image, b.image)

    def test_image_range_and_shape(self):
        ds = SyntheticDetectionDataset(image_shape=(3, 16, 32), num_samples=3)
        sample = ds[0]
        assert sample.image.shape == (3, 16, 32)
        assert sample.image.min() >= 0.0 and sample.image.max() <= 1.0

    def test_box_normalised_and_inside_image(self):
        ds = SyntheticDetectionDataset(num_samples=20, seed=3)
        for sample in ds:
            cx, cy, w, h = sample.box
            assert 0.0 < w <= 1.0 and 0.0 < h <= 1.0
            assert 0.0 <= cx - w / 2 + 1e-6 and cx + w / 2 <= 1.0 + 1e-6
            assert 0.0 <= cy - h / 2 + 1e-6 and cy + h / 2 <= 1.0 + 1e-6

    def test_object_brighter_than_background(self):
        ds = SyntheticDetectionDataset(image_shape=(1, 32, 32), num_samples=5, seed=0)
        sample = ds[0]
        _, h, w = sample.image.shape
        cx, cy, bw, bh = sample.box
        x0, x1 = int((cx - bw / 2) * w), int((cx + bw / 2) * w)
        y0, y1 = int((cy - bh / 2) * h), int((cy + bh / 2) * h)
        inside = sample.image[0, y0:y1, x0:x1].mean()
        outside = sample.image[0].mean()
        assert inside > outside

    def test_len_iter_getitem(self):
        ds = SyntheticDetectionDataset(num_samples=5)
        assert len(ds) == 5
        assert len(list(ds)) == 5
        with pytest.raises(IndexError):
            ds[5]

    def test_as_arrays_shapes(self):
        ds = SyntheticDetectionDataset(image_shape=(3, 8, 16), num_samples=6)
        x, y = ds.as_arrays()
        assert x.shape == (6, 3, 8, 16)
        assert y.shape == (6, 4)

    def test_train_val_split(self):
        ds = SyntheticDetectionDataset(num_samples=8)
        (xt, yt), (xv, yv) = ds.train_val_split(val_fraction=0.25)
        assert len(xt) == 6 and len(xv) == 2
        assert len(yt) == 6 and len(yv) == 2
        with pytest.raises(ValueError):
            ds.train_val_split(val_fraction=1.5)

    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            SyntheticDetectionDataset(num_samples=0)
        with pytest.raises(ValueError):
            SyntheticDetectionDataset(min_object_frac=0.5, max_object_frac=0.2)

    def test_sample_validation(self):
        with pytest.raises(ValueError):
            DetectionSample(image=np.zeros((3, 4)), box=np.zeros(4), shape="rectangle")


class TestIoU:
    def test_identical_boxes(self):
        box = np.array([[0.5, 0.5, 0.4, 0.2]])
        np.testing.assert_allclose(box_iou(box, box), [1.0])

    def test_disjoint_boxes(self):
        a = np.array([[0.2, 0.2, 0.1, 0.1]])
        b = np.array([[0.8, 0.8, 0.1, 0.1]])
        np.testing.assert_allclose(box_iou(a, b), [0.0])

    def test_half_overlap(self):
        a = np.array([[0.25, 0.5, 0.5, 1.0]])
        b = np.array([[0.5, 0.5, 0.5, 1.0]])
        # Intersection 0.25 wide, union 0.75 wide -> IoU = 1/3.
        np.testing.assert_allclose(box_iou(a, b), [1.0 / 3.0], rtol=1e-6)

    def test_single_box_shape(self):
        iou = box_iou(np.array([0.5, 0.5, 0.2, 0.2]), np.array([0.5, 0.5, 0.2, 0.2]))
        assert iou.shape == (1,)

    def test_mean_iou(self):
        a = np.array([[0.5, 0.5, 0.2, 0.2], [0.2, 0.2, 0.1, 0.1]])
        b = np.array([[0.5, 0.5, 0.2, 0.2], [0.8, 0.8, 0.1, 0.1]])
        assert mean_iou(a, b) == pytest.approx(0.5)

    def test_mismatched_counts_raise(self):
        with pytest.raises(ValueError):
            box_iou(np.zeros((2, 4)), np.zeros((3, 4)))

    def test_degenerate_boxes_zero(self):
        a = np.array([[0.5, 0.5, 0.0, 0.0]])
        b = np.array([[0.5, 0.5, 0.2, 0.2]])
        np.testing.assert_allclose(box_iou(a, b), [0.0])


_box = st.tuples(
    st.floats(0.1, 0.9), st.floats(0.1, 0.9), st.floats(0.05, 0.5), st.floats(0.05, 0.5)
).map(lambda t: np.array([t], dtype=np.float64))


class TestIoUProperties:
    @given(_box, _box)
    @settings(max_examples=60, deadline=None)
    def test_symmetric(self, a, b):
        assert box_iou(a, b)[0] == pytest.approx(box_iou(b, a)[0], rel=1e-9)

    @given(_box, _box)
    @settings(max_examples=60, deadline=None)
    def test_bounded(self, a, b):
        value = box_iou(a, b)[0]
        assert 0.0 <= value <= 1.0 + 1e-9

    @given(_box)
    @settings(max_examples=30, deadline=None)
    def test_self_iou_is_one(self, a):
        assert box_iou(a, a)[0] == pytest.approx(1.0, rel=1e-9)


class TestDetectionTask:
    def test_dac_sdc_defaults(self):
        assert DAC_SDC_TASK.input_shape == (3, 160, 320)
        assert DAC_SDC_TASK.dataset_size == 50_000
        assert DAC_SDC_TASK.input_pixels == 160 * 320

    def test_scaled(self):
        scaled = DAC_SDC_TASK.scaled(80, 160)
        assert scaled.input_shape == (3, 80, 160)
        assert scaled.dataset_size == DAC_SDC_TASK.dataset_size

    def test_validation(self):
        with pytest.raises(ValueError):
            DetectionTask(name="bad", input_shape=(3, 0, 10))
        with pytest.raises(ValueError):
            DetectionTask(name="bad", input_shape=(3, 10, 10), num_outputs=0)

    def test_tiny_task_is_small(self):
        assert TINY_DETECTION_TASK.input_pixels < DAC_SDC_TASK.input_pixels
