"""Tests for bundle evaluation / selection and the SCD search unit."""

from __future__ import annotations

import pytest

from repro.core.auto_hls import AutoHLS
from repro.core.bundle_evaluation import BundleEvaluator
from repro.core.bundle_generation import get_bundle
from repro.core.constraints import LatencyTarget, ResourceConstraint
from repro.core.dnn_config import DNNConfig
from repro.core.scd import EXPANSION_FACTORS, SCDUnit
from repro.detection.accuracy_model import SurrogateAccuracyModel
from repro.hw.analytical import PerformanceEstimate
from repro.hw.device import PYNQ_Z1
from repro.hw.resource import ResourceVector
from repro.search import config_cache_key


@pytest.fixture(scope="module")
def evaluator(tiny_task_module, device_module):
    return BundleEvaluator(tiny_task_module, device_module,
                           accuracy_model=SurrogateAccuracyModel(noise=0.0),
                           stem_channels=16)


@pytest.fixture(scope="module")
def tiny_task_module():
    from repro.detection.task import TINY_DETECTION_TASK
    return TINY_DETECTION_TASK


@pytest.fixture(scope="module")
def device_module():
    return PYNQ_Z1


@pytest.fixture(scope="module")
def small_bundle_set():
    return [get_bundle(i) for i in (1, 3, 9, 10, 13, 15)]


@pytest.fixture(scope="module")
def coarse_evaluations(evaluator, small_bundle_set):
    return evaluator.coarse_evaluate(small_bundle_set, parallel_factors=(8, 16), method=1)


class TestCoarseEvaluation:
    def test_one_record_per_bundle_per_pf(self, coarse_evaluations, small_bundle_set):
        assert len(coarse_evaluations) == len(small_bundle_set) * 2

    def test_accuracy_independent_of_pf(self, coarse_evaluations):
        by_bundle = {}
        for ev in coarse_evaluations:
            by_bundle.setdefault(ev.bundle_id, set()).add(round(ev.accuracy, 6))
        assert all(len(accs) == 1 for accs in by_bundle.values())

    def test_latency_decreases_with_pf(self, coarse_evaluations):
        by_bundle = {}
        for ev in coarse_evaluations:
            by_bundle.setdefault(ev.bundle_id, {})[ev.parallel_factor] = ev.latency_ms
        for latencies in by_bundle.values():
            assert latencies[16] <= latencies[8]

    def test_conv_bundles_more_accurate_than_dw_only(self, coarse_evaluations):
        accs = {ev.bundle_id: ev.accuracy for ev in coarse_evaluations}
        assert accs[1] > accs[9]   # conv3x3+conv1x1 beats conv1x1-only
        assert accs[3] > accs[13]  # conv5x5+conv1x1 beats dw3x3+conv1x1

    def test_dw_bundles_faster_than_conv_bundles(self, coarse_evaluations):
        lats = {ev.bundle_id: ev.latency_ms for ev in coarse_evaluations if ev.parallel_factor == 16}
        assert lats[13] < lats[1] < lats[3]

    def test_method2_also_works(self, evaluator, small_bundle_set):
        records = evaluator.coarse_evaluate(small_bundle_set[:2], parallel_factors=(8,), method=2)
        assert len(records) == 2
        assert all(r.method == 2 for r in records)

    def test_invalid_method(self, evaluator, small_bundle_set):
        with pytest.raises(ValueError):
            evaluator.coarse_evaluate(small_bundle_set[:1], parallel_factors=(8,), method=3)


class TestSelection:
    def test_pareto_bundles_subset_of_input(self, coarse_evaluations, small_bundle_set):
        pareto = BundleEvaluator.pareto_bundles(coarse_evaluations)
        assert set(pareto).issubset({b.bundle_id for b in small_bundle_set})
        assert pareto  # never empty

    def test_selection_respects_top_n(self, evaluator, coarse_evaluations):
        selected = evaluator.select_top_bundles(coarse_evaluations, top_n=2)
        assert len(selected) <= 2

    def test_selection_contains_efficient_and_accurate_families(self, evaluator, coarse_evaluations):
        selected = {b.bundle_id for b in evaluator.select_top_bundles(coarse_evaluations, top_n=4)}
        has_dw_family = any(bid in selected for bid in (13, 15))
        has_conv_family = any(bid in selected for bid in (1, 3))
        assert has_dw_family and has_conv_family

    def test_low_accuracy_bundles_excluded(self, evaluator, coarse_evaluations):
        selected = {b.bundle_id for b in evaluator.select_top_bundles(coarse_evaluations, top_n=4)}
        assert 10 not in selected  # dw-only bundle: cheap but far below the best accuracy

    def test_selection_requires_evaluations(self, evaluator):
        with pytest.raises(ValueError):
            evaluator.select_top_bundles([], top_n=3)


class TestFineGrainedEvaluation:
    def test_grid_size(self, evaluator):
        records = evaluator.fine_evaluate([get_bundle(13)], activations=("relu", "relu4"),
                                          repetition_counts=(1, 2))
        assert len(records) == 4

    def test_relu_more_accurate_but_slower_than_relu4(self, evaluator):
        records = evaluator.fine_evaluate([get_bundle(13)], activations=("relu", "relu4"),
                                          repetition_counts=(2,))
        by_act = {r.activation: r for r in records}
        assert by_act["relu"].accuracy > by_act["relu4"].accuracy
        assert by_act["relu"].latency_ms >= by_act["relu4"].latency_ms

    def test_more_reps_more_accurate(self, evaluator):
        records = evaluator.fine_evaluate([get_bundle(13)], activations=("relu4",),
                                          repetition_counts=(1, 3))
        by_reps = {r.num_repetitions: r for r in records}
        assert by_reps[3].accuracy > by_reps[1].accuracy
        assert by_reps[3].latency_ms > by_reps[1].latency_ms


class TestSCD:
    def _setup(self, tiny_task_module, fps=120.0, tolerance=2.0, rng=3):
        engine = AutoHLS(PYNQ_Z1)
        constraint = ResourceConstraint.for_device(PYNQ_Z1)
        target = LatencyTarget(fps=fps, tolerance_ms=tolerance)
        initial = DNNConfig(bundle=get_bundle(13), task=tiny_task_module, num_repetitions=2,
                            channel_expansion=(1.5, 1.5), downsample=(1, 1),
                            stem_channels=16, parallel_factor=16, max_channels=128)
        scd = SCDUnit(engine.estimate, target, constraint, max_iterations=120, rng=rng)
        return engine, target, constraint, initial, scd

    def test_finds_candidates_in_band(self, tiny_task_module):
        engine, target, constraint, initial, scd = self._setup(tiny_task_module)
        result = scd.search(initial, num_candidates=2)
        assert len(result.candidates) >= 1
        for config, estimate in zip(result.candidates, result.estimates):
            assert target.within_band(estimate.latency_ms)
            assert constraint.satisfied_by(estimate.resources)

    def test_candidates_are_distinct(self, tiny_task_module):
        _, _, _, initial, scd = self._setup(tiny_task_module)
        result = scd.search(initial, num_candidates=3)
        keys = [config_cache_key(c) for c in result.candidates]
        assert len(keys) == len(set(keys))

    def test_dedup_does_not_alias_same_describe_candidates(self, tiny_task_module):
        """Regression: two in-band configs sharing a describe() string must
        both be accepted — describe() summarises Pi/X as "maximum N channels"
        and previously aliased distinct candidates."""
        engine, target, constraint, initial, _ = self._setup(tiny_task_module)

        # Every config is in band and feasible, so each iteration accepts the
        # current config (if new) and perturbs it.
        def constant_estimator(config):
            return PerformanceEstimate(
                latency_ms=target.latency_ms, resources=ResourceVector(lut=1.0)
            )

        class ScriptedRNG:
            """Always picks the X move with direction -1 in _perturb."""

            def integers(self, low, high):
                return 2  # index of _move_x

            def random(self):
                return 0.9  # >= 0.5 -> direction -1 (insert a down-sample)

        scd = SCDUnit(constant_estimator, target, constraint,
                      max_iterations=10, rng=0)
        scd.rng = ScriptedRNG()
        start = initial.with_updates(downsample=(1, 0),
                                     channel_expansion=(1.5, 1.5))
        result = scd.search(start, num_candidates=2)

        assert result.converged
        assert len(result.candidates) == 2
        a, b = result.candidates
        # The two candidates alias under describe() but are distinct configs.
        assert a.describe() == b.describe()
        assert config_cache_key(a) != config_cache_key(b)
        assert a.downsample != b.downsample
        # With the aliasing bug the second acceptance was dropped, so the
        # search burned its whole budget without converging.
        assert result.iterations == 2

    def test_iteration_budget_respected(self, tiny_task_module):
        engine, target, constraint, initial, _ = self._setup(tiny_task_module)
        scd = SCDUnit(engine.estimate, target, constraint, max_iterations=5, rng=0)
        result = scd.search(initial, num_candidates=50)
        assert result.iterations <= 5
        assert not result.converged

    def test_moves_respect_bounds(self, tiny_task_module):
        _, _, _, initial, scd = self._setup(tiny_task_module)
        # Shrinking below one repetition is impossible.
        assert scd._move_n(initial.with_updates(num_repetitions=1,
                                                channel_expansion=(1.5,),
                                                downsample=(1,)), -1) is None
        grown = scd._move_n(initial, +1)
        assert grown.num_repetitions == 3
        assert len(grown.channel_expansion) == 3

    def test_pi_move_uses_allowed_factors(self, tiny_task_module):
        _, _, _, initial, scd = self._setup(tiny_task_module)
        moved = scd._move_pi(initial, +1)
        assert all(f in EXPANSION_FACTORS for f in moved.channel_expansion)

    def test_x_move_preserves_at_least_one_downsample(self, tiny_task_module):
        _, _, _, initial, scd = self._setup(tiny_task_module)
        config = initial
        for _ in range(5):
            moved = scd._move_x(config, +1)
            if moved is None:
                break
            config = moved
        assert sum(config.downsample) >= 1

    def test_invalid_arguments(self, tiny_task_module):
        engine, target, constraint, initial, scd = self._setup(tiny_task_module)
        with pytest.raises(ValueError):
            scd.search(initial, num_candidates=0)
        with pytest.raises(ValueError):
            SCDUnit(engine.estimate, target, constraint, max_iterations=0)
