"""Tests for the power model and the Auto-HLS code generation / synthesis."""

from __future__ import annotations

import pytest

from repro.hw.device import PYNQ_Z1
from repro.hw.hls.codegen import HLSCodeGenerator
from repro.hw.hls.synthesis import HLSSynthesisSimulator
from repro.hw.pipeline import TilePipelineSimulator
from repro.hw.power import FPGAPowerModel
from repro.hw.resource import ResourceVector
from repro.hw.tile_arch import TileArchAccelerator

from tests.test_hw_tile_arch_pipeline import make_workload


@pytest.fixture(scope="module")
def accelerator():
    return TileArchAccelerator.build(make_workload(channels=32, reps=2), PYNQ_Z1, parallel_factor=16)


USAGE = ResourceVector(lut=40_000, ff=50_000, dsp=190, bram=250)


class TestPowerModel:
    def test_board_power_in_realistic_range(self):
        model = FPGAPowerModel(PYNQ_Z1)
        power = model.board_power_w(USAGE, 100.0)
        # The paper measures 2.2 W at 100 MHz on this board.
        assert 1.8 <= power <= 2.6

    def test_power_grows_with_clock(self):
        model = FPGAPowerModel(PYNQ_Z1)
        assert model.board_power_w(USAGE, 150.0) > model.board_power_w(USAGE, 100.0)

    def test_power_grows_with_utilization(self):
        model = FPGAPowerModel(PYNQ_Z1)
        idle = ResourceVector(lut=5_000, ff=5_000, dsp=10, bram=10)
        assert model.board_power_w(USAGE, 100.0) > model.board_power_w(idle, 100.0)

    def test_static_floor(self):
        model = FPGAPowerModel(PYNQ_Z1)
        assert model.board_power_w(ResourceVector.zero(), 100.0) == pytest.approx(
            PYNQ_Z1.static_power_w
        )

    def test_energy_report_consistency(self):
        model = FPGAPowerModel(PYNQ_Z1)
        report = model.energy_report(USAGE, 100.0, latency_ms=80.0, num_frames=50_000)
        assert report.fps == pytest.approx(12.5)
        # E = P * T, with T = 50_000 * 80 ms = 4000 s.
        assert report.total_energy_kj == pytest.approx(report.power_w * 4000.0 / 1000.0, rel=1e-6)
        assert report.energy_per_frame_j == pytest.approx(report.power_w / report.fps, rel=1e-6)

    def test_energy_report_with_overhead(self):
        model = FPGAPowerModel(PYNQ_Z1)
        fast = model.energy_report(USAGE, 100.0, latency_ms=10.0, overhead_ms_per_frame=0.0)
        slow = model.energy_report(USAGE, 100.0, latency_ms=10.0, overhead_ms_per_frame=5.0)
        assert slow.fps < fast.fps

    def test_invalid_arguments(self):
        model = FPGAPowerModel(PYNQ_Z1)
        with pytest.raises(ValueError):
            model.energy_report(USAGE, 100.0, latency_ms=0.0)
        with pytest.raises(ValueError):
            model.board_power_w(USAGE, 0.0)
        with pytest.raises(ValueError):
            FPGAPowerModel(PYNQ_Z1, activity_factor=0.0)


class TestHLSCodegen:
    def test_generates_header_and_source(self, accelerator):
        design = HLSCodeGenerator(accelerator, design_name="toy_dnn").generate()
        assert set(design.files) == {"toy_dnn.h", "toy_dnn.cpp"}
        assert design.total_lines > 100

    def test_source_contains_ip_functions_and_pragmas(self, accelerator):
        design = HLSCodeGenerator(accelerator, design_name="toy_dnn").generate()
        source = design.source
        assert "#pragma HLS PIPELINE" in source
        assert "#pragma HLS INTERFACE m_axi" in source
        for instance in accelerator.bundle_hw.instances:
            if instance.kind in ("conv", "dwconv"):
                assert f"void {instance.name}" in source

    def test_layer_calls_cover_compute_layers(self, accelerator):
        design = HLSCodeGenerator(accelerator, design_name="toy_dnn").generate()
        compute_layers = [l for l in accelerator.workload.layers
                          if l.kind not in ("activation", "norm")]
        assert len(design.layer_calls) == len(compute_layers)

    def test_header_defines_tile_dimensions(self, accelerator):
        design = HLSCodeGenerator(accelerator, design_name="toy_dnn").generate()
        assert f"#define TILE_H {accelerator.tile.tile_height}" in design.header
        assert f"#define TILE_W {accelerator.tile.tile_width}" in design.header

    def test_design_name_sanitised(self, accelerator):
        design = HLSCodeGenerator(accelerator, design_name="123 bad-name!").generate()
        assert design.name.isidentifier()

    def test_write_to_disk(self, accelerator, tmp_path):
        design = HLSCodeGenerator(accelerator, design_name="toy_dnn").generate()
        paths = design.write_to(tmp_path)
        assert len(paths) == 2
        for path in paths:
            assert (tmp_path / path.split("/")[-1]).exists()

    def test_quantization_reflected_in_types(self, accelerator):
        design = HLSCodeGenerator(accelerator, design_name="toy_dnn").generate()
        assert "ap_int<8>" in design.source  # 8-bit weights / activations


class TestHLSSynthesis:
    def test_report_matches_simulator_latency(self, accelerator):
        report = HLSSynthesisSimulator(accelerator).synthesise()
        simulated = TilePipelineSimulator(accelerator).run().total_cycles
        assert report.latency_cycles == pytest.approx(simulated, rel=1e-6)

    def test_pessimism_scales_latency(self, accelerator):
        base = HLSSynthesisSimulator(accelerator).synthesise()
        pessimistic = HLSSynthesisSimulator(accelerator, pessimism=2.0).synthesise()
        assert pessimistic.latency_cycles == pytest.approx(2 * base.latency_cycles, rel=1e-6)

    def test_small_design_meets_timing(self, accelerator):
        report = HLSSynthesisSimulator(accelerator).synthesise()
        assert report.meets_timing
        assert report.achieved_clock_mhz == accelerator.clock_mhz

    def test_report_summary_format(self, accelerator):
        report = HLSSynthesisSimulator(accelerator).synthesise()
        text = report.summary()
        assert "ms" in text and "DSP" in text

    def test_fps_latency_relation(self, accelerator):
        report = HLSSynthesisSimulator(accelerator).synthesise()
        assert report.fps == pytest.approx(1000.0 / report.latency_ms, rel=1e-9)

    def test_invalid_pessimism(self, accelerator):
        with pytest.raises(ValueError):
            HLSSynthesisSimulator(accelerator, pessimism=0.0)

    def test_overpacked_device_degrades_timing(self):
        heavy = TileArchAccelerator.build(
            make_workload(channels=256, reps=4, feature_bits=16), PYNQ_Z1, parallel_factor=256,
        )
        report = HLSSynthesisSimulator(heavy).synthesise()
        assert report.utilization.max_fraction > 1.0
        assert not report.meets_timing
