"""Tests for the Tile-Arch accelerator builder and the tile-pipeline simulator."""

from __future__ import annotations

import pytest

from repro.hw.device import PYNQ_Z1, ZC706
from repro.hw.pipeline import TilePipelineSimulator
from repro.hw.tile_arch import CONTROL_OVERHEAD, BundleHardware, TileArchAccelerator
from repro.hw.tiling import TileConfig
from repro.hw.workload import LayerWorkload, NetworkWorkload


def make_workload(channels=32, feature_bits=8, reps=2, size=(32, 64)) -> NetworkWorkload:
    h, w = size
    layers = [LayerWorkload(kind="conv", kernel=3, in_channels=3, out_channels=channels,
                            in_height=h, in_width=w, stride=2, bundle_index=-1)]
    cur_h, cur_w = h // 2, w // 2
    for rep in range(reps):
        layers.append(LayerWorkload(kind="dwconv", kernel=3, in_channels=channels,
                                    out_channels=channels, in_height=cur_h, in_width=cur_w,
                                    bundle_index=rep))
        layers.append(LayerWorkload(kind="conv", kernel=1, in_channels=channels,
                                    out_channels=channels, in_height=cur_h, in_width=cur_w,
                                    bundle_index=rep))
        cur_h, cur_w = max(cur_h // 2, 1), max(cur_w // 2, 1)
    layers.append(LayerWorkload(kind="head", kernel=1, in_channels=channels, out_channels=4,
                                in_height=cur_h, in_width=cur_w, bundle_index=-1))
    return NetworkWorkload(layers=layers, input_shape=(3, h, w),
                           weight_bits=8, feature_bits=feature_bits, name="toy")


class TestTileArchBuild:
    def test_one_instance_per_template(self):
        acc = TileArchAccelerator.build(make_workload(), PYNQ_Z1, parallel_factor=8)
        names = [i.template.name for i in acc.bundle_hw.instances]
        assert len(names) == len(set(names))
        assert "conv3x3" in names and "dwconv3x3" in names and "conv1x1" in names

    def test_shared_parallel_factor(self):
        acc = TileArchAccelerator.build(make_workload(), PYNQ_Z1, parallel_factor=16)
        assert all(i.parallel_factor == 16 for i in acc.bundle_hw.instances)

    def test_resources_include_control_overhead(self):
        acc = TileArchAccelerator.build(make_workload(), PYNQ_Z1, parallel_factor=8)
        bare = acc.bundle_hw.resources(acc.tile.tile_width, 32, 32)
        assert acc.resources().lut > bare.lut
        assert acc.resources().bram >= CONTROL_OVERHEAD.bram

    def test_fits_small_network_on_pynq(self):
        acc = TileArchAccelerator.build(make_workload(channels=32), PYNQ_Z1, parallel_factor=8)
        assert acc.fits()

    def test_utilization_grows_with_pf(self):
        small = TileArchAccelerator.build(make_workload(), PYNQ_Z1, parallel_factor=8)
        large = TileArchAccelerator.build(make_workload(), PYNQ_Z1, parallel_factor=64)
        assert large.utilization().dsp > small.utilization().dsp
        assert large.utilization().lut > small.utilization().lut

    def test_tiles_per_layer_and_reuse(self):
        acc = TileArchAccelerator.build(make_workload(), PYNQ_Z1, parallel_factor=8,
                                        tile=TileConfig(8, 16))
        reuse = acc.ip_reuse_counts()
        assert all(count > 0 for count in reuse.values())
        # The stem conv3x3 runs on the largest map; it needs at least as many
        # tiles as the deepest layer.
        first_layer = acc.workload.layers[0]
        assert acc.tiles_per_layer(first_layer) >= 1

    def test_describe_mentions_device_and_tile(self):
        acc = TileArchAccelerator.build(make_workload(), PYNQ_Z1, parallel_factor=8)
        text = acc.describe()
        assert "PYNQ-Z1" in text and str(acc.tile) in text

    def test_bundle_hardware_instance_lookup_error(self):
        acc = TileArchAccelerator.build(make_workload(), PYNQ_Z1, parallel_factor=8)
        odd = LayerWorkload(kind="conv", kernel=5, in_channels=8, out_channels=8,
                            in_height=8, in_width=8)
        with pytest.raises(KeyError):
            acc.bundle_hw.instance_for(odd)

    def test_clock_defaults_to_device(self):
        acc = TileArchAccelerator.build(make_workload(), PYNQ_Z1, parallel_factor=8)
        assert acc.clock_mhz == PYNQ_Z1.default_clock_mhz


class TestPipelineSimulator:
    def test_latency_positive_and_finite(self):
        acc = TileArchAccelerator.build(make_workload(), PYNQ_Z1, parallel_factor=8)
        trace = TilePipelineSimulator(acc).run()
        assert trace.total_cycles > 0
        assert trace.latency_ms > 0
        assert 0.0 < trace.pipeline_efficiency <= 1.0

    def test_bundle_traces_cover_all_bundles(self):
        acc = TileArchAccelerator.build(make_workload(reps=3), PYNQ_Z1, parallel_factor=8)
        trace = TilePipelineSimulator(acc).run()
        indices = {t.bundle_index for t in trace.bundle_traces}
        assert {0, 1, 2}.issubset(indices)

    def test_higher_clock_lower_latency(self):
        wl = make_workload()
        slow = TileArchAccelerator.build(wl, PYNQ_Z1, parallel_factor=8, clock_mhz=100.0)
        fast = TileArchAccelerator.build(wl, PYNQ_Z1, parallel_factor=8, clock_mhz=150.0)
        assert TilePipelineSimulator(fast).latency_ms() < TilePipelineSimulator(slow).latency_ms()

    def test_more_compute_more_latency(self):
        small = TileArchAccelerator.build(make_workload(channels=16), PYNQ_Z1, parallel_factor=8)
        large = TileArchAccelerator.build(make_workload(channels=64), PYNQ_Z1, parallel_factor=8)
        assert (TilePipelineSimulator(large).latency_ms()
                > TilePipelineSimulator(small).latency_ms())

    def test_wider_features_more_latency(self):
        narrow = TileArchAccelerator.build(make_workload(feature_bits=8), PYNQ_Z1, parallel_factor=8)
        wide = TileArchAccelerator.build(make_workload(feature_bits=16), PYNQ_Z1, parallel_factor=8)
        assert (TilePipelineSimulator(wide).latency_ms()
                >= TilePipelineSimulator(narrow).latency_ms())

    def test_higher_pf_lower_latency(self):
        wl = make_workload(channels=64)
        small = TileArchAccelerator.build(wl, PYNQ_Z1, parallel_factor=4)
        large = TileArchAccelerator.build(wl, PYNQ_Z1, parallel_factor=64)
        assert TilePipelineSimulator(large).latency_ms() < TilePipelineSimulator(small).latency_ms()

    def test_pipelining_beats_sequential_sum(self):
        """The pipelined schedule is faster than executing stages back to back."""
        acc = TileArchAccelerator.build(make_workload(), PYNQ_Z1, parallel_factor=8,
                                        tile=TileConfig(8, 16))
        trace = TilePipelineSimulator(acc).run()
        for bundle_trace in trace.bundle_traces:
            if bundle_trace.num_tiles <= 1 or not bundle_trace.stages:
                continue
            sequential = bundle_trace.num_tiles * sum(
                s.cycles_per_tile for s in bundle_trace.stages
            )
            assert bundle_trace.total_cycles <= sequential + 1e-6

    def test_bigger_device_not_slower(self):
        wl = make_workload(channels=64)
        pynq = TileArchAccelerator.build(wl, PYNQ_Z1, parallel_factor=16)
        zc706 = TileArchAccelerator.build(wl, ZC706, parallel_factor=16)
        assert TilePipelineSimulator(zc706).latency_ms() <= TilePipelineSimulator(pynq).latency_ms() * 1.2
