"""Tests for Pareto utilities, constraints and the design-space description."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bundle_generation import get_bundle
from repro.core.constraints import LatencyTarget, ResourceConstraint
from repro.core.design_space import CoDesignSpace, DesignPoint, IPInstanceSpec
from repro.core.pareto import group_by, pareto_front
from repro.hw.device import PYNQ_Z1
from repro.hw.resource import ResourceVector
from repro.nn.quantization import W8A8


class TestParetoFront:
    def test_simple_front(self):
        # (cost, value) points; (1, 1) and (3, 5) are non-dominated.
        points = [(1.0, 1.0), (2.0, 1.0), (3.0, 5.0), (4.0, 4.0)]
        front = pareto_front(points, cost=lambda p: p[0], value=lambda p: p[1])
        assert front == [(1.0, 1.0), (3.0, 5.0)]

    def test_single_point(self):
        assert pareto_front([(1, 2)], cost=lambda p: p[0], value=lambda p: p[1]) == [(1, 2)]

    def test_empty(self):
        assert pareto_front([], cost=lambda p: p[0], value=lambda p: p[1]) == []

    def test_duplicates_kept(self):
        points = [(1.0, 1.0), (1.0, 1.0)]
        front = pareto_front(points, cost=lambda p: p[0], value=lambda p: p[1])
        assert len(front) == 2

    def test_sorted_by_cost(self):
        points = [(5.0, 9.0), (1.0, 2.0), (3.0, 7.0)]
        front = pareto_front(points, cost=lambda p: p[0], value=lambda p: p[1])
        assert front == sorted(front, key=lambda p: p[0])

    def test_cost_and_value_called_once_per_item(self):
        # cost()/value() may be expensive; the dominance loop must work on
        # precomputed values instead of re-invoking them O(n^2) times.
        points = [(4.0, 4.0), (1.0, 1.0), (3.0, 5.0), (2.0, 1.0)]
        calls = {"cost": 0, "value": 0}

        def cost(p):
            calls["cost"] += 1
            return p[0]

        def value(p):
            calls["value"] += 1
            return p[1]

        front = pareto_front(points, cost=cost, value=value)
        assert front == [(1.0, 1.0), (3.0, 5.0)]
        assert calls["cost"] == len(points)
        assert calls["value"] == len(points)

    # Coordinates drawn from a small pool plus a continuous range, so ties
    # and exact duplicates occur constantly instead of almost never.
    _coord = st.one_of(st.sampled_from([0.0, 1.0, 1.5, 2.0, 3.0]), st.floats(0, 10))

    @staticmethod
    def _brute_force_front(points):
        """Reference O(n^2) dominance scan (the pre-optimization semantics)."""

        def dominated(i):
            ci, vi = points[i][0], points[i][1]
            for j, q in enumerate(points):
                cj, vj = q[0], q[1]
                if j != i and cj <= ci and vj >= vi and (cj < ci or vj > vi):
                    return True
            return False

        front = [p for i, p in enumerate(points) if not dominated(i)]
        front.sort(key=lambda p: p[0])
        return front

    @given(st.lists(st.tuples(_coord, _coord), max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_matches_bruteforce_reference(self, raw):
        # Tag each point with its index so list equality also pins the exact
        # ordering of equal-cost survivors (stable, input order).
        points = [(c, v, i) for i, (c, v) in enumerate(raw)]
        front = pareto_front(points, cost=lambda p: p[0], value=lambda p: p[1])
        assert front == self._brute_force_front(points)

    def test_equal_cost_group_keeps_all_best_value_duplicates(self):
        points = [(1.0, 5.0, "a"), (1.0, 5.0, "b"), (1.0, 4.0, "c")]
        front = pareto_front(points, cost=lambda p: p[0], value=lambda p: p[1])
        assert front == [(1.0, 5.0, "a"), (1.0, 5.0, "b")]

    def test_equal_value_at_higher_cost_is_dominated(self):
        # (2, 5) loses to (1, 5): cost strictly worse, value merely equal.
        points = [(1.0, 5.0), (2.0, 5.0)]
        front = pareto_front(points, cost=lambda p: p[0], value=lambda p: p[1])
        assert front == [(1.0, 5.0)]

    @given(st.lists(st.tuples(st.floats(0, 100), st.floats(0, 100)), min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_front_members_not_dominated(self, points):
        front = pareto_front(points, cost=lambda p: p[0], value=lambda p: p[1])
        assert front  # never empty for non-empty input
        for member in front:
            dominated = any(
                other[0] <= member[0] and other[1] >= member[1]
                and (other[0] < member[0] or other[1] > member[1])
                for other in points
            )
            assert not dominated

    @given(st.lists(st.tuples(st.floats(0, 100), st.floats(0, 100)), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_best_value_point_always_on_front(self, points):
        front = pareto_front(points, cost=lambda p: p[0], value=lambda p: p[1])
        best_value = max(p[1] for p in points)
        assert any(p[1] == best_value for p in front)


class TestGroupBy:
    def test_groups_cover_all_items(self):
        items = list(range(10))
        groups = group_by(items, key=float, num_groups=3)
        assert sum(len(v) for v in groups.values()) == 10

    def test_single_value_single_group(self):
        groups = group_by([1, 1, 1], key=float, num_groups=3)
        assert len(groups) == 1

    def test_empty(self):
        assert group_by([], key=float, num_groups=3) == {}

    def test_invalid_num_groups(self):
        with pytest.raises(ValueError):
            group_by([1], key=float, num_groups=0)

    def test_max_key_lands_in_last_group(self):
        # The maximum key sits exactly on the upper bin edge; the index clamp
        # must fold it into group num_groups - 1, never a phantom extra bin.
        groups = group_by([0.0, 5.0, 10.0], key=float, num_groups=2)
        assert set(groups) == {0, 1}
        assert groups[1] == [5.0, 10.0]

    @given(
        st.lists(st.floats(-50, 50), min_size=1, max_size=30),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=100, deadline=None)
    def test_partition_properties(self, keys, num_groups):
        groups = group_by(keys, key=float, num_groups=num_groups)
        # A partition: every item lands in exactly one valid bin, and bins
        # respect the key order (items of bin i never exceed bin i+1's).
        assert sorted(x for members in groups.values() for x in members) == sorted(keys)
        assert all(0 <= index < num_groups for index in groups)
        for index, members in groups.items():
            for other, other_members in groups.items():
                if index < other:
                    assert max(members) <= min(other_members)


class TestLatencyTarget:
    def test_latency_from_fps(self):
        target = LatencyTarget(fps=20.0)
        assert target.latency_ms == pytest.approx(50.0)

    def test_band_membership(self):
        target = LatencyTarget(fps=10.0, tolerance_ms=5.0)
        assert target.within_band(98.0)
        assert target.within_band(104.9)
        assert not target.within_band(110.0)
        assert not target.within_band(50.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyTarget(fps=0.0)
        with pytest.raises(ValueError):
            LatencyTarget(fps=10.0, tolerance_ms=0.0)

    def test_str(self):
        assert "FPS" in str(LatencyTarget(fps=15.0))


class TestResourceConstraint:
    def test_for_device(self):
        constraint = ResourceConstraint.for_device(PYNQ_Z1)
        assert constraint.satisfied_by(ResourceVector(lut=1000, ff=1000, dsp=10, bram=10))
        assert not constraint.satisfied_by(ResourceVector(dsp=500))

    def test_utilization_limit(self):
        constraint = ResourceConstraint.for_device(PYNQ_Z1, utilization_limit=0.5)
        assert not constraint.satisfied_by(ResourceVector(dsp=150))
        assert constraint.satisfied_by(ResourceVector(dsp=100))

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            ResourceConstraint.for_device(PYNQ_Z1, utilization_limit=0.0)


class TestDesignSpace:
    def _point(self) -> DesignPoint:
        return DesignPoint(
            num_layers=12,
            ip_templates=("conv3x3", "conv1x1", "dwconv3x3"),
            ip_instances=(
                IPInstanceSpec("dwconv3x3", parallel_factor=16, quantization=W8A8, layers=(1, 3)),
                IPInstanceSpec("conv1x1", parallel_factor=16, quantization=W8A8, layers=(2, 4)),
            ),
            channel_expansion=(2.0, 1.5, 1.3),
            downsample_layers=(1, 2),
            bundle=get_bundle(13),
        )

    def test_design_point_describe(self):
        text = self._point().describe()
        assert "L=12" in text
        assert "PF=16" in text
        assert "Bundle 13" in text

    def test_design_point_affects_all_objectives(self):
        affects = self._point().affects
        assert affects["channel_expansion"] == ("accuracy", "performance", "resource")
        assert "accuracy" not in affects["ip_instances"]

    def test_design_point_validation(self):
        with pytest.raises(ValueError):
            DesignPoint(num_layers=0, ip_templates=(), ip_instances=(),
                        channel_expansion=(), downsample_layers=())
        with pytest.raises(ValueError):
            IPInstanceSpec("conv3x3", parallel_factor=0, quantization=W8A8)

    def test_codesign_space_size_grows_with_bundles(self):
        small = CoDesignSpace(bundles=(get_bundle(13),))
        large = CoDesignSpace(bundles=(get_bundle(13), get_bundle(1), get_bundle(3)))
        assert large.approximate_size == pytest.approx(3 * small.approximate_size)

    def test_codesign_space_validation(self):
        with pytest.raises(ValueError):
            CoDesignSpace(bundles=())

    def test_codesign_space_is_combinatorial(self):
        space = CoDesignSpace(bundles=tuple(get_bundle(i) for i in (1, 3, 13)))
        assert space.approximate_size > 1e6
