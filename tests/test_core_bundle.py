"""Tests for Bundle-Arch: bundles, layer specs and bundle generation."""

from __future__ import annotations

import pytest

from repro.core.bundle import Bundle, LayerSpec
from repro.core.bundle_generation import (
    DEFAULT_BUNDLE_SIGNATURES,
    default_bundle_catalog,
    generate_bundles,
    get_bundle,
)


class TestLayerSpec:
    def test_ip_key(self):
        assert LayerSpec("conv", 3).ip_key == "conv3x3"
        assert LayerSpec("dwconv", 7).ip_key == "dwconv7x7"
        assert LayerSpec("activation").ip_key == "activation"

    def test_expand_only_on_conv(self):
        with pytest.raises(ValueError):
            LayerSpec("dwconv", 3, expand=True)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            LayerSpec("attention", 1)

    def test_is_compute(self):
        assert LayerSpec("conv", 1).is_compute
        assert not LayerSpec("pool", 2).is_compute


class TestBundle:
    def test_from_signature_structure(self):
        bundle = Bundle.from_signature(13, "dwconv3x3+conv1x1")
        assert bundle.signature == "dwconv3x3+conv1x1"
        kinds = [l.kind for l in bundle.layers]
        assert kinds == ["dwconv", "activation", "conv", "activation"]

    def test_expansion_spot_is_last_conv(self):
        bundle = Bundle.from_signature(1, "conv3x3+conv1x1")
        expanding = [l for l in bundle.compute_layers if l.expand]
        assert len(expanding) == 1
        assert expanding[0].kernel == 1

    def test_dw_only_bundle_cannot_expand(self):
        bundle = Bundle.from_signature(10, "dwconv3x3")
        assert not bundle.can_expand_channels

    def test_max_two_compute_ips(self):
        with pytest.raises(ValueError):
            Bundle.from_signature(99, "conv3x3+conv3x3+conv3x3")

    def test_needs_compute_layer(self):
        with pytest.raises(ValueError):
            Bundle(bundle_id=1, layers=(LayerSpec("activation"),))

    def test_ip_keys_deduplicated(self):
        bundle = Bundle.from_signature(2, "conv3x3+conv3x3")
        assert bundle.ip_keys == ["conv3x3", "activation"]

    def test_display_name(self):
        bundle = Bundle.from_signature(13, "dwconv3x3+conv1x1")
        assert "13" in bundle.display_name and "dwconv3x3" in bundle.display_name

    def test_invalid_signature(self):
        with pytest.raises(ValueError):
            Bundle.from_signature(1, "")
        with pytest.raises(ValueError):
            Bundle.from_signature(1, "convAxA")


class TestDefaultCatalog:
    def test_exactly_18_bundles(self, catalog):
        assert len(catalog) == 18
        assert len(DEFAULT_BUNDLE_SIGNATURES) == 18

    def test_ids_sequential(self, catalog):
        assert [b.bundle_id for b in catalog] == list(range(1, 19))

    def test_bundle13_matches_paper(self):
        """Fig. 6: the final designs use Bundle 13 = dw-conv3x3 + conv1x1."""
        assert get_bundle(13).signature == "dwconv3x3+conv1x1"

    def test_bundle1_and_3_are_conv_heavy(self):
        assert get_bundle(1).signature.startswith("conv3x3")
        assert get_bundle(3).signature.startswith("conv5x5")

    def test_signatures_unique(self, catalog):
        signatures = [b.signature for b in catalog]
        assert len(signatures) == len(set(signatures))

    def test_all_respect_compute_ip_limit(self, catalog):
        assert all(len(b.compute_layers) <= 2 for b in catalog)

    def test_get_bundle_invalid_id(self):
        with pytest.raises(KeyError):
            get_bundle(99)


class TestGenerateBundles:
    def test_generates_unique_signatures(self):
        bundles = generate_bundles()
        signatures = [b.signature for b in bundles]
        assert len(signatures) == len(set(signatures))

    def test_single_ip_toggle(self):
        with_single = generate_bundles(include_single_ip=True)
        without_single = generate_bundles(include_single_ip=False)
        assert len(with_single) > len(without_single)
        assert all("+" in b.signature for b in without_single)

    def test_channel_mixing_filter(self):
        mixed_only = generate_bundles(require_channel_mixing=True)
        assert all(
            any(not part.startswith("dw") for part in b.signature.split("+"))
            for b in mixed_only
        )

    def test_small_pool(self):
        bundles = generate_bundles(compute_ips=("conv3x3", "dwconv3x3"), max_compute_ips=2)
        # 2 singles + 4 ordered pairs (with repetition) = 6.
        assert len(bundles) == 6

    def test_covers_default_catalog_signatures(self):
        generated = {b.signature for b in generate_bundles()}
        assert set(DEFAULT_BUNDLE_SIGNATURES).issubset(generated)

    def test_invalid_max_ips(self):
        with pytest.raises(ValueError):
            generate_bundles(max_compute_ips=0)
