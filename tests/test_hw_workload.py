"""Tests for layer / network workload descriptions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw.workload import LayerWorkload, NetworkWorkload, workload_from_model
from repro.nn import (
    BBoxHead,
    BatchNorm2D,
    Conv2D,
    DepthwiseConv2D,
    MaxPool2D,
    ReLU4,
    Sequential,
)


def conv(kernel=3, c_in=8, c_out=16, h=16, w=32, stride=1, bundle=-1) -> LayerWorkload:
    return LayerWorkload(kind="conv", kernel=kernel, in_channels=c_in, out_channels=c_out,
                         in_height=h, in_width=w, stride=stride, bundle_index=bundle)


class TestLayerWorkload:
    def test_conv_macs(self):
        layer = conv(kernel=3, c_in=8, c_out=16, h=16, w=32)
        assert layer.macs == 9 * 8 * 16 * 16 * 32

    def test_dwconv_macs(self):
        layer = LayerWorkload(kind="dwconv", kernel=3, in_channels=8, out_channels=8,
                              in_height=16, in_width=16)
        assert layer.macs == 9 * 8 * 16 * 16

    def test_stride_halves_output(self):
        layer = conv(stride=2, h=16, w=32)
        assert layer.output_shape == (16, 8, 16)

    def test_params(self):
        layer = conv(kernel=3, c_in=8, c_out=16)
        assert layer.params == 9 * 8 * 16 + 16
        norm = LayerWorkload(kind="norm", kernel=1, in_channels=8, out_channels=8,
                             in_height=4, in_width=4)
        assert norm.params == 16

    def test_is_compute(self):
        assert conv().is_compute
        act = LayerWorkload(kind="activation", kernel=1, in_channels=8, out_channels=8,
                            in_height=4, in_width=4)
        assert not act.is_compute

    def test_ip_key(self):
        assert conv(kernel=5).ip_key == "conv5x5"
        dw = LayerWorkload(kind="dwconv", kernel=7, in_channels=8, out_channels=8,
                           in_height=4, in_width=4)
        assert dw.ip_key == "dwconv7x7"
        head = LayerWorkload(kind="head", kernel=1, in_channels=8, out_channels=4,
                             in_height=4, in_width=4)
        assert head.ip_key == "conv1x1"

    def test_validation(self):
        with pytest.raises(ValueError):
            LayerWorkload(kind="fft", kernel=3, in_channels=8, out_channels=8,
                          in_height=4, in_width=4)
        with pytest.raises(ValueError):
            conv(kernel=0)
        with pytest.raises(ValueError):
            conv(c_in=0)


class TestNetworkWorkload:
    def _workload(self) -> NetworkWorkload:
        layers = [
            conv(c_in=3, c_out=16, h=32, w=64, stride=2, bundle=-1),
            LayerWorkload(kind="dwconv", kernel=3, in_channels=16, out_channels=16,
                          in_height=16, in_width=32, bundle_index=0),
            conv(kernel=1, c_in=16, c_out=32, h=16, w=32, bundle=0),
            LayerWorkload(kind="dwconv", kernel=3, in_channels=32, out_channels=32,
                          in_height=8, in_width=16, stride=1, bundle_index=1),
            conv(kernel=1, c_in=32, c_out=64, h=8, w=16, bundle=1),
            LayerWorkload(kind="head", kernel=1, in_channels=64, out_channels=4,
                          in_height=8, in_width=16, bundle_index=-1),
        ]
        return NetworkWorkload(layers=layers, input_shape=(3, 32, 64),
                               weight_bits=8, feature_bits=8, name="test")

    def test_totals(self):
        wl = self._workload()
        assert wl.total_macs == sum(l.macs for l in wl.layers)
        assert wl.total_params == sum(l.params for l in wl.layers)
        assert wl.compute_depth == 6
        assert wl.max_channels == 64

    def test_bundle_grouping(self):
        wl = self._workload()
        assert wl.num_bundles == 2
        assert wl.bundle_indices() == [0, 1]
        assert len(wl.layers_in_bundle(0)) == 2
        assert len(wl.layers_in_bundle(5)) == 0

    def test_ip_keys_unique_and_ordered(self):
        wl = self._workload()
        keys = wl.ip_keys()
        assert keys[0] == "conv3x3"
        assert len(keys) == len(set(keys))

    def test_byte_accounting(self):
        wl = self._workload()
        assert wl.weight_bytes() == pytest.approx(wl.total_params * 1.0)
        assert wl.feature_bytes() > 0

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            NetworkWorkload(layers=[], input_shape=(3, 8, 8))


class TestWorkloadFromModel:
    def test_model_conversion_matches_ops(self, rng):
        model = Sequential([
            Conv2D(3, 8, 3, stride=2, rng=0),
            BatchNorm2D(8),
            ReLU4(),
            DepthwiseConv2D(8, 3, rng=0),
            Conv2D(8, 16, 1, rng=0),
            MaxPool2D(2),
            BBoxHead(16, rng=0),
        ])
        wl = workload_from_model(model, (3, 16, 32), weight_bits=8, feature_bits=8)
        kinds = [l.kind for l in wl.layers]
        assert kinds == ["conv", "norm", "activation", "dwconv", "conv", "pool", "head"]
        # The conv/dwconv MAC counts agree with the model's own accounting.
        conv_macs = sum(l.macs for l in wl.layers if l.kind in ("conv", "dwconv", "head"))
        model_ops = model.num_ops((3, 16, 32))
        assert conv_macs == pytest.approx(model_ops, rel=0.15)

    def test_quantization_metadata_propagates(self, rng):
        model = Sequential([Conv2D(3, 4, 3, rng=0)])
        wl = workload_from_model(model, (3, 8, 8), weight_bits=8, feature_bits=16, name="x")
        assert wl.weight_bits == 8 and wl.feature_bits == 16 and wl.name == "x"
