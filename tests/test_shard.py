"""Tests for the cross-machine distributed sweep tier (:mod:`repro.shard`)."""

from __future__ import annotations

import json
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.device import get_device
from repro.shard import (
    CoordinatorTransport,
    LeaseBoard,
    ShardCoordinator,
    ShardProtocolError,
    ShardWorker,
    get_json,
    parse_bind,
    post_json,
    prepared_from_wire,
)
from repro.sweep import (
    CHECKPOINT_FILENAME,
    PreparedDevice,
    SweepRunner,
    build_grid,
    load_checkpoint,
    prepare_device,
    run_sweep_task,
)
from repro.utils.serialization import to_jsonable

#: Shared tiny sweep budget: every cell completes in well under a second.
TINY = dict(tolerance_ms=10.0, iterations=25, num_candidates=1, top_bundles=2, seed=1)


def journal_bytes(outcomes):
    """The canonical byte form of each outcome's journal, in order."""
    return [json.dumps(to_jsonable(o.journal), sort_keys=True) for o in outcomes]


# ---------------------------------------------------------------- bind parsing
class TestParseBind:
    def test_host_and_port(self):
        assert parse_bind("0.0.0.0:9000") == ("0.0.0.0", 9000)

    def test_defaults(self):
        assert parse_bind("") == ("127.0.0.1", 8765)
        assert parse_bind("myhost") == ("myhost", 8765)
        assert parse_bind(":9001") == ("127.0.0.1", 9001)

    def test_invalid_port(self):
        with pytest.raises(ValueError, match="invalid port"):
            parse_bind("host:http")
        with pytest.raises(ValueError, match="out of range"):
            parse_bind("host:70000")


# --------------------------------------------------- PreparedDevice wire trip
class TestPreparedDeviceWire:
    def test_wire_round_trip_is_bit_exact(self):
        task = build_grid("pynq-z1", "scd", [40.0], **TINY)[0]
        prepared = prepare_device(task)
        # Through real JSON text, as the HTTP transport ships it.
        clone = prepared_from_wire(json.loads(json.dumps(prepared.to_wire())))
        assert clone == prepared, "floats must survive the JSON trip bit-exact"
        assert clone.coefficients == prepared.coefficients
        assert clone.selected_bundle_ids == prepared.selected_bundle_ids

    def test_wire_round_trip_execution_matches_in_process(self, tmp_path):
        """Acceptance: a shipped artifact yields byte-identical journals."""
        task = build_grid("pynq-z1", "random", [40.0], **TINY)[0]
        prepared = prepare_device(task)
        clone = prepared_from_wire(json.loads(json.dumps(prepared.to_wire())))
        inline = run_sweep_task(task, str(tmp_path / "a"), prepared=prepared)
        shipped = run_sweep_task(task, str(tmp_path / "b"), prepared=clone)
        assert journal_bytes([inline]) == journal_bytes([shipped])

    def test_from_wire_rejects_missing_coefficients(self):
        task = build_grid("pynq-z1", "scd", [40.0], **TINY)[0]
        payload = prepare_device(task).to_wire()
        del payload["coefficients"]
        with pytest.raises(ValueError, match="coefficients"):
            PreparedDevice.from_wire(payload)

    def test_wire_key_separates_prep_axes(self):
        base = build_grid("pynq-z1", "scd", [40.0], **TINY)[0]
        util = build_grid("pynq-z1", "scd", [40.0], tolerance_ms=10.0, iterations=25,
                          num_candidates=1, top_bundles=2, seed=1,
                          utilizations=[0.8])[0]
        assert prepare_device(base).wire_key != prepare_device(util).wire_key

    def test_wire_key_is_float_exact(self):
        """Regression: ':g' formatting (6 significant digits) aliased
        preparations whose floats differ past the 6th digit, silently
        shipping workers the wrong artifact."""
        import dataclasses

        prepared = prepare_device(build_grid("pynq-z1", "scd", [40.0], **TINY)[0])
        close = dataclasses.replace(prepared, utilization=prepared.utilization
                                    - 1e-9)
        assert close.utilization != prepared.utilization
        assert close.wire_key != prepared.wire_key

    @settings(max_examples=6, deadline=None)
    @given(
        device=st.sampled_from(["pynq-z1", "ultra96", "zc706"]),
        clock_factor=st.sampled_from([None, 0.6, 1.0]),
        utilization=st.sampled_from([1.0, 0.8, 0.5]),
    )
    def test_wire_trip_property_over_prep_keys(self, device, clock_factor, utilization):
        """Serialize → deserialize → execute must be invisible for every
        (device, clock, utilization) preparation key."""
        clocks = None
        if clock_factor is not None:
            clocks = [round(get_device(device).default_clock_mhz * clock_factor, 1)]
        task = build_grid(device, "scd", [40.0], tolerance_ms=10.0, iterations=10,
                          num_candidates=1, top_bundles=2, seed=1,
                          clocks_mhz=clocks, utilizations=[utilization])[0]
        prepared = prepare_device(task)
        clone = prepared_from_wire(json.loads(json.dumps(prepared.to_wire())))
        assert clone == prepared
        inline = run_sweep_task(task, prepared=prepared)
        shipped = run_sweep_task(task, prepared=clone)
        assert journal_bytes([inline]) == journal_bytes([shipped])


# ------------------------------------------------------------------ lease board
def make_board(tasks, **kwargs):
    order = list(range(len(tasks)))
    return LeaseBoard(dict(enumerate(tasks)), order, **kwargs)


def fake_outcome(task):
    from repro.sweep import SweepOutcome

    return SweepOutcome(
        task=task, journal={"records": [], "candidates": []}, selected_bundles=[13],
        num_candidates=1, best_latency_ms=10.0, best_gap_ms=0.5, evaluations=3,
        memory_hits=0, memory_misses=3, disk_hits=0, disk_misses=0,
        estimator_calls=3, duration_s=0.1,
    )


class TestLeaseBoard:
    def tasks(self, n=3):
        return build_grid("pynq-z1", ["scd", "random", "annealing"][:n],
                          [40.0], **TINY)

    def test_lease_order_and_attempts(self):
        tasks = self.tasks(3)
        board = make_board(tasks)
        worker = board.register("a")
        cells = board.lease(worker, 2)
        assert [c.index for c in cells] == [0, 1]
        assert all(c.attempts == 1 and c.status == "leased" for c in cells)
        assert board.lease(worker, 5)[0].index == 2
        assert board.lease(worker, 1) == []

    def test_report_outcome_settles_once(self):
        tasks = self.tasks(1)
        settled = []
        board = make_board(tasks, on_outcome=lambda i, o: settled.append(i))
        worker = board.register("a")
        lease_id = board.lease(worker, 1)[0].lease_id
        accepted, reason = board.report(worker, lease_id, tasks[0].uid,
                                        outcome=fake_outcome(tasks[0]))
        assert (accepted, reason) == (True, "settled")
        assert board.done and settled == [0]
        duplicate = board.report(worker, lease_id, tasks[0].uid,
                                 outcome=fake_outcome(tasks[0]))
        assert duplicate == (False, "duplicate")
        assert len(board.outcomes) == 1 and settled == [0]

    def test_report_validates_lease_and_uid(self):
        tasks = self.tasks(1)
        board = make_board(tasks)
        worker = board.register("a")
        cell = board.lease(worker, 1)[0]
        assert board.report(worker, "l999", tasks[0].uid,
                            outcome=fake_outcome(tasks[0])) == (False, "unknown-lease")
        assert board.report(worker, cell.lease_id, "not-a-uid",
                            outcome=fake_outcome(tasks[0])) == (False, "unknown-cell")
        with pytest.raises(ShardProtocolError, match="unknown worker"):
            board.report("w999", cell.lease_id, tasks[0].uid,
                         outcome=fake_outcome(tasks[0]))

    def test_error_reports_requeue_then_fail(self):
        tasks = self.tasks(1)
        failures = []
        board = make_board(tasks, retries=1,
                           on_failure=lambda i, f: failures.append(f))
        worker = board.register("a")
        cell = board.lease(worker, 1)[0]
        accepted, reason = board.report(worker, cell.lease_id, tasks[0].uid,
                                        error="boom")
        assert (accepted, reason) == (True, "requeued")
        cell = board.lease(worker, 1)[0]
        assert cell.attempts == 2
        accepted, reason = board.report(worker, cell.lease_id, tasks[0].uid,
                                        error="boom again", duration_s=0.5)
        assert (accepted, reason) == (True, "settled")
        assert board.done
        assert failures[0].kind == "error" and failures[0].attempts == 2
        assert failures[0].duration_s == pytest.approx(0.5)

    def test_expired_lease_requeues_bounded(self):
        tasks = self.tasks(1)
        failures = []
        board = make_board(tasks, retries=1, lease_ttl_s=0.05,
                           on_failure=lambda i, f: failures.append(f))
        worker = board.register("dying")
        assert board.lease(worker, 1)
        time.sleep(0.08)
        assert board.expire_leases() == 1
        cells = board.lease(worker, 1)  # requeued, second (and last) attempt
        assert cells and cells[0].attempts == 2
        time.sleep(0.08)
        assert board.expire_leases() == 1
        assert board.done
        assert failures and failures[0].kind == "crash"
        assert "stopped heartbeating" in failures[0].error

    def test_heartbeat_extends_lease_and_reports_lost(self):
        tasks = self.tasks(1)
        board = make_board(tasks, lease_ttl_s=0.3)
        worker = board.register("a")
        cell = board.lease(worker, 1)[0]
        for _ in range(3):
            time.sleep(0.15)
            assert board.heartbeat(worker, [cell.lease_id]) == []
            assert board.expire_leases() == 0
        assert board.heartbeat(worker, ["l999"]) == ["l999"]

    def test_cell_deadline_overrides_live_heartbeat(self):
        """A stalled cell is requeued even while its worker heartbeats."""
        tasks = self.tasks(1)
        board = make_board(tasks, retries=0, lease_ttl_s=30.0,
                           timeouts={0: 0.05})
        worker = board.register("staller")
        lease_id = board.lease(worker, 1)[0].lease_id
        assert board.heartbeat(worker, [lease_id]) == []
        time.sleep(0.08)
        # The heartbeat itself runs the reaper: the stalled cell is revoked
        # even though its worker is demonstrably alive.
        assert board.heartbeat(worker, [lease_id]) == [lease_id]
        assert board.done
        assert board.failures[0].kind == "timeout"

    def test_late_report_after_requeue_is_first_wins(self):
        """A revoked worker's result still counts when it arrives first."""
        tasks = self.tasks(1)
        board = make_board(tasks, retries=2, lease_ttl_s=0.05)
        slow = board.register("slow")
        stale_lease = board.lease(slow, 1)[0].lease_id
        time.sleep(0.08)
        board.expire_leases()
        fast = board.register("fast")
        fresh_lease = board.lease(fast, 1)[0].lease_id
        assert fresh_lease != stale_lease
        # The presumed-dead worker reports first: accepted (work not wasted).
        assert board.report(slow, stale_lease, tasks[0].uid,
                            outcome=fake_outcome(tasks[0])) == (True, "settled")
        # The reassigned worker's duplicate is dropped deterministically.
        assert board.report(fast, fresh_lease, tasks[0].uid,
                            outcome=fake_outcome(tasks[0])) == (False, "duplicate")
        assert len(board.outcomes) == 1 and board.done

    def test_late_report_for_requeued_cell_leaves_queue_clean(self):
        """Regression: a late result for a cell sitting requeued (expired but
        not yet re-leased) must settle it exactly once — and pull it out of
        the queue so it can never be leased, re-run and settled again."""
        tasks = self.tasks(1)
        settled = []
        board = make_board(tasks, retries=3, lease_ttl_s=0.05,
                           on_outcome=lambda i, o: settled.append(i))
        worker = board.register("slow")
        stale_lease = board.lease(worker, 1)[0].lease_id
        time.sleep(0.08)
        board.expire_leases()  # cell requeued, back in the lease queue
        assert board.report(worker, stale_lease, tasks[0].uid,
                            outcome=fake_outcome(tasks[0])) == (True, "settled")
        assert board.done and settled == [0]
        assert board.lease(worker, 5) == [], "settled cell must not be re-leased"
        assert len(board.outcomes) == 1 and not board.failures

    def test_stale_error_reports_are_not_charged_again(self):
        """Regression: an error report from an expired (or superseded) lease
        must not double-requeue the cell or fail it under another worker."""
        tasks = self.tasks(1)
        board = make_board(tasks, retries=1, lease_ttl_s=0.05)
        slow = board.register("slow")
        stale_lease = board.lease(slow, 1)[0].lease_id
        time.sleep(0.08)
        board.expire_leases()  # requeued: that attempt is already accounted
        assert board.report(slow, stale_lease, tasks[0].uid,
                            error="late boom") == (False, "stale-lease")
        fast = board.register("fast")
        cells = board.lease(fast, 5)
        assert len(cells) == 1, "exactly one queued copy of the cell"
        fresh_lease = cells[0].lease_id
        assert board.lease(fast, 5) == []
        # A stale error while another worker holds the cell: also inert.
        assert board.report(slow, stale_lease, tasks[0].uid,
                            error="later boom") == (False, "stale-lease")
        assert board.report(fast, fresh_lease, tasks[0].uid,
                            outcome=fake_outcome(tasks[0])) == (True, "settled")
        assert board.done and not board.failures

    def test_backoff_delays_requeued_cell(self):
        tasks = self.tasks(1)
        board = make_board(tasks, retries=1, backoff=lambda attempts: 0.2)
        worker = board.register("a")
        cell = board.lease(worker, 1)[0]
        board.report(worker, cell.lease_id, tasks[0].uid, error="flaky")
        assert board.lease(worker, 1) == [], "cell must be inside its backoff window"
        time.sleep(0.25)
        assert board.lease(worker, 1), "cell must come back after the backoff"


# ------------------------------------------------------------- HTTP coordinator
def serve(coordinator, **kwargs):
    stop = threading.Event()
    thread = threading.Thread(
        target=coordinator.serve_until_done,
        kwargs={"stop": stop, "tick_s": 0.05, "linger_s": 0.2, **kwargs},
        daemon=True,
    )
    thread.start()
    return stop, thread


class TestCoordinatorHTTP:
    def test_protocol_round_trip_over_real_sockets(self):
        tasks = build_grid("pynq-z1", "scd", [40.0], **TINY)
        board = make_board(tasks)
        prepared = prepare_device(tasks[0])
        coordinator = ShardCoordinator(
            board, {prepared.wire_key: prepared}, {0: prepared.wire_key}, port=0)
        stop, thread = serve(coordinator)
        try:
            url = coordinator.url
            registration = post_json(url, "/v1/register", {"name": "t", "version": 1})
            worker_id = registration["worker_id"]
            assert registration["grid_size"] == 1

            reply = post_json(url, "/v1/lease",
                              {"worker_id": worker_id, "slots": 1, "known_preps": []})
            assert len(reply["cells"]) == 1
            cell = reply["cells"][0]
            assert cell["uid"] == tasks[0].uid
            shipped = prepared_from_wire(reply["prepared"][cell["prep"]])
            assert shipped == prepared

            # A second lease round advertising the prep does not re-ship it.
            empty = post_json(url, "/v1/lease", {
                "worker_id": worker_id, "slots": 1,
                "known_preps": [cell["prep"]],
            })
            assert empty["cells"] == [] and empty["prepared"] == {}

            heartbeat = post_json(url, "/v1/heartbeat",
                                  {"worker_id": worker_id,
                                   "lease_ids": [cell["lease_id"]]})
            assert heartbeat == {"ok": True, "lost": [], "done": False}

            outcome = run_sweep_task(tasks[0], prepared=prepared)
            report = post_json(url, "/v1/report", {
                "worker_id": worker_id, "lease_id": cell["lease_id"],
                "uid": cell["uid"], "status": "ok",
                "outcome": to_jsonable(outcome), "duration_s": 0.1,
            })
            assert report["accepted"] and report["done"]
            status = get_json(url, "/v1/status")
            assert status["settled"] == 1 and status["done"]
        finally:
            stop.set()
            thread.join(timeout=10.0)

    def test_malformed_requests_rejected_not_fatal(self):
        tasks = build_grid("pynq-z1", "scd", [40.0], **TINY)
        coordinator = ShardCoordinator(make_board(tasks), {}, {0: None}, port=0)
        stop, thread = serve(coordinator)
        try:
            url = coordinator.url
            with pytest.raises(ShardProtocolError, match="missing required field"):
                post_json(url, "/v1/lease", {"slots": 1})
            with pytest.raises(ShardProtocolError, match="unknown worker"):
                post_json(url, "/v1/lease", {"worker_id": "w99", "slots": 1})
            with pytest.raises(ShardProtocolError, match="HTTP 404"):
                post_json(url, "/v1/nope", {})
            with pytest.raises(ShardProtocolError, match="protocol v99"):
                post_json(url, "/v1/register", {"name": "x", "version": 99})
            # The server survived all of it.
            assert get_json(url, "/v1/status")["cells"] == 1
        finally:
            stop.set()
            thread.join(timeout=10.0)


# -------------------------------------------------------------------- end to end
def run_distributed(tasks, *, worker_count=2, worker_workers=1, cache_dir=None,
                    runner_kwargs=None, worker_hook=None, lease_ttl_s=10.0):
    """One coordinator (in a thread) + N in-process serial workers."""
    bound = threading.Event()
    holder = {}

    def on_bound(coordinator):
        holder["url"] = coordinator.url
        bound.set()

    transport = CoordinatorTransport(
        bind=("127.0.0.1", 0), lease_ttl_s=lease_ttl_s, heartbeat_s=0.2,
        poll_s=0.05, linger_s=0.5, on_bound=on_bound,
    )
    runner = SweepRunner(tasks, workers=1, cache_dir=cache_dir,
                         transport=transport, **(runner_kwargs or {}))
    result_holder = {}

    def coordinate():
        result_holder["result"] = runner.run()

    coordinator_thread = threading.Thread(target=coordinate, daemon=True)
    coordinator_thread.start()
    assert bound.wait(timeout=60.0), "coordinator never bound its socket"
    if worker_hook is not None:
        worker_hook(holder["url"])
    workers = [
        ShardWorker(holder["url"], workers=worker_workers, name=f"test-{i}",
                    cache_dir=None)
        for i in range(worker_count)
    ]
    codes = []
    threads = [
        threading.Thread(target=lambda w=w: codes.append(w.run()), daemon=True)
        for w in workers
    ]
    for thread in threads:
        thread.start()
    coordinator_thread.join(timeout=180.0)
    assert not coordinator_thread.is_alive(), "coordinator did not finish"
    for thread in threads:
        thread.join(timeout=60.0)
    return result_holder["result"], workers, codes


class TestDistributedSweep:
    def test_matches_single_machine_run(self, tmp_path):
        """Acceptance: coordinator + 2 workers == workers=1, byte for byte."""
        tasks = build_grid("pynq-z1,ultra96", "scd,random", [40.0], **TINY)
        local = SweepRunner(tasks, workers=1,
                            cache_dir=tmp_path / "local").run()
        distributed, workers, codes = run_distributed(
            tasks, worker_count=2, cache_dir=str(tmp_path / "shard"))
        assert codes == [0, 0]
        assert distributed.ok and len(distributed) == len(tasks)
        assert [o.task for o in distributed.outcomes] == tasks
        assert journal_bytes(local.outcomes) == journal_bytes(distributed.outcomes)
        # Both workers actually participated.
        assert sorted(w.executed for w in workers) == [2, 2]
        # The checkpoint is the standard one: resumable with zero re-runs.
        status = load_checkpoint(tmp_path / "shard" / CHECKPOINT_FILENAME)
        assert set(status.outcomes) == {task.uid for task in tasks}
        resumed = SweepRunner(
            tasks, workers=1, cache_dir=str(tmp_path / "shard"),
            resume_from=str(tmp_path / "shard" / CHECKPOINT_FILENAME),
        ).run()
        assert resumed.reused == len(tasks)
        assert journal_bytes(resumed.outcomes) == journal_bytes(local.outcomes)

    def test_dead_worker_cell_requeued_without_loss_or_duplication(self, tmp_path):
        """Acceptance: killing a worker mid-run loses and duplicates nothing."""
        tasks = build_grid("pynq-z1", "scd,random,annealing", [40.0], **TINY)

        def grab_and_abandon(url):
            # A "worker" that leases the most expensive cell and dies
            # without ever reporting or heartbeating.
            registration = post_json(url, "/v1/register", {"name": "doomed"})
            reply = post_json(url, "/v1/lease", {
                "worker_id": registration["worker_id"], "slots": 1,
                "known_preps": [],
            })
            assert len(reply["cells"]) == 1

        result, workers, codes = run_distributed(
            tasks, worker_count=1, cache_dir=str(tmp_path),
            worker_hook=grab_and_abandon, lease_ttl_s=0.5,
            runner_kwargs={"retries": 1, "retry_backoff_s": 0.0},
        )
        assert codes == [0]
        assert result.ok and len(result) == len(tasks)
        uids = [o.task.uid for o in result.outcomes]
        assert uids == [task.uid for task in tasks], "no loss, no duplicates"
        # The abandoned cell ran on its second assignment.
        assert max(o.attempts for o in result.outcomes) == 2
        status = load_checkpoint(tmp_path / CHECKPOINT_FILENAME)
        assert len(status.outcomes) == len(tasks) and not status.failures

    def test_mixed_backend_grid_with_killed_worker(self, tmp_path):
        """A grid mixing FPGA and GPU targets distributes like a local run,
        including requeue of a cell whose worker died mid-lease."""
        tasks = build_grid("fpga:pynq-z1,gpu:jetson-tx2", "scd,random",
                           [40.0], **TINY)
        assert {t.device for t in tasks} == {"PYNQ-Z1", "gpu:jetson-tx2"}
        local = SweepRunner(tasks, workers=1,
                            cache_dir=tmp_path / "local").run()

        def grab_and_abandon(url):
            registration = post_json(url, "/v1/register", {"name": "doomed"})
            reply = post_json(url, "/v1/lease", {
                "worker_id": registration["worker_id"], "slots": 1,
                "known_preps": [],
            })
            assert len(reply["cells"]) == 1

        distributed, _, codes = run_distributed(
            tasks, worker_count=1, cache_dir=str(tmp_path / "shard"),
            worker_hook=grab_and_abandon, lease_ttl_s=0.5,
            runner_kwargs={"retries": 1, "retry_backoff_s": 0.0},
        )
        assert codes == [0]
        assert distributed.ok and len(distributed) == len(tasks)
        assert [o.task.uid for o in distributed.outcomes] == \
            [task.uid for task in tasks]
        assert max(o.attempts for o in distributed.outcomes) == 2
        assert journal_bytes(local.outcomes) == journal_bytes(distributed.outcomes)

    def test_poisoned_cell_becomes_failure_with_exit_semantics(self, tmp_path, monkeypatch):
        from repro.sweep.runner import FAIL_TASKS_ENV

        tasks = build_grid("pynq-z1", "scd,random", [40.0], **TINY)
        monkeypatch.setenv(FAIL_TASKS_ENV, tasks[1].name)
        result, _, codes = run_distributed(
            tasks, worker_count=1, cache_dir=str(tmp_path),
            runner_kwargs={"retries": 0},
        )
        assert codes == [0]
        assert not result.ok
        assert len(result.outcomes) == 1 and len(result.failures) == 1
        assert result.failures[0].kind == "error"
        assert "injected failure" in result.failures[0].error
        status = load_checkpoint(tmp_path / CHECKPOINT_FILENAME)
        assert set(status.failures) == {tasks[1].uid}

    def test_pooled_worker_matches_serial(self):
        tasks = build_grid("pynq-z1", "scd,random", [40.0], **TINY)
        local = SweepRunner(tasks, workers=1).run()
        distributed, _, codes = run_distributed(
            tasks, worker_count=1, worker_workers=2)
        assert codes == [0]
        assert journal_bytes(local.outcomes) == journal_bytes(distributed.outcomes)


# ----------------------------------------------------------- transport wiring
class TestTransportWiring:
    def test_runner_rejects_invalid_transport(self):
        tasks = build_grid("pynq-z1", "scd", [40.0], **TINY)
        with pytest.raises(TypeError, match="execute"):
            SweepRunner(tasks, transport=object())

    def test_transport_validation(self):
        with pytest.raises(ValueError, match="heartbeat_s"):
            CoordinatorTransport(lease_ttl_s=1.0, heartbeat_s=2.0)
        with pytest.raises(ValueError, match="lease_ttl_s"):
            CoordinatorTransport(lease_ttl_s=0.0)

    def test_local_transport_matches_default(self, tmp_path):
        from repro.shard import LocalTransport

        tasks = build_grid("pynq-z1", "scd,random", [40.0], **TINY)
        default = SweepRunner(tasks, workers=1).run()
        explicit = SweepRunner(tasks, workers=1, transport=LocalTransport()).run()
        assert journal_bytes(default.outcomes) == journal_bytes(explicit.outcomes)

    def test_worker_validation(self):
        with pytest.raises(ValueError, match="workers"):
            ShardWorker("127.0.0.1:1", workers=0)

    def test_worker_without_coordinator_exits_nonzero(self):
        worker = ShardWorker("127.0.0.1:9", workers=1,
                             max_connect_failures=2, reconnect_delay_s=0.01)
        assert worker.run() == 1

    def test_execute_cell_classifies_errors(self):
        from repro.shard import execute_cell

        def boom(task, cache_dir, prepared):
            raise RuntimeError("kaput")

        task = build_grid("pynq-z1", "scd", [40.0], **TINY)[0]
        status, value, duration = execute_cell(boom, task, None, None)
        assert status == "error" and "kaput" in value and duration >= 0

        status, value, _ = execute_cell(
            lambda task, cache_dir, prepared: "garbage", task, None, None)
        assert status == "error" and "instead of SweepOutcome" in value


# --------------------------------------------------------------------- shard CLI
class TestShardCLI:
    def test_worker_rejects_bad_workers(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["shard", "worker", "--connect", "x", "--workers", "0"])

    def test_shard_requires_role(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["shard"])

    def test_coordinator_cross_field_validation_is_a_usage_error(self, capsys):
        """Regression: --heartbeat-s >= --lease-ttl-s and a malformed --bind
        must die as usage errors (exit 2), not ValueError tracebacks."""
        from repro.cli import main

        assert main(["shard", "coordinator", "--lease-ttl-s", "5",
                     "--heartbeat-s", "5"]) == 2
        assert "--heartbeat-s" in capsys.readouterr().err
        assert main(["shard", "coordinator", "--bind", "host:notaport"]) == 2
        assert "--bind" in capsys.readouterr().err

    def test_cli_coordinator_and_worker_round_trip(self, tmp_path, capsys):
        """The two CLI entry points drive a full distributed sweep."""
        from repro.cli import main

        argv = [
            "shard", "coordinator", "--bind", "127.0.0.1:0",
            "--devices", "pynq-z1", "--strategies", "scd,random",
            "--fps", "40", "--tolerance-ms", "10", "--top-bundles", "2",
            "--candidates", "1", "--iterations", "25", "--seed", "1",
            "--lease-ttl-s", "10", "--heartbeat-s", "0.5",
            "--cache-dir", str(tmp_path / "cache"),
            "--report", str(tmp_path / "report.json"),
        ]
        codes = {}

        def coordinate():
            codes["coordinator"] = main(argv)

        thread = threading.Thread(target=coordinate, daemon=True)
        thread.start()
        # The CLI prints the bound URL; poll the cache dir's status instead:
        # reuse a worker pointed at the ephemeral port requires the URL, so
        # wait for the coordinator banner on stdout.
        deadline = time.monotonic() + 60.0
        url = None
        while time.monotonic() < deadline and url is None:
            out = capsys.readouterr().out
            for line in out.splitlines():
                if line.startswith("Coordinator listening on "):
                    url = line.split()[3]
            time.sleep(0.05)
        assert url, "coordinator banner with the bound URL never appeared"
        codes["worker"] = main(["shard", "worker", "--connect", url,
                                "--workers", "1", "--name", "cli-test"])
        thread.join(timeout=120.0)
        assert not thread.is_alive()
        assert codes == {"coordinator": 0, "worker": 0}
        payload = json.loads((tmp_path / "report.json").read_text())
        assert len(payload["sweep"]["outcomes"]) == 2
        assert "comparison" in payload
        out = capsys.readouterr().out
        assert "executed 2 cell(s)" in out
