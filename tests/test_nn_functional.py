"""Unit tests for the low-level numerical kernels in ``repro.nn.functional``."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F


def naive_conv2d(x, weight, bias, stride, pad):
    """Straightforward reference convolution for cross-checking im2col."""
    n, c_in, h, w = x.shape
    c_out, _, kh, kw = weight.shape
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    out = np.zeros((n, c_out, out_h, out_w), dtype=np.float64)
    for b in range(n):
        for oc in range(c_out):
            for i in range(out_h):
                for j in range(out_w):
                    patch = xp[b, :, i * stride:i * stride + kh, j * stride:j * stride + kw]
                    out[b, oc, i, j] = np.sum(patch * weight[oc])
            if bias is not None:
                out[b, oc] += bias[oc]
    return out


class TestConvOutputSize:
    def test_same_padding_stride1(self):
        assert F.conv_output_size(16, 3, 1, 1) == 16

    def test_stride2(self):
        assert F.conv_output_size(16, 3, 2, 1) == 8

    def test_no_padding(self):
        assert F.conv_output_size(10, 3, 1, 0) == 8


class TestIm2Col:
    def test_roundtrip_shapes(self, rng):
        x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        col = F.im2col(x, 3, 3, stride=1, pad=1)
        assert col.shape == (2 * 8 * 8, 3 * 3 * 3)

    def test_col2im_accumulates_overlaps(self, rng):
        x = rng.normal(size=(1, 1, 6, 6)).astype(np.float32)
        col = F.im2col(x, 3, 3, stride=1, pad=1)
        back = F.col2im(col, x.shape, 3, 3, stride=1, pad=1)
        # With overlapping 3x3 windows each interior pixel is visited 9 times.
        assert back[0, 0, 3, 3] == pytest.approx(9 * x[0, 0, 3, 3], rel=1e-5)

    def test_kernel1_identity(self, rng):
        x = rng.normal(size=(2, 4, 5, 5)).astype(np.float32)
        col = F.im2col(x, 1, 1, stride=1, pad=0)
        assert col.shape == (2 * 25, 4)
        np.testing.assert_allclose(
            col.reshape(2, 25, 4).transpose(0, 2, 1).reshape(2, 4, 5, 5), x, rtol=1e-6
        )


class TestConv2D:
    @pytest.mark.parametrize("kernel,stride,pad", [(1, 1, 0), (3, 1, 1), (3, 2, 1), (5, 1, 2)])
    def test_matches_naive(self, rng, kernel, stride, pad):
        x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        w = rng.normal(size=(4, 3, kernel, kernel)).astype(np.float32)
        b = rng.normal(size=4).astype(np.float32)
        out, _ = F.conv2d_forward(x, w, b, stride, pad)
        expected = naive_conv2d(x, w, b, stride, pad)
        np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-4)

    def test_backward_gradient_numeric(self, rng):
        x = rng.normal(size=(1, 2, 5, 5)).astype(np.float64)
        w = rng.normal(size=(3, 2, 3, 3)).astype(np.float64)
        b = np.zeros(3)
        out, col = F.conv2d_forward(x, w, b, 1, 1)
        grad_out = rng.normal(size=out.shape)
        grad_in, grad_w, grad_b = F.conv2d_backward(grad_out, x.shape, col, w, 1, 1)

        # Numeric gradient on a single weight element.
        eps = 1e-5
        w2 = w.copy()
        w2[1, 1, 1, 1] += eps
        out2, _ = F.conv2d_forward(x, w2, b, 1, 1)
        numeric = np.sum((out2 - out) * grad_out) / eps
        assert grad_w[1, 1, 1, 1] == pytest.approx(numeric, rel=1e-3)

        # Numeric gradient on an input element.
        x2 = x.copy()
        x2[0, 0, 2, 2] += eps
        out3, _ = F.conv2d_forward(x2, w, b, 1, 1)
        numeric_in = np.sum((out3 - out) * grad_out) / eps
        assert grad_in[0, 0, 2, 2] == pytest.approx(numeric_in, rel=1e-3)
        assert grad_b.shape == (3,)


class TestDepthwiseConv2D:
    def test_channels_independent(self, rng):
        x = rng.normal(size=(1, 3, 6, 6)).astype(np.float32)
        w = rng.normal(size=(3, 1, 3, 3)).astype(np.float32)
        out, _ = F.depthwise_conv2d_forward(x, w, None, 1, 1)
        # Channel 0 output only depends on channel 0 input.
        x_perturbed = x.copy()
        x_perturbed[0, 1] += 10.0
        out2, _ = F.depthwise_conv2d_forward(x_perturbed, w, None, 1, 1)
        np.testing.assert_allclose(out[0, 0], out2[0, 0], rtol=1e-6)
        assert not np.allclose(out[0, 1], out2[0, 1])

    def test_backward_shapes(self, rng):
        x = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        w = rng.normal(size=(3, 1, 3, 3)).astype(np.float32)
        out, cols = F.depthwise_conv2d_forward(x, w, np.zeros(3, dtype=np.float32), 1, 1)
        grad_in, grad_w, grad_b = F.depthwise_conv2d_backward(
            np.ones_like(out), x.shape, cols, w, 1, 1
        )
        assert grad_in.shape == x.shape
        assert grad_w.shape == w.shape
        assert grad_b.shape == (3,)

    def test_backward_gradient_numeric(self, rng):
        x = rng.normal(size=(1, 2, 5, 5)).astype(np.float64)
        w = rng.normal(size=(2, 1, 3, 3)).astype(np.float64)
        out, cols = F.depthwise_conv2d_forward(x, w, None, 1, 1)
        grad_out = rng.normal(size=out.shape)
        _, grad_w, _ = F.depthwise_conv2d_backward(grad_out, x.shape, cols, w, 1, 1)
        eps = 1e-5
        w2 = w.copy()
        w2[0, 0, 1, 2] += eps
        out2, _ = F.depthwise_conv2d_forward(x, w2, None, 1, 1)
        numeric = np.sum((out2 - out) * grad_out) / eps
        assert grad_w[0, 0, 1, 2] == pytest.approx(numeric, rel=1e-3)


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out, _ = F.max_pool_forward(x, 2, 2)
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_backward_routes_to_argmax(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out, argmax = F.max_pool_forward(x, 2, 2)
        grad = F.max_pool_backward(np.ones_like(out), x.shape, argmax, 2, 2)
        # Gradient lands exactly on the max positions.
        assert grad[0, 0, 1, 1] == 1.0
        assert grad[0, 0, 0, 0] == 0.0
        assert grad.sum() == pytest.approx(4.0)

    def test_max_pool_multichannel_argmax_independent(self, rng):
        x = rng.normal(size=(2, 3, 4, 4)).astype(np.float32)
        out, _ = F.max_pool_forward(x, 2, 2)
        for c in range(3):
            expected = x[:, c].reshape(2, 2, 2, 2, 2).max(axis=(2, 4))
            np.testing.assert_allclose(out[:, c], expected, rtol=1e-6)

    def test_avg_pool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = F.avg_pool_forward(x, 2, 2)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_backward_spreads_gradient(self):
        x = np.ones((1, 1, 4, 4), dtype=np.float32)
        out = F.avg_pool_forward(x, 2, 2)
        grad = F.avg_pool_backward(np.ones_like(out), x.shape, 2, 2)
        np.testing.assert_allclose(grad, np.full_like(x, 0.25))


class TestActivations:
    def test_clipped_relu_bounds(self):
        x = np.array([-2.0, 0.5, 3.0, 9.0], dtype=np.float32)
        np.testing.assert_allclose(F.clipped_relu(x, 4.0), [0.0, 0.5, 3.0, 4.0])
        np.testing.assert_allclose(F.clipped_relu(x, None), [0.0, 0.5, 3.0, 9.0])

    def test_clipped_relu_grad_mask(self):
        x = np.array([-1.0, 0.5, 5.0], dtype=np.float32)
        np.testing.assert_allclose(F.clipped_relu_grad(x, 4.0), [0.0, 1.0, 0.0])
        np.testing.assert_allclose(F.clipped_relu_grad(x, None), [0.0, 1.0, 1.0])

    def test_sigmoid_range_and_stability(self):
        x = np.array([-1000.0, 0.0, 1000.0], dtype=np.float32)
        out = F.sigmoid(x)
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0], atol=1e-6)
