"""Tests for the observability layer (:mod:`repro.telemetry`).

Covers the metric primitives and snapshot merging, the global
enable/disable switch (zero-cost-when-disabled contract), the fsynced
``_telemetry.jsonl`` sidecar with its torn-tail-tolerant reader, the
sweep instrumentation (serial and pooled), the lease-lifecycle counters
on the shard coordinator with its ``/v1/metrics`` endpoint, the
aggregated ``telemetry report``, and the acceptance property that
telemetry never perturbs results: checkpoints, timing hints and journals
are byte-identical with telemetry on or off.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.shard import LeaseBoard, ShardCoordinator, get_json, post_json
from repro.sweep import SweepRunner, build_grid, prepare_device
from repro.sweep.checkpoint import (
    CHECKPOINT_FILENAME,
    CheckpointWriter,
    save_timings,
)
from repro.sweep.runner import TIMINGS_FILENAME, SweepOutcome
from repro.telemetry import (
    TELEMETRY_FILENAME,
    TELEMETRY_VERSION,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    TelemetrySink,
    build_report,
    read_telemetry,
    write_bench_json,
)

#: Shared tiny sweep budget: every cell completes in well under a second.
TINY = dict(tolerance_ms=10.0, iterations=25, num_candidates=1, top_bundles=2, seed=1)


def journal_bytes(outcomes):
    """The canonical byte form of each outcome's journal, in order."""
    from repro.utils.serialization import to_jsonable

    return [json.dumps(to_jsonable(o.journal), sort_keys=True) for o in outcomes]


def make_board(tasks, **kwargs):
    order = list(range(len(tasks)))
    return LeaseBoard(dict(enumerate(tasks)), order, **kwargs)


def fake_outcome(task):
    return SweepOutcome(
        task=task, journal={"records": [], "candidates": []}, selected_bundles=[13],
        num_candidates=1, best_latency_ms=10.0, best_gap_ms=0.5, evaluations=3,
        memory_hits=0, memory_misses=3, disk_hits=0, disk_misses=0,
        estimator_calls=3, duration_s=0.1,
    )


@pytest.fixture(autouse=True)
def _telemetry_stays_off():
    """Never leak an enabled registry (or the env flag) into other tests."""
    telemetry.disable()
    yield
    telemetry.disable()


# ------------------------------------------------------------------ primitives
class TestMetricsPrimitives:
    def test_counter_accumulates_and_rejects_negative(self):
        reg = MetricsRegistry()
        counter = reg.counter("c")
        counter.inc()
        counter.inc(2)
        assert reg.counter("c") is counter, "same name must return the same metric"
        assert reg.snapshot().counters["c"] == 3
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_and_add(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(5.0)
        reg.gauge("g").add(-2.0)
        assert reg.snapshot().gauges["g"] == pytest.approx(3.0)

    def test_histogram_buckets_and_summary_stats(self):
        hist = Histogram("h", (0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap.counts == (1, 1, 1), "one observation per bucket incl +inf"
        assert snap.total == 3
        assert snap.sum == pytest.approx(5.55)
        assert snap.min == pytest.approx(0.05)
        assert snap.max == pytest.approx(5.0)
        assert snap.mean == pytest.approx(5.55 / 3)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", (1.0, 0.1))

    def test_registry_rejects_name_kind_conflicts(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("x")

    def test_snapshot_survives_pickle_and_dict_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(7)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(0.25)
        snap = reg.snapshot()
        clone = pickle.loads(pickle.dumps(snap))
        assert clone.as_dict() == snap.as_dict()
        # Through real JSON text, as the sidecar and /v1/metrics ship it
        # (the +inf bucket bound must survive as a string).
        wire = json.loads(json.dumps(snap.as_dict()))
        assert MetricsSnapshot.from_dict(wire).as_dict() == snap.as_dict()

    def test_merge_combines_counters_gauges_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        a.gauge("g").set(1.0)
        a.histogram("h", (10.0,)).observe(1.0)
        b.counter("c").inc(2)
        b.counter("d").inc(5)
        b.gauge("g").set(7.0)
        b.histogram("h", (10.0,)).observe(3.0)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap.counters == {"c": 3, "d": 5}
        assert snap.gauges["g"] == pytest.approx(7.0), "gauges are last-write-wins"
        assert snap.histograms["h"].total == 2
        assert snap.histograms["h"].sum == pytest.approx(4.0)
        assert snap.histograms["h"].min == pytest.approx(1.0)
        assert snap.histograms["h"].max == pytest.approx(3.0)

    def test_merge_rejects_bucket_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", (1.0,)).observe(0.5)
        b.histogram("h", (2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge(b.snapshot())


# --------------------------------------------------------------- on/off switch
class TestEnableDisable:
    def test_disabled_is_inert(self):
        assert telemetry.registry() is None
        assert telemetry.snapshot() is None
        assert not telemetry.enabled()
        with telemetry.trace("op", uid="x") as span:
            span.annotate(extra=1)  # must be a no-op, not an error
        telemetry.event("thing", a=1)
        assert telemetry.registry() is None, "disabled tracing must record nothing"

    def test_enable_exports_env_flag_for_workers(self):
        reg = telemetry.enable()
        assert telemetry.enabled() and telemetry.registry() is reg
        assert os.environ[telemetry.ENV_FLAG] == "1"
        telemetry.disable()
        assert telemetry.ENV_FLAG not in os.environ

    def test_enable_fresh_discards_state_and_reset_is_worker_entry(self):
        telemetry.enable()
        telemetry.registry().counter("c").inc()
        telemetry.enable()  # idempotent: keeps the registry
        assert telemetry.snapshot().counters == {"c": 1}
        telemetry.enable(fresh=True)
        assert telemetry.snapshot().counters == {}
        telemetry.registry().counter("c").inc()
        telemetry.reset()  # worker entry: fresh registry, sink detached
        assert telemetry.enabled()
        assert telemetry.snapshot().counters == {}
        assert telemetry.sink() is None

    def test_trace_and_event_record_counters_and_latency(self):
        telemetry.enable(fresh=True)
        with telemetry.trace("op", uid="u1") as span:
            span.annotate(outcome="ok")
        telemetry.event("tick")
        telemetry.event("tick")
        snap = telemetry.snapshot()
        assert snap.counters["op.count"] == 1
        assert snap.counters["tick.count"] == 2
        assert snap.histograms["op.seconds"].total == 1

    def test_merge_folds_worker_snapshot_into_parent(self):
        worker = MetricsRegistry()
        worker.counter("c").inc(4)
        telemetry.merge(worker.snapshot())  # disabled: no-op
        telemetry.enable(fresh=True)
        telemetry.registry().counter("c").inc(1)
        telemetry.merge(worker.snapshot())
        telemetry.merge(None)  # crashed worker ships None
        assert telemetry.snapshot().counters["c"] == 5


# -------------------------------------------------------------------- sidecar
class TestTelemetrySidecar:
    def test_write_read_round_trip_with_injected_clock(self, tmp_path):
        path = str(tmp_path / TELEMETRY_FILENAME)
        sink = TelemetrySink(path, clock=lambda: 42.0, fsync=False)
        sink.write_span("op", 0.5, {"uid": "u"})
        sink.write_event("evt", {"k": 1})
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        sink.write_snapshot(reg.snapshot())
        log = read_telemetry(path)
        assert log.version == TELEMETRY_VERSION
        assert log.corrupt_lines == 0
        assert log.records == 4  # header + span + event + snapshot
        assert log.spans[0]["name"] == "op"
        assert log.spans[0]["attrs"] == {"uid": "u"}
        assert log.events[0] == {"kind": "event", "name": "evt",
                                 "attrs": {"k": 1}, "ts": 42.0}
        assert log.last_snapshot.counters == {"c": 3}

    def test_trace_with_attached_sink_writes_annotated_span(self, tmp_path):
        path = str(tmp_path / TELEMETRY_FILENAME)
        telemetry.enable(fresh=True)
        telemetry.set_sink(TelemetrySink(path, clock=lambda: 1.0, fsync=False))
        with telemetry.trace("op", uid="u9") as span:
            span.annotate(outcome="ok")
        telemetry.set_sink(None)
        log = read_telemetry(path)
        assert log.spans[0]["attrs"] == {"uid": "u9", "outcome": "ok"}

    def test_torn_tail_and_garbage_lines_are_skipped(self, tmp_path):
        path = str(tmp_path / TELEMETRY_FILENAME)
        sink = TelemetrySink(path, fsync=False)
        sink.write_event("before")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("[1, 2]\n")                      # wrong shape
            handle.write('{"kind":"event","name":"torn')  # kill point
        log = read_telemetry(path)
        assert log.corrupt_lines == 2
        assert [record["name"] for record in log.events] == ["before"]
        assert log.version == TELEMETRY_VERSION

    def test_missing_sidecar_reads_as_empty(self, tmp_path):
        log = read_telemetry(str(tmp_path / TELEMETRY_FILENAME))
        assert log.records == 0 and log.version is None
        assert log.last_snapshot is None

    def test_sink_disables_itself_after_write_failure(self, tmp_path):
        path = str(tmp_path / TELEMETRY_FILENAME)
        sink = TelemetrySink(path, fsync=False)
        os.remove(path)
        os.mkdir(path)  # every further append now fails with EISDIR
        sink.write_event("lost")
        sink.write_event("also-lost")  # must not raise
        assert sink._failed


# ------------------------------------------------------- sweep instrumentation
class TestSweepInstrumentation:
    def test_serial_sweep_populates_registry_and_sidecar(self, tmp_path):
        tasks = build_grid("pynq-z1", "scd,random", [40.0], **TINY)
        telemetry.enable(fresh=True)
        result = SweepRunner(tasks, workers=1, cache_dir=tmp_path).run()
        snap = telemetry.snapshot()
        assert len(result.outcomes) == 2
        assert snap.counters["sweep.cell.count"] == len(tasks)
        assert snap.counters["sweep.cell.completed.count"] == len(tasks)
        assert snap.counters["hw.estimate.count"] > 0
        assert snap.counters["core.bundle_evaluation.evaluations"] > 0
        assert snap.counters["search.cache.misses"] > 0
        assert snap.counters["sweep.disk_cache.misses"] > 0
        assert snap.histograms["sweep.cell.seconds"].total == len(tasks)

        log = read_telemetry(str(tmp_path / TELEMETRY_FILENAME))
        assert log.version == TELEMETRY_VERSION
        assert log.corrupt_lines == 0
        assert any(record["name"] == "sweep.cell" for record in log.spans)
        assert log.last_snapshot is not None, "run-end snapshot is appended"
        assert log.last_snapshot.counters["sweep.cell.count"] == len(tasks)

    def test_pooled_workers_ship_measurements_back(self, tmp_path):
        tasks = build_grid("pynq-z1,ultra96", "scd", [40.0], **TINY)
        telemetry.enable(fresh=True)
        result = SweepRunner(tasks, workers=2, cache_dir=tmp_path).run()
        snap = telemetry.snapshot()
        assert len(result.outcomes) == 2
        # These counters are only incremented inside the worker processes;
        # seeing them in the parent proves the snapshot merge channel works.
        assert snap.counters["hw.estimate.count"] > 0
        assert snap.counters["search.cache.misses"] > 0
        assert snap.counters["sweep.cell.count"] == len(tasks)

    def test_warm_cache_records_disk_hits(self, tmp_path):
        tasks = build_grid("pynq-z1", "scd", [40.0], **TINY)
        SweepRunner(tasks, workers=1, cache_dir=tmp_path).run()
        telemetry.enable(fresh=True)
        SweepRunner(tasks, workers=1, cache_dir=tmp_path).run()
        snap = telemetry.snapshot()
        assert snap.counters["sweep.disk_cache.hits"] > 0
        assert snap.counters.get("sweep.disk_cache.misses", 0) == 0

    def test_sweep_without_cache_dir_has_no_sidecar_but_counts(self):
        tasks = build_grid("pynq-z1", "scd", [40.0], **TINY)
        telemetry.enable(fresh=True)
        SweepRunner(tasks, workers=1).run()
        assert telemetry.sink() is None
        assert telemetry.snapshot().counters["sweep.cell.count"] == 1


# ---------------------------------------------------------- clocks and writers
class TestInjectedClocks:
    def test_checkpoint_writer_stamps_from_injected_clock(self, tmp_path):
        task = build_grid("pynq-z1", "scd", [40.0], **TINY)[0]
        path = tmp_path / CHECKPOINT_FILENAME
        writer = CheckpointWriter(path, [task.uid], clock=lambda: 1234.5)
        writer.record_outcome(fake_outcome(task))
        stamps = [json.loads(line)["ts"]
                  for line in path.read_text().splitlines()]
        assert stamps == [1234.5, 1234.5]

    def test_save_timings_stamps_from_injected_now(self, tmp_path):
        path = tmp_path / TIMINGS_FILENAME
        save_timings(path, {"uid-a": 0.5}, now=1234.5)
        payload = json.loads(path.read_text())
        assert payload["uid-a"] == {"duration_s": 0.5, "ts": 1234.5}

    def test_runner_rejects_non_callable_clock(self):
        tasks = build_grid("pynq-z1", "scd", [40.0], **TINY)
        with pytest.raises(TypeError, match="clock"):
            SweepRunner(tasks, clock=42)


# ------------------------------------------------------- non-perturbation law
class TestNonPerturbation:
    @settings(max_examples=3, deadline=None)
    @given(strategy=st.sampled_from(["scd", "random"]),
           seed=st.sampled_from([1, 2]))
    def test_checkpoints_and_journals_identical_on_vs_off(self, strategy, seed):
        """Acceptance: with wall clocks frozen, a telemetry-on run leaves
        byte-identical ``_checkpoint.jsonl`` / ``_timings.json`` files and
        byte-identical journals to a telemetry-off run — observation must
        never perturb the observed sweep."""
        budget = dict(TINY, seed=seed)
        tasks = build_grid("pynq-z1", strategy, [40.0], **budget)
        frozen = lambda: 1234.5
        real_perf = time.perf_counter
        time.perf_counter = lambda: 0.0  # durations land in persisted records
        try:
            telemetry.disable()
            off = SweepRunner(tasks, workers=1, cache_dir=None, clock=frozen)
            with tempfile.TemporaryDirectory() as root:
                off_dir = os.path.join(root, "off")
                on_dir = os.path.join(root, "on")
                off_result = SweepRunner(
                    tasks, workers=1, cache_dir=off_dir, clock=frozen).run()
                telemetry.enable(fresh=True)
                on_result = SweepRunner(
                    tasks, workers=1, cache_dir=on_dir, clock=frozen).run()
                telemetry.disable()
                assert journal_bytes(off_result.outcomes) == \
                    journal_bytes(on_result.outcomes)
                for name in (CHECKPOINT_FILENAME, TIMINGS_FILENAME):
                    off_bytes = open(os.path.join(off_dir, name), "rb").read()
                    on_bytes = open(os.path.join(on_dir, name), "rb").read()
                    assert off_bytes == on_bytes, f"{name} differs with telemetry on"
                assert os.path.exists(os.path.join(on_dir, TELEMETRY_FILENAME))
                assert not os.path.exists(os.path.join(off_dir, TELEMETRY_FILENAME))
        finally:
            time.perf_counter = real_perf
            telemetry.disable()


# ------------------------------------------------------------- lease lifecycle
class TestLeaseMetrics:
    def tasks(self, n=2):
        return build_grid("pynq-z1", ["scd", "random", "annealing"][:n],
                          [40.0], **TINY)

    def test_counters_reconcile_over_a_full_lifecycle(self):
        tasks = self.tasks(2)
        board = make_board(tasks, retries=1)
        worker = board.register("a")
        first, second = board.lease(worker, 2)  # cost-ordered, not grid-ordered
        first_lease, second_lease = first.lease_id, second.lease_id
        board.heartbeat(worker, [first_lease, second_lease])
        board.report(worker, first_lease, first.task.uid,
                     outcome=fake_outcome(first.task), duration_s=0.25)
        duplicate = board.report(worker, first_lease, first.task.uid,
                                 outcome=fake_outcome(first.task))
        assert duplicate == (False, "duplicate")
        board.report(worker, second_lease, second.task.uid, error="boom")
        retry = board.lease(worker, 1)[0]
        board.report(worker, retry.lease_id, retry.task.uid, error="boom again")
        assert board.metrics_counts() == {
            "granted": 3, "heartbeats": 1, "completed": 1, "failed": 1,
            "requeued": 1, "expired": 0, "revoked": 0, "duplicates": 1,
        }
        stats = board.worker_stats()
        assert len(stats) == 1
        assert stats[0]["name"] == "a"
        assert stats[0]["leased"] == 3
        assert stats[0]["completed"] == 1
        assert stats[0]["errors"] == 2
        assert stats[0]["busy_s"] == pytest.approx(0.25)

    def test_expired_lease_increments_expired_counter(self):
        tasks = self.tasks(1)
        board = make_board(tasks, retries=1, lease_ttl_s=0.05)
        worker = board.register("dying")
        assert board.lease(worker, 1)
        time.sleep(0.1)
        assert board.expire_leases() == 1
        metrics = board.metrics_counts()
        assert metrics["expired"] == 1
        assert metrics["requeued"] == 1
        assert metrics["revoked"] == 0

    def test_lease_events_reach_the_telemetry_registry(self):
        tasks = self.tasks(1)
        telemetry.enable(fresh=True)
        board = make_board(tasks)
        worker = board.register("a")
        cell = board.lease(worker, 1)[0]
        board.report(worker, cell.lease_id, tasks[0].uid,
                     outcome=fake_outcome(tasks[0]), duration_s=0.1)
        snap = telemetry.snapshot()
        assert snap.counters["shard.worker.registered.count"] == 1
        assert snap.counters["shard.lease.granted.count"] == 1
        assert snap.counters["shard.cell.completed.count"] == 1


# -------------------------------------------------------- coordinator metrics
def serve(coordinator, **kwargs):
    stop = threading.Event()
    thread = threading.Thread(
        target=coordinator.serve_until_done,
        kwargs={"stop": stop, "tick_s": 0.05, "linger_s": 0.2, **kwargs},
        daemon=True,
    )
    thread.start()
    return stop, thread


class TestCoordinatorMetricsEndpoint:
    def test_v1_metrics_scrape_mid_run(self):
        tasks = build_grid("pynq-z1", "scd", [40.0], **TINY)
        board = make_board(tasks)
        prepared = prepare_device(tasks[0])
        coordinator = ShardCoordinator(
            board, {prepared.wire_key: prepared}, {0: prepared.wire_key}, port=0)
        stop, thread = serve(coordinator)
        try:
            url = coordinator.url
            registration = post_json(url, "/v1/register", {"name": "t", "version": 1})
            worker_id = registration["worker_id"]
            cell = post_json(url, "/v1/lease", {
                "worker_id": worker_id, "slots": 1, "known_preps": [],
            })["cells"][0]

            payload = get_json(url, "/v1/metrics")
            assert payload["lease_metrics"]["granted"] == 1
            assert payload["lease_metrics"]["completed"] == 0
            assert payload["counts"]["leased"] == 1
            assert payload["workers"][0]["name"] == "t"
            assert payload["workers"][0]["leased"] == 1
            assert payload["telemetry"] is None, "telemetry is off: counters only"

            from repro.sweep import run_sweep_task
            from repro.utils.serialization import to_jsonable

            outcome = run_sweep_task(tasks[0], prepared=prepared)
            post_json(url, "/v1/report", {
                "worker_id": worker_id, "lease_id": cell["lease_id"],
                "uid": cell["uid"], "status": "ok",
                "outcome": to_jsonable(outcome), "duration_s": 0.1,
            })
            payload = get_json(url, "/v1/metrics")
            assert payload["lease_metrics"]["completed"] == 1
            assert payload["workers"][0]["completed"] == 1
        finally:
            stop.set()
            thread.join(timeout=10.0)

    def test_metrics_payload_embeds_snapshot_when_enabled(self):
        tasks = build_grid("pynq-z1", "scd", [40.0], **TINY)
        coordinator = ShardCoordinator(make_board(tasks), {}, {0: None}, port=0)
        telemetry.enable(fresh=True)
        telemetry.registry().counter("c").inc()
        payload = coordinator.metrics()
        assert payload["telemetry"]["counters"]["c"] == 1
        snap = MetricsSnapshot.from_dict(json.loads(json.dumps(payload["telemetry"])))
        assert snap.counters == {"c": 1}


# --------------------------------------------------------------------- report
class TestTelemetryReport:
    def test_build_report_from_instrumented_sweep(self, tmp_path):
        tasks = build_grid("pynq-z1", "scd,random", [40.0], **TINY)
        telemetry.enable(fresh=True)
        SweepRunner(tasks, workers=1, cache_dir=tmp_path).run()
        telemetry.disable()
        report = build_report(str(tmp_path))
        assert report.has_data
        assert report.cells_completed == 2 and report.cells_failed == 0
        assert report.evaluations > 0 and report.estimator_calls > 0
        assert len(report.timings) == 2
        assert report.snapshot is not None
        assert report.spans["sweep.cell"]["count"] == 2
        payload = report.as_dict()
        assert payload["cells"]["completed"] == 2
        assert payload["telemetry"]["snapshot"]["counters"]["sweep.cell.count"] == 2
        text = report.render()
        assert f"Telemetry report for {tmp_path}" in text
        assert "Cells: 2 completed, 0 failed" in text
        assert "slowest cells" in text
        assert "Spans (_telemetry.jsonl)" in text

    def test_report_aggregates_per_worker_throughput(self, tmp_path):
        sink = TelemetrySink(str(tmp_path / TELEMETRY_FILENAME), fsync=False)
        for worker, duration in (("w1", 1.0), ("w1", 2.0), ("w2", 0.5)):
            sink.write_event("shard.cell.completed",
                             {"uid": "u", "worker": worker, "duration_s": duration})
        report = build_report(str(tmp_path))
        assert report.per_worker == {
            "w1": {"cells": 2, "busy_s": 3.0},
            "w2": {"cells": 1, "busy_s": 0.5},
        }
        assert report.events["shard.cell.completed"] == 3
        assert "Per-worker throughput:" in report.render()
        assert "w1: 2 cell(s), 3.00s busy" in report.render()

    def test_empty_cache_dir_renders_without_crashing(self, tmp_path):
        report = build_report(str(tmp_path))
        assert not report.has_data
        assert "Cells: 0 completed, 0 failed" in report.render()

    def test_write_bench_json_is_atomic_and_sorted(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        path = write_bench_json(
            str(tmp_path / "BENCH_sweep.json"), bench="sweep",
            metrics={"warm_wall_s": 0.5, "cells": 2},
            meta={"grid": "tiny"}, snapshot=reg.snapshot(),
        )
        assert not os.path.exists(path + ".tmp")
        payload = json.loads(open(path).read())
        assert payload["bench"] == "sweep" and payload["version"] == 1
        assert list(payload["metrics"]) == ["cells", "warm_wall_s"]
        assert payload["meta"] == {"grid": "tiny"}
        assert payload["telemetry"]["counters"]["c"] == 2
