"""Direct regression coverage for the PR-2 fixes.

PR 2 fixed three classes of bugs that until now were only covered
indirectly: candidate aliasing through ``config_cache_key`` (configs whose
``describe()`` summaries collide must never share a cache slot), the
annealing temperature clamp on (near-)zero-tolerance bands, and disk-cache
namespace isolation across devices, clocks and coefficient fits — including
namespaces that collide after file-name sanitization.
"""

from __future__ import annotations

import json

import pytest

from repro.core.auto_hls import AutoHLS
from repro.core.bundle_generation import get_bundle
from repro.core.dnn_config import DNNConfig
from repro.detection.task import TINY_DETECTION_TASK
from repro.hw.device import PYNQ_Z1
from repro.search import EvaluationCache, config_cache_key
from repro.sweep import DiskEvaluationCache, SweepRunner, build_grid, run_sweep_task

TINY = dict(tolerance_ms=10.0, iterations=20, num_candidates=1, top_bundles=2, seed=1)


@pytest.fixture(scope="module")
def engine():
    return AutoHLS(PYNQ_Z1)


def _config(**overrides):
    base = dict(bundle=get_bundle(13), task=TINY_DETECTION_TASK, num_repetitions=2,
                channel_expansion=(1.5, 1.5), downsample=(1, 1),
                stem_channels=16, parallel_factor=16, max_channels=128)
    base.update(overrides)
    return DNNConfig(**base)


# ------------------------------------------------- config_cache_key aliasing
class TestChannelExpansionAliasing:
    def test_permuted_expansion_vectors_get_distinct_keys(self):
        """describe() only reports the channel maximum, so permuted Pi
        vectors alias under it; the cache key must keep them apart."""
        a = _config(channel_expansion=(2.0, 1.0))
        b = _config(channel_expansion=(1.0, 2.0))
        assert a.describe() == b.describe(), "precondition: describe() aliases"
        assert config_cache_key(a) != config_cache_key(b)

    def test_memory_cache_estimates_aliasing_configs_separately(self, engine):
        cache = EvaluationCache(engine.estimate)
        a = _config(channel_expansion=(2.0, 1.0))
        b = _config(channel_expansion=(1.0, 2.0))
        cache.evaluate(a)
        cache.evaluate(b)
        assert cache.misses == 2 and cache.hits == 0
        assert len(cache) == 2

    def test_disk_cache_keeps_aliasing_configs_apart_across_reload(
            self, tmp_path, engine):
        a = _config(channel_expansion=(2.0, 1.0))
        b = _config(channel_expansion=(1.0, 2.0))
        first = DiskEvaluationCache(engine.estimate, tmp_path, device="PYNQ-Z1")
        estimate_a = first.evaluate(a)
        estimate_b = first.evaluate(b)
        reloaded = DiskEvaluationCache(engine.estimate, tmp_path, device="PYNQ-Z1")
        assert len(reloaded) == 2
        assert reloaded.evaluate(a).latency_ms == estimate_a.latency_ms
        assert reloaded.evaluate(b).latency_ms == estimate_b.latency_ms
        assert reloaded.misses == 0


# --------------------------------------------------- annealing clamp at scale
class TestAnnealingTemperatureClamp:
    def test_near_zero_tolerance_sweep_completes_deterministically(self):
        """A near-zero band makes the default initial temperature ~0; the
        clamp keeps the Metropolis step defined, so an annealing sweep cell
        still terminates and stays execution-mode deterministic."""
        tasks = build_grid("pynq-z1", "annealing", [40.0],
                           tolerance_ms=1e-6, iterations=15,
                           num_candidates=1, top_bundles=2, seed=1)
        first = SweepRunner(tasks, workers=1).run()
        second = SweepRunner(tasks, workers=2).run()
        assert first.ok and second.ok
        assert json.dumps(first.outcomes[0].journal, sort_keys=True) == \
            json.dumps(second.outcomes[0].journal, sort_keys=True)
        # The unreachable band never converges, but the per-search budget
        # still binds (2 selected bundles x 2 activations = 4 searches).
        assert first.outcomes[0].evaluations <= 15 * 4

    def test_tiny_explicit_temperature_is_clamped(self, engine):
        from repro.core.constraints import LatencyTarget, ResourceConstraint
        from repro.search import create_explorer

        explorer = create_explorer(
            "annealing",
            estimator=engine.estimate,
            latency_target=LatencyTarget(fps=120.0, tolerance_ms=2.0),
            resource_constraint=ResourceConstraint.for_device(PYNQ_Z1),
            max_iterations=15,
            rng=3,
            initial_temperature=1e-300,
        )
        result = explorer.explore(_config(), num_candidates=1)
        assert result.evaluations <= 15


# --------------------------------------------------- namespace isolation
class TestNamespaceIsolation:
    def test_sanitization_collision_does_not_leak_entries(self, tmp_path, engine):
        """'dev a' and 'dev_a' share a sanitized shard prefix; the per-record
        namespace check must still keep their entries apart."""
        config = _config()
        first = DiskEvaluationCache(engine.estimate, tmp_path, device="dev a")
        second = DiskEvaluationCache(engine.estimate, tmp_path, device="dev_a")
        assert first._prefix == second._prefix, "precondition: prefix collision"
        first.evaluate(config)
        collided = DiskEvaluationCache(engine.estimate, tmp_path, device="dev_a")
        assert len(collided) == 0, "colliding namespace must not see the entry"
        reloaded = DiskEvaluationCache(engine.estimate, tmp_path, device="dev a")
        assert len(reloaded) == 1, "the owner still reloads its own entry"

    def test_clock_axis_namespaces_are_cold_per_clock(self, tmp_path):
        """Same device at two clocks: each clock's first run is cold, and a
        warm re-run of both serves fully from its own namespace."""
        base = dict(tolerance_ms=10.0, iterations=15, num_candidates=1,
                    top_bundles=2, seed=1)
        low = build_grid("pynq-z1", "scd", [40.0], clocks_mhz=[100.0], **base)[0]
        high = build_grid("pynq-z1", "scd", [40.0], clocks_mhz=[125.0], **base)[0]
        cold_low = run_sweep_task(low, str(tmp_path))
        assert cold_low.estimator_calls > 0
        cold_high = run_sweep_task(high, str(tmp_path))
        assert cold_high.estimator_calls > 0, "125 MHz must not hit the 100 MHz cache"
        assert run_sweep_task(low, str(tmp_path)).estimator_calls == 0
        assert run_sweep_task(high, str(tmp_path)).estimator_calls == 0

    def test_coefficient_fingerprint_separates_fits(self, tmp_path, engine):
        from repro.sweep import coefficients_fingerprint

        config = _config()
        base = engine.coefficients
        refit = base.with_updates(alpha=base.alpha * 1.5)
        first = DiskEvaluationCache(engine.estimate, tmp_path, device="PYNQ-Z1",
                                    context=coefficients_fingerprint(base))
        first.evaluate(config)
        stale = DiskEvaluationCache(engine.estimate, tmp_path, device="PYNQ-Z1",
                                    context=coefficients_fingerprint(refit))
        assert len(stale) == 0, "a refit must never serve pre-refit estimates"
