"""Integration tests: the three-step co-design flow end to end.

The flow is exercised on the full DAC-SDC task with a reduced bundle set and
iteration budget so the test stays fast, and on the tiny task with real proxy
training to show the trained-accuracy path works end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.auto_hls import AutoHLS
from repro.core.bundle_generation import get_bundle
from repro.core.codesign import CoDesignFlow, CoDesignInputs, CoDesignResult
from repro.core.constraints import LatencyTarget
from repro.detection.accuracy_model import SurrogateAccuracyModel
from repro.detection.metrics import mean_iou
from repro.detection.proxy_trainer import ProxyTrainer
from repro.detection.task import DAC_SDC_TASK, TINY_DETECTION_TASK
from repro.hw.device import PYNQ_Z1
from repro.nn.quantization import quantize_model_weights, scheme_for_activation


@pytest.fixture(scope="module")
def flow_result() -> CoDesignResult:
    inputs = CoDesignInputs(
        task=DAC_SDC_TASK,
        device=PYNQ_Z1,
        latency_targets=(LatencyTarget(fps=40.0, tolerance_ms=6.0),),
        bundles=tuple(get_bundle(i) for i in (1, 3, 13, 15)),
    )
    flow = CoDesignFlow(
        inputs,
        accuracy_model=SurrogateAccuracyModel(noise=0.0),
        candidates_per_bundle=1,
        top_n_bundles=2,
        scd_iterations=60,
        rng=7,
    )
    return flow.run()


class TestCoDesignFlow:
    def test_step1_fits_models(self, flow_result):
        assert flow_result.sampling is not None
        assert flow_result.sampling.coefficients.alpha > 0

    def test_step2_selects_subset(self, flow_result):
        assert 1 <= len(flow_result.selected_bundles) <= 2
        selected_ids = {b.bundle_id for b in flow_result.selected_bundles}
        assert selected_ids.issubset({1, 3, 13, 15})

    def test_step3_produces_candidates_with_hardware(self, flow_result):
        assert flow_result.candidates
        for candidate in flow_result.candidates:
            assert candidate.hls is not None
            assert candidate.hls.design.total_lines > 50
            assert candidate.hls.report.resources.dsp > 0

    def test_final_designs_meet_constraints(self, flow_result):
        constraint = flow_result.inputs.resource_constraint
        for candidate in flow_result.final_designs:
            assert constraint.satisfied_by(candidate.estimate.resources)
            assert 0.0 < candidate.accuracy < 1.0

    def test_summary_renders(self, flow_result):
        text = flow_result.summary()
        assert "selected bundles" in text
        assert "explored DNNs" in text

    def test_coarse_and_fine_evaluations_recorded(self, flow_result):
        assert len(flow_result.coarse_evaluations) == 4 * 3  # 4 bundles x 3 PFs
        assert flow_result.fine_evaluations


class TestTrainedPathIntegration:
    def test_searched_design_trains_and_deploys(self):
        """A searched configuration can be trained, quantized and synthesised."""
        bundle = get_bundle(13)
        from repro.core.dnn_config import DNNConfig

        config = DNNConfig(
            bundle=bundle, task=TINY_DETECTION_TASK, num_repetitions=2,
            channel_expansion=(1.5, 1.5), downsample=(1, 1), stem_channels=16,
            activation="relu4", parallel_factor=16, max_channels=64,
        )

        # Software side: train the numpy model for a few epochs.
        model = config.to_model(rng=0)
        trainer = ProxyTrainer(TINY_DETECTION_TASK, num_samples=64, epochs=6, batch_size=8, seed=1)
        result = trainer.train(model)
        assert 0.0 <= result.iou <= 1.0

        # Quantize the trained weights with the scheme implied by the config.
        scheme = scheme_for_activation(config.activation, config.weight_bits)
        scales = quantize_model_weights(model, scheme)
        assert scales

        # The quantized model still produces valid boxes.
        model.eval()
        images, boxes = trainer._dataset.as_arrays(range(8))
        pred = model.forward(images)
        assert np.all((pred >= 0.0) & (pred <= 1.0))
        assert 0.0 <= mean_iou(pred, boxes) <= 1.0

        # Hardware side: generate and synthesise the accelerator.
        engine = AutoHLS(PYNQ_Z1)
        hls = engine.generate(config)
        assert hls.report.meets_timing
        assert hls.accelerator.fits()

    def test_flow_defaults_use_full_catalog(self):
        inputs = CoDesignInputs()
        assert len(inputs.bundles) == 18
        assert inputs.task is DAC_SDC_TASK
        assert len(inputs.latency_targets) == 3
