"""Tests for the surrogate accuracy model and the proxy trainer."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection.accuracy_model import (
    BUNDLE_CEILINGS,
    CandidateFeatures,
    SurrogateAccuracyModel,
    blend,
    bundle_ceiling,
)
from repro.detection.proxy_trainer import ProxyTrainer
from repro.detection.task import TINY_DETECTION_TASK
from repro.nn import BBoxHead, Conv2D, ReLU4, Sequential


def make_features(**overrides) -> CandidateFeatures:
    base = dict(
        macs=8e7, params=250_000, depth=10, max_channels=256, num_downsamples=4,
        feature_bits=8, weight_bits=8, bundle_signature="dwconv3x3+conv1x1",
        input_pixels=160 * 320, epochs=200,
    )
    base.update(overrides)
    return CandidateFeatures(**base)


class TestBundleCeilings:
    def test_all_18_signatures_present(self):
        assert len(BUNDLE_CEILINGS) == 18

    def test_conv_bundles_beat_dw_only(self):
        assert bundle_ceiling("conv3x3+conv1x1") > bundle_ceiling("dwconv3x3")

    def test_conv5x5_is_highest(self):
        assert max(BUNDLE_CEILINGS, key=BUNDLE_CEILINGS.get) == "conv5x5+conv1x1"

    def test_fallback_for_unknown_signature(self):
        value = bundle_ceiling("conv7x7+conv3x3")
        assert 0.3 <= value <= 0.8

    def test_fallback_penalises_no_mixing(self):
        assert bundle_ceiling("dwconv9x9") < bundle_ceiling("conv9x9")


class TestSurrogateModel:
    def setup_method(self):
        self.model = SurrogateAccuracyModel(noise=0.0)

    def test_output_in_unit_interval(self):
        assert 0.0 <= self.model.predict(make_features()) <= 1.0

    def test_more_macs_higher_accuracy(self):
        low = self.model.predict(make_features(macs=2e7))
        high = self.model.predict(make_features(macs=3e8))
        assert high > low

    def test_more_channels_higher_accuracy(self):
        narrow = self.model.predict(make_features(max_channels=64))
        wide = self.model.predict(make_features(max_channels=512))
        assert wide > narrow

    def test_deeper_higher_accuracy(self):
        shallow = self.model.predict(make_features(depth=4))
        deep = self.model.predict(make_features(depth=14))
        assert deep > shallow

    def test_quantization_ordering(self):
        relu = self.model.predict(make_features(feature_bits=16))
        relu8 = self.model.predict(make_features(feature_bits=10))
        relu4 = self.model.predict(make_features(feature_bits=8))
        assert relu > relu8 > relu4

    def test_more_epochs_higher_accuracy(self):
        proxy = self.model.predict(make_features(epochs=20))
        full = self.model.predict(make_features(epochs=200))
        assert full > proxy

    def test_excessive_downsampling_penalised(self):
        balanced = self.model.predict(make_features(num_downsamples=5))
        collapsed = self.model.predict(make_features(num_downsamples=9))
        assert balanced > collapsed

    def test_never_exceeds_ceiling(self):
        value = self.model.predict(make_features(macs=1e12, max_channels=4096, depth=50,
                                                 num_downsamples=5, feature_bits=16))
        assert value <= bundle_ceiling("dwconv3x3+conv1x1") + 1e-9

    def test_jitter_deterministic(self):
        noisy = SurrogateAccuracyModel(noise=0.01)
        a = noisy.predict(make_features())
        b = noisy.predict(make_features())
        assert a == b

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SurrogateAccuracyModel(capacity_scale=0.0)
        with pytest.raises(ValueError):
            SurrogateAccuracyModel(capacity_floor=1.5)

    @given(
        st.floats(1e6, 1e9), st.integers(1, 20), st.integers(8, 1024),
        st.sampled_from([8, 10, 16]),
    )
    @settings(max_examples=60, deadline=None)
    def test_output_always_valid(self, macs, depth, channels, bits):
        value = self.model.predict(make_features(
            macs=macs, depth=depth, max_channels=channels, feature_bits=bits,
        ))
        assert 0.0 <= value <= 1.0

    @given(st.floats(1e6, 5e8), st.floats(1e6, 5e8))
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_macs(self, a, b):
        lo, hi = sorted((a, b))
        assert self.model.predict(make_features(macs=lo)) <= self.model.predict(
            make_features(macs=hi)
        ) + 1e-12


class TestCalibration:
    """The surrogate reproduces the paper's final-design accuracies."""

    def test_reference_designs_match_paper(self):
        from repro.experiments.reference_designs import reference_designs

        model = SurrogateAccuracyModel()
        expected = {"DNN1": 0.686, "DNN2": 0.612, "DNN3": 0.593}
        for config in reference_designs():
            predicted = model.predict(config.features(epochs=200))
            assert predicted == pytest.approx(expected[config.name], abs=0.03)

    def test_reference_ordering(self):
        from repro.experiments.reference_designs import reference_designs

        model = SurrogateAccuracyModel()
        values = [model.predict(c.features(epochs=200)) for c in reference_designs()]
        assert values[0] > values[1] > values[2]


class TestBlend:
    def test_blend_without_trained(self):
        assert blend(0.6, None) == 0.6
        assert blend(0.6, float("nan")) == 0.6

    def test_blend_weighting(self):
        assert blend(0.6, 0.4, trained_weight=0.5) == pytest.approx(0.5)
        assert blend(0.6, 0.4, trained_weight=1.0) == pytest.approx(0.4)

    def test_blend_invalid_weight(self):
        with pytest.raises(ValueError):
            blend(0.6, 0.4, trained_weight=2.0)


class TestProxyTrainer:
    def test_proxy_training_improves_over_untrained(self):
        task = TINY_DETECTION_TASK
        model = Sequential([
            Conv2D(3, 8, 3, stride=2, rng=0), ReLU4(),
            Conv2D(8, 16, 3, stride=2, rng=1), ReLU4(),
            BBoxHead(16, rng=2),
        ])
        trainer = ProxyTrainer(task, num_samples=48, epochs=4, batch_size=8, seed=0)
        untrained_iou = trainer.evaluate(model)
        result = trainer.train(model)
        # A handful of epochs on a tiny model is noisy; the run must produce a
        # usable (finite, non-trivial) IoU estimate and a full history.
        assert 0.0 < result.iou <= 1.0
        assert 0.0 <= untrained_iou <= 1.0
        assert result.num_params == model.num_params()
        assert result.history.epochs == 4
        assert len(result.history.val_metric) == 4

    def test_invalid_epochs(self):
        with pytest.raises(ValueError):
            ProxyTrainer(TINY_DETECTION_TASK, epochs=0)
