"""Checkpoint/resume, adaptive scheduling and sidecar-GC tests (PR 4).

The core contract: a sweep killed at cell k and resumed with
``resume_from=<checkpoint>`` produces a :class:`SweepResult` whose
deterministic content — journals included — is byte-identical to an
uninterrupted run, while re-executing *only* the unfinished cells.
Alongside: robustness against truncated/corrupt checkpoints and grids
that changed under a checkpoint, plus regression tests for the PR's
bugfixes (SweepTask-name aliasing, failure timings feeding the cost
model, unbounded sidecar growth).
"""

from __future__ import annotations

import dataclasses
import json
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sweep import (
    CHECKPOINT_FILENAME,
    CheckpointWriter,
    SweepFailure,
    SweepResult,
    SweepRunner,
    SweepTask,
    build_grid,
    cache_dir_stats,
    compact_cache_dir,
    load_checkpoint,
    load_timings,
    run_sweep_task,
    save_timings,
)
from repro.sweep.runner import FAIL_TASKS_ENV, TIMINGS_FILENAME

TINY = dict(tolerance_ms=10.0, iterations=25, num_candidates=1, top_bundles=2, seed=1)

#: Outcome fields that legitimately differ across runs (wall clock, cache
#: warmth, retry counts); everything else must round-trip byte-identically.
VOLATILE_OUTCOME_FIELDS = ("duration_s", "attempts", "disk_hits", "disk_misses",
                           "estimator_calls")
VOLATILE_FAILURE_FIELDS = ("duration_s", "attempts")


def canonical(result: SweepResult) -> str:
    """The deterministic portion of ``as_dict()`` as one JSON byte string."""
    payload = result.as_dict()
    slim = {"outcomes": payload["outcomes"], "failures": payload["failures"]}
    for outcome in slim["outcomes"]:
        for field in VOLATILE_OUTCOME_FIELDS:
            outcome.pop(field, None)
    for failure in slim["failures"]:
        for field in VOLATILE_FAILURE_FIELDS:
            failure.pop(field, None)
    return json.dumps(slim, sort_keys=True)


class RecordingTaskFn:
    """In-process task_fn that records executed uids; optional kill at k.

    Used with ``workers=1`` (serial scheduler) so closures need not
    pickle.  ``kill_after=k`` simulates the parent dying after k settled
    cells by raising KeyboardInterrupt — which the scheduler deliberately
    does not catch — leaving the incremental checkpoint behind.
    """

    def __init__(self, kill_after=None):
        self.kill_after = kill_after
        self.executed: list[str] = []

    def __call__(self, task, cache_dir, prepared):
        if self.kill_after is not None and len(self.executed) >= self.kill_after:
            raise KeyboardInterrupt
        self.executed.append(task.uid)
        return run_sweep_task(task, cache_dir, prepared)


# ------------------------------------------------------- resume acceptance
class TestCheckpointResume:
    def grid(self):
        return build_grid("pynq-z1", "scd,random", [40.0, 30.0], **TINY)

    def test_interrupted_then_resumed_matches_uninterrupted(self, tmp_path):
        """Acceptance: kill at cell k, resume, byte-identical result while
        re-executing only the unfinished cells."""
        tasks = self.grid()
        uninterrupted = SweepRunner(tasks, workers=1, cache_dir=tmp_path / "full").run()

        work = tmp_path / "work"
        killer = RecordingTaskFn(kill_after=2)
        with pytest.raises(KeyboardInterrupt):
            SweepRunner(tasks, workers=1, cache_dir=work, task_fn=killer).run()
        assert killer.executed == [t.uid for t in tasks[:2]]
        assert len(load_checkpoint(work / CHECKPOINT_FILENAME).outcomes) == 2

        resumer = RecordingTaskFn()
        resumed = SweepRunner(tasks, workers=1, cache_dir=work,
                              resume_from=work / CHECKPOINT_FILENAME,
                              task_fn=resumer).run()
        assert resumer.executed == [t.uid for t in tasks[2:]], \
            "resume must re-execute only the unfinished cells"
        assert resumed.reused == 2
        assert resumed.ok
        assert canonical(resumed) == canonical(uninterrupted)
        # The reused cells' estimator accounting is replayed verbatim from
        # the first run; the re-executed cells did real estimator work.
        assert [o.task.uid for o in resumed.outcomes] == [t.uid for t in tasks]

    def test_resume_of_complete_checkpoint_executes_nothing(self, tmp_path):
        tasks = self.grid()
        SweepRunner(tasks, workers=1, cache_dir=tmp_path).run()
        fn = RecordingTaskFn()
        resumed = SweepRunner(tasks, workers=1, cache_dir=tmp_path,
                              resume_from=tmp_path / CHECKPOINT_FILENAME,
                              task_fn=fn).run()
        assert fn.executed == []
        assert resumed.reused == len(tasks)
        assert not resumed.preparations, "nothing to run = nothing to prepare"

    def test_resumed_compare_report_indistinguishable(self, tmp_path):
        from repro.sweep import compare

        tasks = self.grid()
        full = SweepRunner(tasks, workers=1, cache_dir=tmp_path / "full").run()
        work = tmp_path / "work"
        with pytest.raises(KeyboardInterrupt):
            SweepRunner(tasks, workers=1, cache_dir=work,
                        task_fn=RecordingTaskFn(kill_after=1)).run()
        resumed = SweepRunner(tasks, workers=1, cache_dir=work,
                              resume_from=work / CHECKPOINT_FILENAME).run()
        baseline, report = compare(full), compare(resumed)
        assert [dataclasses.asdict(s) | {"duration_s": None} for s in baseline.strategies] \
            == [dataclasses.asdict(s) | {"duration_s": None} for s in report.strategies]
        assert baseline.winners == report.winners
        assert report.totals["reused_tasks"] == 1

    def test_failed_cells_rerun_on_resume(self, tmp_path, monkeypatch):
        """A resume re-runs recorded *failures*, not only missing cells."""
        tasks = build_grid("pynq-z1", "scd,random", [40.0], **TINY)
        monkeypatch.setenv(FAIL_TASKS_ENV, "PYNQ-Z1-random-40fps")
        poisoned = SweepRunner(tasks, workers=1, cache_dir=tmp_path, retries=0,
                               retry_backoff_s=0.0).run()
        assert not poisoned.ok
        monkeypatch.delenv(FAIL_TASKS_ENV)
        fn = RecordingTaskFn()
        resumed = SweepRunner(tasks, workers=1, cache_dir=tmp_path,
                              resume_from=tmp_path / CHECKPOINT_FILENAME,
                              task_fn=fn).run()
        assert fn.executed == [tasks[1].uid]
        assert resumed.ok and resumed.reused == 1
        clean = SweepRunner(tasks, workers=1, cache_dir=tmp_path / "clean").run()
        assert canonical(resumed) == canonical(clean)

    def test_resume_from_saved_result_json(self, tmp_path):
        tasks = self.grid()
        first = SweepRunner(tasks, workers=1).run()
        path = first.save(tmp_path / "result.json")
        fn = RecordingTaskFn()
        resumed = SweepRunner(tasks, workers=1, resume_from=path, task_fn=fn).run()
        assert fn.executed == []
        assert resumed.reused == len(tasks)
        assert canonical(resumed) == canonical(first)

    def test_resume_from_result_seeds_checkpoint(self, tmp_path):
        """Resuming from a result JSON into a cache dir backfills the
        checkpoint so the resumed run is itself resumable."""
        tasks = self.grid()
        first = SweepRunner(tasks, workers=1).run()
        path = first.save(tmp_path / "result.json")
        cache = tmp_path / "cache"
        SweepRunner(tasks, workers=1, cache_dir=cache, resume_from=path).run()
        status = load_checkpoint(cache / CHECKPOINT_FILENAME)
        assert set(status.outcomes) == {t.uid for t in tasks}

    def test_resume_persists_reused_cell_timings(self, tmp_path):
        """An interrupted sweep never reaches _save_timings; the resume must
        re-persist the reused cells' recorded durations, or the next run
        would fall back to the budget heuristic for almost every cell."""
        tasks = self.grid()
        work = tmp_path / "work"
        with pytest.raises(KeyboardInterrupt):
            SweepRunner(tasks, workers=1, cache_dir=work,
                        task_fn=RecordingTaskFn(kill_after=3)).run()
        assert not (work / TIMINGS_FILENAME).exists()
        SweepRunner(tasks, workers=1, cache_dir=work,
                    resume_from=work / CHECKPOINT_FILENAME).run()
        timings = load_timings(work / TIMINGS_FILENAME)
        assert set(timings) == {t.uid for t in tasks}, \
            "reused and re-executed cells all carry cost hints"

    def test_resume_refreshes_the_checkpoint_grid_header(self, tmp_path):
        """A resume appends a header for the *current* grid (newest wins),
        so the file never misdescribes what a further resume would run."""
        old_grid = build_grid("pynq-z1", "scd,random", [40.0], **TINY)
        SweepRunner(old_grid, workers=1, cache_dir=tmp_path).run()
        new_grid = build_grid("pynq-z1", "scd,random", [40.0, 30.0], **TINY)
        SweepRunner(new_grid, workers=1, cache_dir=tmp_path,
                    resume_from=tmp_path / CHECKPOINT_FILENAME).run()
        status = load_checkpoint(tmp_path / CHECKPOINT_FILENAME)
        assert status.grid == [t.uid for t in new_grid]

    def test_resume_works_across_worker_counts(self, tmp_path):
        """Checkpointed outcomes ship to a multi-process resumed run."""
        tasks = self.grid()
        work = tmp_path / "work"
        with pytest.raises(KeyboardInterrupt):
            SweepRunner(tasks, workers=1, cache_dir=work,
                        task_fn=RecordingTaskFn(kill_after=2)).run()
        resumed = SweepRunner(tasks, workers=2, cache_dir=work,
                              resume_from=work / CHECKPOINT_FILENAME).run()
        full = SweepRunner(tasks, workers=1, cache_dir=tmp_path / "full").run()
        assert resumed.reused == 2
        assert canonical(resumed) == canonical(full)

    def test_fresh_run_truncates_stale_checkpoint(self, tmp_path):
        tasks = self.grid()
        SweepRunner(tasks, workers=1, cache_dir=tmp_path).run()
        before = load_checkpoint(tmp_path / CHECKPOINT_FILENAME)
        assert before.settled == len(tasks)
        # A non-resume run starts the checkpoint over (fresh header, no
        # stale cells from the previous grid).
        small = tasks[:1]
        SweepRunner(small, workers=1, cache_dir=tmp_path).run()
        after = load_checkpoint(tmp_path / CHECKPOINT_FILENAME)
        assert set(after.outcomes) == {small[0].uid}
        assert after.grid == [small[0].uid]

    def test_result_save_load_round_trip(self, tmp_path):
        tasks = build_grid("pynq-z1", "scd", [40.0], **TINY)
        result = SweepRunner(tasks, workers=1).run()
        loaded = SweepResult.load(result.save(tmp_path / "r.json"))
        assert canonical(loaded) == canonical(result)
        assert loaded.workers == result.workers
        assert loaded.schedule == result.schedule
        assert json.dumps(loaded.outcomes[0].journal, sort_keys=True) \
            == json.dumps(result.outcomes[0].journal, sort_keys=True)

    def test_load_accepts_cli_report_wrapper(self, tmp_path):
        from repro.utils.serialization import dump_json

        tasks = build_grid("pynq-z1", "scd", [40.0], **TINY)
        result = SweepRunner(tasks, workers=1).run()
        path = dump_json({"sweep": result.as_dict(), "comparison": {}},
                         tmp_path / "report.json")
        assert canonical(SweepResult.load(path)) == canonical(result)

    def test_missing_resume_source_raises(self, tmp_path):
        tasks = build_grid("pynq-z1", "scd", [40.0], **TINY)
        runner = SweepRunner(tasks, resume_from=tmp_path / "nope.jsonl")
        with pytest.raises(FileNotFoundError):
            runner.run()


# -------------------------------------------------- hypothesis property
@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    strategies=st.lists(st.sampled_from(["scd", "random", "annealing"]),
                        min_size=1, max_size=2, unique=True),
    fps=st.lists(st.sampled_from([25.0, 40.0, 60.0]), min_size=2, max_size=2,
                 unique=True),
    kill_fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_property_kill_at_k_resume_is_byte_identical(tmp_path_factory, seed,
                                                     strategies, fps,
                                                     kill_fraction):
    """Killing a sweep after any k settled cells and resuming yields the
    deterministic portion of ``SweepResult.as_dict()`` byte-identical to an
    uninterrupted run, re-executing exactly the n-k unfinished cells."""
    tasks = build_grid("pynq-z1", strategies, fps, tolerance_ms=10.0,
                       iterations=12, num_candidates=1, top_bundles=2, seed=seed)
    k = min(int(kill_fraction * len(tasks)), len(tasks) - 1)
    base = tmp_path_factory.mktemp("resume-prop")

    uninterrupted = SweepRunner(tasks, workers=1, cache_dir=base / "full").run()

    work = base / "work"
    killer = RecordingTaskFn(kill_after=k)
    try:
        SweepRunner(tasks, workers=1, cache_dir=work, task_fn=killer).run()
    except KeyboardInterrupt:
        pass
    resumer = RecordingTaskFn()
    resumed = SweepRunner(tasks, workers=1, cache_dir=work,
                          resume_from=work / CHECKPOINT_FILENAME,
                          task_fn=resumer).run()
    assert resumer.executed == [t.uid for t in tasks[k:]]
    assert resumed.reused == k
    assert canonical(resumed) == canonical(uninterrupted)


# ------------------------------------------------------ checkpoint robustness
class TestCheckpointRobustness:
    def _checkpointed(self, tmp_path, tasks=None):
        tasks = tasks or build_grid("pynq-z1", "scd,random", [40.0], **TINY)
        SweepRunner(tasks, workers=1, cache_dir=tmp_path).run()
        return tasks, tmp_path / CHECKPOINT_FILENAME

    def test_torn_tail_line_is_skipped(self, tmp_path):
        tasks, path = self._checkpointed(tmp_path)
        with path.open("a") as handle:
            handle.write('{"kind": "outcome", "uid": "half-')  # torn write
        status = load_checkpoint(path)
        assert status.corrupt_lines == 1
        assert set(status.outcomes) == {t.uid for t in tasks}
        fn = RecordingTaskFn()
        resumed = SweepRunner(tasks, workers=1, cache_dir=tmp_path,
                              resume_from=path, task_fn=fn).run()
        assert fn.executed == [] and resumed.reused == len(tasks)

    def test_truncated_mid_record_drops_only_that_cell(self, tmp_path):
        tasks, path = self._checkpointed(tmp_path)
        text = path.read_text()
        path.write_text(text[: len(text) - 40])  # chop the last record
        status = load_checkpoint(path)
        assert status.corrupt_lines == 1
        assert set(status.outcomes) == {tasks[0].uid}
        fn = RecordingTaskFn()
        resumed = SweepRunner(tasks, workers=1, cache_dir=tmp_path,
                              resume_from=path, task_fn=fn).run()
        assert fn.executed == [tasks[1].uid]
        assert resumed.ok and resumed.reused == 1

    def test_garbage_lines_and_wrong_kinds_are_counted(self, tmp_path):
        tasks, path = self._checkpointed(tmp_path)
        with path.open("a") as handle:
            handle.write("[1, 2, 3]\n")                       # not a dict
            handle.write('{"kind": "party"}\n')               # unknown kind
            handle.write('{"kind": "outcome", "uid": 7}\n')   # bad uid
            handle.write('{"kind": "outcome", "uid": "x", "outcome": {}}\n')
        status = load_checkpoint(path)
        assert status.corrupt_lines == 4
        assert len(status.outcomes) == len(tasks)

    def test_checkpoint_of_changed_grid_reruns_unknown_cells(self, tmp_path, caplog):
        import logging

        old_grid = build_grid("pynq-z1", "scd,random", [40.0], **TINY)
        _, path = self._checkpointed(tmp_path, old_grid)
        new_grid = build_grid("pynq-z1", "scd,random", [30.0], **TINY)
        fn = RecordingTaskFn()
        with caplog.at_level(logging.WARNING, logger="repro.sweep.runner"):
            resumed = SweepRunner(new_grid, workers=1, cache_dir=tmp_path / "new",
                                  resume_from=path, task_fn=fn).run()
        assert fn.executed == [t.uid for t in new_grid], \
            "no checkpointed cell matches the new grid: everything re-runs"
        assert resumed.reused == 0 and resumed.ok
        assert any("not in the current grid" in r.message for r in caplog.records)

    def test_budget_change_does_not_alias_checkpoint_cells(self, tmp_path):
        """Regression (name-aliasing): re-running the same axes with a
        different budget must not reuse the old budget's outcomes."""
        old_grid = build_grid("pynq-z1", "scd", [40.0], **TINY)
        _, path = self._checkpointed(tmp_path, old_grid)
        bigger = build_grid("pynq-z1", "scd", [40.0],
                            **{**TINY, "iterations": 30})
        fn = RecordingTaskFn()
        resumed = SweepRunner(bigger, workers=1, cache_dir=tmp_path / "new",
                              resume_from=path, task_fn=fn).run()
        assert fn.executed == [bigger[0].uid]
        assert resumed.reused == 0

    def test_empty_and_missing_checkpoints(self, tmp_path):
        assert load_checkpoint(tmp_path / "absent.jsonl").settled == 0
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert load_checkpoint(empty).settled == 0

    def test_writer_newest_record_wins(self, tmp_path):
        tasks = build_grid("pynq-z1", "scd", [40.0], **TINY)
        outcome = run_sweep_task(tasks[0])
        path = tmp_path / CHECKPOINT_FILENAME
        writer = CheckpointWriter(path, grid=[tasks[0].uid], fresh=True)
        writer.record_failure(SweepFailure(task=tasks[0], kind="error",
                                           error="boom", attempts=1))
        assert load_checkpoint(path).failures
        writer.record_outcome(outcome)
        status = load_checkpoint(path)
        assert set(status.outcomes) == {tasks[0].uid}
        assert not status.failures, "the later outcome supersedes the failure"


# ------------------------------------------------- satellite bugfix regressions
class TestTaskUidAliasing:
    def test_uid_distinguishes_budget_and_seed(self):
        base = SweepTask(device="PYNQ-Z1", strategy="scd", fps=40.0, **TINY)
        assert base.uid != dataclasses.replace(base, seed=2).uid
        assert base.uid != dataclasses.replace(base, iterations=50).uid
        assert base.uid != dataclasses.replace(base, tolerance_ms=5.0).uid
        assert base.uid != dataclasses.replace(base, num_candidates=2).uid
        assert base.uid != dataclasses.replace(base, top_bundles=3).uid
        # Same display name throughout: that is exactly the old bug.
        assert base.name == dataclasses.replace(base, seed=2).name

    def test_duplicate_tasks_rejected(self):
        tasks = build_grid("pynq-z1", "scd", [40.0], **TINY)
        with pytest.raises(ValueError, match="duplicate sweep task"):
            SweepRunner(tasks + tasks)
        # Same name, different seed: distinct uids, accepted.
        other = dataclasses.replace(tasks[0], seed=99)
        SweepRunner(tasks + [other])

    def test_same_name_tasks_get_separate_timings_and_checkpoints(self, tmp_path):
        """Regression: cells differing only in seed used to collide in
        ``_timings.json``, the disk-cache shard name and the checkpoint."""
        a = build_grid("pynq-z1", "scd", [40.0], **TINY)[0]
        b = dataclasses.replace(a, seed=99)
        result = SweepRunner([a, b], workers=1, cache_dir=tmp_path).run()
        assert result.ok
        timings = load_timings(tmp_path / TIMINGS_FILENAME)
        assert set(timings) == {a.uid, b.uid}
        status = load_checkpoint(tmp_path / CHECKPOINT_FILENAME)
        assert set(status.outcomes) == {a.uid, b.uid}
        # Shard files are uid-suffixed (a shard only appears once its cell
        # records a disk miss, so assert on the naming, not the count):
        # the two cells can never append to one shared shard file.
        shards = {p.name for p in tmp_path.glob("*--*.jsonl")}
        assert shards and all(
            name.endswith((f"{a.uid}.jsonl", f"{b.uid}.jsonl")) for name in shards
        )
        assert not any(name.endswith(f"--{a.name}.jsonl") for name in shards), \
            "the display name must no longer key the shard"

    def test_fault_injection_matches_uid_too(self, monkeypatch):
        task = build_grid("pynq-z1", "scd", [40.0], **TINY)[0]
        monkeypatch.setenv(FAIL_TASKS_ENV, task.uid)
        with pytest.raises(RuntimeError, match="injected failure"):
            run_sweep_task(task)


class TestFailureTimings:
    def test_failed_cell_records_cost_hint(self, tmp_path, monkeypatch):
        """Regression: the cost model used to learn nothing from failures,
        so a repeatedly timing-out cell kept being scheduled as cheap."""
        tasks = build_grid("pynq-z1", "scd,random", [40.0], **TINY)
        monkeypatch.setenv(FAIL_TASKS_ENV, "PYNQ-Z1-random-40fps")
        result = SweepRunner(tasks, workers=1, cache_dir=tmp_path, retries=1,
                             retry_backoff_s=0.0).run()
        assert not result.ok
        timings = load_timings(tmp_path / TIMINGS_FILENAME)
        assert tasks[1].uid in timings, "failure durations must persist"
        assert timings[tasks[1].uid] >= 0
        assert tasks[0].uid in timings

    def test_chunked_failures_record_cost_hints_too(self, tmp_path, monkeypatch):
        """The chunked pool cannot observe per-cell timing from the parent;
        the worker-side wrapper must still ship a duration so failed cells
        feed the cost model under every schedule."""
        tasks = build_grid("pynq-z1", "scd,random", [40.0], **TINY)
        monkeypatch.setenv(FAIL_TASKS_ENV, "PYNQ-Z1-random-40fps")
        result = SweepRunner(tasks, workers=2, schedule="chunked",
                             cache_dir=tmp_path, retries=0,
                             retry_backoff_s=0.0).run()
        assert not result.ok
        assert result.failures[0].duration_s > 0
        timings = load_timings(tmp_path / TIMINGS_FILENAME)
        assert tasks[1].uid in timings

    def test_effective_timeout_scales_from_hint(self):
        tasks = build_grid("pynq-z1", "scd", [40.0], **TINY)
        runner = SweepRunner(tasks, timeout_s=2.0, timeout_scale=3.0)
        task = tasks[0]
        assert runner._effective_timeout(task, {}) == 2.0
        assert runner._effective_timeout(task, {task.uid: 5.0}) == 15.0
        assert runner._effective_timeout(task, {task.uid: 0.1}) == 2.0, \
            "timeout_s is a floor, never lowered by a cheap hint"
        assert runner._effective_timeout(task, {task.name: 4.0}) == 12.0
        # A permanently stuck cell records ~its own timeout as the hint;
        # the growth must stay bounded across resumed runs.
        assert runner._effective_timeout(task, {task.uid: 1000.0}) \
            == 2.0 * SweepRunner.MAX_TIMEOUT_GROWTH
        no_timeout = SweepRunner(tasks, timeout_s=None)
        assert no_timeout._effective_timeout(task, {task.uid: 10.0}) is None

    def test_backoff_is_exponential_deterministic_and_capped(self):
        tasks = build_grid("pynq-z1", "scd", [40.0], **TINY)
        runner = SweepRunner(tasks, retry_backoff_s=0.5)
        assert [runner._backoff_delay(n) for n in (1, 2, 3)] == [0.5, 1.0, 2.0]
        assert runner._backoff_delay(30) == SweepRunner.MAX_BACKOFF_S
        assert SweepRunner(tasks, retry_backoff_s=0.0)._backoff_delay(5) == 0.0
        with pytest.raises(ValueError, match="retry_backoff_s"):
            SweepRunner(tasks, retry_backoff_s=-1.0)
        with pytest.raises(ValueError, match="timeout_scale"):
            SweepRunner(tasks, timeout_scale=0.0)

    def test_legacy_plain_float_timings_still_load(self, tmp_path):
        path = tmp_path / TIMINGS_FILENAME
        path.write_text('{"PYNQ-Z1-scd-40fps": 1.5, "bogus": "x"}')
        assert load_timings(path) == {"PYNQ-Z1-scd-40fps": 1.5}
        tasks = build_grid("pynq-z1", "scd", [40.0], **TINY)
        runner = SweepRunner(tasks, workers=1, cache_dir=tmp_path)
        # Legacy name-keyed hints still steer the cost model (fallback).
        assert runner._load_cost_hints() == {"PYNQ-Z1-scd-40fps": 1.5}
        from repro.sweep import expected_cost
        assert expected_cost(tasks[0], runner._load_cost_hints()) == 1.5


class TestSidecarGC:
    def test_gc_prunes_stale_timings_and_checkpoint(self, tmp_path):
        """Regression: ``cache gc`` used to touch only ``*.jsonl`` shards,
        so stale task uids accumulated in the sidecars forever."""
        tasks = build_grid("pynq-z1", "scd,random", [40.0], **TINY)
        SweepRunner(tasks, workers=1, cache_dir=tmp_path).run()
        # Inject entries from a long-gone grid, 100 days old.
        old_ts = time.time() - 100 * 86400
        save_timings(tmp_path / TIMINGS_FILENAME,
                     {"OLD-GRID-uid": 3.0}, now=old_ts)
        before = cache_dir_stats(tmp_path)
        assert before.timing_entries == len(tasks) + 1
        report = compact_cache_dir(tmp_path, max_age_days=30.0)
        assert report.timing_entries_pruned == 1
        after = cache_dir_stats(tmp_path)
        assert after.timing_entries == len(tasks)
        assert set(load_timings(tmp_path / TIMINGS_FILENAME)) \
            == {t.uid for t in tasks}

    def test_gc_dedups_and_repairs_checkpoint(self, tmp_path):
        tasks = build_grid("pynq-z1", "scd", [40.0], **TINY)
        SweepRunner(tasks, workers=1, cache_dir=tmp_path).run()
        path = tmp_path / CHECKPOINT_FILENAME
        lines_before = path.read_text().splitlines()
        with path.open("a") as handle:
            handle.write("{torn\n")
        # Duplicate the outcome record: superseded lines must collapse.
        with path.open("a") as handle:
            handle.write(lines_before[-1] + "\n")
        report = compact_cache_dir(tmp_path)
        assert report.checkpoint_records_pruned == 2  # torn + superseded
        status = load_checkpoint(path)
        assert status.corrupt_lines == 0
        assert set(status.outcomes) == {tasks[0].uid}
        assert "sidecars:" in report.summary()

    def test_gc_drops_uid_mismatched_records_instead_of_keeping_them(self, tmp_path):
        """A record whose embedded task does not match its uid is rejected
        by the loader; gc must drop it too — never let it clobber the good
        record of that uid via newest-wins."""
        tasks = build_grid("pynq-z1", "scd,random", [40.0], **TINY)
        SweepRunner(tasks, workers=1, cache_dir=tmp_path).run()
        path = tmp_path / CHECKPOINT_FILENAME
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        outcome_record = next(r for r in lines if r.get("kind") == "outcome")
        mismatched = dict(outcome_record)
        mismatched["uid"] = tasks[1].uid  # claims the other cell's slot
        with path.open("a") as handle:
            handle.write(json.dumps(mismatched) + "\n")
        assert load_checkpoint(path).corrupt_lines == 1
        report = compact_cache_dir(tmp_path)
        assert report.checkpoint_records_pruned == 1
        status = load_checkpoint(path)
        assert status.corrupt_lines == 0
        assert set(status.outcomes) == {t.uid for t in tasks}, \
            "both genuine records survive; the impostor is gone"

    def test_gc_age_evicts_checkpoint_records(self, tmp_path):
        tasks = build_grid("pynq-z1", "scd", [40.0], **TINY)
        SweepRunner(tasks, workers=1, cache_dir=tmp_path).run()
        future = time.time() + 100 * 86400
        report = compact_cache_dir(tmp_path, max_age_days=30.0, now=future)
        assert report.checkpoint_records_pruned == 1
        assert load_checkpoint(tmp_path / CHECKPOINT_FILENAME).settled == 0

    def test_stats_count_sidecars_not_as_corrupt_shards(self, tmp_path):
        tasks = build_grid("pynq-z1", "scd", [40.0], **TINY)
        SweepRunner(tasks, workers=1, cache_dir=tmp_path).run()
        stats = cache_dir_stats(tmp_path)
        # The checkpoint's lines must not be misread as corrupt cache shards.
        assert stats.corrupt_lines == 0
        assert stats.checkpoint_outcomes == 1
        assert stats.checkpoint_records == 1
        assert stats.timing_entries == 1
        assert all("_checkpoint" not in ns.namespace for ns in stats.namespaces)

    def test_gc_does_not_delete_the_checkpoint_file(self, tmp_path):
        tasks = build_grid("pynq-z1", "scd", [40.0], **TINY)
        SweepRunner(tasks, workers=1, cache_dir=tmp_path).run()
        compact_cache_dir(tmp_path)
        assert (tmp_path / CHECKPOINT_FILENAME).exists()
        assert load_checkpoint(tmp_path / CHECKPOINT_FILENAME).settled == 1
        warm = SweepRunner(tasks, workers=1, cache_dir=tmp_path,
                           resume_from=tmp_path / CHECKPOINT_FILENAME).run()
        assert warm.reused == 1


class TestConcurrentCheckpointWriter:
    """PR-5 concurrent-writer safety: the shard coordinator settles cells
    from parallel HTTP handler threads into one CheckpointWriter."""

    def _grid(self, n):
        return build_grid("pynq-z1", "scd", [float(10 + i) for i in range(n)],
                          **TINY)

    def _outcome(self, task):
        from repro.utils.serialization import to_jsonable

        payload = json.loads(json.dumps({
            "task": to_jsonable(task),
            "journal": {"records": [], "candidates": []},
            "selected_bundles": [13],
            "num_candidates": 1,
            "best_latency_ms": 10.0,
            "best_gap_ms": 0.5,
            "evaluations": 3,
            "memory_hits": 0,
            "memory_misses": 3,
            "disk_hits": 0,
            "disk_misses": 0,
            "estimator_calls": 3,
            "duration_s": 0.1,
        }))
        from repro.sweep import SweepOutcome

        return SweepOutcome.from_dict(payload)

    def test_parallel_appends_produce_a_clean_checkpoint(self, tmp_path):
        import threading

        tasks = self._grid(24)
        writer = CheckpointWriter(tmp_path / CHECKPOINT_FILENAME,
                                  grid=[t.uid for t in tasks])
        barrier = threading.Barrier(8)

        def record(chunk):
            barrier.wait()
            for task in chunk:
                writer.record_outcome(self._outcome(task))

        threads = [
            threading.Thread(target=record, args=(tasks[i::8],))
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        status = load_checkpoint(tmp_path / CHECKPOINT_FILENAME)
        assert status.corrupt_lines == 0, "interleaved writes must not tear lines"
        assert set(status.outcomes) == {t.uid for t in tasks}
        assert all(writer.has_outcome(t.uid) for t in tasks)
