"""Tests for the experiment drivers that regenerate the paper's artefacts.

These are scaled-down runs (fewer bundles / iterations) that still check the
qualitative shapes the paper reports.
"""

from __future__ import annotations

import pytest

from repro.core.bundle_generation import get_bundle
from repro.detection.accuracy_model import SurrogateAccuracyModel
from repro.experiments.ablations import (
    report_ablations,
    run_codesign_vs_topdown,
    run_quantization_sweep,
    run_scd_vs_random,
    run_tile_sweep,
)
from repro.experiments.fig4 import report_fig4, run_fig4
from repro.experiments.fig5 import FIG5_BUNDLE_IDS, report_fig5, run_fig5
from repro.experiments.fig6 import model_scale_target, report_fig6, run_fig6
from repro.experiments.reference_designs import reference_designs
from repro.experiments.reporting import MODEL_TO_BOARD_LATENCY_GAP, ExperimentReport
from repro.experiments.table2 import report_table2, run_table2


@pytest.fixture(scope="module")
def fig4_result():
    bundles = [get_bundle(i) for i in (1, 3, 4, 9, 13, 15, 17)]
    return run_fig4(bundles=bundles, parallel_factors=(16,),
                    accuracy_model=SurrogateAccuracyModel(noise=0.0))


@pytest.fixture(scope="module")
def table2_result():
    return run_table2(num_frames=50_000)


class TestReporting:
    def test_experiment_report_renders_sections(self):
        report = ExperimentReport("Demo")
        report.add_table(["a", "b"], [[1, 2]])
        report.add_kv("facts", {"x": 1})
        report.add_text("note")
        text = report.render()
        assert "Demo" in text and "facts" in text and "note" in text

    def test_latency_gap_constant_reasonable(self):
        assert 1.0 <= MODEL_TO_BOARD_LATENCY_GAP <= 5.0


class TestFig4:
    def test_both_methods_evaluated(self, fig4_result):
        assert len(fig4_result.method1) == len(fig4_result.method2)
        assert {e.method for e in fig4_result.method1} == {1}
        assert {e.method for e in fig4_result.method2} == {2}

    def test_pareto_sets_overlap_substantially(self, fig4_result):
        """The paper: both construction methods give the same Pareto bundles."""
        assert fig4_result.pareto_overlap >= 0.5

    def test_selected_bundles_mix_families(self, fig4_result):
        selected = set(fig4_result.selected)
        assert any(b in selected for b in (13, 15, 17))  # efficient dw+pw family
        assert any(b in selected for b in (1, 3))        # accurate conv family

    def test_dominated_bundle_ranked_below_its_dominator(self, fig4_result):
        # Bundle 4 (conv5x5+conv3x3) costs more latency than bundle 3
        # (conv5x5+conv1x1) for no accuracy gain under the surrogate, so the
        # selection must rank bundle 3 ahead of bundle 4 whenever both appear.
        selected = fig4_result.selected
        if 4 in selected:
            assert 3 in selected and selected.index(3) < selected.index(4)

    def test_report_renders(self, fig4_result):
        text = report_fig4(fig4_result).render()
        assert "Pareto stability" in text
        assert "method #1" in text


class TestFig5:
    @pytest.fixture(scope="class")
    def fig5_result(self):
        return run_fig5(bundles=[get_bundle(i) for i in (1, 3, 13)],
                        repetition_counts=(2, 3),
                        accuracy_model=SurrogateAccuracyModel(noise=0.0))

    def test_default_bundle_ids_match_paper(self):
        assert FIG5_BUNDLE_IDS == (1, 3, 13, 15, 17)

    def test_grid_complete(self, fig5_result):
        # 3 bundles x 2 repetition counts x 3 activations.
        assert len(fig5_result.evaluations) == 18

    def test_bundle13_is_latency_leader(self, fig5_result):
        """Fig. 5's observation: bundle 13 favours real-time designs."""
        assert fig5_result.latency_leader() == 13

    def test_conv_bundle_is_accuracy_leader(self, fig5_result):
        """Fig. 5's observation: bundles 1 / 3 favour high-accuracy designs."""
        assert fig5_result.accuracy_leader() in (1, 3)

    def test_report_renders(self, fig5_result):
        text = report_fig5(fig5_result).render()
        assert "accuracy-favourable bundle" in text


class TestFig6:
    @pytest.fixture(scope="class")
    def fig6_result(self):
        return run_fig6(bundles=[get_bundle(13), get_bundle(15)],
                        candidates_per_bundle=1, max_iterations=80,
                        accuracy_model=SurrogateAccuracyModel(noise=0.0), rng=3)

    def test_model_scale_target_conversion(self):
        target = model_scale_target(10.0)
        assert target.latency_ms == pytest.approx(100.0 / MODEL_TO_BOARD_LATENCY_GAP)

    def test_candidates_found_for_each_target(self, fig6_result):
        assert set(fig6_result.candidates) == {10.0, 15.0, 20.0}
        assert fig6_result.total_explored >= 3

    def test_candidates_respect_their_band(self, fig6_result):
        for fps, target in zip(fig6_result.board_fps_targets, fig6_result.targets):
            for candidate in fig6_result.candidates[fps]:
                assert target.within_band(candidate.estimate.latency_ms)

    def test_lower_fps_target_allows_higher_accuracy(self, fig6_result):
        best = fig6_result.best_accuracies()
        if best[10.0] == best[10.0] and best[20.0] == best[20.0]:  # both found
            assert best[10.0] >= best[20.0] - 0.02

    def test_report_renders(self, fig6_result):
        text = report_fig6(fig6_result).render()
        assert "Final designs" in text


class TestReferenceDesigns:
    def test_structures_match_fig6_annotations(self):
        dnn1, dnn2, dnn3 = reference_designs()
        assert dnn1.bundle.bundle_id == dnn2.bundle.bundle_id == dnn3.bundle.bundle_id == 13
        assert dnn1.num_repetitions == 5 and dnn2.num_repetitions == 4
        assert max(dnn1.channel_schedule()) == 512
        assert max(dnn2.channel_schedule()) <= 384
        assert dnn1.feature_bits == 8 and dnn2.feature_bits == 16 and dnn3.feature_bits == 8


class TestTable2:
    def test_all_rows_present(self, table2_result):
        assert len(table2_result.our_rows) == 6   # 3 designs x 2 clocks
        assert len(table2_result.fpga_rows) == 3
        assert len(table2_result.gpu_rows) == 3

    def test_our_designs_trade_accuracy_for_fps(self, table2_result):
        at_100 = [r for r in table2_result.our_rows if r.clock_mhz == 100.0]
        by_name = {r.name.split()[0]: r for r in at_100}
        assert by_name["DNN1"].iou > by_name["DNN2"].iou > by_name["DNN3"].iou
        assert by_name["DNN1"].fps < by_name["DNN2"].fps < by_name["DNN3"].fps

    def test_150mhz_faster_than_100mhz(self, table2_result):
        for name in ("DNN1", "DNN2", "DNN3"):
            rows = [r for r in table2_result.our_rows if r.name.startswith(name)]
            rows.sort(key=lambda r: r.clock_mhz)
            assert rows[1].fps > rows[0].fps

    def test_fpga_power_far_below_gpu_power(self, table2_result):
        max_fpga = max(r.power_w for r in table2_result.our_rows + table2_result.fpga_rows)
        min_gpu = min(r.power_w for r in table2_result.gpu_rows)
        assert min_gpu > 3 * max_fpga

    def test_utilization_within_device(self, table2_result):
        for row in table2_result.our_rows:
            assert row.utilization is not None
            assert all(v <= 100.0 for v in row.utilization.values())

    def test_headline_claims_shape(self, table2_result):
        claims = table2_result.headline_claims()
        # Ours beats the 1st-place FPGA entry on accuracy, throughput and
        # energy efficiency (the paper reports +6.2%, 2.48x and 2.5x).
        assert claims["iou_gain_vs_fpga1"] > 0.03
        assert claims["fps_ratio_vs_fpga1"] > 1.5
        assert claims["energy_eff_ratio_vs_fpga1"] > 1.5
        # The GPU entries keep an accuracy edge but lose on energy efficiency
        # (paper: -1.2% IoU, 3.1-3.8x better energy efficiency for ours).
        assert claims["iou_gap_vs_gpu1"] < 0.0
        assert claims["energy_eff_ratio_vs_gpu_min"] > 1.5
        # Against the reported 4.2 W of the 1st-place FPGA board, power drops
        # substantially (paper: 40% lower).
        assert claims["power_reduction_vs_fpga1_reported"] > 0.2

    def test_energy_accounting_consistent(self, table2_result):
        for row in table2_result.all_rows:
            assert row.j_per_pic == pytest.approx(row.power_w / row.fps, rel=1e-6)
            assert row.energy_kj == pytest.approx(row.j_per_pic * 50_000 / 1000.0, rel=1e-6)

    def test_report_renders(self, table2_result):
        text = report_table2(table2_result).render()
        assert "Headline claims" in text
        assert "1st in FPGA" in text and "Tiny-Yolo" in text


class TestAblations:
    def test_scd_more_efficient_than_random(self):
        comparison = run_scd_vs_random(board_fps=20.0, num_candidates=2, max_iterations=100, rng=4)
        assert comparison.scd_found >= comparison.random_found or (
            comparison.scd_iterations <= comparison.random_iterations
        )

    def test_tile_sweep_shapes(self):
        points = run_tile_sweep()
        assert len(points) >= 3
        bram_values = [p.bram for p in points]
        assert bram_values == sorted(bram_values)  # larger tiles need more BRAM

    def test_quantization_sweep_shapes(self):
        points = run_quantization_sweep(accuracy_model=SurrogateAccuracyModel(noise=0.0))
        by_act = {p.activation: p for p in points}
        assert by_act["relu"].accuracy > by_act["relu4"].accuracy
        assert by_act["relu"].latency_ms >= by_act["relu4"].latency_ms

    def test_codesign_vs_topdown(self):
        comparison = run_codesign_vs_topdown()
        assert comparison.iou_gain > 0.0

    def test_report_renders(self):
        report = report_ablations(
            run_scd_vs_random(num_candidates=1, max_iterations=40, rng=1),
            run_tile_sweep(),
            run_quantization_sweep(accuracy_model=SurrogateAccuracyModel(noise=0.0)),
            run_codesign_vs_topdown(),
        )
        text = report.render()
        assert "Tile-size sweep" in text and "Quantization sweep" in text
