"""Tests for the Sequential model container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    BBoxHead,
    BatchNorm2D,
    Conv2D,
    DepthwiseConv2D,
    MaxPool2D,
    ReLU4,
    Sequential,
)


@pytest.fixture
def small_model() -> Sequential:
    return Sequential([
        Conv2D(3, 8, 3, stride=2, rng=0),
        BatchNorm2D(8),
        ReLU4(),
        DepthwiseConv2D(8, 3, rng=0),
        Conv2D(8, 16, 1, rng=0),
        ReLU4(),
        MaxPool2D(2),
        BBoxHead(16, rng=0),
    ], name="small")


class TestSequential:
    def test_forward_shape(self, small_model, rng):
        x = rng.normal(size=(2, 3, 16, 32)).astype(np.float32)
        assert small_model.forward(x).shape == (2, 4)

    def test_output_shape_static(self, small_model):
        assert small_model.output_shape((3, 16, 32)) == (4,)

    def test_layer_shapes_length(self, small_model):
        shapes = small_model.layer_shapes((3, 16, 32))
        assert len(shapes) == len(small_model)
        assert shapes[0] == (8, 8, 16)
        assert shapes[-1] == (4,)

    def test_num_params_positive_and_consistent(self, small_model):
        total = sum(p.size for p in small_model.parameters())
        assert small_model.num_params() == total > 0

    def test_num_ops_positive(self, small_model):
        assert small_model.num_ops((3, 16, 32)) > 0

    def test_backward_returns_input_gradient(self, small_model, rng):
        x = rng.normal(size=(2, 3, 16, 32)).astype(np.float32)
        out = small_model.forward(x)
        grad = small_model.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_train_eval_propagates(self, small_model):
        small_model.eval()
        assert all(not layer.training for layer in small_model)
        small_model.train()
        assert all(layer.training for layer in small_model)

    def test_zero_grad(self, small_model, rng):
        x = rng.normal(size=(1, 3, 16, 32)).astype(np.float32)
        out = small_model.forward(x)
        small_model.backward(np.ones_like(out))
        small_model.zero_grad()
        assert all(np.all(p.grad == 0.0) for p in small_model.parameters())

    def test_summary_contains_layers_and_totals(self, small_model):
        text = small_model.summary((3, 16, 32))
        assert "Total params" in text
        assert "conv3x3" in text

    def test_add_returns_self_and_validates(self):
        model = Sequential()
        assert model.add(Conv2D(3, 4, 1, rng=0)) is model
        with pytest.raises(TypeError):
            model.add("not a layer")

    def test_getitem_and_iter(self, small_model):
        assert isinstance(small_model[0], Conv2D)
        assert len(list(iter(small_model))) == len(small_model)


class TestStateDict:
    def test_roundtrip(self, small_model, rng):
        x = rng.normal(size=(1, 3, 16, 32)).astype(np.float32)
        before = small_model.forward(x)
        state = small_model.state_dict()

        # Perturb all parameters, then restore.
        for p in small_model.parameters():
            p.value += 1.0
        perturbed = small_model.forward(x)
        assert not np.allclose(before, perturbed)

        small_model.load_state_dict(state)
        after = small_model.forward(x)
        np.testing.assert_allclose(before, after, rtol=1e-5)

    def test_state_dict_returns_copies(self, small_model):
        state = small_model.state_dict()
        key = next(iter(state))
        state[key][...] = 123.0
        assert not np.allclose(small_model.state_dict()[key], 123.0)

    def test_mismatched_keys_raise(self, small_model):
        state = small_model.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError):
            small_model.load_state_dict(state)

    def test_mismatched_shape_raises(self, small_model):
        state = small_model.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 2, 3), dtype=np.float32)
        with pytest.raises((ValueError, KeyError)):
            small_model.load_state_dict(state)
