"""Unit tests for the layer zoo (conv, pooling, norm, core, head)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    AvgPool2D,
    BatchNorm2D,
    BBoxHead,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    MaxPool2D,
    ReLU,
    ReLU4,
    ReLU8,
    Sigmoid,
)
from repro.nn.layers.activation import make_activation


class TestConv2DLayer:
    def test_output_shape_same_padding(self):
        layer = Conv2D(3, 8, 3, rng=0)
        assert layer.output_shape((3, 16, 16)) == (8, 16, 16)

    def test_output_shape_stride2(self):
        layer = Conv2D(3, 8, 3, stride=2, rng=0)
        assert layer.output_shape((3, 16, 16)) == (8, 8, 8)

    def test_forward_shape_matches_output_shape(self, rng):
        layer = Conv2D(3, 8, 5, stride=2, rng=0)
        x = rng.normal(size=(2, 3, 16, 16)).astype(np.float32)
        out = layer(x)
        assert out.shape == (2,) + layer.output_shape((3, 16, 16))

    def test_wrong_channels_raises(self):
        layer = Conv2D(3, 8, 3, rng=0)
        with pytest.raises(ValueError):
            layer.output_shape((4, 16, 16))

    def test_num_params(self):
        layer = Conv2D(3, 8, 3, rng=0)
        assert layer.num_params() == 3 * 8 * 9 + 8

    def test_num_ops(self):
        layer = Conv2D(3, 8, 3, rng=0)
        assert layer.num_ops((3, 16, 16)) == 8 * 16 * 16 * 3 * 9

    def test_invalid_channel_count(self):
        with pytest.raises(ValueError):
            Conv2D(0, 8, 3)

    def test_gradient_accumulates(self, rng):
        layer = Conv2D(2, 4, 3, rng=0)
        x = rng.normal(size=(1, 2, 6, 6)).astype(np.float32)
        out = layer(x)
        layer.backward(np.ones_like(out))
        first = layer.weight.grad.copy()
        layer(x)
        layer.backward(np.ones_like(out))
        np.testing.assert_allclose(layer.weight.grad, 2 * first, rtol=1e-5)

    def test_backward_before_forward_raises(self):
        layer = Conv2D(2, 4, 3, rng=0)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 4, 6, 6), dtype=np.float32))


class TestDepthwiseConv2DLayer:
    def test_output_preserves_channels(self):
        layer = DepthwiseConv2D(6, 3, rng=0)
        assert layer.output_shape((6, 10, 10)) == (6, 10, 10)

    def test_num_params(self):
        layer = DepthwiseConv2D(6, 3, rng=0)
        assert layer.num_params() == 6 * 9 + 6

    def test_ops_linear_in_channels(self):
        small = DepthwiseConv2D(4, 3, rng=0).num_ops((4, 8, 8))
        large = DepthwiseConv2D(8, 3, rng=0).num_ops((8, 8, 8))
        assert large == 2 * small

    def test_forward_backward_roundtrip(self, rng):
        layer = DepthwiseConv2D(4, 3, stride=2, rng=0)
        x = rng.normal(size=(2, 4, 8, 8)).astype(np.float32)
        out = layer(x)
        grad = layer.backward(np.ones_like(out))
        assert grad.shape == x.shape


class TestPoolingLayers:
    def test_maxpool_shape(self):
        assert MaxPool2D(2).output_shape((4, 8, 8)) == (4, 4, 4)

    def test_avgpool_forward_backward(self, rng):
        layer = AvgPool2D(2)
        x = rng.normal(size=(1, 2, 8, 8)).astype(np.float32)
        out = layer(x)
        grad = layer.backward(np.ones_like(out))
        assert grad.shape == x.shape
        assert grad.sum() == pytest.approx(out.size, rel=1e-5)

    def test_global_avg_pool(self, rng):
        layer = GlobalAvgPool2D()
        x = rng.normal(size=(3, 5, 4, 6)).astype(np.float32)
        out = layer(x)
        assert out.shape == (3, 5, 1, 1)
        np.testing.assert_allclose(out[:, :, 0, 0], x.mean(axis=(2, 3)), rtol=1e-5)

    def test_invalid_kernel(self):
        with pytest.raises(ValueError):
            MaxPool2D(0)


class TestActivationsLayers:
    @pytest.mark.parametrize("cls,clip", [(ReLU, None), (ReLU4, 4.0), (ReLU8, 8.0)])
    def test_clip_values(self, cls, clip):
        layer = cls()
        x = np.array([[-1.0, 2.0, 100.0]], dtype=np.float32)
        out = layer(x)
        assert out[0, 0] == 0.0
        expected_max = 100.0 if clip is None else clip
        assert out[0, 2] == expected_max

    def test_feature_map_bits_mapping(self):
        assert ReLU().feature_map_bits == 16
        assert ReLU8().feature_map_bits == 10
        assert ReLU4().feature_map_bits == 8

    def test_make_activation(self):
        assert isinstance(make_activation("relu4"), ReLU4)
        assert isinstance(make_activation("RELU"), ReLU)
        with pytest.raises(KeyError):
            make_activation("gelu")

    def test_sigmoid_backward(self, rng):
        layer = Sigmoid()
        x = rng.normal(size=(4, 4)).astype(np.float32)
        out = layer(x)
        grad = layer.backward(np.ones_like(out))
        np.testing.assert_allclose(grad, out * (1 - out), rtol=1e-5)


class TestBatchNorm:
    def test_training_normalises_batch(self, rng):
        layer = BatchNorm2D(4)
        x = rng.normal(loc=5.0, scale=3.0, size=(8, 4, 6, 6)).astype(np.float32)
        out = layer(x)
        assert abs(out.mean()) < 1e-4
        assert out.std() == pytest.approx(1.0, abs=0.05)

    def test_eval_uses_running_stats(self, rng):
        layer = BatchNorm2D(4)
        x = rng.normal(loc=5.0, scale=3.0, size=(8, 4, 6, 6)).astype(np.float32)
        for _ in range(50):
            layer(x)
        layer.eval()
        out = layer(x)
        # Running statistics converge towards the batch statistics.
        assert abs(out.mean()) < 0.5

    def test_backward_shape(self, rng):
        layer = BatchNorm2D(3)
        x = rng.normal(size=(4, 3, 5, 5)).astype(np.float32)
        out = layer(x)
        grad = layer.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_channel_mismatch_raises(self, rng):
        layer = BatchNorm2D(3)
        with pytest.raises(ValueError):
            layer(np.zeros((1, 4, 5, 5), dtype=np.float32))

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            BatchNorm2D(3, momentum=1.5)


class TestCoreLayers:
    def test_flatten_roundtrip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(2, 3, 4, 5)).astype(np.float32)
        out = layer(x)
        assert out.shape == (2, 60)
        assert layer.backward(out).shape == x.shape

    def test_dense_forward_backward(self, rng):
        layer = Dense(10, 4, rng=0)
        x = rng.normal(size=(3, 10)).astype(np.float32)
        out = layer(x)
        assert out.shape == (3, 4)
        grad = layer.backward(np.ones_like(out))
        assert grad.shape == x.shape
        assert layer.num_params() == 10 * 4 + 4

    def test_dense_input_validation(self, rng):
        layer = Dense(10, 4, rng=0)
        with pytest.raises(ValueError):
            layer(rng.normal(size=(3, 7)).astype(np.float32))

    def test_dropout_inference_identity(self, rng):
        layer = Dropout(0.5, rng=0)
        layer.eval()
        x = rng.normal(size=(4, 10)).astype(np.float32)
        np.testing.assert_array_equal(layer(x), x)

    def test_dropout_training_masks(self, rng):
        layer = Dropout(0.5, rng=0)
        x = np.ones((1, 1000), dtype=np.float32)
        out = layer(x)
        dropped = np.sum(out == 0.0)
        assert 300 < dropped < 700

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestBBoxHead:
    def test_output_in_unit_interval(self, rng):
        head = BBoxHead(8, rng=0)
        x = rng.normal(size=(5, 8, 4, 4)).astype(np.float32)
        out = head(x)
        assert out.shape == (5, 4)
        assert np.all(out >= 0.0) and np.all(out <= 1.0)

    def test_backward_shape(self, rng):
        head = BBoxHead(8, rng=0)
        x = rng.normal(size=(2, 8, 4, 4)).astype(np.float32)
        out = head(x)
        grad = head.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_output_shape_validation(self):
        head = BBoxHead(8, rng=0)
        assert head.output_shape((8, 4, 4)) == (4,)
        with pytest.raises(ValueError):
            head.output_shape((16, 4, 4))
