"""Tests for IP templates, instances and the IP library."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.ip import IPConfig, IPTemplate
from repro.hw.ip_library import DEFAULT_PARALLEL_FACTORS, IPLibrary, default_ip_library
from repro.hw.workload import LayerWorkload
from repro.nn.quantization import W8A8, W16A16


@pytest.fixture(scope="module")
def library() -> IPLibrary:
    return default_ip_library()


def conv_layer(kernel=3, channels=32, size=16) -> LayerWorkload:
    return LayerWorkload(kind="conv", kernel=kernel, in_channels=channels,
                         out_channels=channels, in_height=size, in_width=size)


class TestIPLibrary:
    def test_contains_paper_ip_pool(self, library):
        for name in ("conv1x1", "conv3x3", "conv5x5", "dwconv3x3", "dwconv5x5",
                     "dwconv7x7", "pool", "norm", "activation"):
            assert name in library

    def test_compute_templates(self, library):
        assert len(library.compute_templates()) == 6

    def test_template_lookup_for_layers(self, library):
        assert library.template_for_layer(conv_layer(3)).name == "conv3x3"
        assert library.template_for_layer(conv_layer(5)).name == "conv5x5"
        dw = LayerWorkload(kind="dwconv", kernel=7, in_channels=8, out_channels=8,
                           in_height=8, in_width=8)
        assert library.template_for_layer(dw).name == "dwconv7x7"

    def test_head_maps_to_conv1x1(self, library):
        head = LayerWorkload(kind="head", kernel=1, in_channels=8, out_channels=4,
                             in_height=4, in_width=4)
        assert library.template_for_layer(head).name == "conv1x1"

    def test_unknown_layer_raises(self, library):
        odd = LayerWorkload(kind="conv", kernel=9, in_channels=8, out_channels=8,
                            in_height=8, in_width=8)
        with pytest.raises(KeyError):
            library.template_for_layer(odd)

    def test_get_unknown_template(self, library):
        with pytest.raises(KeyError):
            library.get("conv9x9")

    def test_default_parallel_factors(self):
        assert DEFAULT_PARALLEL_FACTORS == (4, 8, 16)

    def test_register_replaces(self):
        lib = IPLibrary()
        lib.register(IPTemplate("custom", kind="conv", kernel=3))
        assert len(lib) == 1
        assert lib.get("custom").kernel == 3


class TestIPInstance:
    def test_dsp_packing_with_8bit_weights(self, library):
        template = library.get("conv3x3")
        packed = template.instantiate(IPConfig(parallel_factor=16, quantization=W8A8))
        wide = template.instantiate(IPConfig(parallel_factor=16, quantization=W16A16))
        assert packed.dsp_usage() == 8
        assert wide.dsp_usage() == 16

    def test_pool_uses_no_dsp(self, library):
        instance = library.get("pool").instantiate(IPConfig(parallel_factor=16))
        assert instance.dsp_usage() == 0.0

    def test_lut_grows_with_pf(self, library):
        template = library.get("conv3x3")
        small = template.instantiate(IPConfig(parallel_factor=4))
        large = template.instantiate(IPConfig(parallel_factor=64))
        assert large.lut_usage() > small.lut_usage()
        assert large.ff_usage() > small.ff_usage()

    def test_cycles_decrease_with_pf(self, library):
        template = library.get("conv3x3")
        small = template.instantiate(IPConfig(parallel_factor=4, quantization=W8A8))
        large = template.instantiate(IPConfig(parallel_factor=64, quantization=W8A8))
        assert large.cycles_for(1e6) < small.cycles_for(1e6)

    def test_cycles_for_negative_raises(self, library):
        instance = library.get("conv1x1").instantiate(IPConfig())
        with pytest.raises(ValueError):
            instance.cycles_for(-1.0)

    def test_cycles_for_layer_share_sums_to_total(self, library):
        layer = conv_layer(3, channels=16, size=16)
        instance = library.get("conv3x3").instantiate(IPConfig(parallel_factor=8, quantization=W8A8))
        num_tiles = 4
        per_tile = instance.cycles_for_layer_share(layer, num_tiles)
        total = num_tiles * per_tile
        direct = instance.cycles_for(layer.macs, pipelined_calls=num_tiles)
        assert total == pytest.approx(direct, rel=1e-6)

    def test_larger_kernels_use_more_resources(self, library):
        config = IPConfig(parallel_factor=16)
        conv3 = library.get("conv3x3").instantiate(config)
        conv5 = library.get("conv5x5").instantiate(config)
        assert conv5.lut_usage() > conv3.lut_usage()
        assert conv5.resources().bram >= conv3.resources().bram

    def test_line_buffer_zero_for_1x1(self, library):
        instance = library.get("conv1x1").instantiate(IPConfig(parallel_factor=8))
        assert instance.line_buffer_bram(32, 64) == 0.0

    def test_dwconv_private_weight_buffer(self, library):
        dw = library.get("dwconv3x3").instantiate(IPConfig(parallel_factor=8, quantization=W8A8))
        conv = library.get("conv3x3").instantiate(IPConfig(parallel_factor=8, quantization=W8A8))
        assert dw.weight_buffer_bram(256, 256) >= 1.0
        assert conv.weight_buffer_bram(256, 256) == 0.0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            IPConfig(parallel_factor=0)

    def test_efficiency_derates_throughput(self, library):
        template = library.get("conv3x3")
        instance = template.instantiate(IPConfig(parallel_factor=8, quantization=W8A8))
        peak = 8 * 2
        assert instance.macs_per_cycle() == pytest.approx(peak * template.efficiency)

    @given(st.integers(1, 256), st.floats(0, 1e8))
    @settings(max_examples=40, deadline=None)
    def test_cycles_positive_and_monotone_in_macs(self, pf, macs):
        template = default_ip_library().get("conv3x3")
        instance = template.instantiate(IPConfig(parallel_factor=pf, quantization=W8A8))
        assert instance.cycles_for(macs) > 0
        assert instance.cycles_for(macs + 1000) >= instance.cycles_for(macs)
