"""Tests for the analytical performance models (Eqs. 1-5) and Auto-HLS sampling."""

from __future__ import annotations

import pytest

from repro.hw.analytical import (
    AnalyticalModelCoefficients,
    BundlePerformanceModel,
    DEFAULT_COEFFICIENTS,
    DNNPerformanceModel,
)
from repro.hw.device import PYNQ_Z1
from repro.hw.pipeline import TilePipelineSimulator
from repro.hw.sampling import fit_coefficients, validate_against_simulator
from repro.hw.tile_arch import TileArchAccelerator

from tests.test_hw_tile_arch_pipeline import make_workload


@pytest.fixture(scope="module")
def accelerator():
    return TileArchAccelerator.build(make_workload(channels=48, reps=3), PYNQ_Z1, parallel_factor=16)


class TestCoefficients:
    def test_defaults_valid(self):
        assert DEFAULT_COEFFICIENTS.alpha > 0
        assert DEFAULT_COEFFICIENTS.beta >= 0

    def test_with_updates(self):
        updated = DEFAULT_COEFFICIENTS.with_updates(alpha=1.0)
        assert updated.alpha == 1.0
        assert updated.beta == DEFAULT_COEFFICIENTS.beta

    def test_validation(self):
        with pytest.raises(ValueError):
            AnalyticalModelCoefficients(alpha=0.0)
        with pytest.raises(ValueError):
            AnalyticalModelCoefficients(phi=-1.0)


class TestBundleModel:
    def test_eq1_resource_is_sum_plus_overhead(self, accelerator):
        model = BundlePerformanceModel(accelerator)
        total = model.resources()
        bare_sum = sum(
            (inst.resources(accelerator.tile.tile_width, 48, 48).lut
             for inst in accelerator.bundle_hw.instances),
        )
        assert total.lut > bare_sum  # Gamma overhead present

    def test_eq2_latency_has_compute_and_transfer_terms(self, accelerator):
        model = BundlePerformanceModel(accelerator)
        layers = accelerator.workload.layers_in_bundle(0)
        estimate = model.latency_ms(layers)
        assert estimate.compute_ms > 0
        assert estimate.data_movement_ms > 0
        assert estimate.latency_ms == pytest.approx(
            estimate.compute_ms + estimate.data_movement_ms, rel=1e-6
        )

    def test_eq3_reuse_scales_compute(self, accelerator):
        """More layers served by the same IP instance -> more compute latency."""
        model = BundlePerformanceModel(accelerator)
        one = model.compute_latency_cycles(accelerator.workload.layers_in_bundle(0))
        both = model.compute_latency_cycles(
            accelerator.workload.layers_in_bundle(0) + accelerator.workload.layers_in_bundle(1)
        )
        assert both > one

    def test_alpha_scales_latency(self, accelerator):
        layers = accelerator.workload.layers_in_bundle(0)
        low = BundlePerformanceModel(accelerator, DEFAULT_COEFFICIENTS.with_updates(alpha=0.5))
        high = BundlePerformanceModel(accelerator, DEFAULT_COEFFICIENTS.with_updates(alpha=1.0))
        assert high.latency_ms(layers).compute_ms == pytest.approx(
            2 * low.latency_ms(layers).compute_ms, rel=1e-6
        )


class TestDNNModel:
    def test_eq4_total_is_sum_of_bundles_plus_dm(self, accelerator):
        model = DNNPerformanceModel(accelerator)
        estimate = model.estimate()
        bundle_sum = 0.0
        for idx in accelerator.workload.bundle_indices():
            bundle_sum += model.bundle_model.latency_ms(
                accelerator.workload.layers_in_bundle(idx)
            ).latency_ms
        assert estimate.latency_ms > bundle_sum  # stray layers + phi * Lat_DM

    def test_eq5_resources_include_buffers_and_control(self, accelerator):
        model = DNNPerformanceModel(accelerator)
        resources = model.resources()
        assert resources.bram >= accelerator.buffers.total_bram

    def test_fps_property(self, accelerator):
        estimate = DNNPerformanceModel(accelerator).estimate()
        assert estimate.fps == pytest.approx(1000.0 / estimate.latency_ms, rel=1e-9)

    def test_latency_monotone_in_network_size(self):
        small_acc = TileArchAccelerator.build(make_workload(channels=16, reps=1), PYNQ_Z1, 16)
        large_acc = TileArchAccelerator.build(make_workload(channels=64, reps=4), PYNQ_Z1, 16)
        assert (DNNPerformanceModel(large_acc).latency_ms()
                > DNNPerformanceModel(small_acc).latency_ms())


class TestSampling:
    def test_fit_improves_agreement_with_simulator(self):
        workloads = [make_workload(channels=c, reps=r) for c, r in ((16, 1), (32, 2), (48, 3))]
        result = fit_coefficients(workloads, PYNQ_Z1, parallel_factor=16)
        assert result.mean_relative_error < 0.35
        assert 0.05 <= result.coefficients.alpha <= 3.0
        assert 0.0 <= result.coefficients.beta <= 3.0
        assert len(result.samples) == 3

    def test_fitted_model_tracks_simulator_on_unseen_workload(self):
        workloads = [make_workload(channels=c, reps=r) for c, r in ((16, 1), (32, 2), (48, 3))]
        result = fit_coefficients(workloads, PYNQ_Z1, parallel_factor=16)
        analytical, simulated = validate_against_simulator(
            make_workload(channels=40, reps=2), PYNQ_Z1, result.coefficients, parallel_factor=16
        )
        assert analytical == pytest.approx(simulated, rel=0.5)

    def test_empty_sample_list_rejected(self):
        with pytest.raises(ValueError):
            fit_coefficients([], PYNQ_Z1)

    def test_simulator_reference_is_deterministic(self):
        wl = make_workload(channels=32, reps=2)
        acc = TileArchAccelerator.build(wl, PYNQ_Z1, parallel_factor=16)
        a = TilePipelineSimulator(acc).latency_ms()
        b = TilePipelineSimulator(acc).latency_ms()
        assert a == b
