"""Tests for the Auto-DNN and Auto-HLS engines."""

from __future__ import annotations

import pytest

from repro.core.auto_dnn import AutoDNN, DNNCandidate
from repro.core.auto_hls import AutoHLS
from repro.core.bundle_generation import get_bundle
from repro.core.constraints import LatencyTarget, ResourceConstraint
from repro.detection.accuracy_model import SurrogateAccuracyModel
from repro.detection.task import DAC_SDC_TASK, TINY_DETECTION_TASK
from repro.hw.device import PYNQ_Z1


@pytest.fixture(scope="module")
def auto_hls():
    return AutoHLS(PYNQ_Z1)


@pytest.fixture(scope="module")
def auto_dnn(auto_hls):
    # The search tests use the full-resolution task: the tiny task is so fast
    # on the PYNQ-Z1 model that realistic latency bands are unreachable.
    return AutoDNN(
        DAC_SDC_TASK, PYNQ_Z1,
        auto_hls=auto_hls,
        accuracy_model=SurrogateAccuracyModel(noise=0.0),
        stem_channels=48,
        max_channels=512,
        rng=5,
    )


class TestAutoHLS:
    def test_estimate_and_generate_agree_on_resources(self, auto_hls, tiny_config):
        estimate = auto_hls.estimate(tiny_config)
        result = auto_hls.generate(tiny_config)
        assert estimate.resources.dsp == pytest.approx(result.report.resources.dsp, rel=0.05)

    def test_generate_produces_code_and_report(self, auto_hls, tiny_config):
        result = auto_hls.generate(tiny_config)
        assert result.design.total_lines > 50
        assert result.report.latency_ms > 0
        assert result.latency_ms == result.report.latency_ms
        assert result.fps == pytest.approx(1000.0 / result.latency_ms)

    def test_clock_override(self, auto_hls, tiny_config):
        slow = auto_hls.generate(tiny_config, clock_mhz=100.0)
        fast = auto_hls.generate(tiny_config, clock_mhz=150.0)
        assert fast.report.latency_ms < slow.report.latency_ms

    def test_fit_models_updates_coefficients(self, tiny_config):
        engine = AutoHLS(PYNQ_Z1)
        before = engine.coefficients
        result = engine.fit_models([tiny_config.to_workload()])
        assert engine.coefficients is result.coefficients
        assert engine.coefficients != before or result.mean_relative_error >= 0.0

    def test_fitted_estimate_tracks_synthesis(self, tiny_config):
        engine = AutoHLS(PYNQ_Z1)
        engine.fit_models([tiny_config.to_workload()])
        estimate = engine.estimate(tiny_config)
        report = engine.generate(tiny_config).report
        assert estimate.latency_ms == pytest.approx(report.latency_ms, rel=0.35)


class TestAutoDNNInitialization:
    def test_initialize_respects_bundle(self, auto_dnn):
        config = auto_dnn.initialize(get_bundle(13))
        assert config.bundle.bundle_id == 13
        assert config.num_repetitions == 3
        assert len(config.channel_expansion) == 3

    def test_initialize_maximises_pf_within_device(self, auto_dnn):
        config = auto_dnn.initialize(get_bundle(13))
        estimate = auto_dnn.auto_hls.estimate(config)
        assert auto_dnn.resource_constraint.satisfied_by(estimate.resources)
        # Doubling PF once more must violate the constraint (otherwise the
        # initialization did not pick the maximum).
        bigger = config.with_updates(parallel_factor=config.parallel_factor * 2)
        bigger_estimate = auto_dnn.auto_hls.estimate(bigger)
        assert not auto_dnn.resource_constraint.satisfied_by(bigger_estimate.resources)

    def test_conv_bundles_start_with_faster_channel_growth(self, auto_dnn):
        dw = auto_dnn.initialize(get_bundle(13))
        conv = auto_dnn.initialize(get_bundle(1))
        assert max(conv.channel_expansion) >= max(dw.channel_expansion)


class TestAutoDNNSearch:
    def test_search_bundle_returns_candidates_with_accuracy(self, auto_dnn):
        target = LatencyTarget(fps=40.0, tolerance_ms=6.0)
        candidates = auto_dnn.search_bundle(get_bundle(13), target,
                                            num_candidates=2, max_iterations=100)
        assert candidates
        for candidate in candidates:
            assert isinstance(candidate, DNNCandidate)
            assert 0.0 < candidate.accuracy < 1.0
            assert candidate.latency_target is target

    def test_refine_with_hls_attaches_reports(self, auto_dnn):
        target = LatencyTarget(fps=40.0, tolerance_ms=6.0)
        candidates = auto_dnn.search_bundle(get_bundle(13), target,
                                            num_candidates=1, max_iterations=80)
        refined = auto_dnn.refine_with_hls(candidates)
        assert all(c.hls is not None for c in refined)
        assert all(c.latency_ms == c.hls.latency_ms for c in refined)

    def test_best_per_target_selects_highest_accuracy(self):
        target = LatencyTarget(fps=100.0, tolerance_ms=5.0)

        def fake(accuracy, latency):
            from repro.hw.analytical import PerformanceEstimate
            from repro.hw.resource import ResourceVector
            return DNNCandidate(
                config=None, accuracy=accuracy,
                estimate=PerformanceEstimate(latency_ms=latency, resources=ResourceVector()),
            )

        candidates = [fake(0.5, 10.0), fake(0.7, 9.0), fake(0.9, 30.0)]
        best = AutoDNN.best_per_target(candidates, [target])
        assert best[target].accuracy == 0.7  # 0.9 candidate is out of band

    def test_best_per_target_handles_empty(self):
        target = LatencyTarget(fps=100.0, tolerance_ms=1.0)
        assert AutoDNN.best_per_target([], [target])[target] is None

    def test_candidate_summary_mentions_bundle(self, auto_dnn):
        target = LatencyTarget(fps=40.0, tolerance_ms=6.0)
        candidates = auto_dnn.search_bundle(get_bundle(13), target,
                                            num_candidates=1, max_iterations=80)
        if candidates:
            assert "Bundle 13" in candidates[0].summary()
