"""Tests for utilities and the command-line interface."""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.cli import main
from repro.utils.logging import configure_logging, get_logger
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.tables import render_kv, render_table


class TestLoggingUtils:
    def test_get_logger_namespaced(self):
        assert get_logger("foo").name == "repro.foo"
        assert get_logger("repro.bar").name == "repro.bar"

    def test_configure_logging_idempotent(self):
        configure_logging(logging.WARNING)
        handlers_before = len(logging.getLogger("repro").handlers)
        configure_logging(logging.INFO)
        assert len(logging.getLogger("repro").handlers) == handlers_before

    def test_configure_logging_updates_handler_level(self):
        configure_logging(logging.INFO)
        configure_logging(logging.DEBUG)
        root = logging.getLogger("repro")
        assert root.level == logging.DEBUG
        assert all(h.level == logging.DEBUG for h in root.handlers)

    def test_configure_logging_accepts_level_names(self):
        configure_logging("warning")
        assert logging.getLogger("repro").level == logging.WARNING
        with pytest.raises(ValueError):
            configure_logging("loud")


class TestRngUtils:
    def test_ensure_rng_from_seed_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_ensure_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_ensure_rng_none(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_ensure_rng_invalid_type(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_spawn_rngs_independent(self):
        children = spawn_rngs(0, 3)
        assert len(children) == 3
        values = [c.random() for c in children]
        assert len(set(values)) == 3


class TestTables:
    def test_render_table_alignment(self):
        text = render_table(["name", "value"], [["a", 1], ["bb", 2.5]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_render_table_handles_extra_columns(self):
        text = render_table(["a"], [["x", "extra"]])
        assert "extra" in text

    def test_render_kv(self):
        text = render_kv("facts", {"alpha": 0.5, "name": "x"})
        assert "alpha" in text and "0.500" in text


class TestCLI:
    def test_bundles_command(self, capsys):
        assert main(["bundles"]) == 0
        out = capsys.readouterr().out
        assert "dwconv3x3+conv1x1" in out
        assert out.count("\n") == 18

    def test_codegen_command(self, tmp_path, capsys):
        code = main(["codegen", "--design", "DNN3", "--output", str(tmp_path)])
        assert code == 0
        generated = list(tmp_path.iterdir())
        assert any(p.suffix == ".cpp" for p in generated)
        assert any(p.suffix == ".h" for p in generated)
        out = capsys.readouterr().out
        assert "HLS report" in out

    def test_codesign_command_small(self, capsys):
        code = main([
            "codesign", "--fps", "40", "--tolerance-ms", "10",
            "--top-bundles", "2", "--candidates", "1", "--iterations", "30", "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Co-design flow" in out

    def test_experiment_fig5(self, capsys):
        assert main(["experiment", "fig5"]) == 0
        assert "fine-grained" in capsys.readouterr().out.lower()

    def test_unknown_device_errors(self):
        with pytest.raises(KeyError):
            main(["codesign", "--device", "unknown-board"])

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])
