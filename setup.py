"""Setup shim so that ``pip install -e .`` works on minimal environments.

All project metadata lives in ``pyproject.toml``; this file only exists to
support legacy editable installs on systems without the ``wheel`` package.
"""
from setuptools import setup

setup()
