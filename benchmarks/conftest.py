"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and prints
the corresponding rows/series once (so running ``pytest benchmarks/
--benchmark-only -s`` reproduces the evaluation section), while
pytest-benchmark measures the runtime of the underlying experiment driver.
"""

from __future__ import annotations

import logging

import pytest

logging.getLogger("repro").setLevel(logging.ERROR)


def pytest_configure(config):
    # The benchmarks print the reproduced tables; keep them visible when -s is
    # used and harmless otherwise.
    config.addinivalue_line("markers", "paper_artifact(name): paper table/figure reproduced")


@pytest.fixture(scope="session")
def print_report():
    """Print an experiment report once per benchmark session."""
    printed: set[str] = set()

    def _print(title: str, text: str) -> None:
        if title not in printed:
            printed.add(title)
            print(f"\n{text}\n")

    return _print
