"""Sweep-engine benchmarks: process fan-out, disk-cache warm-up and resume.

Measures (1) the wall-time effect of fanning the device x strategy grid out
across worker processes versus running it serially, (2) the speedup a
warm :class:`~repro.sweep.disk_cache.DiskEvaluationCache` buys a repeated
sweep — both in wall time and in avoided estimator invocations (the
deterministic, machine-independent measure) — and (3) the cost of resuming
an already-complete sweep from its checkpoint (the floor every partial
resume builds on: reused cells are replayed from disk, not re-searched).

The perf-trajectory test at the bottom additionally writes
``BENCH_sweep.json`` (to ``$REPRO_BENCH_DIR`` or the working directory):
candidates/sec, cache hit rates and prep share, so CI can archive one
comparable perf artifact per run.
"""

from __future__ import annotations

import os
import time

import pytest

import repro.telemetry as telemetry
from repro.sweep import CHECKPOINT_FILENAME, SweepRunner, build_grid

#: Tiny but non-trivial grid: 2 devices x 2 strategies, one target each.
GRID = dict(
    devices="pynq-z1,ultra96",
    strategies="scd,random",
    fps_targets=[40.0],
)
BUDGET = dict(tolerance_ms=10.0, iterations=40, num_candidates=2, top_bundles=3, seed=1)


def _journals(result):
    return [outcome.journal for outcome in result.outcomes]


def test_serial_vs_process_fanout(benchmark):
    """Same grid, serial in-process vs a 4-process pool: identical journals."""
    tasks = build_grid(**GRID, **BUDGET)

    start = time.perf_counter()
    serial = SweepRunner(tasks, workers=1).run()
    serial_time = time.perf_counter() - start

    pooled = benchmark.pedantic(
        lambda: SweepRunner(tasks, workers=4).run(),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    pooled_time = benchmark.stats.stats.mean

    speedup = serial_time / pooled_time if pooled_time > 0 else float("inf")
    print(f"\n[sweep fan-out] {len(tasks)} tasks: serial {serial_time * 1e3:.0f} ms, "
          f"4 processes {pooled_time * 1e3:.0f} ms ({speedup:.2f}x)")
    # The fan-out must be a pure execution-mode change.
    assert _journals(serial) == _journals(pooled)
    assert serial.estimator_calls == pooled.estimator_calls


def test_shared_vs_per_cell_preparation(benchmark):
    """Hoisting the per-device fit + bundle selection out of the cells.

    A 1-device x 2-strategy x 2-target grid repeats the identical model fit
    and bundle selection four times without sharing; the shared-preparation
    schedule runs them once and ships the artifact, with byte-identical
    journals.
    """
    tasks = build_grid("pynq-z1", "scd,random", [30.0, 40.0], **BUDGET)

    start = time.perf_counter()
    per_cell = SweepRunner(tasks, workers=1, share_preparation=False).run()
    per_cell_time = time.perf_counter() - start

    shared = benchmark.pedantic(
        lambda: SweepRunner(tasks, workers=1, share_preparation=True).run(),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    shared_time = benchmark.stats.stats.mean

    speedup = per_cell_time / shared_time if shared_time > 0 else float("inf")
    print(f"\n[sweep shared prep] {len(tasks)} cells: per-cell {per_cell_time * 1e3:.0f} ms, "
          f"shared {shared_time * 1e3:.0f} ms ({speedup:.2f}x, "
          f"{len(shared.preparations)} preparation(s))")
    # Sharing the preparation must be a pure execution-mode change.
    assert _journals(per_cell) == _journals(shared)
    assert len(shared.preparations) == 1
    assert all(outcome.used_shared_prep for outcome in shared.outcomes)
    assert not any(outcome.used_shared_prep for outcome in per_cell.outcomes)


def test_work_stealing_on_skewed_costs(benchmark):
    """Cost-ordered stealing vs static chunking on a deliberately skewed grid.

    The heavy high-iteration cells are interleaved with cheap ones; cost
    hints let the stealing scheduler start the long cells first so the
    cheap ones fill the tail.  Journals stay identical either way.
    """
    heavy = build_grid("pynq-z1,ultra96", "scd,random", [30.0],
                       tolerance_ms=10.0, iterations=160, num_candidates=2,
                       top_bundles=3, seed=1)
    light = build_grid("pynq-z1,ultra96", "scd,random", [40.0],
                       tolerance_ms=10.0, iterations=10, num_candidates=1,
                       top_bundles=2, seed=1)
    tasks = [cell for pair in zip(light, heavy) for cell in pair]

    start = time.perf_counter()
    chunked = SweepRunner(tasks, workers=2, schedule="chunked").run()
    chunked_time = time.perf_counter() - start

    stealing = benchmark.pedantic(
        lambda: SweepRunner(tasks, workers=2, schedule="steal").run(),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    stealing_time = benchmark.stats.stats.mean

    ratio = chunked_time / stealing_time if stealing_time > 0 else float("inf")
    print(f"\n[sweep stealing] {len(tasks)} skewed cells: chunked "
          f"{chunked_time * 1e3:.0f} ms, stealing {stealing_time * 1e3:.0f} ms "
          f"({ratio:.2f}x)")
    assert _journals(chunked) == _journals(stealing)


def test_checkpoint_resume_reuses_completed_cells(benchmark, tmp_path):
    """Resuming a finished sweep replays every cell from the checkpoint.

    This is the best case of ``--resume`` (and the per-cell floor of any
    partial resume): no preparation, no search, no estimator calls — the
    journals come back byte-identical from the checkpoint records.
    """
    tasks = build_grid(**GRID, **BUDGET)
    cache_dir = tmp_path / "sweep-cache"

    start = time.perf_counter()
    full = SweepRunner(tasks, workers=1, cache_dir=cache_dir).run()
    full_time = time.perf_counter() - start

    resumed = benchmark.pedantic(
        lambda: SweepRunner(tasks, workers=1, cache_dir=cache_dir,
                            resume_from=cache_dir / CHECKPOINT_FILENAME).run(),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    resume_time = benchmark.stats.stats.mean

    speedup = full_time / resume_time if resume_time > 0 else float("inf")
    print(f"\n[sweep resume] {len(tasks)} cells: full {full_time * 1e3:.0f} ms, "
          f"resume {resume_time * 1e3:.0f} ms ({speedup:.2f}x, "
          f"{resumed.reused} reused)")
    assert resumed.reused == len(tasks)
    assert not resumed.preparations, "a full resume skips preparation entirely"
    assert _journals(resumed) == _journals(full)


def test_cold_vs_warm_disk_cache(benchmark, tmp_path):
    """A warm re-run serves every estimate from disk: zero estimator calls."""
    tasks = build_grid(**GRID, **BUDGET)
    cache_dir = tmp_path / "sweep-cache"

    start = time.perf_counter()
    cold = SweepRunner(tasks, workers=1, cache_dir=cache_dir).run()
    cold_time = time.perf_counter() - start

    warm = benchmark.pedantic(
        lambda: SweepRunner(tasks, workers=1, cache_dir=cache_dir).run(),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    warm_time = benchmark.stats.stats.mean

    speedup = cold_time / warm_time if warm_time > 0 else float("inf")
    hit_rate = sum(o.disk_hits for o in warm.outcomes) / max(
        sum(o.disk_hits + o.disk_misses for o in warm.outcomes), 1
    )
    print(f"\n[sweep disk cache] estimator calls {cold.estimator_calls} -> "
          f"{warm.estimator_calls}, wall {cold_time * 1e3:.0f} ms -> "
          f"{warm_time * 1e3:.0f} ms ({speedup:.2f}x), "
          f"warm hit rate {hit_rate:.1%}")
    # The warm run must be measurably cheaper in real estimator work.
    assert cold.estimator_calls > 0
    assert warm.estimator_calls == 0
    assert hit_rate == 1.0
    assert _journals(cold) == _journals(warm)


def test_perf_trajectory_bench_json(benchmark, tmp_path):
    """Cold + warm telemetry-instrumented runs, archived as BENCH_sweep.json.

    The headline figure is candidates/sec (estimator invocations over wall
    time — the quantity the evaluation cache and shared preparation exist to
    improve), alongside memory/disk cache hit rates and the share of wall
    time spent in preparation.  The JSON lands in ``$REPRO_BENCH_DIR`` (or
    the working directory) so successive CI runs build a perf trajectory.
    """
    from repro.telemetry import write_bench_json

    tasks = build_grid(**GRID, **BUDGET)
    cache_dir = tmp_path / "sweep-cache"
    telemetry.enable(fresh=True)
    try:
        start = time.perf_counter()
        cold = SweepRunner(tasks, workers=1, cache_dir=cache_dir).run()
        cold_time = time.perf_counter() - start

        warm = benchmark.pedantic(
            lambda: SweepRunner(tasks, workers=1, cache_dir=cache_dir).run(),
            rounds=3, iterations=1, warmup_rounds=1,
        )
        warm_time = benchmark.stats.stats.mean
        # One extra instrumented warm run on a fresh registry: the benchmark
        # rounds above accumulate several runs' worth of counters, but the
        # rates below need exactly one run's totals.
        telemetry.enable(fresh=True)
        warm = SweepRunner(tasks, workers=1, cache_dir=cache_dir).run()
        snap = telemetry.snapshot()
    finally:
        telemetry.disable()

    counters = snap.counters
    mem_hits = counters.get("search.cache.hits", 0)
    mem_misses = counters.get("search.cache.misses", 0)
    disk_hits = counters.get("sweep.disk_cache.hits", 0)
    disk_misses = counters.get("sweep.disk_cache.misses", 0)
    candidates = mem_hits + mem_misses
    metrics = {
        "cells": len(tasks),
        "cold_wall_s": round(cold_time, 4),
        "warm_wall_s": round(warm_time, 4),
        "cold_estimator_calls": cold.estimator_calls,
        "warm_estimator_calls": warm.estimator_calls,
        "candidates_per_s": round(candidates / warm_time, 2) if warm_time > 0 else 0.0,
        "memory_hit_rate": round(mem_hits / candidates, 4) if candidates else 0.0,
        "disk_hit_rate": round(disk_hits / (disk_hits + disk_misses), 4)
        if (disk_hits + disk_misses) else 0.0,
        "prep_share": round(warm.prep_time_s / warm_time, 4) if warm_time > 0 else 0.0,
    }
    out_dir = os.environ.get("REPRO_BENCH_DIR", ".")
    path = write_bench_json(
        os.path.join(out_dir, "BENCH_sweep.json"),
        bench="sweep",
        metrics=metrics,
        meta={"grid": GRID, "budget": BUDGET},
        snapshot=snap,
    )
    print(f"\n[sweep perf trajectory] {metrics['candidates_per_s']:.0f} candidates/s "
          f"(memory hit rate {metrics['memory_hit_rate']:.1%}, "
          f"disk hit rate {metrics['disk_hit_rate']:.1%}) -> {path}")
    assert os.path.exists(path)
    assert candidates > 0
    assert _journals(cold) == _journals(warm)
