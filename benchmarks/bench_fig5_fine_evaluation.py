"""Fig. 5 — fine-grained evaluation of the selected bundles.

Regenerates the scatter data of Fig. 5: the selected bundles evaluated with
different replication counts and ReLU / ReLU8 / ReLU4 activations, and the
per-bundle characterisation (bundles 1 / 3 favour accuracy, bundle 13 favours
real-time designs).
"""

from __future__ import annotations

import pytest

from repro.detection.accuracy_model import SurrogateAccuracyModel
from repro.experiments.fig5 import report_fig5, run_fig5


@pytest.mark.paper_artifact("fig5")
def test_fig5_fine_grained_evaluation(benchmark, print_report):
    result = benchmark.pedantic(
        lambda: run_fig5(accuracy_model=SurrogateAccuracyModel()),
        rounds=3, iterations=1, warmup_rounds=0,
    )
    print_report("fig5", report_fig5(result).render())

    assert result.latency_leader() == 13, "Bundle 13 should favour real-time designs"
    assert result.accuracy_leader() in (1, 3), "Bundles 1/3 should favour high accuracy"

    extremes = result.per_bundle_extremes()
    # Bundle 13 achieves its best latency below the conv bundles' best latency.
    assert extremes[13]["best_latency_ms"] < extremes[1]["best_latency_ms"]
    assert extremes[13]["best_latency_ms"] < extremes[3]["best_latency_ms"]
    # ... at a lower accuracy ceiling (the trade-off Fig. 5 highlights).
    assert extremes[13]["best_accuracy"] < extremes[3]["best_accuracy"]
