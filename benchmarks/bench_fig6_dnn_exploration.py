"""Fig. 6 — hardware-aware DNN exploration for the 10 / 15 / 20 FPS targets.

Regenerates the exploration scatter of Fig. 6: Auto-DNN searches candidate
DNNs for each FPS target using the selected bundles, and the highest-accuracy
candidate per target is reported as the final design (DNN1-3).
"""

from __future__ import annotations

import math

import pytest

from repro.detection.accuracy_model import SurrogateAccuracyModel
from repro.experiments.fig6 import report_fig6, run_fig6


@pytest.mark.paper_artifact("fig6")
def test_fig6_dnn_exploration(benchmark, print_report):
    result = benchmark.pedantic(
        lambda: run_fig6(
            candidates_per_bundle=2,
            max_iterations=150,
            accuracy_model=SurrogateAccuracyModel(),
            rng=2019,
        ),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    print_report("fig6", report_fig6(result).render())

    # Dozens of DNN models are explored across the targets (the paper: 68).
    assert result.total_explored >= 10

    best = result.best_accuracies()
    found = {fps: v for fps, v in best.items() if not math.isnan(v)}
    assert len(found) >= 2, "at least two FPS targets must yield a final design"

    # Shape: a looser FPS target (10 FPS) never loses to the tightest one
    # (20 FPS) by more than noise, because its feasible designs are larger.
    if not math.isnan(best[10.0]) and not math.isnan(best[20.0]):
        assert best[10.0] >= best[20.0] - 0.02

    # The final designs come from the depth-wise separable / conv bundle mix,
    # and all respect the device (their SCD estimates fit the PYNQ-Z1).
    for fps, candidate in result.best.items():
        if candidate is None:
            continue
        assert candidate.config.bundle.bundle_id in (1, 3, 13, 15, 17)
        assert candidate.accuracy > 0.4


@pytest.mark.paper_artifact("fig6")
def test_fig6_single_target_search(benchmark):
    """Micro-variant: one bundle, one target (the unit of Fig. 6's sweep)."""
    from repro.core.auto_dnn import AutoDNN
    from repro.core.bundle_generation import get_bundle
    from repro.detection.task import DAC_SDC_TASK
    from repro.experiments.fig6 import model_scale_target
    from repro.hw.device import PYNQ_Z1

    auto_dnn = AutoDNN(DAC_SDC_TASK, PYNQ_Z1, accuracy_model=SurrogateAccuracyModel(), rng=7)
    target = model_scale_target(15.0)
    candidates = benchmark.pedantic(
        lambda: auto_dnn.search_bundle(get_bundle(13), target, num_candidates=2, max_iterations=100),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert isinstance(candidates, list)
