"""Batched vs scalar analytical-model evaluation (BENCH_eval.json).

Measures the speedup of :class:`repro.hw.batch.BatchedDNNEstimator` over the
scalar per-config path — both as pure estimation throughput and through
``BundleEvaluator.coarse_evaluate`` — and asserts the results stay
bit-identical, so the speedup is a pure execution-mode change.

The perf-trajectory test writes ``BENCH_eval.json`` (to ``$REPRO_BENCH_DIR``
or the working directory) with configs/sec and the measured speedups.  The
*ratio* metrics are machine-independent, so the test gates them two ways:
a hard floor, and a slack comparison against the committed baseline at the
repository root (the first trajectory point), failing on a large
regression wherever CI runs.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import repro.telemetry as telemetry
from repro.core.auto_hls import AutoHLS
from repro.core.bundle_evaluation import BundleEvaluator
from repro.core.bundle_generation import get_bundle
from repro.core.dnn_config import DNNConfig
from repro.detection.task import TINY_DETECTION_TASK
from repro.hw.device import PYNQ_Z1

#: Committed first trajectory point (repo root), used as the regression
#: baseline for the ratio metrics.
BASELINE_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_eval.json"

#: Hard machine-independent floors for the speedup ratios.
PURE_SPEEDUP_FLOOR = 5.0
COARSE_SPEEDUP_FLOOR = 3.0
#: A run must stay within this factor of the committed baseline's ratios.
BASELINE_SLACK = 0.5

BUNDLE_IDS = (1, 3, 5, 9, 13, 17)
PARALLEL_FACTORS = (4, 8, 16)
REPETITIONS = (2, 3)


def _configs() -> list[DNNConfig]:
    """A coarse-evaluation-shaped cross-product: 36 heterogeneous configs."""
    configs = []
    for bundle_id in BUNDLE_IDS:
        for reps in REPETITIONS:
            for pf in PARALLEL_FACTORS:
                configs.append(DNNConfig(
                    bundle=get_bundle(bundle_id),
                    task=TINY_DETECTION_TASK,
                    num_repetitions=reps,
                    channel_expansion=(1.5,) * reps,
                    downsample=(1,) * reps,
                    stem_channels=16,
                    parallel_factor=pf,
                    max_channels=64,
                ))
    return configs


def _identical(a, b) -> bool:
    return (
        a.latency_ms == b.latency_ms
        and a.compute_ms == b.compute_ms
        and a.data_movement_ms == b.data_movement_ms
        and a.resources == b.resources
    )


def _measure_speedups():
    """(pure_speedup, coarse_speedup, batched_wall_s, n_configs), warm caches."""
    auto = AutoHLS(PYNQ_Z1)
    configs = _configs()
    auto.estimate_batch(configs)  # warm the group-statics caches

    start = time.perf_counter()
    scalar = [auto.estimate(config) for config in configs]
    scalar_time = time.perf_counter() - start

    start = time.perf_counter()
    batched = auto.estimate_batch(configs)
    batched_time = time.perf_counter() - start

    assert all(_identical(a, b) for a, b in zip(batched, scalar))
    pure_speedup = scalar_time / batched_time if batched_time > 0 else float("inf")

    bundles = [get_bundle(i) for i in BUNDLE_IDS]
    kwargs = dict(task=TINY_DETECTION_TASK, device=PYNQ_Z1, stem_channels=16)
    batched_eval = BundleEvaluator(batched=True, **kwargs)
    scalar_eval = BundleEvaluator(batched=False, **kwargs)
    batched_eval.coarse_evaluate(bundles, parallel_factors=PARALLEL_FACTORS)  # warm

    start = time.perf_counter()
    scalar_records = scalar_eval.coarse_evaluate(bundles, parallel_factors=PARALLEL_FACTORS)
    scalar_coarse_time = time.perf_counter() - start

    start = time.perf_counter()
    batched_records = batched_eval.coarse_evaluate(bundles, parallel_factors=PARALLEL_FACTORS)
    batched_coarse_time = time.perf_counter() - start

    assert len(batched_records) == len(scalar_records)
    assert all(
        a.latency_ms == b.latency_ms and a.accuracy == b.accuracy
        and a.resources == b.resources
        for a, b in zip(batched_records, scalar_records)
    )
    coarse_speedup = (
        scalar_coarse_time / batched_coarse_time
        if batched_coarse_time > 0 else float("inf")
    )
    return pure_speedup, coarse_speedup, batched_time, len(configs)


def test_batched_estimation_speedup(benchmark):
    """Pure estimation: one vectorized call vs the scalar per-config loop."""
    auto = AutoHLS(PYNQ_Z1)
    configs = _configs()
    auto.estimate_batch(configs)  # warm

    start = time.perf_counter()
    scalar = [auto.estimate(config) for config in configs]
    scalar_time = time.perf_counter() - start

    batched = benchmark.pedantic(
        lambda: auto.estimate_batch(configs), rounds=5, iterations=1, warmup_rounds=1
    )
    batched_time = benchmark.stats.stats.mean

    speedup = scalar_time / batched_time if batched_time > 0 else float("inf")
    print(f"\n[batched estimation] {len(configs)} configs: scalar "
          f"{scalar_time * 1e3:.2f} ms, batched {batched_time * 1e3:.2f} ms "
          f"({speedup:.1f}x)")
    assert all(_identical(a, b) for a, b in zip(batched, scalar))
    assert speedup >= PURE_SPEEDUP_FLOOR


def test_batched_coarse_evaluation_speedup(benchmark):
    """coarse_evaluate with the batched cross-product vs the scalar loop."""
    bundles = [get_bundle(i) for i in BUNDLE_IDS]
    kwargs = dict(task=TINY_DETECTION_TASK, device=PYNQ_Z1, stem_channels=16)
    batched_eval = BundleEvaluator(batched=True, **kwargs)
    scalar_eval = BundleEvaluator(batched=False, **kwargs)
    batched_eval.coarse_evaluate(bundles, parallel_factors=PARALLEL_FACTORS)  # warm

    start = time.perf_counter()
    scalar_records = scalar_eval.coarse_evaluate(bundles, parallel_factors=PARALLEL_FACTORS)
    scalar_time = time.perf_counter() - start

    batched_records = benchmark.pedantic(
        lambda: batched_eval.coarse_evaluate(bundles, parallel_factors=PARALLEL_FACTORS),
        rounds=5, iterations=1, warmup_rounds=1,
    )
    batched_time = benchmark.stats.stats.mean

    speedup = scalar_time / batched_time if batched_time > 0 else float("inf")
    print(f"\n[batched coarse eval] {len(batched_records)} records: scalar "
          f"{scalar_time * 1e3:.2f} ms, batched {batched_time * 1e3:.2f} ms "
          f"({speedup:.1f}x)")
    assert all(
        a.latency_ms == b.latency_ms and a.accuracy == b.accuracy
        and a.resources == b.resources
        for a, b in zip(batched_records, scalar_records)
    )
    assert speedup >= COARSE_SPEEDUP_FLOOR


def test_perf_trajectory_bench_json():
    """Archive the speedups as BENCH_eval.json and gate vs the baseline.

    Wall-clock throughput (configs/sec) is machine-dependent and only
    archived for the trajectory; the speedup *ratios* are gated — against
    hard floors and, with :data:`BASELINE_SLACK`, against the committed
    baseline at the repository root.
    """
    from repro.telemetry import write_bench_json

    # Read the committed baseline before writing: when CI runs from the
    # repository root the fresh artifact lands on the same path.
    baseline = None
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text()).get("metrics")

    telemetry.enable(fresh=True)
    try:
        pure_speedup, coarse_speedup, batched_time, n_configs = _measure_speedups()
        snap = telemetry.snapshot()
    finally:
        telemetry.disable()

    metrics = {
        "configs": n_configs,
        "batched_wall_s": round(batched_time, 6),
        "configs_per_s": round(n_configs / batched_time, 1) if batched_time > 0 else 0.0,
        "pure_speedup": round(pure_speedup, 2),
        "coarse_speedup": round(coarse_speedup, 2),
    }
    out_dir = os.environ.get("REPRO_BENCH_DIR", ".")
    path = write_bench_json(
        os.path.join(out_dir, "BENCH_eval.json"),
        bench="eval_batch",
        metrics=metrics,
        meta={
            "device": "pynq-z1",
            "bundles": list(BUNDLE_IDS),
            "parallel_factors": list(PARALLEL_FACTORS),
            "repetitions": list(REPETITIONS),
        },
        snapshot=snap,
    )
    print(f"\n[eval perf trajectory] {metrics['configs_per_s']:.0f} configs/s, "
          f"pure {pure_speedup:.1f}x, coarse {coarse_speedup:.1f}x -> {path}")
    assert os.path.exists(path)
    assert pure_speedup >= PURE_SPEEDUP_FLOOR
    assert coarse_speedup >= COARSE_SPEEDUP_FLOOR

    if baseline:
        assert pure_speedup >= BASELINE_SLACK * baseline["pure_speedup"], (
            f"pure estimation speedup regressed: {pure_speedup:.1f}x vs "
            f"baseline {baseline['pure_speedup']:.1f}x"
        )
        assert coarse_speedup >= BASELINE_SLACK * baseline["coarse_speedup"], (
            f"coarse evaluation speedup regressed: {coarse_speedup:.1f}x vs "
            f"baseline {baseline['coarse_speedup']:.1f}x"
        )
