"""Fig. 4 — coarse-grained bundle evaluation (both construction methods).

Regenerates the bubble-plot source data of Fig. 4 (a) and (b): latency,
accuracy and resource usage of DNNs built from each of the 18 bundle
candidates under parallel factors {4, 8, 16}, plus the per-resource-group
Pareto sets and the selected bundles.
"""

from __future__ import annotations

import pytest

from repro.detection.accuracy_model import SurrogateAccuracyModel
from repro.experiments.fig4 import report_fig4, run_fig4


@pytest.mark.paper_artifact("fig4")
def test_fig4_coarse_bundle_evaluation(benchmark, print_report):
    result = benchmark.pedantic(
        lambda: run_fig4(accuracy_model=SurrogateAccuracyModel()),
        rounds=3, iterations=1, warmup_rounds=0,
    )
    print_report("fig4", report_fig4(result).render())

    # Shape checks mirroring the paper's observations.
    assert result.pareto_overlap >= 0.5, "Pareto sets should be stable across methods"
    assert any(b in result.selected for b in (13, 14, 15, 17, 18)), \
        "a depth-wise separable bundle must be selected"
    assert any(b in result.selected for b in (1, 2, 3)), \
        "a convolution-heavy bundle must be selected"


@pytest.mark.paper_artifact("fig4")
def test_fig4_method1_only(benchmark):
    """Micro-variant: method #1 evaluation only (the cheaper of the two panels)."""
    from repro.core.bundle_evaluation import BundleEvaluator
    from repro.core.bundle_generation import default_bundle_catalog
    from repro.detection.task import DAC_SDC_TASK
    from repro.hw.device import PYNQ_Z1

    evaluator = BundleEvaluator(DAC_SDC_TASK, PYNQ_Z1, accuracy_model=SurrogateAccuracyModel())
    bundles = default_bundle_catalog()
    records = benchmark(lambda: evaluator.coarse_evaluate(bundles, parallel_factors=(16,), method=1))
    assert len(records) == 18
