"""Component micro-benchmarks.

Not tied to a specific table or figure; they track the runtime of the
building blocks that dominate the co-design flow (latency estimation, the
cycle-level simulator, Auto-HLS code generation and numpy training), so
regressions in the engines themselves are visible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.auto_hls import AutoHLS
from repro.detection.dataset import SyntheticDetectionDataset
from repro.detection.task import TINY_DETECTION_TASK
from repro.experiments.reference_designs import reference_dnn3
from repro.hw.device import PYNQ_Z1
from repro.hw.hls.codegen import HLSCodeGenerator
from repro.hw.pipeline import TilePipelineSimulator
from repro.nn import Conv2D, ReLU4, Sequential, Trainer, BBoxHead
from repro.detection.metrics import mean_iou


@pytest.fixture(scope="module")
def dnn3_accelerator():
    return AutoHLS(PYNQ_Z1).build_accelerator(reference_dnn3())


def test_component_analytical_estimate(benchmark):
    """Latency/resource estimation — the inner loop of the SCD search."""
    engine = AutoHLS(PYNQ_Z1)
    config = reference_dnn3()
    estimate = benchmark(lambda: engine.estimate(config))
    assert estimate.latency_ms > 0


def test_component_pipeline_simulator(benchmark, dnn3_accelerator):
    """Cycle-level tile-pipeline simulation of a full DNN."""
    latency = benchmark(lambda: TilePipelineSimulator(dnn3_accelerator).latency_ms())
    assert latency > 0


def test_component_hls_codegen(benchmark, dnn3_accelerator):
    """Auto-HLS C code generation for a full accelerator."""
    design = benchmark(lambda: HLSCodeGenerator(dnn3_accelerator, design_name="dnn3").generate())
    assert design.total_lines > 100


def test_component_synthetic_dataset(benchmark):
    """Synthetic data generation throughput."""
    dataset = SyntheticDetectionDataset(image_shape=(3, 32, 64), num_samples=64, seed=0)
    images, boxes = benchmark(lambda: dataset.as_arrays(range(32)))
    assert images.shape[0] == 32 and boxes.shape == (32, 4)


def test_component_numpy_training_epoch(benchmark):
    """One proxy-training epoch of a small detector on the tiny task."""
    dataset = SyntheticDetectionDataset(
        image_shape=TINY_DETECTION_TASK.input_shape, num_samples=32, seed=0
    )
    x, y = dataset.as_arrays()
    model = Sequential([
        Conv2D(3, 8, 3, stride=2, rng=0), ReLU4(),
        Conv2D(8, 16, 3, stride=2, rng=1), ReLU4(),
        BBoxHead(16, rng=2),
    ])
    trainer = Trainer(model, loss="smooth_l1", lr=1e-3, batch_size=8, metric_fn=mean_iou, rng=0)
    loss = benchmark(lambda: trainer.train_epoch(x, y))
    assert np.isfinite(loss)
