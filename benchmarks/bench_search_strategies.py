"""Search-engine benchmarks: strategy throughput and cache speedup.

Measures (1) candidates-found-per-second for each registered exploration
strategy on the same tiny search problem and seed, and (2) the speedup the
memoized :class:`~repro.search.cache.EvaluationCache` buys the SCD unit on a
same-seed run — both in wall time and in avoided estimator invocations (the
deterministic, machine-independent measure).
"""

from __future__ import annotations

import time

import pytest

from repro.core.auto_hls import AutoHLS
from repro.core.bundle_generation import get_bundle
from repro.core.constraints import LatencyTarget, ResourceConstraint
from repro.core.dnn_config import DNNConfig
from repro.core.scd import SCDUnit
from repro.detection.task import TINY_DETECTION_TASK
from repro.hw.device import PYNQ_Z1
from repro.search import available_strategies, create_explorer

SEED = 3
NUM_CANDIDATES = 3
MAX_ITERATIONS = 150


def _problem():
    engine = AutoHLS(PYNQ_Z1)
    constraint = ResourceConstraint.for_device(PYNQ_Z1)
    target = LatencyTarget(fps=120.0, tolerance_ms=2.0)
    initial = DNNConfig(bundle=get_bundle(13), task=TINY_DETECTION_TASK,
                        num_repetitions=2, channel_expansion=(1.5, 1.5),
                        downsample=(1, 1), stem_channels=16,
                        parallel_factor=16, max_channels=128)
    return engine, constraint, target, initial


class _Counting:
    def __init__(self, estimator):
        self.estimator = estimator
        self.calls = 0

    def __call__(self, config):
        self.calls += 1
        return self.estimator(config)


@pytest.mark.parametrize("strategy", sorted(available_strategies()))
def test_strategy_candidates_per_second(benchmark, strategy):
    """Throughput of each strategy on the same problem and seed."""
    engine, constraint, target, initial = _problem()

    def run():
        explorer = create_explorer(
            strategy, estimator=engine.estimate, latency_target=target,
            resource_constraint=constraint, max_iterations=MAX_ITERATIONS,
            rng=SEED,
        )
        return explorer.explore(initial, num_candidates=NUM_CANDIDATES)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    mean_s = benchmark.stats.stats.mean
    rate = len(result.candidates) / mean_s if mean_s > 0 else float("inf")
    print(f"\n[{strategy}] {len(result.candidates)} candidates, "
          f"{result.evaluations} evaluations, {rate:.1f} candidates/s")
    assert len(result.candidates) >= 1


def test_cached_scd_speedup(benchmark):
    """Cached vs uncached SCD on the same seed: identical results, fewer calls."""
    engine, constraint, target, initial = _problem()

    def run_scd(cache):
        counter = _Counting(engine.estimate)
        unit = SCDUnit(counter, target, constraint,
                       max_iterations=MAX_ITERATIONS, rng=SEED, cache=cache)
        start = time.perf_counter()
        result = unit.search(initial, num_candidates=NUM_CANDIDATES)
        elapsed = time.perf_counter() - start
        return result, counter.calls, elapsed, unit

    uncached_result, uncached_calls, uncached_time, _ = run_scd(cache=False)

    def cached_run():
        return run_scd(cache=None)

    cached_result, cached_calls, cached_time, unit = benchmark.pedantic(
        cached_run, rounds=3, iterations=1, warmup_rounds=1,
    )

    # Same seed => bit-identical search trajectory.
    assert [c.describe() for c in cached_result.candidates] == \
        [c.describe() for c in uncached_result.candidates]
    assert cached_result.iterations == uncached_result.iterations

    stats = unit.cache.stats()
    call_speedup = uncached_calls / cached_calls
    time_speedup = uncached_time / cached_time if cached_time > 0 else float("inf")
    print(f"\n[scd cache] estimator calls {uncached_calls} -> {cached_calls} "
          f"({call_speedup:.2f}x fewer), wall {uncached_time * 1e3:.1f} ms -> "
          f"{cached_time * 1e3:.1f} ms ({time_speedup:.2f}x), {stats.summary()}")
    # The measured speedup must be real: strictly fewer estimator calls.
    assert cached_calls < uncached_calls
    assert stats.hits > 0
