"""Table 2 — board-level comparison against the FPGA and GPU contest entries.

Regenerates every row of Table 2 (our DNN1-3 at 100 / 150 MHz, the three
FPGA-category entries and the three GPU-category entries) plus the headline
claims the paper derives from it.
"""

from __future__ import annotations

import pytest

from repro.experiments.table2 import report_table2, run_table2


@pytest.mark.paper_artifact("table2")
def test_table2_full_comparison(benchmark, print_report):
    result = benchmark.pedantic(lambda: run_table2(), rounds=3, iterations=1, warmup_rounds=0)
    print_report("table2", report_table2(result).render())

    # --- our designs ------------------------------------------------------
    at_100 = {r.name.split()[0]: r for r in result.our_rows if r.clock_mhz == 100.0}
    assert at_100["DNN1"].iou > at_100["DNN2"].iou > at_100["DNN3"].iou
    assert at_100["DNN1"].fps < at_100["DNN2"].fps < at_100["DNN3"].fps
    # Board power stays in the ~2-2.5 W range the paper measures.
    for row in result.our_rows:
        assert 1.8 <= row.power_w <= 2.6
    # DSP utilization is high (the paper reports 85-92%).
    for row in result.our_rows:
        assert row.utilization["dsp"] > 70.0

    # --- headline claims --------------------------------------------------
    claims = result.headline_claims()
    # Paper: +6.2% IoU, 2.48x FPS, 2.5x energy efficiency vs the 1st FPGA entry.
    assert claims["iou_gain_vs_fpga1"] > 0.03
    assert claims["fps_ratio_vs_fpga1"] > 1.5
    assert claims["energy_eff_ratio_vs_fpga1"] > 1.5
    # Paper: 40% lower power than the 1st FPGA entry's reported 4.2 W.
    assert claims["power_reduction_vs_fpga1_reported"] > 0.2
    # Paper: GPUs keep a small IoU edge but lose 3.1-3.8x on energy efficiency.
    assert -0.06 < claims["iou_gap_vs_gpu1"] < 0.0
    assert claims["energy_eff_ratio_vs_gpu_min"] > 1.5


@pytest.mark.paper_artifact("table2")
def test_table2_single_design_row(benchmark):
    """Micro-variant: generating one of our rows (synthesis + power + energy)."""
    from repro.core.auto_hls import AutoHLS
    from repro.experiments.reference_designs import reference_dnn1
    from repro.hw.device import PYNQ_Z1
    from repro.hw.power import FPGAPowerModel

    engine = AutoHLS(PYNQ_Z1)
    power = FPGAPowerModel(PYNQ_Z1)
    config = reference_dnn1()

    def run_row():
        report = engine.generate(config, clock_mhz=100.0).report
        return power.energy_report(report.resources, 100.0, report.latency_ms)

    energy = benchmark(run_row)
    assert energy.power_w > 0
