"""Ablation benches for the design choices DESIGN.md calls out.

These go beyond the paper's headline artefacts: they quantify how much the
individual co-design ingredients contribute (SCD vs. random search, tile
size, activation-linked quantization, bottom-up co-design vs. the top-down
compress-then-deploy flow).
"""

from __future__ import annotations

import pytest

from repro.detection.accuracy_model import SurrogateAccuracyModel
from repro.experiments.ablations import (
    report_ablations,
    run_codesign_vs_topdown,
    run_quantization_sweep,
    run_scd_vs_random,
    run_tile_sweep,
)


@pytest.mark.paper_artifact("ablation-scd")
def test_ablation_scd_vs_random_search(benchmark, print_report):
    comparison = benchmark.pedantic(
        lambda: run_scd_vs_random(board_fps=15.0, num_candidates=3, max_iterations=150, rng=11),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    # The gradient-guided SCD never finds fewer in-band designs than random
    # search given the same evaluation budget (and typically needs far fewer
    # iterations).
    assert comparison.scd_found >= comparison.random_found
    print_report(
        "ablation-scd",
        f"SCD: {comparison.scd_found} designs in {comparison.scd_iterations} iterations | "
        f"random: {comparison.random_found} designs in {comparison.random_iterations} iterations",
    )


@pytest.mark.paper_artifact("ablation-tiles")
def test_ablation_tile_size_sweep(benchmark, print_report):
    points = benchmark.pedantic(lambda: run_tile_sweep(), rounds=3, iterations=1, warmup_rounds=0)
    lines = [f"tile {p.tile}: {p.latency_ms:.1f} ms, {p.bram:.0f} BRAM, fits={p.fits}" for p in points]
    print_report("ablation-tiles", "\n".join(lines))
    # Larger common tiles cost monotonically more BRAM.
    brams = [p.bram for p in points]
    assert brams == sorted(brams)
    # At least the smallest tiles fit the PYNQ-Z1.
    assert points[0].fits


@pytest.mark.paper_artifact("ablation-quant")
def test_ablation_quantization_sweep(benchmark, print_report):
    points = benchmark.pedantic(
        lambda: run_quantization_sweep(accuracy_model=SurrogateAccuracyModel()),
        rounds=3, iterations=1, warmup_rounds=0,
    )
    by_act = {p.activation: p for p in points}
    lines = [
        f"{p.activation} ({p.feature_bits}-bit fm): {p.latency_ms:.1f} ms, "
        f"{p.bram:.0f} BRAM, IoU {p.accuracy:.3f}"
        for p in points
    ]
    print_report("ablation-quant", "\n".join(lines))
    # ReLU (16-bit) buys accuracy at the cost of latency and BRAM; ReLU4
    # (8-bit) is the fastest / smallest — exactly the DNN2-vs-DNN3 trade-off.
    assert by_act["relu"].accuracy > by_act["relu4"].accuracy
    assert by_act["relu"].latency_ms >= by_act["relu4"].latency_ms
    assert by_act["relu"].bram >= by_act["relu4"].bram


@pytest.mark.paper_artifact("ablation-methodology")
def test_ablation_codesign_vs_topdown(benchmark, print_report):
    comparison = benchmark.pedantic(
        lambda: run_codesign_vs_topdown(latency_budget_ms=40.0),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    print_report(
        "ablation-methodology",
        f"co-design: IoU {comparison.codesign_iou:.3f} @ {comparison.codesign_latency_ms:.1f} ms | "
        f"top-down compressed SSD: IoU {comparison.topdown_iou:.3f} @ {comparison.topdown_latency_ms:.1f} ms",
    )
    # The methodological headline of the paper: bottom-up co-design beats the
    # compress-then-deploy flow at a comparable latency budget.
    assert comparison.iou_gain > 0.0


@pytest.mark.paper_artifact("ablation-report")
def test_ablation_full_report(benchmark, print_report):
    def build():
        return report_ablations(
            run_scd_vs_random(num_candidates=2, max_iterations=80, rng=3),
            run_tile_sweep(),
            run_quantization_sweep(accuracy_model=SurrogateAccuracyModel()),
            run_codesign_vs_topdown(),
        )

    report = benchmark.pedantic(build, rounds=1, iterations=1, warmup_rounds=0)
    print_report("ablation-report", report.render())
    assert "Tile-size sweep" in report.render()
