"""Cycle-level simulator of the Tile-Arch tile pipeline.

The simulator plays the role Vivado HLS co-simulation plays in the paper: it
produces reference latencies used to fit the coefficients of the analytical
models (Auto-HLS "sampling") and to validate searched designs.

The schedule follows Fig. 3(b): within a Bundle, tile ``t`` moves through the
stages ``load -> IP_1 -> IP_2 -> ... -> write`` while tile ``t+1`` occupies
the previous stage; between Bundle repetitions the intermediate feature map
crosses the DRAM boundary.  Each stage is modelled as a non-preemptive unit
that can hold one tile at a time, so the start time of tile ``t`` on stage
``s`` is ``max(finish(t, s-1), finish(t-1, s))`` — the classic pipelined
schedule recurrence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.memory import DRAMTrafficModel, layer_tile_traffic_bytes
from repro.hw.tile_arch import TileArchAccelerator
from repro.hw.workload import LayerWorkload


@dataclass
class StageTiming:
    """Timing of one pipeline stage for one bundle repetition."""

    name: str
    cycles_per_tile: float


@dataclass
class BundleTrace:
    """Simulated timing of one bundle repetition."""

    bundle_index: int
    num_tiles: int
    stages: list[StageTiming]
    total_cycles: float
    compute_cycles: float
    transfer_cycles: float


@dataclass
class PipelineTrace:
    """Full simulation result for a network."""

    bundle_traces: list[BundleTrace]
    inter_bundle_cycles: float
    io_cycles: float
    total_cycles: float
    clock_mhz: float

    @property
    def latency_ms(self) -> float:
        """End-to-end single-frame latency in milliseconds."""
        return self.total_cycles / (self.clock_mhz * 1e3)

    @property
    def compute_cycles(self) -> float:
        return sum(t.compute_cycles for t in self.bundle_traces)

    @property
    def pipeline_efficiency(self) -> float:
        """Ratio of pure compute cycles to total cycles (1.0 = perfectly hidden)."""
        if self.total_cycles <= 0:
            return 0.0
        return min(self.compute_cycles / self.total_cycles, 1.0)


class TilePipelineSimulator:
    """Simulate the tile-level pipeline of a Tile-Arch accelerator."""

    def __init__(self, accelerator: TileArchAccelerator) -> None:
        self.accelerator = accelerator
        self.dram = DRAMTrafficModel(accelerator.device)

    # ----------------------------------------------------------------- cycles
    def _cycles_per_ms(self) -> float:
        return self.accelerator.clock_mhz * 1e3

    def _transfer_cycles(self, num_bytes: float, bursts: int = 1) -> float:
        ms = self.dram.transfer_latency_ms(num_bytes, bursts=bursts)
        return ms * self._cycles_per_ms()

    def _stage_timings(self, layers: list[LayerWorkload], num_tiles: int) -> list[StageTiming]:
        """Per-tile cycle counts for the load / compute / write stages of a bundle."""
        acc = self.accelerator
        tile_pixels = acc.tile.pixels
        feature_bits = acc.workload.feature_bits

        stages: list[StageTiming] = []
        if layers:
            first = layers[0]
            load_bytes = layer_tile_traffic_bytes(first, tile_pixels, feature_bits) / 2.0
            stages.append(StageTiming("load", self._transfer_cycles(load_bytes, bursts=1)))
        for layer in layers:
            instance = acc.bundle_hw.instance_for(layer)
            cycles = instance.cycles_for_layer_share(layer, num_tiles)
            stages.append(StageTiming(f"{instance.name}:{layer.kind}{layer.kernel}", cycles))
        if layers:
            last = layers[-1]
            store_bytes = layer_tile_traffic_bytes(last, tile_pixels, feature_bits) / 2.0
            stages.append(StageTiming("write", self._transfer_cycles(store_bytes, bursts=1)))
        return stages

    def _simulate_bundle(self, bundle_index: int, layers: list[LayerWorkload]) -> BundleTrace:
        """Pipelined schedule of all tiles of one bundle repetition."""
        acc = self.accelerator
        if not layers:
            return BundleTrace(bundle_index, 0, [], 0.0, 0.0, 0.0)
        # The number of tiles is set by the layer with the largest output map
        # inside this repetition (all layers share the common tile size).
        num_tiles = max(acc.tiles_per_layer(layer) for layer in layers)
        stages = self._stage_timings(layers, num_tiles)

        # finish[s] holds the finish time of the previous tile on stage s.
        finish = [0.0] * len(stages)
        for _tile in range(num_tiles):
            prev_stage_finish = 0.0
            for s, stage in enumerate(stages):
                start = max(prev_stage_finish, finish[s])
                finish[s] = start + stage.cycles_per_tile
                prev_stage_finish = finish[s]
        total = finish[-1] if stages else 0.0
        compute = sum(
            st.cycles_per_tile for st in stages if st.name not in ("load", "write")
        ) * num_tiles
        transfer = sum(
            st.cycles_per_tile for st in stages if st.name in ("load", "write")
        ) * num_tiles
        return BundleTrace(
            bundle_index=bundle_index,
            num_tiles=num_tiles,
            stages=stages,
            total_cycles=total,
            compute_cycles=compute,
            transfer_cycles=transfer,
        )

    # ------------------------------------------------------------------- run
    def run(self) -> PipelineTrace:
        """Simulate the full network and return the trace."""
        acc = self.accelerator
        workload = acc.workload

        bundle_traces: list[BundleTrace] = []
        indices = workload.bundle_indices()
        if indices:
            for idx in indices:
                bundle_traces.append(self._simulate_bundle(idx, workload.layers_in_bundle(idx)))
            # Head / tail layers outside any bundle run sequentially.
            stray = [l for l in workload.layers if l.bundle_index < 0]
            if stray:
                bundle_traces.append(self._simulate_bundle(-1, stray))
        else:
            bundle_traces.append(self._simulate_bundle(0, list(workload.layers)))

        inter_bundle_ms = self.dram.inter_bundle_latency_ms(workload)
        weight_ms = self.dram.weight_streaming_latency_ms(workload)
        io_ms = self.dram.input_output_latency_ms(workload)
        cycles_per_ms = self._cycles_per_ms()
        # Weight streaming is double-buffered: roughly half of it overlaps
        # with computation on the previous layer's tiles.
        hidden_weight_fraction = 0.5
        inter_bundle_cycles = (inter_bundle_ms + (1 - hidden_weight_fraction) * weight_ms) * cycles_per_ms
        io_cycles = io_ms * cycles_per_ms

        total = sum(t.total_cycles for t in bundle_traces) + inter_bundle_cycles + io_cycles
        return PipelineTrace(
            bundle_traces=bundle_traces,
            inter_bundle_cycles=inter_bundle_cycles,
            io_cycles=io_cycles,
            total_cycles=total,
            clock_mhz=acc.clock_mhz,
        )

    def latency_ms(self) -> float:
        """Convenience wrapper returning only the end-to-end latency."""
        return self.run().latency_ms
