"""Feature-map tiling for the Tile-Arch accelerator.

Intermediate data between layers is partitioned into tiles of a common size
across all layers (tile-level IP reuse) so that an IP instance can be reused
for multiple tiles and data can flow between IP instances of subsequent
layers without off-chip round trips.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hw.device import FPGADevice
from repro.hw.memory import plan_on_chip_buffers
from repro.hw.workload import NetworkWorkload


@dataclass(frozen=True)
class TileConfig:
    """A tiling of the feature maps into ``tile_height x tile_width`` tiles."""

    tile_height: int
    tile_width: int

    def __post_init__(self) -> None:
        if self.tile_height <= 0 or self.tile_width <= 0:
            raise ValueError("tile dimensions must be positive")

    @property
    def pixels(self) -> int:
        return self.tile_height * self.tile_width

    def num_tiles(self, height: int, width: int) -> int:
        """Number of tiles covering a ``height x width`` feature map."""
        if height <= 0 or width <= 0:
            raise ValueError("feature map dimensions must be positive")
        return math.ceil(height / self.tile_height) * math.ceil(width / self.tile_width)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.tile_height}x{self.tile_width}"


#: Candidate tile sizes considered by the tiling heuristic (height, width).
CANDIDATE_TILES = (
    TileConfig(8, 16),
    TileConfig(10, 20),
    TileConfig(16, 16),
    TileConfig(16, 32),
    TileConfig(20, 40),
    TileConfig(32, 32),
    TileConfig(40, 40),
    TileConfig(40, 80),
)


def choose_tile_config(
    workload: NetworkWorkload,
    device: FPGADevice,
    bram_budget_fraction: float = 0.55,
    candidates: tuple[TileConfig, ...] = CANDIDATE_TILES,
) -> TileConfig:
    """Pick the largest common tile size whose buffers fit on chip.

    Larger tiles amortise pipeline-fill and DMA-setup overheads, so the
    heuristic picks the largest candidate whose double-buffered data buffers
    stay within ``bram_budget_fraction`` of the device BRAM (the remainder is
    reserved for weight buffers and control).
    """
    if not 0.0 < bram_budget_fraction <= 1.0:
        raise ValueError("bram_budget_fraction must be in (0, 1]")
    _, in_h, in_w = workload.input_shape
    max_channels = workload.max_channels
    max_kernel = max((l.kernel for l in workload.layers if l.is_compute), default=3)
    max_in = max((l.in_channels for l in workload.layers if l.is_compute), default=max_channels)
    max_out = max((l.out_channels for l in workload.layers if l.is_compute), default=max_channels)
    budget = device.resources.bram * bram_budget_fraction

    viable: list[TileConfig] = []
    for tile in candidates:
        if tile.tile_height > in_h or tile.tile_width > in_w:
            continue
        plan = plan_on_chip_buffers(
            tile.tile_height,
            tile.tile_width,
            max_channels,
            workload.feature_bits,
            workload.weight_bits,
            max_kernel,
            max_in,
            max_out,
        )
        if plan.data_buffer_bram + plan.output_buffer_bram <= budget:
            viable.append(tile)
    if not viable:
        # Even the smallest candidate does not fit: fall back to the smallest
        # candidate anyway; resource checking downstream will flag the design.
        return min(candidates, key=lambda t: t.pixels)
    return max(viable, key=lambda t: t.pixels)
