"""Analytical Bundle / DNN performance and resource models (Eqs. 1-5).

These models provide the fast latency / resource estimates used inside the
DNN search loop, where invoking the full tile-pipeline simulator for every
SCD move would be too slow.  Their coefficients (alpha, beta, Gamma, phi,
gamma) are fitted against the simulator by :mod:`repro.hw.sampling`, which
plays the role of the paper's "Auto-HLS sampling".

The equations implemented here:

* ``Res_bund_i  = sum_j Res_j + Gamma_i``                      (Eq. 1)
* ``Lat_bund_i  = alpha_i * sum_j Comp_j + beta_i * Theta(Data_i) / bw``  (Eq. 2)
* ``Comp_j      = sum reuse_j * lat_j``                        (Eq. 3)
* ``Lat_DNN     = sum_i Lat_bund_i + phi * Lat_DM``            (Eq. 4)
* ``Res_DNN     = Res_bund + gamma * Res_ctl``                 (Eq. 5)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import repro.telemetry as telemetry
from repro.hw.device import FPGADevice
from repro.hw.memory import DRAMTrafficModel
from repro.hw.resource import ResourceVector
from repro.hw.tile_arch import CONTROL_OVERHEAD, TileArchAccelerator
from repro.hw.workload import LayerWorkload, NetworkWorkload


@dataclass(frozen=True)
class AnalyticalModelCoefficients:
    """Fitted coefficients of the analytical models.

    Attributes
    ----------
    alpha:
        Compute-overlap factor of Eq. 2 (1.0 = no overlap between IPs;
        values below 1.0 mean tile-level pipelining hides part of the
        compute).
    beta:
        Data-transfer overlap factor of Eq. 2 (fraction of the on-/off-chip
        data movement that is *not* hidden behind computation).
    gamma_lut, gamma_ff, gamma_bram:
        Per-bundle glue-logic overhead (the Gamma term of Eq. 1).
    phi:
        Weight of the inter-bundle data-movement latency in Eq. 4.
    ctl_gamma:
        Weight of the control-logic overhead in Eq. 5.
    """

    alpha: float = 0.72
    beta: float = 0.38
    gamma_lut: float = 850.0
    gamma_ff: float = 1200.0
    gamma_bram: float = 2.0
    phi: float = 1.0
    ctl_gamma: float = 1.0

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.beta < 0:
            raise ValueError("alpha must be positive and beta non-negative")
        if self.phi < 0 or self.ctl_gamma < 0:
            raise ValueError("phi and ctl_gamma must be non-negative")

    def with_updates(self, **kwargs) -> "AnalyticalModelCoefficients":
        """Return a copy with selected coefficients replaced."""
        return replace(self, **kwargs)


#: Default coefficients; refined by Auto-HLS sampling for each bundle.
DEFAULT_COEFFICIENTS = AnalyticalModelCoefficients()


def bundle_layer_groups(workload: NetworkWorkload) -> list[list[LayerWorkload]]:
    """Partition a workload's layers into the per-bundle groups of Eq. 4.

    One group per bundle index (in ascending order), with the stray layers
    (stem / head, ``bundle_index < 0``) forming a trailing group.  A workload
    with no bundle structure is a single group.
    """
    indices = workload.bundle_indices()
    if not indices:
        return [list(workload.layers)]
    groups = [workload.layers_in_bundle(i) for i in indices]
    stray = [l for l in workload.layers if l.bundle_index < 0]
    if stray:
        groups.append(stray)
    return groups


@dataclass(frozen=True)
class PerformanceEstimate:
    """Latency and resource estimate of a design."""

    latency_ms: float
    resources: ResourceVector
    compute_ms: float = 0.0
    data_movement_ms: float = 0.0

    @property
    def fps(self) -> float:
        """Frames per second corresponding to the single-frame latency."""
        if self.latency_ms <= 0:
            return float("inf")
        return 1000.0 / self.latency_ms


class BundlePerformanceModel:
    """Latency / resource model of one Bundle repetition (Eqs. 1-3)."""

    def __init__(
        self,
        accelerator: TileArchAccelerator,
        coefficients: AnalyticalModelCoefficients = DEFAULT_COEFFICIENTS,
    ) -> None:
        self.accelerator = accelerator
        self.coefficients = coefficients
        self.dram = DRAMTrafficModel(accelerator.device)

    # --------------------------------------------------------------- latency
    def compute_latency_cycles(self, layers: list[LayerWorkload]) -> float:
        """The ``sum_j Comp_j`` term of Eq. 2: IP compute, reuse-weighted (Eq. 3)."""
        acc = self.accelerator
        total = 0.0
        for layer in layers:
            instance = acc.bundle_hw.instance_for(layer)
            reuse = acc.tiles_per_layer(layer)
            tile_cycles = instance.cycles_for_layer_share(layer, reuse)
            total += reuse * tile_cycles
        return total

    def data_amount_bytes(self, layers: list[LayerWorkload]) -> float:
        """``Theta(Data_i)``: bytes moved for the bundle's inputs and outputs."""
        if not layers:
            return 0.0
        feature_bits = self.accelerator.workload.feature_bits
        input_bytes = layers[0].input_elements * feature_bits / 8.0
        output_bytes = layers[-1].output_elements * feature_bits / 8.0
        weight_bytes = sum(l.params for l in layers) * self.accelerator.workload.weight_bits / 8.0
        return input_bytes + output_bytes + weight_bytes

    def latency_ms(
        self,
        layers: list[LayerWorkload],
        resources: ResourceVector | None = None,
    ) -> PerformanceEstimate:
        """Eq. 2 latency of one bundle repetition.

        ``resources`` accepts a precomputed :meth:`resources` vector so
        callers scoring many layer groups against the same bundle hardware
        (e.g. :class:`DNNPerformanceModel`) pay for Eq. 1 once, not once per
        group.
        """
        coeff = self.coefficients
        cycles = self.compute_latency_cycles(layers)
        compute_ms = cycles / (self.accelerator.clock_mhz * 1e3)
        data_bytes = self.data_amount_bytes(layers)
        transfer_ms = self.dram.transfer_latency_ms(data_bytes, bursts=max(len(layers), 1))
        latency = coeff.alpha * compute_ms + coeff.beta * transfer_ms
        return PerformanceEstimate(
            latency_ms=latency,
            resources=self.resources() if resources is None else resources,
            compute_ms=coeff.alpha * compute_ms,
            data_movement_ms=coeff.beta * transfer_ms,
        )

    # -------------------------------------------------------------- resources
    def resources(self) -> ResourceVector:
        """Eq. 1 resource usage of the bundle hardware."""
        acc = self.accelerator
        coeff = self.coefficients
        max_in = max((l.in_channels for l in acc.workload.layers if l.is_compute),
                     default=acc.workload.max_channels)
        max_out = max((l.out_channels for l in acc.workload.layers if l.is_compute),
                      default=acc.workload.max_channels)
        total = ResourceVector.zero()
        for instance in acc.bundle_hw.instances:
            total = total + instance.resources(acc.tile.tile_width, max_in, max_out)
        gamma = ResourceVector(
            lut=coeff.gamma_lut * len(acc.bundle_hw.instances),
            ff=coeff.gamma_ff * len(acc.bundle_hw.instances),
            dsp=0.0,
            bram=coeff.gamma_bram,
        )
        return total + gamma


class DNNPerformanceModel:
    """Whole-DNN latency / resource model (Eqs. 4-5)."""

    def __init__(
        self,
        accelerator: TileArchAccelerator,
        coefficients: AnalyticalModelCoefficients = DEFAULT_COEFFICIENTS,
    ) -> None:
        self.accelerator = accelerator
        self.coefficients = coefficients
        self.bundle_model = BundlePerformanceModel(accelerator, coefficients)
        self.dram = DRAMTrafficModel(accelerator.device)

    def estimate(self) -> PerformanceEstimate:
        """Eq. 4 latency and Eq. 5 resources of the full DNN."""
        reg = telemetry.registry()
        if reg is None:
            return self._estimate()
        start = time.perf_counter()
        value = self._estimate()
        reg.counter("hw.estimate.count").inc()
        reg.histogram("hw.estimate.seconds").observe(time.perf_counter() - start)
        return value

    def _estimate(self) -> PerformanceEstimate:
        workload = self.accelerator.workload
        coeff = self.coefficients

        total_latency = 0.0
        compute_ms = 0.0
        transfer_ms = 0.0
        # Eq. 1 depends only on the bundle hardware, not on the layer group
        # being scored — compute it once per estimate, not once per group.
        bundle_resources = self.bundle_model.resources()
        for layers in bundle_layer_groups(workload):
            est = self.bundle_model.latency_ms(layers, resources=bundle_resources)
            total_latency += est.latency_ms
            compute_ms += est.compute_ms
            transfer_ms += est.data_movement_ms

        # phi * Lat_DM: inter-bundle data movement plus frame I/O.
        lat_dm = (
            self.dram.inter_bundle_latency_ms(workload)
            + self.dram.input_output_latency_ms(workload)
        )
        total_latency += coeff.phi * lat_dm
        transfer_ms += coeff.phi * lat_dm

        # Eq. 5: the folded architecture shares one bundle's hardware across
        # repetitions, so the DNN resource is the bundle resource plus buffers
        # and control overhead.
        resources = (
            bundle_resources
            + self.accelerator.buffers.as_resource()
            + CONTROL_OVERHEAD.scale(coeff.ctl_gamma)
        )
        return PerformanceEstimate(
            latency_ms=total_latency,
            resources=resources,
            compute_ms=compute_ms,
            data_movement_ms=transfer_ms,
        )

    def latency_ms(self) -> float:
        return self.estimate().latency_ms

    def resources(self) -> ResourceVector:
        return self.estimate().resources
