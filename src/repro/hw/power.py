"""Board-level power and energy model for embedded FPGA accelerators.

The paper measures board power with a USB power meter while the accelerator
runs (Fig. 7): roughly 2.2 W at 100 MHz and 2.4-2.5 W at 150 MHz on the
PYNQ-Z1.  This module provides an analytical substitute: static board power
plus dynamic power proportional to clock frequency and to the utilization of
the programmable-logic resources, calibrated to those board measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.device import FPGADevice
from repro.hw.resource import ResourceVector


#: Relative contribution of each resource class to dynamic power at full
#: utilization (DSP-heavy datapaths dominate, then BRAM, then logic fabric).
_DYNAMIC_WEIGHTS = {"dsp": 0.46, "bram": 0.26, "lut": 0.18, "ff": 0.10}


@dataclass(frozen=True)
class EnergyReport:
    """Power / energy summary for a deployed design.

    Attributes
    ----------
    power_w:
        Board power while running, in watts.
    latency_ms:
        Single-frame latency.
    fps:
        Throughput in frames per second.
    total_energy_kj:
        Energy to process ``num_frames`` frames, in kilojoules.
    energy_per_frame_j:
        Energy per frame (J/pic in Table 2).
    num_frames:
        Number of frames the totals refer to.
    """

    power_w: float
    latency_ms: float
    fps: float
    total_energy_kj: float
    energy_per_frame_j: float
    num_frames: int


class FPGAPowerModel:
    """Analytical board power model calibrated to PYNQ-Z1 measurements."""

    def __init__(self, device: FPGADevice, activity_factor: float = 0.82) -> None:
        if not 0.0 < activity_factor <= 1.0:
            raise ValueError("activity_factor must be in (0, 1]")
        self.device = device
        self.activity_factor = activity_factor

    def dynamic_power_w(self, usage: ResourceVector, clock_mhz: float) -> float:
        """Dynamic power of the programmable logic."""
        if clock_mhz <= 0:
            raise ValueError("clock_mhz must be positive")
        util = self.device.utilization(usage).as_dict()
        weighted = sum(_DYNAMIC_WEIGHTS[k] * min(util[k], 1.2) for k in _DYNAMIC_WEIGHTS)
        scale = self.device.dynamic_power_scale_w
        return scale * weighted * (clock_mhz / 100.0) * self.activity_factor

    def board_power_w(self, usage: ResourceVector, clock_mhz: float) -> float:
        """Total board power: static (PS + board) plus PL dynamic power."""
        return self.device.static_power_w + self.dynamic_power_w(usage, clock_mhz)

    def energy_report(
        self,
        usage: ResourceVector,
        clock_mhz: float,
        latency_ms: float,
        num_frames: int = 50_000,
        overhead_ms_per_frame: float = 0.0,
    ) -> EnergyReport:
        """Full energy accounting for a ``num_frames`` evaluation run.

        ``overhead_ms_per_frame`` models image loading / pre-processing on
        the PS, which the contest includes in its FPS measurement.
        """
        if latency_ms <= 0:
            raise ValueError("latency_ms must be positive")
        if num_frames <= 0:
            raise ValueError("num_frames must be positive")
        power = self.board_power_w(usage, clock_mhz)
        frame_time_ms = latency_ms + overhead_ms_per_frame
        fps = 1000.0 / frame_time_ms
        total_time_s = frame_time_ms * num_frames / 1000.0
        total_energy_j = power * total_time_s
        return EnergyReport(
            power_w=power,
            latency_ms=latency_ms,
            fps=fps,
            total_energy_kj=total_energy_j / 1000.0,
            energy_per_frame_j=total_energy_j / num_frames,
            num_frames=num_frames,
        )
