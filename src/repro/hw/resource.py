"""FPGA resource vectors.

Resources tracked are the four the paper reports in Table 2: LUTs, flip-flops
(FF), DSP slices, and BRAM (in units of 18Kb blocks).
"""

from __future__ import annotations

from dataclasses import dataclass

RESOURCE_KINDS = ("lut", "ff", "dsp", "bram")


@dataclass(frozen=True)
class ResourceVector:
    """Immutable vector of FPGA resource usage.

    Attributes
    ----------
    lut:
        Look-up tables.
    ff:
        Flip-flops.
    dsp:
        DSP48 slices.
    bram:
        BRAM, counted in 18Kb blocks.
    """

    lut: float = 0.0
    ff: float = 0.0
    dsp: float = 0.0
    bram: float = 0.0

    # -------------------------------------------------------------- algebra
    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            lut=self.lut + other.lut,
            ff=self.ff + other.ff,
            dsp=self.dsp + other.dsp,
            bram=self.bram + other.bram,
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            lut=self.lut - other.lut,
            ff=self.ff - other.ff,
            dsp=self.dsp - other.dsp,
            bram=self.bram - other.bram,
        )

    def scale(self, factor: float) -> "ResourceVector":
        """Scale every component by ``factor``."""
        return ResourceVector(
            lut=self.lut * factor,
            ff=self.ff * factor,
            dsp=self.dsp * factor,
            bram=self.bram * factor,
        )

    def __mul__(self, factor: float) -> "ResourceVector":
        return self.scale(factor)

    __rmul__ = __mul__

    # ------------------------------------------------------------ comparison
    def fits_within(self, budget: "ResourceVector") -> bool:
        """True when every component is within ``budget``."""
        return (
            self.lut <= budget.lut
            and self.ff <= budget.ff
            and self.dsp <= budget.dsp
            and self.bram <= budget.bram
        )

    def dominates(self, other: "ResourceVector") -> bool:
        """True when every component is <= the other's (uses fewer resources)."""
        return other.fits_within(self)

    def max_with(self, other: "ResourceVector") -> "ResourceVector":
        """Component-wise maximum (used when IP instances are time-shared)."""
        return ResourceVector(
            lut=max(self.lut, other.lut),
            ff=max(self.ff, other.ff),
            dsp=max(self.dsp, other.dsp),
            bram=max(self.bram, other.bram),
        )

    # --------------------------------------------------------------- exports
    def as_dict(self) -> dict[str, float]:
        """Dictionary form (keys ``lut``, ``ff``, ``dsp``, ``bram``)."""
        return {"lut": self.lut, "ff": self.ff, "dsp": self.dsp, "bram": self.bram}

    def total_weighted(self, weights: dict[str, float] | None = None) -> float:
        """Weighted scalarisation used for resource-based grouping of bundles."""
        weights = weights or {"lut": 1.0 / 53200, "ff": 1.0 / 106400, "dsp": 1.0 / 220, "bram": 1.0 / 280}
        return sum(self.as_dict()[k] * w for k, w in weights.items())

    @staticmethod
    def zero() -> "ResourceVector":
        return ResourceVector()


@dataclass(frozen=True)
class ResourceUtilization:
    """Resource usage expressed as a fraction of a device's capacity."""

    lut: float
    ff: float
    dsp: float
    bram: float

    @property
    def max_fraction(self) -> float:
        """The binding (largest) utilization fraction."""
        return max(self.lut, self.ff, self.dsp, self.bram)

    def within_budget(self, limit: float = 1.0) -> bool:
        """True if every fraction is at or below ``limit``."""
        return self.max_fraction <= limit

    def as_dict(self) -> dict[str, float]:
        return {"lut": self.lut, "ff": self.ff, "dsp": self.dsp, "bram": self.bram}

    def as_percent_dict(self) -> dict[str, float]:
        """Utilization in percent, as reported in Table 2."""
        return {k: 100.0 * v for k, v in self.as_dict().items()}
