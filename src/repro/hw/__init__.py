"""FPGA accelerator substrate.

This package implements everything the co-design flow needs on the hardware
side of the paper:

* :mod:`repro.hw.resource` / :mod:`repro.hw.device` — resource vectors and
  the embedded FPGA device catalogue (PYNQ-Z1 and friends),
* :mod:`repro.hw.ip` / :mod:`repro.hw.ip_library` — the configurable IP
  templates (conv 1x1/3x3/5x5, depth-wise conv 3x3/5x5/7x7, pooling,
  normalisation, activation) with per-instance latency / resource models,
* :mod:`repro.hw.workload` — layer / network workload descriptions,
* :mod:`repro.hw.tiling` / :mod:`repro.hw.tile_arch` /
  :mod:`repro.hw.pipeline` — the Tile-Arch accelerator template and its
  cycle-level tile-pipeline simulator,
* :mod:`repro.hw.analytical` — the paper's analytical Bundle / DNN latency
  and resource models (Eqs. 1-5) with coefficients fitted by sampling,
* :mod:`repro.hw.batch` — the vectorized batch evaluator of those models
  (bit-identical to the scalar path, array-at-a-time over NumPy),
* :mod:`repro.hw.power` — board-level power / energy model,
* :mod:`repro.hw.hls` — Auto-HLS: C code generation and simulated synthesis.
"""

from repro.hw.resource import ResourceVector, ResourceUtilization
from repro.hw.device import FPGADevice, PYNQ_Z1, ULTRA96, ZC706, get_device
from repro.hw.ip import IPConfig, IPInstance, IPTemplate
from repro.hw.ip_library import IPLibrary, default_ip_library
from repro.hw.workload import LayerWorkload, NetworkWorkload, workload_from_model
from repro.hw.tiling import TileConfig, choose_tile_config
from repro.hw.tile_arch import TileArchAccelerator, BundleHardware
from repro.hw.pipeline import TilePipelineSimulator, PipelineTrace
from repro.hw.analytical import (
    AnalyticalModelCoefficients,
    BundlePerformanceModel,
    DNNPerformanceModel,
    PerformanceEstimate,
)
from repro.hw.batch import BatchedDNNEstimator, estimate_batch
from repro.hw.power import FPGAPowerModel, EnergyReport

__all__ = [
    "ResourceVector",
    "ResourceUtilization",
    "FPGADevice",
    "PYNQ_Z1",
    "ULTRA96",
    "ZC706",
    "get_device",
    "IPTemplate",
    "IPConfig",
    "IPInstance",
    "IPLibrary",
    "default_ip_library",
    "LayerWorkload",
    "NetworkWorkload",
    "workload_from_model",
    "TileConfig",
    "choose_tile_config",
    "TileArchAccelerator",
    "BundleHardware",
    "TilePipelineSimulator",
    "PipelineTrace",
    "AnalyticalModelCoefficients",
    "BundlePerformanceModel",
    "DNNPerformanceModel",
    "PerformanceEstimate",
    "BatchedDNNEstimator",
    "estimate_batch",
    "FPGAPowerModel",
    "EnergyReport",
]
