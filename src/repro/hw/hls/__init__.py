"""Auto-HLS backend: C code generation and simulated synthesis.

The paper's Auto-HLS engine generates synthesizable C code for the
Tile-Arch accelerator of each explored DNN and feeds the synthesis results
(latency, resource usage) back to the search.  This package provides:

* :mod:`repro.hw.hls.codegen` — generation of HLS-style C code (IP function
  calls, weight loading, tile buffering, the top-level dataflow function),
* :mod:`repro.hw.hls.synthesis` — a deterministic stand-in for the Vivado
  HLS synthesis step, backed by the tile-pipeline simulator and the
  accelerator resource model,
* :mod:`repro.hw.hls.report` — the synthesis report data structure.
"""

from repro.hw.hls.codegen import HLSCodeGenerator, GeneratedDesign
from repro.hw.hls.report import HLSReport
from repro.hw.hls.synthesis import HLSSynthesisSimulator
from repro.hw.hls.testbench import (
    generate_makefile,
    generate_support_files,
    generate_synthesis_script,
    generate_testbench,
)

__all__ = [
    "HLSCodeGenerator",
    "GeneratedDesign",
    "HLSReport",
    "HLSSynthesisSimulator",
    "generate_testbench",
    "generate_synthesis_script",
    "generate_makefile",
    "generate_support_files",
]
