"""HLS synthesis report."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.resource import ResourceUtilization, ResourceVector


@dataclass(frozen=True)
class HLSReport:
    """Result of synthesising one accelerator design.

    Attributes
    ----------
    design_name:
        Name of the synthesised design.
    latency_cycles:
        Estimated end-to-end latency in clock cycles.
    clock_mhz:
        Target clock frequency.
    resources:
        Post-synthesis resource usage.
    utilization:
        Resource usage as fractions of the target device.
    achieved_clock_mhz:
        Clock the design closes timing at (may be below the target when the
        device is heavily utilised).
    meets_timing:
        Whether the requested clock is achievable.
    """

    design_name: str
    latency_cycles: float
    clock_mhz: float
    resources: ResourceVector
    utilization: ResourceUtilization
    achieved_clock_mhz: float
    meets_timing: bool

    @property
    def latency_ms(self) -> float:
        """Latency in milliseconds at the achieved clock."""
        clock = self.achieved_clock_mhz if self.achieved_clock_mhz > 0 else self.clock_mhz
        return self.latency_cycles / (clock * 1e3)

    @property
    def fps(self) -> float:
        """Frames per second implied by the latency."""
        latency = self.latency_ms
        return 1000.0 / latency if latency > 0 else float("inf")

    def summary(self) -> str:
        """One-paragraph human-readable report."""
        util = self.utilization.as_percent_dict()
        return (
            f"HLS report for {self.design_name}: "
            f"{self.latency_ms:.2f} ms ({self.fps:.1f} FPS) @ {self.achieved_clock_mhz:.0f} MHz, "
            f"LUT {util['lut']:.1f}%, FF {util['ff']:.1f}%, "
            f"DSP {util['dsp']:.1f}%, BRAM {util['bram']:.1f}%, "
            f"timing {'met' if self.meets_timing else 'FAILED'}"
        )
