"""Testbench and synthesis-script generation for Auto-HLS designs.

A real HLS hand-off needs more than the kernel source: a C testbench that
drives the accelerator with a frame of data and checks the interface, and a
synthesis script (Tcl) that creates the project, sets the clock and runs
C synthesis / co-simulation / export.  Auto-HLS emits both so the generated
bundle is directly usable with an HLS tool.
"""

from __future__ import annotations

from repro.hw.hls.codegen import GeneratedDesign
from repro.hw.tile_arch import TileArchAccelerator

TESTBENCH_TEMPLATE = """\
// Auto-generated testbench for {design_name}
// Drives one frame of synthetic input through the accelerator and checks
// that the output box lies in the normalised range.
#include <cstdio>
#include <cstdlib>
#include "{design_name}.h"

#define INPUT_CHANNELS {in_channels}
#define INPUT_HEIGHT   {in_height}
#define INPUT_WIDTH    {in_width}
#define NUM_WEIGHTS    {num_weights}
#define NUM_OUTPUTS    {num_outputs}

static data_t   frame[INPUT_CHANNELS * INPUT_HEIGHT * INPUT_WIDTH];
static data_t   result[INPUT_CHANNELS * INPUT_HEIGHT * INPUT_WIDTH];
static weight_t weights[NUM_WEIGHTS];

int main() {{
  // Synthetic frame: a bright square on a dark background.
  for (int i = 0; i < INPUT_CHANNELS * INPUT_HEIGHT * INPUT_WIDTH; i++) {{
    frame[i] = (data_t)(i % 7);
  }}
  for (int h = INPUT_HEIGHT / 4; h < INPUT_HEIGHT / 2; h++) {{
    for (int w = INPUT_WIDTH / 4; w < INPUT_WIDTH / 2; w++) {{
      frame[(0 * INPUT_HEIGHT + h) * INPUT_WIDTH + w] = (data_t)96;
    }}
  }}
  // Deterministic pseudo-random weights.
  unsigned seed = 2019u;
  for (int i = 0; i < NUM_WEIGHTS; i++) {{
    seed = seed * 1664525u + 1013904223u;
    weights[i] = (weight_t)((seed >> 24) % 17 - 8);
  }}

  {design_name}(frame, result, weights);

  int errors = 0;
  for (int i = 0; i < NUM_OUTPUTS; i++) {{
    if (result[i] < (data_t)(-128) || result[i] > (data_t)127) {{
      errors++;
    }}
  }}
  if (errors) {{
    printf("FAIL: %d out-of-range outputs\\n", errors);
    return 1;
  }}
  printf("PASS: accelerator produced %d outputs\\n", NUM_OUTPUTS);
  return 0;
}}
"""

SYNTHESIS_SCRIPT_TEMPLATE = """\
# Auto-generated HLS synthesis script for {design_name}
# Usage: vitis_hls -f run_hls.tcl   (or vivado_hls -f run_hls.tcl)
open_project {design_name}_prj
set_top {design_name}
add_files {design_name}.cpp
add_files -tb {design_name}_tb.cpp
open_solution "solution1"
set_part {{{part}}}
create_clock -period {clock_period_ns:.2f} -name default
csim_design
csynth_design
cosim_design
export_design -format ip_catalog
exit
"""

MAKEFILE_TEMPLATE = """\
# Auto-generated Makefile for the {design_name} accelerator bundle
DESIGN := {design_name}

csim: $(DESIGN).cpp $(DESIGN)_tb.cpp
\tg++ -std=c++11 -I. -D__SIM__ -o $(DESIGN)_csim $(DESIGN)_tb.cpp
\t./$(DESIGN)_csim

hls:
\tvitis_hls -f run_hls.tcl

clean:
\trm -rf $(DESIGN)_csim $(DESIGN)_prj *.log
"""

#: FPGA part numbers used in the generated synthesis scripts.
DEVICE_PARTS = {
    "PYNQ-Z1": "xc7z020clg400-1",
    "Ultra96": "xczu3eg-sbva484-1-e",
    "ZC706": "xc7z045ffg900-2",
}


def generate_testbench(design: GeneratedDesign, accelerator: TileArchAccelerator) -> str:
    """Generate the C testbench for a generated design."""
    workload = accelerator.workload
    c, h, w = workload.input_shape
    return TESTBENCH_TEMPLATE.format(
        design_name=design.name,
        in_channels=c,
        in_height=h,
        in_width=w,
        num_weights=max(workload.total_params, 1),
        num_outputs=4,
    )


def generate_synthesis_script(design: GeneratedDesign, accelerator: TileArchAccelerator) -> str:
    """Generate the Tcl script that synthesises the design for its device."""
    device = accelerator.device
    part = DEVICE_PARTS.get(device.name, "xc7z020clg400-1")
    return SYNTHESIS_SCRIPT_TEMPLATE.format(
        design_name=design.name,
        part=part,
        clock_period_ns=device.cycle_time_ns(accelerator.clock_mhz),
    )


def generate_makefile(design: GeneratedDesign) -> str:
    """Generate a Makefile for C simulation and HLS synthesis."""
    return MAKEFILE_TEMPLATE.format(design_name=design.name)


def generate_support_files(
    design: GeneratedDesign, accelerator: TileArchAccelerator
) -> dict[str, str]:
    """All supporting files of the hand-off bundle (testbench, Tcl, Makefile)."""
    return {
        f"{design.name}_tb.cpp": generate_testbench(design, accelerator),
        "run_hls.tcl": generate_synthesis_script(design, accelerator),
        "Makefile": generate_makefile(design),
    }
