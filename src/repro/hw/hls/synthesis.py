"""Simulated HLS synthesis.

The real flow would hand the generated C code to Vivado HLS and read back a
synthesis report.  This reproduction replaces that step with a deterministic
simulator-backed estimate:

* latency comes from the cycle-level tile-pipeline simulator,
* resource usage comes from the accelerator resource model,
* timing closure is modelled as a function of utilization pressure — a
  heavily packed device closes timing at a lower clock, mirroring the
  routing-congestion behaviour of real placement and routing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.hls.codegen import GeneratedDesign, HLSCodeGenerator
from repro.hw.hls.report import HLSReport
from repro.hw.pipeline import TilePipelineSimulator
from repro.hw.tile_arch import TileArchAccelerator


#: Utilization above which timing begins to degrade (routing congestion).
_TIMING_KNEE = 0.97
#: Relative clock degradation per unit of utilization above the knee.
_TIMING_SLOPE = 0.5


@dataclass
class HLSSynthesisSimulator:
    """Stand-in for the Vivado HLS + implementation flow.

    Parameters
    ----------
    accelerator:
        The accelerator to synthesise.
    pessimism:
        Multiplier (> 1.0) applied to the simulated latency to model the
        gap between C-simulation and on-board behaviour.
    """

    accelerator: TileArchAccelerator
    pessimism: float = 1.0

    def __post_init__(self) -> None:
        if self.pessimism <= 0:
            raise ValueError("pessimism must be positive")

    def synthesise(self, design: GeneratedDesign | None = None) -> HLSReport:
        """Produce an :class:`HLSReport` for the accelerator.

        ``design`` is accepted for interface fidelity (the report is named
        after it) but the estimate is derived from the accelerator model; a
        missing design triggers code generation so every report corresponds
        to concrete generated C code.
        """
        acc = self.accelerator
        if design is None:
            design = HLSCodeGenerator(acc).generate()

        trace = TilePipelineSimulator(acc).run()
        latency_cycles = trace.total_cycles * self.pessimism
        resources = acc.resources()
        utilization = acc.device.utilization(resources)

        pressure = utilization.max_fraction
        if pressure <= _TIMING_KNEE:
            achieved = acc.clock_mhz
        else:
            degradation = 1.0 - _TIMING_SLOPE * (pressure - _TIMING_KNEE)
            achieved = max(acc.clock_mhz * degradation, acc.clock_mhz * 0.5)
        meets_timing = achieved >= acc.clock_mhz and pressure <= 1.0

        return HLSReport(
            design_name=design.name,
            latency_cycles=latency_cycles,
            clock_mhz=acc.clock_mhz,
            resources=resources,
            utilization=utilization,
            achieved_clock_mhz=min(achieved, acc.device.max_clock_mhz),
            meets_timing=meets_timing,
        )
