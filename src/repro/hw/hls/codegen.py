"""Auto-HLS C code generation.

Given a :class:`~repro.hw.tile_arch.TileArchAccelerator`, the generator emits
HLS-style C code: one function per IP instance, DMA helpers for tile and
weight movement, and a top-level function that executes the DNN's layers
sequentially (folded architecture) with tile-level pipelining expressed
through ``DATAFLOW`` regions.  The generated code is a faithful structural
description of the accelerator that the synthesis simulator analyses; it is
also valid input for a real HLS tool after the usual manual optimisations the
paper mentions (buffer re-allocation, loop fusion).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.hw.hls import templates
from repro.hw.ip import IPInstance
from repro.hw.tile_arch import TileArchAccelerator
from repro.hw.workload import LayerWorkload


@dataclass
class GeneratedDesign:
    """The output of one Auto-HLS code-generation run."""

    name: str
    header: str
    source: str
    ip_functions: dict[str, str]
    layer_calls: list[str]
    extra_files: dict[str, str] = field(default_factory=dict)

    @property
    def files(self) -> dict[str, str]:
        """Mapping of file name to file content (kernel, header, support files)."""
        files = {f"{self.name}.h": self.header, f"{self.name}.cpp": self.source}
        files.update(self.extra_files)
        return files

    @property
    def total_lines(self) -> int:
        return sum(content.count("\n") + 1 for content in self.files.values())

    def write_to(self, directory) -> list[str]:
        """Write the generated files into ``directory``; returns the paths."""
        import pathlib

        directory = pathlib.Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = []
        for filename, content in self.files.items():
            path = directory / filename
            path.write_text(content)
            paths.append(str(path))
        return paths


class HLSCodeGenerator:
    """Generate synthesizable-style C code for a Tile-Arch accelerator."""

    def __init__(self, accelerator: TileArchAccelerator, design_name: str | None = None) -> None:
        self.accelerator = accelerator
        self.design_name = self._sanitise(design_name or accelerator.workload.name)

    @staticmethod
    def _sanitise(name: str) -> str:
        cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
        if not cleaned or cleaned[0].isdigit():
            cleaned = f"dnn_{cleaned}"
        return cleaned.lower()

    # ------------------------------------------------------------- IP bodies
    def _ip_function(self, instance: IPInstance) -> str:
        kernel = instance.template.kernel or 1
        pf = instance.parallel_factor
        if instance.kind == "conv":
            return templates.CONV_IP_TEMPLATE.format(
                name=instance.name, kernel=kernel, pf=pf, pad2=2 * (kernel // 2)
            )
        if instance.kind == "dwconv":
            return templates.DWCONV_IP_TEMPLATE.format(
                name=instance.name, kernel=kernel, pf=pf, pad2=2 * (kernel // 2)
            )
        if instance.kind == "pool":
            return templates.POOL_IP_TEMPLATE.format(name=instance.name, pf=pf)
        clip = 4 if self.accelerator.workload.feature_bits <= 8 else 0
        clip_stmt = f"if (v > {clip}) v = {clip};" if clip else "// unbounded ReLU"
        return templates.ACTIVATION_IP_TEMPLATE.format(
            name=instance.name, pf=pf, clip=clip or "none", clip_stmt=clip_stmt
        )

    def _ip_call(self, instance: IPInstance, layer: LayerWorkload) -> str:
        if instance.kind == "conv":
            return (
                f"{instance.name}(buf_a, (data_t (*)[TILE_H][TILE_W])buf_b, "
                f"(weight_t (*)[MAX_CH][{layer.kernel}][{layer.kernel}])weight_buf, "
                f"{layer.in_channels}, {layer.out_channels});"
            )
        if instance.kind == "dwconv":
            return (
                f"{instance.name}(buf_a, (data_t (*)[TILE_H][TILE_W])buf_b, "
                f"(weight_t (*)[{layer.kernel}][{layer.kernel}])weight_buf, "
                f"{layer.in_channels});"
            )
        if instance.kind == "pool":
            return (
                f"{instance.name}((data_t (*)[TILE_H][TILE_W])buf_a, "
                f"(data_t (*)[TILE_H / 2][TILE_W / 2])buf_b, {layer.in_channels});"
            )
        return f"{instance.name}((data_t (*)[TILE_H][TILE_W])buf_b, {layer.out_channels});"

    # ----------------------------------------------------------- layer calls
    def _layer_call(self, index: int, layer: LayerWorkload, weight_offset: int) -> str:
        acc = self.accelerator
        instance = acc.bundle_hw.instance_for(layer)
        num_tiles = acc.tiles_per_layer(layer)
        tiles_per_row = max(math.ceil(layer.out_width / acc.tile.tile_width), 1)
        description = (
            f"{layer.kind}{layer.kernel}x{layer.kernel} "
            f"{layer.in_channels}->{layer.out_channels} "
            f"@{layer.in_height}x{layer.in_width} stride {layer.stride}"
            + (f" (bundle {layer.bundle_index})" if layer.bundle_index >= 0 else "")
        )
        return templates.LAYER_CALL_TEMPLATE.format(
            index=index,
            description=description,
            num_tiles=num_tiles,
            tiles_per_row=tiles_per_row,
            in_ch=layer.in_channels,
            out_ch=layer.out_channels,
            in_h=layer.in_height,
            in_w=layer.in_width,
            out_h=layer.out_height,
            out_w=layer.out_width,
            num_weights=layer.params,
            weight_offset=weight_offset,
            ip_call=self._ip_call(instance, layer),
        )

    # -------------------------------------------------------------- generate
    def generate(self) -> GeneratedDesign:
        """Produce the header and source files of the accelerator."""
        acc = self.accelerator
        workload = acc.workload
        max_kernel = max((l.kernel for l in workload.layers if l.is_compute), default=3)
        halo = max_kernel - 1
        accum_bits = min(workload.weight_bits + workload.feature_bits + 8, 48)
        guard = f"{self.design_name.upper()}_H"

        header = templates.HEADER_FILE.format(
            design_name=self.design_name,
            guard=guard,
            tile_h=acc.tile.tile_height,
            tile_w=acc.tile.tile_width,
            max_channels=workload.max_channels,
            num_layers=len(workload.layers),
        )

        parts = [templates.FILE_HEADER.format(
            design_name=self.design_name,
            device=acc.device.name,
            clock_mhz=acc.clock_mhz,
            weight_bits=workload.weight_bits,
            feature_bits=workload.feature_bits,
            accum_bits=accum_bits,
            tile_h=acc.tile.tile_height,
            tile_w=acc.tile.tile_width,
        )]

        ip_functions: dict[str, str] = {}
        for instance in acc.bundle_hw.instances:
            ip_functions[instance.name] = self._ip_function(instance)
            parts.append(ip_functions[instance.name])

        parts.append(templates.LOAD_TILE_TEMPLATE.format(halo=halo))
        parts.append(templates.STORE_TILE_TEMPLATE.format())
        parts.append(templates.LOAD_WEIGHTS_TEMPLATE.format())

        pf = acc.bundle_hw.instances[0].parallel_factor if acc.bundle_hw.instances else 8
        max_weights = max((l.params for l in workload.layers), default=1)
        parts.append(templates.TOP_FUNCTION_HEADER.format(
            design_name=self.design_name,
            halo=halo,
            weight_buf_size=max(max_weights, 1),
            pf=pf,
        ))

        layer_calls: list[str] = []
        weight_offset = 0
        for index, layer in enumerate(workload.layers):
            if layer.kind in ("activation", "norm"):
                # Activations / normalisation are fused into the preceding
                # compute IP on the accelerator; no standalone call is issued.
                continue
            call = self._layer_call(index, layer, weight_offset)
            layer_calls.append(call)
            parts.append(call)
            weight_offset += layer.params
        parts.append(templates.TOP_FUNCTION_FOOTER)

        return GeneratedDesign(
            name=self.design_name,
            header=header,
            source="\n".join(parts),
            ip_functions=ip_functions,
            layer_calls=layer_calls,
        )
