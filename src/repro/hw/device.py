"""Embedded FPGA device catalogue.

The paper targets the PYNQ-Z1 board (Zynq XC7Z020): 4.9 Mbit on-chip BRAM,
220 DSP slices, 53,200 LUTs, 106,400 FFs.  Additional devices are included so
that the co-design flow can be exercised on larger parts, as the paper notes
the methodology "can be easily extended ... for devices with more resources".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.hw.resource import ResourceUtilization, ResourceVector


@dataclass(frozen=True)
class FPGADevice:
    """An embedded FPGA device and its board-level characteristics.

    Attributes
    ----------
    name:
        Device / board name.
    resources:
        Available programmable-logic resources (BRAM in 18Kb blocks).
    default_clock_mhz:
        Default accelerator clock.
    max_clock_mhz:
        Maximum supported accelerator clock.
    dram_bandwidth_gbps:
        Effective off-chip memory bandwidth available to the accelerator, in
        gigabytes per second.
    static_power_w:
        Board-level static power (PS + board components) in watts.
    dynamic_power_scale_w:
        Dynamic power at 100% utilization of the programmable logic at
        100 MHz; scaled linearly with clock and utilization by the power
        model.
    """

    name: str
    resources: ResourceVector
    default_clock_mhz: float = 100.0
    max_clock_mhz: float = 150.0
    dram_bandwidth_gbps: float = 1.0
    static_power_w: float = 1.5
    dynamic_power_scale_w: float = 1.0

    def __post_init__(self) -> None:
        if self.default_clock_mhz <= 0 or self.max_clock_mhz <= 0:
            raise ValueError("Clock frequencies must be positive")
        if self.default_clock_mhz > self.max_clock_mhz:
            raise ValueError("default_clock_mhz cannot exceed max_clock_mhz")
        if self.dram_bandwidth_gbps <= 0:
            raise ValueError("dram_bandwidth_gbps must be positive")

    # --------------------------------------------------------------- helpers
    def utilization(self, usage: ResourceVector) -> ResourceUtilization:
        """Express ``usage`` as fractions of this device's capacity."""
        return ResourceUtilization(
            lut=usage.lut / self.resources.lut if self.resources.lut else 0.0,
            ff=usage.ff / self.resources.ff if self.resources.ff else 0.0,
            dsp=usage.dsp / self.resources.dsp if self.resources.dsp else 0.0,
            bram=usage.bram / self.resources.bram if self.resources.bram else 0.0,
        )

    def fits(self, usage: ResourceVector, margin: float = 1.0) -> bool:
        """True when ``usage`` fits within ``margin`` of the device capacity."""
        return usage.fits_within(self.resources.scale(margin))

    def bram_bits(self) -> float:
        """Total on-chip BRAM capacity in bits (18Kb per block)."""
        return self.resources.bram * 18 * 1024

    def validate_clock(self, clock_mhz: float) -> float:
        """Validate an accelerator clock against this device's range.

        Returns the clock as a float; raises :class:`ValueError` when it is
        non-positive or above :attr:`max_clock_mhz`.  Used by the sweep
        grid builder so an unsupported clock axis fails before any worker
        is spawned.
        """
        clock = float(clock_mhz)
        if clock <= 0:
            raise ValueError(f"clock must be positive, got {clock:g} MHz")
        if clock > self.max_clock_mhz:
            raise ValueError(
                f"{self.name} supports at most {self.max_clock_mhz:g} MHz, "
                f"got {clock:g} MHz"
            )
        return clock

    def cycle_time_ns(self, clock_mhz: float | None = None) -> float:
        """Clock period in nanoseconds."""
        clock = self.default_clock_mhz if clock_mhz is None else clock_mhz
        if clock <= 0:
            raise ValueError("clock must be positive")
        return 1000.0 / clock


#: PYNQ-Z1 (Zynq-7020): the paper's target board.
PYNQ_Z1 = FPGADevice(
    name="PYNQ-Z1",
    resources=ResourceVector(lut=53_200, ff=106_400, dsp=220, bram=280),
    default_clock_mhz=100.0,
    max_clock_mhz=150.0,
    dram_bandwidth_gbps=1.05,
    static_power_w=1.55,
    dynamic_power_scale_w=0.78,
)

#: Ultra96 (Zynq UltraScale+ ZU3EG).
ULTRA96 = FPGADevice(
    name="Ultra96",
    resources=ResourceVector(lut=70_560, ff=141_120, dsp=360, bram=432),
    default_clock_mhz=150.0,
    max_clock_mhz=300.0,
    dram_bandwidth_gbps=2.1,
    static_power_w=1.8,
    dynamic_power_scale_w=1.0,
)

#: ZC706 (Zynq-7045): a mid-range development board.
ZC706 = FPGADevice(
    name="ZC706",
    resources=ResourceVector(lut=218_600, ff=437_200, dsp=900, bram=1090),
    default_clock_mhz=150.0,
    max_clock_mhz=200.0,
    dram_bandwidth_gbps=3.2,
    static_power_w=3.0,
    dynamic_power_scale_w=2.4,
)

_DEVICES = {d.name.lower(): d for d in (PYNQ_Z1, ULTRA96, ZC706)}


def get_device(name: str) -> FPGADevice:
    """Look up a device from the catalogue by (case-insensitive) name."""
    key = name.lower()
    if key not in _DEVICES:
        raise KeyError(f"Unknown device '{name}'. Available: {sorted(_DEVICES)}")
    return _DEVICES[key]


def list_devices() -> list[str]:
    """Names of all devices in the catalogue."""
    return sorted(d.name for d in _DEVICES.values())


def resolve_devices(spec: str | Sequence[str]) -> list[FPGADevice]:
    """Resolve a multi-device spec to catalogue devices.

    ``spec`` is either a comma-separated string (``"pynq-z1,ultra96"``) or a
    sequence of names; the keyword ``all`` expands to the whole catalogue.
    Order is preserved, duplicates are dropped, and unknown names raise the
    same :class:`KeyError` as :func:`get_device`.
    """
    if isinstance(spec, str):
        names = [part.strip() for part in spec.split(",") if part.strip()]
    else:
        names = [str(part).strip() for part in spec if str(part).strip()]
    if not names:
        raise ValueError("At least one device name is required")
    resolved: list[FPGADevice] = []
    for name in names:
        batch = (
            [_DEVICES[key] for key in sorted(_DEVICES)]
            if name.lower() == "all"
            else [get_device(name)]
        )
        for device in batch:
            if device not in resolved:
                resolved.append(device)
    return resolved
