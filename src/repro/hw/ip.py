"""Configurable IP templates and instances.

The accelerator is built from a pool of configurable IP templates (Table 1:
``IP_1 .. IP_m``): each template supports one basic DNN layer type (conv,
depth-wise conv, pooling, ...).  When a DNN uses a layer type, the template
is instantiated into an IP instance ``p_j`` configured with a parallelism
factor ``PF_j`` and a quantization scheme ``Q_j``; the instance is then
reused across all layers of that type (layer-level IP reuse) and across data
tiles (tile-level IP reuse).

The latency and resource numbers produced here are what the analytical
models (Eqs. 1-5) and the tile pipeline simulator consume.  They model an
HLS-style line-buffered convolution engine:

* latency per tile = pipeline-fill depth + MACs / (PF * macs_per_dsp),
* DSP usage = PF (each lane packs two 8-bit MACs into one DSP when the
  quantization allows it),
* LUT / FF usage = a base control cost plus a per-lane cost,
* BRAM usage = weight buffer + line buffers + tile output buffer, all sized
  by the quantization scheme.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.hw.resource import ResourceVector
from repro.hw.workload import LayerWorkload
from repro.nn.quantization import QuantizationScheme, W16A16


@dataclass(frozen=True)
class IPConfig:
    """Configuration of an IP instance: parallelism factor and quantization."""

    parallel_factor: int = 8
    quantization: QuantizationScheme = W16A16

    def __post_init__(self) -> None:
        if self.parallel_factor <= 0:
            raise ValueError("parallel_factor must be positive")


@dataclass(frozen=True)
class IPTemplate:
    """A configurable IP template for one DNN layer type.

    Attributes
    ----------
    name:
        Template key, e.g. ``"conv3x3"`` or ``"pool"``.
    kind:
        Layer kind the template executes (``conv``, ``dwconv``, ``pool``,
        ``activation``, ``norm``).
    kernel:
        Kernel size baked into the template (0 = any).
    uses_dsp:
        Whether the multiply-accumulate datapath consumes DSP slices.
    base_lut, lut_per_lane:
        Control-logic LUT cost and per-parallel-lane LUT cost.
    base_ff, ff_per_lane:
        Flip-flop costs.
    pipeline_depth:
        Pipeline fill latency in cycles.
    efficiency:
        Fraction of the peak lane throughput the IP sustains in practice
        (initiation intervals above one, edge tiles that underfill the lanes,
        layers whose channel count is smaller than the parallel factor).
    """

    name: str
    kind: str
    kernel: int = 0
    uses_dsp: bool = True
    base_lut: float = 600.0
    lut_per_lane: float = 95.0
    base_ff: float = 900.0
    ff_per_lane: float = 140.0
    pipeline_depth: int = 24
    efficiency: float = 0.45

    def instantiate(self, config: IPConfig, name: str | None = None) -> "IPInstance":
        """Create a configured instance of this template."""
        return IPInstance(template=self, config=config, name=name or self.name)

    def supports(self, layer: LayerWorkload) -> bool:
        """True when the template can execute ``layer``."""
        if layer.kind == "head":
            return self.kind == "conv" and self.kernel in (0, 1)
        if layer.kind != self.kind:
            return False
        return self.kernel == 0 or self.kernel == layer.kernel


@dataclass(frozen=True)
class IPInstance:
    """A configured IP instance ``p_j`` with latency / resource models."""

    template: IPTemplate
    config: IPConfig
    name: str

    # ------------------------------------------------------------- shortcuts
    @property
    def parallel_factor(self) -> int:
        return self.config.parallel_factor

    @property
    def quantization(self) -> QuantizationScheme:
        return self.config.quantization

    @property
    def kind(self) -> str:
        return self.template.kind

    # --------------------------------------------------------------- latency
    def macs_per_cycle(self) -> float:
        """Effective (sustained) multiply-accumulates per clock cycle."""
        if not self.template.uses_dsp:
            # Pooling / activation / norm lanes are LUT-based comparators or
            # adders; one lane handles one element per cycle.
            return float(self.parallel_factor) * self.template.efficiency
        peak = float(self.parallel_factor * self.quantization.macs_per_dsp)
        return peak * self.template.efficiency

    def cycles_for(self, macs: float, pipelined_calls: int = 1) -> float:
        """Cycles to execute ``macs`` multiply-accumulates on this instance.

        ``pipelined_calls`` is the number of times the IP is invoked for the
        work (each invocation pays the pipeline-fill latency once).
        """
        if macs < 0:
            raise ValueError("macs must be non-negative")
        compute = macs / self.macs_per_cycle()
        fill = self.template.pipeline_depth * max(pipelined_calls, 1)
        return compute + fill

    def cycles_for_layer_tile(self, layer: LayerWorkload, tile_pixels: int) -> float:
        """Cycles to process one data tile (``tile_pixels`` output pixels) of a layer."""
        out_pixels = layer.out_height * layer.out_width
        if out_pixels <= 0:
            return float(self.template.pipeline_depth)
        frac = min(tile_pixels / out_pixels, 1.0)
        return self.cycles_for(layer.macs * frac, pipelined_calls=1)

    def cycles_for_layer_share(self, layer: LayerWorkload, num_tiles: int) -> float:
        """Cycles for one of ``num_tiles`` equal shares of a layer's work.

        Unlike :meth:`cycles_for_layer_tile`, the per-tile work is derived by
        dividing the layer's total MACs by the tile count, so summing over
        all tiles reproduces the layer's exact MAC count even when the tile
        grid does not divide the feature map evenly.
        """
        share = layer.macs / max(num_tiles, 1)
        return self.cycles_for(share, pipelined_calls=1)

    # -------------------------------------------------------------- resource
    def dsp_usage(self) -> float:
        """DSP slices consumed by the multiply-accumulate lanes."""
        if not self.template.uses_dsp:
            return 0.0
        # Two 8-bit MACs can share one DSP48 slice.
        return math.ceil(self.parallel_factor / self.quantization.macs_per_dsp)

    def lut_usage(self) -> float:
        lanes = self.parallel_factor
        width_scale = max(self.quantization.weight_bits, self.quantization.feature_bits) / 16.0
        return self.template.base_lut + self.template.lut_per_lane * lanes * (0.6 + 0.4 * width_scale)

    def ff_usage(self) -> float:
        lanes = self.parallel_factor
        width_scale = max(self.quantization.weight_bits, self.quantization.feature_bits) / 16.0
        return self.template.base_ff + self.template.ff_per_lane * lanes * (0.6 + 0.4 * width_scale)

    def weight_buffer_bram(self, max_in_channels: int, max_out_channels: int) -> float:
        """BRAM (18Kb blocks) for this IP's private weight working set.

        The shared streaming weight buffer is owned by the accelerator-level
        buffer plan (the paper's "BRAM buffer reuse across IPs"); only the
        depth-wise IPs keep a small private filter store because their whole
        filter bank (``kernel^2 * C``) is tiny and reloading it per tile
        would waste bandwidth.
        """
        if self.kind != "dwconv":
            return 0.0
        kernel = self.template.kernel or 3
        weights = kernel * kernel * max_in_channels
        bits = weights * self.quantization.weight_bits
        del max_out_channels
        return math.ceil(bits / (18 * 1024))

    def line_buffer_bram(self, tile_width: int, max_channels: int) -> float:
        """BRAM for the (kernel-1) line buffers of a tiled convolution."""
        kernel = self.template.kernel or 1
        if kernel <= 1 or self.kind not in ("conv", "dwconv"):
            return 0.0
        bits = (kernel - 1) * tile_width * max_channels * self.quantization.feature_bits
        return math.ceil(bits / (18 * 1024))

    def resources(
        self,
        tile_width: int = 40,
        max_in_channels: int = 256,
        max_out_channels: int = 256,
    ) -> ResourceVector:
        """Total resource usage of this instance (Eq. 1 ``Res_j`` term)."""
        return ResourceVector(
            lut=self.lut_usage(),
            ff=self.ff_usage(),
            dsp=self.dsp_usage(),
            bram=self.weight_buffer_bram(max_in_channels, max_out_channels)
            + self.line_buffer_bram(tile_width, max_in_channels),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IPInstance({self.name}, PF={self.parallel_factor}, "
            f"Q={self.quantization.name})"
        )
