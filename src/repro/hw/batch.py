"""Vectorized batch evaluation of the analytical models (Eqs. 1-5).

Every search, sweep and shard run bottoms out in per-candidate latency /
resource estimation through :mod:`repro.hw.analytical`.  The scalar path
rebuilds the workload, the Tile-Arch accelerator and the model objects for
every single configuration; :class:`BatchedDNNEstimator` scores an *array*
of configurations in one call instead:

* configurations that differ only in their parallel factor share one set of
  **group statics** (workload, tiling, IP instance order, per-layer MAC /
  reuse counts, per-segment DMA transfer latencies) computed once and cached
  across calls,
* the parallel-factor-dependent arithmetic of Eqs. 1-5 runs as NumPy
  elementwise operations over the whole batch at once.

The contract is **bit-exactness**: ``estimate_batch(configs)[i]`` equals the
scalar ``DNNPerformanceModel(...).estimate()`` for ``configs[i]`` to full
float precision, so journals, checkpoints and Pareto selections are
byte-identical whichever path scored them.  Three properties make this hold:

* every elementwise float64 NumPy operation performs the same IEEE-754
  operation as the corresponding Python float expression,
* all accumulations are explicit Python loops of vectorized adds in the
  scalar evaluation order (never ``np.sum``, whose pairwise summation
  reassociates),
* padded slots are engineered to contribute exactly ``+0.0``, and
  ``x + 0.0 == x`` for every non-negative float ``x``.

Integer inputs (MAC counts, tile counts, parallel factors) stay far below
2**53, so their float64 conversions — implicit in both paths — are exact.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

import repro.telemetry as telemetry
from repro.hw.analytical import (
    AnalyticalModelCoefficients,
    DEFAULT_COEFFICIENTS,
    PerformanceEstimate,
    bundle_layer_groups,
)
from repro.hw.device import FPGADevice
from repro.hw.ip import IPConfig
from repro.hw.ip_library import IPLibrary, default_ip_library
from repro.hw.memory import DRAMTrafficModel, plan_on_chip_buffers
from repro.hw.resource import ResourceVector
from repro.hw.tile_arch import CONTROL_OVERHEAD, build_bundle_hardware
from repro.hw.tiling import TileConfig, choose_tile_config
from repro.hw.workload import NetworkWorkload
from repro.nn.quantization import QuantizationScheme

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.dnn_config import DNNConfig


def _group_key(config: "DNNConfig") -> tuple:
    """Identity of everything :meth:`DNNConfig.to_workload` depends on.

    The parallel factor is deliberately absent — it only configures the
    hardware, not the workload — so configs scored at several parallel
    factors (the coarse-evaluation cross-product) share one group.  The
    config ``name`` is cosmetic and also excluded.
    """
    return (
        config.bundle.bundle_id,
        tuple(config.bundle.layers),
        config.task.input_shape,
        config.num_repetitions,
        config.channel_expansion,
        config.downsample,
        config.stem_channels,
        config.activation,
        config.weight_bits,
        config.max_channels,
    )


@dataclass
class _GroupStatics:
    """Parallel-factor-independent precomputation for one workload group."""

    workload: NetworkWorkload
    tile: TileConfig
    num_segments: int
    # Per-layer arrays in segment-major order (segments in Eq. 4 group
    # order, layers in workload order within each segment).
    layer_macs: np.ndarray        # int64
    layer_reuse: np.ndarray       # int64, tiles per layer (>= 1)
    layer_mpd: np.ndarray         # int64, MACs/DSP (1 for non-DSP lanes)
    layer_eff: np.ndarray         # float64, sustained lane efficiency
    layer_depth: np.ndarray       # float64, pipeline fill cycles
    layer_seg: np.ndarray         # int32, segment index of each layer
    # Per-segment DMA transfer latency (beta term input of Eq. 2).
    seg_transfer_ms: np.ndarray   # float64, (num_segments,)
    lat_dm_ms: float              # Lat_DM of Eq. 4
    # Per-IP-instance statics in build order (Eq. 1 inputs).
    inst_base_lut: np.ndarray     # float64
    inst_per_lut: np.ndarray      # float64
    inst_base_ff: np.ndarray      # float64
    inst_per_ff: np.ndarray       # float64
    inst_mpd: np.ndarray          # int64 (1 for non-DSP instances)
    inst_uses_dsp: np.ndarray     # float64 mask (1.0 / 0.0)
    inst_bram: np.ndarray         # float64, PF-independent BRAM
    num_instances: int
    width_factor: float           # 0.6 + 0.4 * max(wb, fb) / 16
    # Aggregates feeding the buffer plan (PF enters via weight_group only).
    max_kernel: int
    max_in: int
    max_out: int
    buffer_bram: dict[int, float] = None  # weight_group -> total BRAM

    def buffer_bram_for(self, parallel_factor: int) -> float:
        """Total on-chip buffer BRAM for one parallel factor (memoized)."""
        weight_group = max(int(math.sqrt(parallel_factor)), 4)
        cached = self.buffer_bram.get(weight_group)
        if cached is None:
            workload = self.workload
            plan = plan_on_chip_buffers(
                self.tile.tile_height,
                self.tile.tile_width,
                workload.max_channels,
                workload.feature_bits,
                workload.weight_bits,
                self.max_kernel,
                self.max_in,
                self.max_out,
                weight_group=weight_group,
            )
            cached = plan.total_bram
            self.buffer_bram[weight_group] = cached
        return cached


class BatchedDNNEstimator:
    """Array-at-a-time analytical estimator for one target device.

    One instance caches group statics and tile choices across calls, so the
    object should live as long as its device does (the coefficients and the
    clock are per-call inputs precisely so a refit or clock sweep does not
    invalidate the caches).
    """

    def __init__(self, device: FPGADevice, library: Optional[IPLibrary] = None) -> None:
        self.device = device
        self._library = library or default_ip_library()
        self._dram = DRAMTrafficModel(device)
        self._groups: dict[tuple, _GroupStatics] = {}
        self._tiles: dict[tuple, TileConfig] = {}

    # ------------------------------------------------------------ group statics
    def workload_for(self, config: "DNNConfig") -> NetworkWorkload:
        """The (cached) workload of ``config``; builds group statics if needed."""
        return self._statics_for(config).workload

    def _tile_for(self, workload: NetworkWorkload) -> TileConfig:
        """Memoized :func:`choose_tile_config` (it only reads aggregates)."""
        compute = [l for l in workload.layers if l.is_compute]
        key = (
            workload.input_shape,
            workload.max_channels,
            max((l.kernel for l in compute), default=3),
            max((l.in_channels for l in compute), default=workload.max_channels),
            max((l.out_channels for l in compute), default=workload.max_channels),
            workload.feature_bits,
            workload.weight_bits,
        )
        tile = self._tiles.get(key)
        if tile is None:
            tile = choose_tile_config(workload, self.device)
            self._tiles[key] = tile
        return tile

    def _statics_for(self, config: "DNNConfig") -> _GroupStatics:
        key = _group_key(config)
        statics = self._groups.get(key)
        if statics is None:
            statics = self._build_statics(config)
            self._groups[key] = statics
        return statics

    def _build_statics(self, config: "DNNConfig") -> _GroupStatics:
        workload = config.to_workload()
        tile = self._tile_for(workload)
        quantization = QuantizationScheme(
            f"w{workload.weight_bits}a{workload.feature_bits}",
            workload.weight_bits,
            workload.feature_bits,
        )
        # The parallel factor of this placeholder hardware is irrelevant:
        # only PF-independent pieces (instance order, template parameters,
        # BRAM sizing) are read from it.
        bundle_hw = build_bundle_hardware(
            workload, IPConfig(parallel_factor=1, quantization=quantization),
            self._library,
        )

        groups = bundle_layer_groups(workload)
        macs, reuse, mpd, eff, depth, seg = [], [], [], [], [], []
        transfer_bytes: list[float] = []
        transfer_bursts: list[int] = []
        feature_bits = workload.feature_bits
        for seg_id, layers in enumerate(groups):
            for layer in layers:
                template = bundle_hw.instance_for(layer).template
                macs.append(layer.macs)
                reuse.append(tile.num_tiles(layer.out_height, layer.out_width))
                mpd.append(quantization.macs_per_dsp if template.uses_dsp else 1)
                eff.append(template.efficiency)
                depth.append(float(template.pipeline_depth))
                seg.append(seg_id)
            if layers:
                input_bytes = layers[0].input_elements * feature_bits / 8.0
                output_bytes = layers[-1].output_elements * feature_bits / 8.0
                weight_bytes = sum(l.params for l in layers) * workload.weight_bits / 8.0
                transfer_bytes.append(input_bytes + output_bytes + weight_bytes)
            else:  # pragma: no cover - groups are non-empty by construction
                transfer_bytes.append(0.0)
            transfer_bursts.append(max(len(layers), 1))
        seg_transfer = self._dram.transfer_latency_ms_many(transfer_bytes, transfer_bursts)

        lat_dm = (
            self._dram.inter_bundle_latency_ms(workload)
            + self._dram.input_output_latency_ms(workload)
        )

        compute = [l for l in workload.layers if l.is_compute]
        max_kernel = max((l.kernel for l in compute), default=3)
        max_in = max((l.in_channels for l in compute), default=workload.max_channels)
        max_out = max((l.out_channels for l in compute), default=workload.max_channels)
        base_lut, per_lut, base_ff, per_ff = [], [], [], []
        inst_mpd, uses_dsp, inst_bram = [], [], []
        for instance in bundle_hw.instances:
            template = instance.template
            base_lut.append(template.base_lut)
            per_lut.append(template.lut_per_lane)
            base_ff.append(template.base_ff)
            per_ff.append(template.ff_per_lane)
            inst_mpd.append(quantization.macs_per_dsp if template.uses_dsp else 1)
            uses_dsp.append(1.0 if template.uses_dsp else 0.0)
            inst_bram.append(
                instance.weight_buffer_bram(max_in, max_out)
                + instance.line_buffer_bram(tile.tile_width, max_in)
            )
        width_scale = max(quantization.weight_bits, quantization.feature_bits) / 16.0

        return _GroupStatics(
            workload=workload,
            tile=tile,
            num_segments=len(groups),
            layer_macs=np.asarray(macs, dtype=np.int64),
            layer_reuse=np.asarray(reuse, dtype=np.int64),
            layer_mpd=np.asarray(mpd, dtype=np.int64),
            layer_eff=np.asarray(eff, dtype=np.float64),
            layer_depth=np.asarray(depth, dtype=np.float64),
            layer_seg=np.asarray(seg, dtype=np.int32),
            seg_transfer_ms=np.asarray(seg_transfer, dtype=np.float64),
            lat_dm_ms=lat_dm,
            inst_base_lut=np.asarray(base_lut, dtype=np.float64),
            inst_per_lut=np.asarray(per_lut, dtype=np.float64),
            inst_base_ff=np.asarray(base_ff, dtype=np.float64),
            inst_per_ff=np.asarray(per_ff, dtype=np.float64),
            inst_mpd=np.asarray(inst_mpd, dtype=np.int64),
            inst_uses_dsp=np.asarray(uses_dsp, dtype=np.float64),
            inst_bram=np.asarray(inst_bram, dtype=np.float64),
            num_instances=len(bundle_hw.instances),
            width_factor=0.6 + 0.4 * width_scale,
            max_kernel=max_kernel,
            max_in=max_in,
            max_out=max_out,
            buffer_bram={},
        )

    # -------------------------------------------------------------- evaluation
    def estimate_batch(
        self,
        configs: Sequence["DNNConfig"],
        coefficients: AnalyticalModelCoefficients = DEFAULT_COEFFICIENTS,
        clock_mhz: Optional[float] = None,
    ) -> list[PerformanceEstimate]:
        """Score every config; result ``i`` is bit-identical to the scalar path."""
        reg = telemetry.registry()
        if reg is None:
            return self._estimate_batch(configs, coefficients, clock_mhz)
        start = time.perf_counter()
        values = self._estimate_batch(configs, coefficients, clock_mhz)
        reg.counter("hw.estimate.count").inc(len(configs))
        reg.counter("hw.estimate.batch.calls").inc()
        reg.histogram("hw.estimate.batch.seconds").observe(time.perf_counter() - start)
        return values

    def _estimate_batch(
        self,
        configs: Sequence["DNNConfig"],
        coefficients: AnalyticalModelCoefficients,
        clock_mhz: Optional[float],
    ) -> list[PerformanceEstimate]:
        if not configs:
            return []
        clock = clock_mhz if clock_mhz is not None else self.device.default_clock_mhz
        coeff = coefficients
        count = len(configs)

        statics = [self._statics_for(config) for config in configs]
        # Rows of each distinct group are filled together (one slice
        # assignment per array per group, not per config).
        rows_by_group: dict[int, list[int]] = {}
        group_of: dict[int, _GroupStatics] = {}
        for index, stat in enumerate(statics):
            rows_by_group.setdefault(id(stat), []).append(index)
            group_of[id(stat)] = stat

        max_layers = max(stat.layer_macs.shape[0] for stat in statics)
        max_segments = max(stat.num_segments for stat in statics)

        # Padded per-layer matrices.  Pad values are chosen so a padded slot
        # contributes exactly +0.0 cycles: macs=0, reuse=1, mpd=1, eff=1,
        # depth=0  =>  contrib = 1 * (0/pf + 0) = 0.0.
        macs = np.zeros((count, max_layers), dtype=np.int64)
        reuse = np.ones((count, max_layers), dtype=np.int64)
        mpd = np.ones((count, max_layers), dtype=np.int64)
        eff = np.ones((count, max_layers), dtype=np.float64)
        depth = np.zeros((count, max_layers), dtype=np.float64)
        # Padded layers accumulate into a dummy trailing segment column.
        seg = np.full((count, max_layers), max_segments, dtype=np.int64)
        transfer = np.zeros((count, max_segments), dtype=np.float64)
        lat_dm = np.zeros(count, dtype=np.float64)
        n_inst = np.zeros(count, dtype=np.int64)
        fact = np.zeros(count, dtype=np.float64)
        buf_bram = np.zeros(count, dtype=np.float64)

        max_instances = max(stat.num_instances for stat in statics)
        # Padded instances contribute 0.0: base=0, per=0, uses_dsp=0, bram=0.
        inst_base_lut = np.zeros((count, max_instances), dtype=np.float64)
        inst_per_lut = np.zeros((count, max_instances), dtype=np.float64)
        inst_base_ff = np.zeros((count, max_instances), dtype=np.float64)
        inst_per_ff = np.zeros((count, max_instances), dtype=np.float64)
        inst_mpd = np.ones((count, max_instances), dtype=np.int64)
        inst_uses = np.zeros((count, max_instances), dtype=np.float64)
        inst_bram = np.zeros((count, max_instances), dtype=np.float64)

        pf = np.asarray([config.parallel_factor for config in configs], dtype=np.int64)
        for group_id, rows in rows_by_group.items():
            stat = group_of[group_id]
            idx = np.asarray(rows, dtype=np.intp)
            n_layers = stat.layer_macs.shape[0]
            macs[idx, :n_layers] = stat.layer_macs
            reuse[idx, :n_layers] = stat.layer_reuse
            mpd[idx, :n_layers] = stat.layer_mpd
            eff[idx, :n_layers] = stat.layer_eff
            depth[idx, :n_layers] = stat.layer_depth
            seg[idx, :n_layers] = stat.layer_seg
            transfer[idx, : stat.num_segments] = stat.seg_transfer_ms
            lat_dm[idx] = stat.lat_dm_ms
            n_inst[idx] = stat.num_instances
            fact[idx] = stat.width_factor
            n_instances = stat.num_instances
            inst_base_lut[idx, :n_instances] = stat.inst_base_lut
            inst_per_lut[idx, :n_instances] = stat.inst_per_lut
            inst_base_ff[idx, :n_instances] = stat.inst_base_ff
            inst_per_ff[idx, :n_instances] = stat.inst_per_ff
            inst_mpd[idx, :n_instances] = stat.inst_mpd
            inst_uses[idx, :n_instances] = stat.inst_uses_dsp
            inst_bram[idx, :n_instances] = stat.inst_bram
        for index, (config, stat) in enumerate(zip(configs, statics)):
            buf_bram[index] = stat.buffer_bram_for(config.parallel_factor)

        # ---- Eqs. 2-3: per-segment compute cycles, accumulated in layer order.
        cycles = np.zeros((count, max_segments + 1), dtype=np.float64)
        row_index = np.arange(count)
        for layer in range(max_layers):
            # Mirrors IPInstance.cycles_for_layer_share + Eq. 3 exactly:
            # share = macs / reuse; mpc = float(pf * mpd) * eff;
            # tile_cycles = share / mpc + depth; contrib = reuse * tile_cycles.
            share = macs[:, layer] / reuse[:, layer]
            mpc = (pf * mpd[:, layer]) * eff[:, layer]
            tile_cycles = share / mpc + depth[:, layer]
            # Rows are unique within one fancy-indexed +=, so no contribution
            # is lost to NumPy's buffered duplicate-index semantics.
            cycles[row_index, seg[:, layer]] += reuse[:, layer] * tile_cycles

        # ---- Eqs. 2 & 4: segment latencies accumulated in segment order.
        denom = clock * 1e3
        total_latency = np.zeros(count, dtype=np.float64)
        compute_ms = np.zeros(count, dtype=np.float64)
        transfer_ms = np.zeros(count, dtype=np.float64)
        for segment in range(max_segments):
            seg_compute = coeff.alpha * (cycles[:, segment] / denom)
            seg_transfer = coeff.beta * transfer[:, segment]
            total_latency += seg_compute + seg_transfer
            compute_ms += seg_compute
            transfer_ms += seg_transfer
        phi_dm = coeff.phi * lat_dm
        total_latency += phi_dm
        transfer_ms += phi_dm

        # ---- Eqs. 1 & 5: resources accumulated in instance order.
        lut = np.zeros(count, dtype=np.float64)
        ff = np.zeros(count, dtype=np.float64)
        dsp = np.zeros(count, dtype=np.float64)
        bram = np.zeros(count, dtype=np.float64)
        for inst in range(max_instances):
            lut += inst_base_lut[:, inst] + inst_per_lut[:, inst] * pf * fact
            ff += inst_base_ff[:, inst] + inst_per_ff[:, inst] * pf * fact
            dsp += np.ceil(pf / inst_mpd[:, inst]) * inst_uses[:, inst]
            bram += inst_bram[:, inst]
        lut += coeff.gamma_lut * n_inst
        ff += coeff.gamma_ff * n_inst
        bram += coeff.gamma_bram
        bram += buf_bram
        ctl = CONTROL_OVERHEAD.scale(coeff.ctl_gamma)
        lut += ctl.lut
        ff += ctl.ff
        dsp += ctl.dsp
        bram += ctl.bram

        return [
            PerformanceEstimate(
                latency_ms=float(total_latency[index]),
                resources=ResourceVector(
                    lut=float(lut[index]),
                    ff=float(ff[index]),
                    dsp=float(dsp[index]),
                    bram=float(bram[index]),
                ),
                compute_ms=float(compute_ms[index]),
                data_movement_ms=float(transfer_ms[index]),
            )
            for index in range(count)
        ]


def estimate_batch(
    configs: Sequence["DNNConfig"],
    device: FPGADevice,
    coefficients: AnalyticalModelCoefficients = DEFAULT_COEFFICIENTS,
    clock_mhz: Optional[float] = None,
) -> list[PerformanceEstimate]:
    """One-shot batched estimation (a throwaway :class:`BatchedDNNEstimator`).

    Long-lived callers (evaluators, Auto-HLS, sweeps) should hold their own
    :class:`BatchedDNNEstimator` so group statics amortise across calls.
    """
    return BatchedDNNEstimator(device).estimate_batch(
        configs, coefficients=coefficients, clock_mhz=clock_mhz
    )
