"""The configurable IP pool.

The default library mirrors the paper's IP selection (Sec. 4.2): convolution
1x1 / 3x3 / 5x5, depth-wise convolution 3x3 / 5x5 / 7x7, max / average
pooling, normalisation and activation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.hw.ip import IPConfig, IPInstance, IPTemplate
from repro.hw.workload import LayerWorkload


@dataclass
class IPLibrary:
    """A registry of IP templates keyed by name."""

    templates: dict[str, IPTemplate] = field(default_factory=dict)

    def register(self, template: IPTemplate) -> None:
        """Add or replace a template."""
        self.templates[template.name] = template

    def get(self, name: str) -> IPTemplate:
        if name not in self.templates:
            raise KeyError(f"Unknown IP template '{name}'. Available: {sorted(self.templates)}")
        return self.templates[name]

    def __contains__(self, name: str) -> bool:
        return name in self.templates

    def __iter__(self) -> Iterator[IPTemplate]:
        return iter(self.templates.values())

    def __len__(self) -> int:
        return len(self.templates)

    def names(self) -> list[str]:
        return sorted(self.templates)

    def compute_templates(self) -> list[IPTemplate]:
        """Templates implementing multiply-accumulate layers (conv / dwconv)."""
        return [t for t in self.templates.values() if t.kind in ("conv", "dwconv")]

    def template_for_layer(self, layer: LayerWorkload) -> IPTemplate:
        """Find the template that executes ``layer``; raises if none exists."""
        for template in self.templates.values():
            if template.supports(layer):
                return template
        raise KeyError(f"No IP template supports layer kind={layer.kind} kernel={layer.kernel}")

    def instantiate_for(
        self, layer: LayerWorkload, config: IPConfig, name: str | None = None
    ) -> IPInstance:
        """Instantiate the template supporting ``layer`` with ``config``."""
        return self.template_for_layer(layer).instantiate(config, name=name)


def default_ip_library() -> IPLibrary:
    """Build the default IP pool used in the paper's experiments."""
    library = IPLibrary()
    # Standard convolutions: larger kernels need deeper pipelines and more
    # control logic for the wider line buffers.
    library.register(IPTemplate("conv1x1", kind="conv", kernel=1, base_lut=520, lut_per_lane=78,
                                base_ff=760, ff_per_lane=115, pipeline_depth=18, efficiency=0.16))
    library.register(IPTemplate("conv3x3", kind="conv", kernel=3, base_lut=980, lut_per_lane=108,
                                base_ff=1450, ff_per_lane=155, pipeline_depth=30, efficiency=0.14))
    library.register(IPTemplate("conv5x5", kind="conv", kernel=5, base_lut=1650, lut_per_lane=132,
                                base_ff=2300, ff_per_lane=185, pipeline_depth=42, efficiency=0.13))
    # Depth-wise convolutions: cheaper datapaths (no channel reduction tree)
    # but harder to keep busy — their only parallelism axis is the channel
    # dimension, so sustained efficiency is lower.
    library.register(IPTemplate("dwconv3x3", kind="dwconv", kernel=3, base_lut=640, lut_per_lane=64,
                                base_ff=930, ff_per_lane=92, pipeline_depth=22, efficiency=0.10))
    library.register(IPTemplate("dwconv5x5", kind="dwconv", kernel=5, base_lut=930, lut_per_lane=78,
                                base_ff=1300, ff_per_lane=110, pipeline_depth=30, efficiency=0.10))
    library.register(IPTemplate("dwconv7x7", kind="dwconv", kernel=7, base_lut=1300, lut_per_lane=92,
                                base_ff=1750, ff_per_lane=128, pipeline_depth=40, efficiency=0.10))
    # Pooling / normalisation / activation do not consume DSPs.
    library.register(IPTemplate("pool", kind="pool", kernel=0, uses_dsp=False, base_lut=380,
                                lut_per_lane=26, base_ff=420, ff_per_lane=30, pipeline_depth=8))
    library.register(IPTemplate("norm", kind="norm", kernel=0, uses_dsp=False, base_lut=460,
                                lut_per_lane=34, base_ff=520, ff_per_lane=40, pipeline_depth=10))
    library.register(IPTemplate("activation", kind="activation", kernel=0, uses_dsp=False,
                                base_lut=220, lut_per_lane=14, base_ff=240, ff_per_lane=16,
                                pipeline_depth=4))
    return library


#: Parallel factors explored by the paper's coarse bundle evaluation (Fig. 4).
DEFAULT_PARALLEL_FACTORS = (4, 8, 16)
