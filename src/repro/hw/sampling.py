"""Auto-HLS sampling: fitting the analytical-model coefficients.

The paper determines the coefficients alpha, beta, Gamma (Eq. 2) and phi,
gamma (Eqs. 4-5) "through Auto-HLS sampling": a handful of representative
configurations are pushed through the HLS flow and the analytical model is
fitted to the measured results.  Here the reference comes from the
cycle-level tile-pipeline simulator; the fitting is a least-squares problem
in (alpha, beta) per bundle composition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.analytical import (
    AnalyticalModelCoefficients,
    BundlePerformanceModel,
    DEFAULT_COEFFICIENTS,
    DNNPerformanceModel,
)
from repro.hw.device import FPGADevice
from repro.hw.memory import DRAMTrafficModel
from repro.hw.pipeline import TilePipelineSimulator
from repro.hw.tile_arch import TileArchAccelerator
from repro.hw.workload import NetworkWorkload


@dataclass
class SamplePoint:
    """One sampled configuration and its simulated reference latency."""

    workload_name: str
    compute_ms: float
    transfer_ms: float
    simulated_ms: float


@dataclass
class SamplingResult:
    """Outcome of a coefficient-fitting run."""

    coefficients: AnalyticalModelCoefficients
    samples: list[SamplePoint]
    mean_relative_error: float


def _raw_terms(accelerator: TileArchAccelerator) -> tuple[float, float]:
    """Unscaled compute and transfer latency terms (alpha = beta = 1)."""
    unit = AnalyticalModelCoefficients(alpha=1.0, beta=1.0, phi=1.0)
    model = DNNPerformanceModel(accelerator, unit)
    est = model.estimate()
    return est.compute_ms, est.data_movement_ms


def fit_coefficients(
    workloads: list[NetworkWorkload],
    device: FPGADevice,
    parallel_factor: int = 8,
    base: AnalyticalModelCoefficients = DEFAULT_COEFFICIENTS,
) -> SamplingResult:
    """Fit (alpha, beta) so the analytical latency matches the simulator.

    Parameters
    ----------
    workloads:
        Representative sample workloads (the paper samples each bundle's
        configurations).
    device:
        Target FPGA.
    parallel_factor:
        PF used for the sampled accelerators.
    base:
        Starting coefficients; Gamma / phi / gamma are kept from it.

    Returns
    -------
    SamplingResult
        Fitted coefficients plus the per-sample reference data and the mean
        relative error of the fitted model on the samples.
    """
    if not workloads:
        raise ValueError("At least one sample workload is required")

    compute_terms = []
    transfer_terms = []
    references = []
    samples: list[SamplePoint] = []
    for workload in workloads:
        accelerator = TileArchAccelerator.build(
            workload, device, parallel_factor=parallel_factor
        )
        simulated = TilePipelineSimulator(accelerator).latency_ms()
        compute_ms, transfer_ms = _raw_terms(accelerator)
        compute_terms.append(compute_ms)
        transfer_terms.append(transfer_ms)
        references.append(simulated)
        samples.append(SamplePoint(workload.name, compute_ms, transfer_ms, simulated))

    design = np.column_stack([compute_terms, transfer_terms])
    target = np.asarray(references)
    # Non-negative least squares via clipping a plain least-squares solution;
    # the two regressors are positively correlated with the target by
    # construction so clipping is rarely triggered.
    solution, *_ = np.linalg.lstsq(design, target, rcond=None)
    alpha = float(np.clip(solution[0], 0.05, 3.0))
    beta = float(np.clip(solution[1], 0.0, 3.0))

    fitted = base.with_updates(alpha=alpha, beta=beta)
    predictions = design @ np.array([alpha, beta])
    rel_err = float(np.mean(np.abs(predictions - target) / np.maximum(target, 1e-9)))
    return SamplingResult(coefficients=fitted, samples=samples, mean_relative_error=rel_err)


def validate_against_simulator(
    workload: NetworkWorkload,
    device: FPGADevice,
    coefficients: AnalyticalModelCoefficients,
    parallel_factor: int = 8,
) -> tuple[float, float]:
    """Return ``(analytical_ms, simulated_ms)`` for one workload."""
    accelerator = TileArchAccelerator.build(workload, device, parallel_factor=parallel_factor)
    analytical = DNNPerformanceModel(accelerator, coefficients).latency_ms()
    simulated = TilePipelineSimulator(accelerator).latency_ms()
    return analytical, simulated
