"""On-chip buffer sizing and off-chip memory traffic model.

Tile-Arch allocates on-chip (BRAM) buffers for intra-Bundle communication and
off-chip (DRAM) buffers for inter-Bundle communication (Fig. 3a).  This module
sizes those buffers and models the DMA latency of the off-chip transfers,
which feeds the ``beta * Theta(Data) / bw`` term of Eq. 2 and the
``phi * Lat_DM`` term of Eq. 4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hw.device import FPGADevice
from repro.hw.resource import ResourceVector
from repro.hw.workload import LayerWorkload, NetworkWorkload

#: Fraction of the theoretical DRAM bandwidth an embedded DMA engine reaches.
DEFAULT_DMA_EFFICIENCY = 0.45
#: Fixed DMA setup cost per burst transfer, in microseconds.
DMA_SETUP_US = 3.0


@dataclass(frozen=True)
class OnChipBufferPlan:
    """Sizes (in 18Kb BRAM blocks) of the accelerator's on-chip buffers."""

    data_buffer_bram: float
    weight_buffer_bram: float
    output_buffer_bram: float

    @property
    def total_bram(self) -> float:
        return self.data_buffer_bram + self.weight_buffer_bram + self.output_buffer_bram

    def as_resource(self) -> ResourceVector:
        return ResourceVector(bram=self.total_bram)


def bram_blocks_for_bits(bits: float) -> float:
    """Number of 18Kb BRAM blocks needed to hold ``bits`` of data."""
    if bits <= 0:
        return 0.0
    return math.ceil(bits / (18 * 1024))


def plan_on_chip_buffers(
    tile_height: int,
    tile_width: int,
    max_channels: int,
    feature_bits: int,
    weight_bits: int,
    max_kernel: int,
    max_in_channels: int,
    max_out_channels: int,
    double_buffer: bool = True,
    weight_group: int = 12,
) -> OnChipBufferPlan:
    """Size the on-chip buffers of a Tile-Arch accelerator.

    The data buffers hold one tile (plus halo) of the widest intermediate
    feature map; the output buffer holds one tile of the widest output; and
    one shared weight buffer ("BRAM buffer reuse across IPs") holds the
    streaming weight working set — the filters of the ``weight_group``
    output channels currently being computed, double-buffered so the next
    group loads while the current one computes.  Double buffering also
    doubles the data/output buffers so tile ``t+1`` can be loaded while tile
    ``t`` computes.
    """
    if min(tile_height, tile_width, max_channels) <= 0:
        raise ValueError("tile dimensions and channel count must be positive")
    if weight_group <= 0:
        raise ValueError("weight_group must be positive")
    halo = max(max_kernel - 1, 0)
    tile_elems = (tile_height + halo) * (tile_width + halo) * max_channels
    data_bits = tile_elems * feature_bits
    out_bits = tile_height * tile_width * max_channels * feature_bits
    group = min(weight_group, max_out_channels)
    weight_bits_total = 2 * max_kernel * max_kernel * max_in_channels * group * weight_bits
    factor = 2.0 if double_buffer else 1.0
    return OnChipBufferPlan(
        data_buffer_bram=factor * bram_blocks_for_bits(data_bits),
        weight_buffer_bram=bram_blocks_for_bits(weight_bits_total),
        output_buffer_bram=factor * bram_blocks_for_bits(out_bits),
    )


class DRAMTrafficModel:
    """Off-chip transfer latency for inter-Bundle data movement and weights."""

    def __init__(
        self,
        device: FPGADevice,
        dma_efficiency: float = DEFAULT_DMA_EFFICIENCY,
        dma_setup_us: float = DMA_SETUP_US,
    ) -> None:
        if not 0.0 < dma_efficiency <= 1.0:
            raise ValueError("dma_efficiency must be in (0, 1]")
        self.device = device
        self.dma_efficiency = dma_efficiency
        self.dma_setup_us = dma_setup_us

    @property
    def effective_bandwidth_bytes_per_s(self) -> float:
        """Sustained DMA bandwidth in bytes/second."""
        return self.device.dram_bandwidth_gbps * 1e9 * self.dma_efficiency

    def transfer_latency_ms(self, num_bytes: float, bursts: int = 1) -> float:
        """Latency (ms) to move ``num_bytes`` over ``bursts`` DMA transfers."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        transfer_s = num_bytes / self.effective_bandwidth_bytes_per_s
        setup_s = self.dma_setup_us * 1e-6 * max(bursts, 1)
        return (transfer_s + setup_s) * 1e3

    def transfer_latency_ms_many(
        self, num_bytes: "list[float]", bursts: "list[int]"
    ) -> "list[float]":
        """Bulk :meth:`transfer_latency_ms` over parallel byte/burst lists.

        Element ``i`` is exactly ``transfer_latency_ms(num_bytes[i],
        bursts[i])`` — the batched estimator relies on bit-identical results.
        """
        if len(num_bytes) != len(bursts):
            raise ValueError("num_bytes and bursts must have the same length")
        return [
            self.transfer_latency_ms(n, bursts=b) for n, b in zip(num_bytes, bursts)
        ]

    def bundle_boundary_bytes(
        self, workload: NetworkWorkload, bundle_index: int
    ) -> float:
        """Bytes crossing the DRAM boundary at the end of one bundle repetition.

        The output feature map of the bundle's last layer is written to DRAM
        and read back by the next bundle (inter-Bundle communication).
        """
        layers = workload.layers_in_bundle(bundle_index)
        if not layers:
            return 0.0
        last = layers[-1]
        return last.output_elements * workload.feature_bits / 8.0 * 2.0  # write + read back

    def inter_bundle_latency_ms(self, workload: NetworkWorkload) -> float:
        """Total inter-Bundle data-movement latency (the ``Lat_DM`` of Eq. 4)."""
        total = 0.0
        indices = workload.bundle_indices()
        for idx in indices[:-1]:  # the final bundle's output stays tiny (head)
            num_bytes = self.bundle_boundary_bytes(workload, idx)
            total += self.transfer_latency_ms(num_bytes, bursts=2)
        return total

    def weight_streaming_latency_ms(self, workload: NetworkWorkload) -> float:
        """Latency to stream all layer weights from DRAM once per frame."""
        return self.transfer_latency_ms(workload.weight_bytes(), bursts=len(workload.layers))

    def input_output_latency_ms(self, workload: NetworkWorkload) -> float:
        """Latency to load the input image and store the final output."""
        c, h, w = workload.input_shape
        input_bytes = c * h * w * workload.feature_bits / 8.0
        output_bytes = 4 * 4.0
        return self.transfer_latency_ms(input_bytes + output_bytes, bursts=2)


def layer_tile_traffic_bytes(layer: LayerWorkload, tile_pixels: int, feature_bits: int) -> float:
    """Bytes moved through on-chip buffers for one tile of one layer."""
    out_pixels = layer.out_height * layer.out_width
    frac = min(tile_pixels / max(out_pixels, 1), 1.0)
    elems = (layer.input_elements + layer.output_elements) * frac
    return elems * feature_bits / 8.0
