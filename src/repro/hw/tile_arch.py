"""Tile-Arch: the low-latency tile-based pipeline accelerator template.

An accelerator built from this template (Sec. 4.3 of the paper) has:

* **layer-level IP reuse** — a folded structure where the DNN layers execute
  sequentially on a small set of IP instances shared across layers,
* **tile-level IP reuse** — intermediate feature maps are partitioned into
  tiles of a common size; an IP instance is reused across tiles, and tiles
  flow directly between the IP instances of subsequent layers through
  on-chip buffers,
* **tile-level pipelining** — tiles have no data dependencies within a
  layer, so computation on tile ``t`` of layer ``l+1`` overlaps with tile
  ``t+1`` of layer ``l``.

:class:`TileArchAccelerator` assembles the IP instances, the buffer plan and
the tiling for a given network workload on a given device.  The cycle-level
behaviour is simulated by :class:`repro.hw.pipeline.TilePipelineSimulator`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.hw.device import FPGADevice
from repro.hw.ip import IPConfig, IPInstance
from repro.hw.ip_library import IPLibrary, default_ip_library
from repro.hw.memory import OnChipBufferPlan, plan_on_chip_buffers
from repro.hw.resource import ResourceVector
from repro.hw.tiling import TileConfig, choose_tile_config
from repro.hw.workload import LayerWorkload, NetworkWorkload
from repro.nn.quantization import QuantizationScheme


#: LUT / FF overhead of the top-level control FSM, AXI interfaces and
#: multiplexers (the ``Res_ctl`` term of Eq. 5).
CONTROL_OVERHEAD = ResourceVector(lut=3600.0, ff=5200.0, dsp=0.0, bram=4.0)


@dataclass
class BundleHardware:
    """The hardware realisation of one Bundle: its IP instances in order."""

    instances: list[IPInstance]
    signature: str = ""

    def resources(
        self, tile_width: int, max_in_channels: int, max_out_channels: int,
        overhead: ResourceVector | None = None,
    ) -> ResourceVector:
        """Bundle resource usage: sum of IP resources plus glue logic (Eq. 1)."""
        total = ResourceVector.zero()
        for instance in self.instances:
            total = total + instance.resources(tile_width, max_in_channels, max_out_channels)
        # Gamma_i: multiplexing / control overhead that grows with the number
        # of IP instances stitched together.
        glue = overhead or ResourceVector(
            lut=420.0 * len(self.instances), ff=600.0 * len(self.instances), dsp=0.0, bram=0.0
        )
        return total + glue

    def instance_for(self, layer: LayerWorkload) -> IPInstance:
        """The IP instance that executes ``layer``; raises if none matches."""
        for instance in self.instances:
            if instance.template.supports(layer):
                return instance
        raise KeyError(f"No IP instance in the bundle supports layer {layer.kind} k={layer.kernel}")


def build_bundle_hardware(
    workload: NetworkWorkload,
    config: IPConfig,
    library: Optional[IPLibrary] = None,
) -> BundleHardware:
    """Instantiate one IP per distinct template the workload needs.

    Shared by :meth:`TileArchAccelerator.build` and the batched estimator
    (:mod:`repro.hw.batch`), which must agree exactly on the instance order —
    :meth:`BundleHardware.instance_for` resolves layers to the *first*
    supporting instance, so the order is semantically load-bearing.
    """
    library = library or default_ip_library()
    instances: list[IPInstance] = []
    seen: set[str] = set()
    signature_parts: list[str] = []
    for layer in workload.layers:
        template = library.template_for_layer(layer)
        if template.name in seen:
            continue
        seen.add(template.name)
        instances.append(
            template.instantiate(config, name=f"{template.name}_p{config.parallel_factor}")
        )
        if template.kind in ("conv", "dwconv"):
            signature_parts.append(template.name)
    return BundleHardware(instances=instances, signature="+".join(signature_parts))


@dataclass
class TileArchAccelerator:
    """A Tile-Arch accelerator configured for one network workload.

    Attributes
    ----------
    workload:
        The DNN the accelerator executes.
    device:
        Target FPGA device.
    bundle_hw:
        IP instances shared by all Bundle repetitions (folded structure).
    tile:
        Common tile size used across layers.
    buffers:
        On-chip buffer plan.
    clock_mhz:
        Accelerator clock frequency.
    """

    workload: NetworkWorkload
    device: FPGADevice
    bundle_hw: BundleHardware
    tile: TileConfig
    buffers: OnChipBufferPlan
    clock_mhz: float

    # -------------------------------------------------------------- building
    @classmethod
    def build(
        cls,
        workload: NetworkWorkload,
        device: FPGADevice,
        parallel_factor: int = 8,
        quantization: Optional[QuantizationScheme] = None,
        library: Optional[IPLibrary] = None,
        tile: Optional[TileConfig] = None,
        clock_mhz: Optional[float] = None,
    ) -> "TileArchAccelerator":
        """Assemble an accelerator for ``workload`` on ``device``.

        One IP instance is created per distinct IP template required by the
        workload (layer-level IP reuse); all instances share the same
        parallel factor and quantization scheme so that BRAM buffers can be
        reused across IPs, as the paper's DNN initialization prescribes.
        """
        library = library or default_ip_library()
        quantization = quantization or QuantizationScheme(
            f"w{workload.weight_bits}a{workload.feature_bits}",
            workload.weight_bits,
            workload.feature_bits,
        )
        config = IPConfig(parallel_factor=parallel_factor, quantization=quantization)
        bundle_hw = build_bundle_hardware(workload, config, library)

        tile = tile or choose_tile_config(workload, device)
        max_kernel = max((l.kernel for l in workload.layers if l.is_compute), default=3)
        max_in = max((l.in_channels for l in workload.layers if l.is_compute), default=workload.max_channels)
        max_out = max((l.out_channels for l in workload.layers if l.is_compute), default=workload.max_channels)
        weight_group = max(int(math.sqrt(parallel_factor)), 4)
        buffers = plan_on_chip_buffers(
            tile.tile_height,
            tile.tile_width,
            workload.max_channels,
            workload.feature_bits,
            workload.weight_bits,
            max_kernel,
            max_in,
            max_out,
            weight_group=weight_group,
        )
        return cls(
            workload=workload,
            device=device,
            bundle_hw=bundle_hw,
            tile=tile,
            buffers=buffers,
            clock_mhz=clock_mhz or device.default_clock_mhz,
        )

    # ------------------------------------------------------------- resources
    def resources(self) -> ResourceVector:
        """Total resource usage of the accelerator (Eq. 5)."""
        max_in = max((l.in_channels for l in self.workload.layers if l.is_compute),
                     default=self.workload.max_channels)
        max_out = max((l.out_channels for l in self.workload.layers if l.is_compute),
                      default=self.workload.max_channels)
        bundle_res = self.bundle_hw.resources(self.tile.tile_width, max_in, max_out)
        return bundle_res + self.buffers.as_resource() + CONTROL_OVERHEAD

    def utilization(self):
        """Resource usage as a fraction of the device capacity."""
        return self.device.utilization(self.resources())

    def fits(self, margin: float = 1.0) -> bool:
        """True when the accelerator fits on the device."""
        return self.device.fits(self.resources(), margin=margin)

    # ----------------------------------------------------------------- stats
    def tiles_per_layer(self, layer: LayerWorkload) -> int:
        """Number of tiles processed for one layer (IP reuse count per layer)."""
        return self.tile.num_tiles(layer.out_height, layer.out_width)

    def ip_reuse_counts(self) -> dict[str, int]:
        """Total number of invocations of each IP instance across the DNN.

        This is the ``reuse_j`` quantity of Eq. 3: the number of (layer, tile)
        pairs served by each IP instance.
        """
        counts: dict[str, int] = {inst.name: 0 for inst in self.bundle_hw.instances}
        for layer in self.workload.layers:
            instance = self.bundle_hw.instance_for(layer)
            counts[instance.name] += self.tiles_per_layer(layer)
        return counts

    def max_parallel_factor(self) -> int:
        """Largest PF (shared by all instances) that still fits on the device.

        Mirrors the paper's initialization rule: "PF is set as the maximum
        value that can fully utilize available resources" under the chosen
        quantization scheme.
        """
        best = 1
        pf = self.bundle_hw.instances[0].parallel_factor if self.bundle_hw.instances else 1
        quant = self.bundle_hw.instances[0].quantization if self.bundle_hw.instances else None
        library = default_ip_library()
        candidate = 1
        while candidate <= 512:
            acc = TileArchAccelerator.build(
                self.workload, self.device, parallel_factor=candidate,
                quantization=quant, library=library, tile=self.tile, clock_mhz=self.clock_mhz,
            )
            if acc.fits():
                best = candidate
            else:
                break
            candidate *= 2
        del pf
        return best

    def describe(self) -> str:
        """Readable multi-line description of the accelerator configuration."""
        util = self.utilization()
        lines = [
            f"Tile-Arch accelerator for '{self.workload.name}' on {self.device.name}",
            f"  clock            : {self.clock_mhz:.0f} MHz",
            f"  tile size        : {self.tile}",
            f"  IP instances     : {', '.join(i.name for i in self.bundle_hw.instances)}",
            f"  quantization     : w{self.workload.weight_bits}/a{self.workload.feature_bits}",
            f"  LUT/FF/DSP/BRAM  : "
            f"{util.lut:.1%} / {util.ff:.1%} / {util.dsp:.1%} / {util.bram:.1%}",
        ]
        return "\n".join(lines)
