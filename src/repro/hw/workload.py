"""Layer and network workload descriptions.

The hardware models do not operate on trained numpy models directly; they
consume lightweight *workload* descriptions of the computation: for every
layer, its type, kernel size, channel counts, spatial dimensions and stride.
Workloads can be built either from a :class:`repro.nn.model.Sequential`
instance (:func:`workload_from_model`) or directly by the co-design engine
from a design-point description without ever instantiating weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

#: Computational layer kinds known to the IP library.
COMPUTE_KINDS = ("conv", "dwconv")
#: Auxiliary layer kinds (cheap on the accelerator but still scheduled).
AUX_KINDS = ("pool", "activation", "norm", "head")


@dataclass(frozen=True)
class LayerWorkload:
    """One layer's workload.

    Attributes
    ----------
    kind:
        One of ``conv``, ``dwconv``, ``pool``, ``activation``, ``norm``,
        ``head``.
    kernel:
        Square kernel size (1 for activations / norm).
    in_channels, out_channels:
        Channel counts.
    in_height, in_width:
        Input spatial dimensions.
    stride:
        Spatial stride (2 for down-sampling layers).
    bundle_index:
        Index of the Bundle repetition this layer belongs to (used for
        inter-bundle data-movement accounting); ``-1`` for head/tail layers.
    """

    kind: str
    kernel: int
    in_channels: int
    out_channels: int
    in_height: int
    in_width: int
    stride: int = 1
    bundle_index: int = -1

    def __post_init__(self) -> None:
        if self.kind not in COMPUTE_KINDS + AUX_KINDS:
            raise ValueError(f"Unknown layer kind '{self.kind}'")
        if self.kernel <= 0 or self.stride <= 0:
            raise ValueError("kernel and stride must be positive")
        if min(self.in_channels, self.out_channels, self.in_height, self.in_width) <= 0:
            raise ValueError("Channel counts and spatial dimensions must be positive")

    # ------------------------------------------------------------ geometry
    @property
    def out_height(self) -> int:
        return max(self.in_height // self.stride, 1)

    @property
    def out_width(self) -> int:
        return max(self.in_width // self.stride, 1)

    @property
    def output_shape(self) -> tuple[int, int, int]:
        return (self.out_channels, self.out_height, self.out_width)

    # ------------------------------------------------------------- workload
    @property
    def macs(self) -> int:
        """Multiply-accumulate operations for this layer."""
        out_pixels = self.out_height * self.out_width
        if self.kind == "conv":
            return self.kernel**2 * self.in_channels * self.out_channels * out_pixels
        if self.kind == "dwconv":
            return self.kernel**2 * self.in_channels * out_pixels
        if self.kind == "pool":
            return self.kernel**2 * self.in_channels * out_pixels
        if self.kind in ("activation", "norm"):
            return self.in_channels * self.in_height * self.in_width
        if self.kind == "head":
            return self.in_channels * self.out_channels * out_pixels
        return 0

    @property
    def params(self) -> int:
        """Trainable parameter count of this layer."""
        if self.kind == "conv" or self.kind == "head":
            return self.kernel**2 * self.in_channels * self.out_channels + self.out_channels
        if self.kind == "dwconv":
            return self.kernel**2 * self.in_channels + self.in_channels
        if self.kind == "norm":
            return 2 * self.in_channels
        return 0

    @property
    def input_elements(self) -> int:
        return self.in_channels * self.in_height * self.in_width

    @property
    def output_elements(self) -> int:
        c, h, w = self.output_shape
        return c * h * w

    @property
    def is_compute(self) -> bool:
        """True for layers that map to a multiply-accumulate IP."""
        return self.kind in COMPUTE_KINDS or self.kind == "head"

    @property
    def ip_key(self) -> str:
        """Key of the IP template that executes this layer."""
        if self.kind == "conv" or self.kind == "head":
            return f"conv{self.kernel}x{self.kernel}" if self.kind == "conv" else "conv1x1"
        if self.kind == "dwconv":
            return f"dwconv{self.kernel}x{self.kernel}"
        if self.kind == "pool":
            return "pool"
        if self.kind == "norm":
            return "norm"
        return "activation"


@dataclass
class NetworkWorkload:
    """Workload of an entire DNN plus quantization metadata.

    Attributes
    ----------
    layers:
        Ordered layer workloads.
    input_shape:
        Network input ``(C, H, W)``.
    weight_bits, feature_bits:
        Quantization bit widths used on the accelerator.
    name:
        Identifier used in reports and generated code.
    bundle_signature:
        Composition string of the building block (empty for hand-built nets).
    """

    layers: list[LayerWorkload]
    input_shape: tuple[int, int, int]
    weight_bits: int = 16
    feature_bits: int = 16
    name: str = "dnn"
    bundle_signature: str = ""

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("A workload needs at least one layer")

    # ------------------------------------------------------------ aggregate
    def __iter__(self) -> Iterator[LayerWorkload]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def total_params(self) -> int:
        return sum(layer.params for layer in self.layers)

    @property
    def compute_depth(self) -> int:
        """Number of compute (conv-like) layers."""
        return sum(1 for layer in self.layers if layer.is_compute)

    @property
    def max_channels(self) -> int:
        return max(max(l.in_channels, l.out_channels) for l in self.layers)

    @property
    def num_downsamples(self) -> int:
        return sum(1 for layer in self.layers if layer.stride > 1)

    @property
    def num_bundles(self) -> int:
        """Number of Bundle repetitions present in the workload."""
        indices = {l.bundle_index for l in self.layers if l.bundle_index >= 0}
        return len(indices)

    def layers_in_bundle(self, bundle_index: int) -> list[LayerWorkload]:
        """Layers belonging to one Bundle repetition."""
        return [l for l in self.layers if l.bundle_index == bundle_index]

    def bundle_indices(self) -> list[int]:
        """Sorted list of bundle repetition indices present in the workload."""
        return sorted({l.bundle_index for l in self.layers if l.bundle_index >= 0})

    def ip_keys(self) -> list[str]:
        """Distinct IP template keys required to execute this workload."""
        seen: list[str] = []
        for layer in self.layers:
            key = layer.ip_key
            if key not in seen:
                seen.append(key)
        return seen

    def weight_bytes(self) -> float:
        """Total weight storage in bytes after quantization."""
        return self.total_params * self.weight_bits / 8.0

    def feature_bytes(self) -> float:
        """Total feature-map traffic (inputs + outputs of every layer) in bytes."""
        elements = sum(l.input_elements + l.output_elements for l in self.layers)
        return elements * self.feature_bits / 8.0


def workload_from_model(
    model,
    input_shape: tuple[int, int, int],
    weight_bits: int = 16,
    feature_bits: int = 16,
    name: Optional[str] = None,
) -> NetworkWorkload:
    """Build a :class:`NetworkWorkload` from a ``repro.nn`` Sequential model.

    Only layer types known to the IP library are mapped; reshape-style layers
    are skipped because they are free on the accelerator.
    """
    layers: list[LayerWorkload] = []
    shape = input_shape
    for layer in model:
        c, h, w = shape
        layer_type = getattr(layer, "layer_type", "generic")
        if layer_type == "conv":
            layers.append(LayerWorkload(
                kind="conv", kernel=layer.kernel_size, in_channels=layer.in_channels,
                out_channels=layer.out_channels, in_height=h, in_width=w, stride=layer.stride,
            ))
        elif layer_type == "dwconv":
            layers.append(LayerWorkload(
                kind="dwconv", kernel=layer.kernel_size, in_channels=c,
                out_channels=c, in_height=h, in_width=w, stride=layer.stride,
            ))
        elif layer_type == "pool":
            kernel = getattr(layer, "kernel_size", max(h, w))
            stride = getattr(layer, "stride", kernel)
            layers.append(LayerWorkload(
                kind="pool", kernel=kernel, in_channels=c, out_channels=c,
                in_height=h, in_width=w, stride=stride,
            ))
        elif layer_type == "norm":
            layers.append(LayerWorkload(
                kind="norm", kernel=1, in_channels=c, out_channels=c,
                in_height=h, in_width=w,
            ))
        elif layer_type == "activation":
            layers.append(LayerWorkload(
                kind="activation", kernel=1, in_channels=c, out_channels=c,
                in_height=h, in_width=w,
            ))
        elif layer_type == "head":
            layers.append(LayerWorkload(
                kind="head", kernel=1, in_channels=c, out_channels=4,
                in_height=h, in_width=w,
            ))
        # dense / flatten / dropout are either absent from searched DNNs or
        # negligible on the accelerator; they are intentionally not mapped.
        shape = layer.output_shape(shape)
    return NetworkWorkload(
        layers=layers,
        input_shape=input_shape,
        weight_bits=weight_bits,
        feature_bits=feature_bits,
        name=name or getattr(model, "name", "dnn"),
    )
