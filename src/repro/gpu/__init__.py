"""Embedded-GPU baseline substrate.

The GPU entries in Table 2 run Yolo / Tiny-Yolo on an embedded GPU clocked
at 854 MHz (a Jetson-TX2-class device).  This package provides a roofline
latency model and a power model for such a device so the GPU comparison rows
can be re-derived instead of only quoted.
"""

from repro.gpu.device import (
    GPUDevice,
    JETSON_TX2,
    get_gpu_device,
    gpu_device_slug,
    list_gpu_devices,
)
from repro.gpu.estimator import GPURooflineEngine
from repro.gpu.latency import GPULatencyModel
from repro.gpu.power import GPUPowerModel

__all__ = [
    "GPUDevice",
    "GPULatencyModel",
    "GPUPowerModel",
    "GPURooflineEngine",
    "JETSON_TX2",
    "get_gpu_device",
    "gpu_device_slug",
    "list_gpu_devices",
]
