"""Roofline latency model for embedded GPU DNN inference."""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import GPUDevice
from repro.hw.workload import NetworkWorkload


@dataclass
class GPULatencyModel:
    """Roofline-style latency estimate.

    For every layer, the latency is the maximum of the compute-bound time
    (MACs over effective throughput) and the memory-bound time (bytes moved
    over bandwidth), plus a fixed per-layer kernel-launch overhead — the
    dominant costs of embedded-GPU inference frameworks.

    Parameters
    ----------
    device:
        The GPU device.
    compute_efficiency:
        Fraction of peak MAC throughput achieved by convolution kernels.
    memory_efficiency:
        Fraction of peak DRAM bandwidth achieved.
    kernel_launch_us:
        Per-layer kernel launch / synchronisation overhead in microseconds.
    """

    device: GPUDevice
    compute_efficiency: float = 0.42
    memory_efficiency: float = 0.60
    kernel_launch_us: float = 55.0

    def __post_init__(self) -> None:
        if not 0.0 < self.compute_efficiency <= 1.0:
            raise ValueError("compute_efficiency must be in (0, 1]")
        if not 0.0 < self.memory_efficiency <= 1.0:
            raise ValueError("memory_efficiency must be in (0, 1]")

    def layer_latency_ms(self, macs: float, traffic_bytes: float) -> float:
        """Latency of one layer given its MACs and memory traffic."""
        compute_s = macs / (self.device.peak_macs_per_second * self.compute_efficiency)
        memory_s = traffic_bytes / (
            self.device.memory_bandwidth_gbps * 1e9 * self.memory_efficiency
        )
        return (max(compute_s, memory_s) + self.kernel_launch_us * 1e-6) * 1e3

    def latency_ms(self, workload: NetworkWorkload, precision_bytes: float = 4.0) -> float:
        """End-to-end single-frame latency for ``workload``."""
        total = 0.0
        for layer in workload.layers:
            if layer.kind in ("activation", "norm"):
                continue  # fused into the preceding kernel by inference engines
            traffic = (layer.input_elements + layer.output_elements + layer.params) * precision_bytes
            total += self.layer_latency_ms(layer.macs, traffic)
        return total

    def fps(self, workload: NetworkWorkload, precision_bytes: float = 4.0) -> float:
        """Throughput in frames per second."""
        latency = self.latency_ms(workload, precision_bytes)
        return 1000.0 / latency if latency > 0 else float("inf")
