"""AutoHLS-shaped estimation engine over the GPU roofline model.

:class:`GPURooflineEngine` gives the GPU backend the same engine surface the
FPGA backend gets from :class:`repro.core.auto_hls.AutoHLS`: a scalar
``estimate(config)``, a vectorized ``estimate_batch(configs)`` that
:func:`repro.search.cache.resolve_batch_estimator` discovers, and the
``device`` / ``clock_mhz`` / ``coefficients`` attributes the sweep plumbing
reads.  There is no ``fit_models`` and no ``generate``: the roofline model is
fit-free and produces no HLS artifacts, so ``coefficients`` stays ``None``
and :meth:`repro.core.auto_dnn.AutoDNN.refine_with_hls` passes candidates
through untouched.

Bit-identity contract (mirrors :class:`repro.hw.batch.BatchedDNNEstimator`):
``estimate_batch`` must return exactly what a scalar loop would.  The scalar
model accumulates per-layer latencies left to right, so the batch path adds
one *layer column* at a time across the whole batch — elementwise IEEE ops in
the scalar order — and pads shorter networks with exact ``+0.0`` terms.
Journals and disk caches therefore do not depend on which path ran.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

import repro.telemetry as telemetry
from repro.gpu.device import GPUDevice
from repro.gpu.latency import GPULatencyModel
from repro.hw.analytical import PerformanceEstimate
from repro.hw.resource import ResourceVector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.dnn_config import DNNConfig

#: Layer kinds fused into the preceding kernel by GPU inference engines
#: (must match :meth:`GPULatencyModel.latency_ms`).
_FUSED_KINDS = ("activation", "norm")

#: Default inference precision: the Table 2 GPU baselines run FP16.
DEFAULT_PRECISION_BYTES = 2.0


class GPURooflineEngine:
    """Scalar + batch DNN-config estimation on a GPU roofline model."""

    def __init__(
        self,
        device: GPUDevice,
        clock_mhz: Optional[float] = None,
        precision_bytes: float = DEFAULT_PRECISION_BYTES,
        latency_model: Optional[GPULatencyModel] = None,
    ) -> None:
        if clock_mhz is not None:
            clock_mhz = device.validate_clock(clock_mhz)
        self.device = device
        self.clock_mhz = device.clock_mhz
        if precision_bytes <= 0:
            raise ValueError("precision_bytes must be positive")
        self.precision_bytes = float(precision_bytes)
        self.latency_model = (
            latency_model if latency_model is not None else GPULatencyModel(device)
        )
        # Fit-free: kept for engine-interface parity with AutoHLS (the sweep
        # prep/apply path reads and writes this attribute).
        self.coefficients = None

    # -------------------------------------------------------------- fingerprint
    def fingerprint(self) -> str:
        """Stable fingerprint of the roofline constants and precision.

        Plays the role coefficient fingerprints play on the FPGA side:
        namespacing the persistent disk cache so estimates from different
        model parameterizations never share a slot.
        """
        model = self.latency_model
        return (
            f"gpu-roofline-ce{model.compute_efficiency:g}"
            f"-me{model.memory_efficiency:g}"
            f"-kl{model.kernel_launch_us:g}us"
            f"-pb{self.precision_bytes:g}"
        )

    # --------------------------------------------------------------- estimation
    def estimate(self, config: "DNNConfig") -> PerformanceEstimate:
        """Roofline latency of one config; FPGA resources are all zero."""
        workload = config.to_workload()
        latency_ms = self.latency_model.latency_ms(
            workload, precision_bytes=self.precision_bytes
        )
        reg = telemetry.registry()
        if reg is not None:
            reg.counter("gpu.estimate.count").inc()
        return PerformanceEstimate(latency_ms=latency_ms, resources=ResourceVector())

    def estimate_batch(self, configs: Sequence["DNNConfig"]) -> list[PerformanceEstimate]:
        """Vectorized estimation, bit-identical to the scalar loop."""
        configs = list(configs)
        if not configs:
            return []
        model = self.latency_model
        rows: list[list[tuple[int, float]]] = []
        for config in configs:
            workload = config.to_workload()
            row = []
            for layer in workload.layers:
                if layer.kind in _FUSED_KINDS:
                    continue
                traffic = (
                    layer.input_elements + layer.output_elements + layer.params
                ) * self.precision_bytes
                row.append((layer.macs, traffic))
            rows.append(row)
        count = len(configs)
        width = max(len(row) for row in rows)
        totals = np.zeros(count, dtype=np.float64)
        if width:
            macs = np.zeros((count, width), dtype=np.float64)
            traffic = np.zeros((count, width), dtype=np.float64)
            valid = np.zeros((count, width), dtype=bool)
            for i, row in enumerate(rows):
                for j, (layer_macs, layer_traffic) in enumerate(row):
                    macs[i, j] = layer_macs
                    traffic[i, j] = layer_traffic
                    valid[i, j] = True
            compute_denom = model.device.peak_macs_per_second * model.compute_efficiency
            memory_denom = model.device.memory_bandwidth_gbps * 1e9 * model.memory_efficiency
            launch_s = model.kernel_launch_us * 1e-6
            per_layer_ms = (
                np.maximum(macs / compute_denom, traffic / memory_denom) + launch_s
            ) * 1e3
            # Padding slots must contribute an exact +0.0 (the launch overhead
            # above made them non-zero), preserving each config's scalar
            # left-to-right accumulation bit for bit.
            per_layer_ms[~valid] = 0.0
            for j in range(width):
                totals = totals + per_layer_ms[:, j]
        reg = telemetry.registry()
        if reg is not None:
            reg.counter("gpu.estimate.count").inc(count)
        return [
            PerformanceEstimate(latency_ms=float(total), resources=ResourceVector())
            for total in totals
        ]
