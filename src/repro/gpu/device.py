"""Embedded GPU device descriptions."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUDevice:
    """An embedded GPU and its board-level characteristics.

    Attributes
    ----------
    name:
        Device name.
    clock_mhz:
        GPU core clock.
    cuda_cores:
        Number of CUDA cores (2 FLOPs per core per cycle for FMA).
    memory_bandwidth_gbps:
        DRAM bandwidth in GB/s.
    idle_power_w:
        Board idle power.
    max_power_w:
        Board power at full load.
    """

    name: str
    clock_mhz: float
    cuda_cores: int
    memory_bandwidth_gbps: float
    idle_power_w: float
    max_power_w: float

    def __post_init__(self) -> None:
        if self.clock_mhz <= 0 or self.cuda_cores <= 0:
            raise ValueError("clock and core counts must be positive")
        if self.max_power_w <= self.idle_power_w:
            raise ValueError("max_power_w must exceed idle_power_w")

    @property
    def peak_macs_per_second(self) -> float:
        """Peak multiply-accumulate throughput (one MAC per core per cycle)."""
        return self.cuda_cores * self.clock_mhz * 1e6

    @property
    def peak_gflops(self) -> float:
        """Peak single-precision GFLOPs (2 FLOPs per MAC)."""
        return 2.0 * self.peak_macs_per_second / 1e9


#: Jetson-TX2-class embedded GPU at the contest clock of 854 MHz.
JETSON_TX2 = GPUDevice(
    name="Jetson TX2 (854 MHz)",
    clock_mhz=854.0,
    cuda_cores=256,
    memory_bandwidth_gbps=58.3,
    idle_power_w=4.5,
    max_power_w=15.0,
)
