"""Embedded GPU device descriptions."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUDevice:
    """An embedded GPU and its board-level characteristics.

    Attributes
    ----------
    name:
        Device name.
    clock_mhz:
        GPU core clock.
    cuda_cores:
        Number of CUDA cores (2 FLOPs per core per cycle for FMA).
    memory_bandwidth_gbps:
        DRAM bandwidth in GB/s.
    idle_power_w:
        Board idle power.
    max_power_w:
        Board power at full load.
    """

    name: str
    clock_mhz: float
    cuda_cores: int
    memory_bandwidth_gbps: float
    idle_power_w: float
    max_power_w: float

    def __post_init__(self) -> None:
        if self.clock_mhz <= 0 or self.cuda_cores <= 0:
            raise ValueError("clock and core counts must be positive")
        if self.max_power_w <= self.idle_power_w:
            raise ValueError("max_power_w must exceed idle_power_w")

    @property
    def peak_macs_per_second(self) -> float:
        """Peak multiply-accumulate throughput (one MAC per core per cycle)."""
        return self.cuda_cores * self.clock_mhz * 1e6

    @property
    def peak_gflops(self) -> float:
        """Peak single-precision GFLOPs (2 FLOPs per MAC)."""
        return 2.0 * self.peak_macs_per_second / 1e9

    def validate_clock(self, clock_mhz: float) -> float:
        """GPU targets run at a fixed board clock; only that clock is valid.

        Mirrors :meth:`repro.hw.device.FPGADevice.validate_clock` so the
        sweep grid's ``--clocks`` axis fails loudly instead of silently
        mis-modelling a clock the roofline constants were not derived for.
        """
        if clock_mhz <= 0:
            raise ValueError("clock_mhz must be positive")
        if float(clock_mhz) != self.clock_mhz:
            raise ValueError(
                f"{self.name} runs at a fixed {self.clock_mhz:g} MHz clock; "
                f"cannot sweep {clock_mhz:g} MHz"
            )
        return self.clock_mhz


#: Jetson-TX2-class embedded GPU at the contest clock of 854 MHz.
JETSON_TX2 = GPUDevice(
    name="Jetson TX2 (854 MHz)",
    clock_mhz=854.0,
    cuda_cores=256,
    memory_bandwidth_gbps=58.3,
    idle_power_w=4.5,
    max_power_w=15.0,
)

#: Slug-keyed catalogue of the known GPU targets (the slug is what target
#: specs such as ``gpu:jetson-tx2`` name; the display name stays human).
_DEVICES: dict[str, GPUDevice] = {
    "jetson-tx2": JETSON_TX2,
}


def get_gpu_device(name: str) -> GPUDevice:
    """Look up a GPU device by its slug (case-insensitive)."""
    try:
        return _DEVICES[name.lower()]
    except KeyError:
        raise KeyError(
            f"Unknown GPU device '{name}'. Available: {sorted(_DEVICES)}"
        ) from None


def list_gpu_devices() -> list[str]:
    """Slugs of all catalogued GPU devices, sorted."""
    return sorted(_DEVICES)


def gpu_device_slug(device: GPUDevice) -> str:
    """The catalogue slug of a device (inverse of :func:`get_gpu_device`)."""
    for slug, known in _DEVICES.items():
        if known == device:
            return slug
    raise KeyError(f"GPU device {device.name!r} is not in the catalogue")
