"""Power / energy model for embedded GPU inference."""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import GPUDevice
from repro.hw.power import EnergyReport


@dataclass
class GPUPowerModel:
    """Board power as idle power plus load-dependent dynamic power.

    Parameters
    ----------
    device:
        The GPU device.
    utilization:
        Average GPU utilization while running inference (DNN inference on
        embedded GPUs rarely saturates the device).
    """

    device: GPUDevice
    utilization: float = 0.72

    def __post_init__(self) -> None:
        if not 0.0 < self.utilization <= 1.0:
            raise ValueError("utilization must be in (0, 1]")

    def board_power_w(self) -> float:
        """Board power while running inference."""
        dynamic_range = self.device.max_power_w - self.device.idle_power_w
        return self.device.idle_power_w + self.utilization * dynamic_range

    def energy_report(
        self,
        latency_ms: float,
        num_frames: int = 50_000,
        overhead_ms_per_frame: float = 0.0,
    ) -> EnergyReport:
        """Energy accounting for a ``num_frames`` evaluation run."""
        if latency_ms <= 0:
            raise ValueError("latency_ms must be positive")
        power = self.board_power_w()
        frame_time_ms = latency_ms + overhead_ms_per_frame
        fps = 1000.0 / frame_time_ms
        total_time_s = frame_time_ms * num_frames / 1000.0
        total_energy_j = power * total_time_s
        return EnergyReport(
            power_w=power,
            latency_ms=latency_ms,
            fps=fps,
            total_energy_kj=total_energy_j / 1000.0,
            energy_per_frame_j=total_energy_j / num_frames,
            num_frames=num_frames,
        )
