"""Process-based multi-device sweep engine with resilient scheduling.

The sweep subsystem scales the co-design search along the axes the paper
leaves open — "devices with more resources", alternative exploration
strategies, several latency targets, clock frequencies and utilization
limits at once:

* :mod:`repro.sweep.runner` — :func:`build_grid` / :class:`SweepRunner`:
  fan a (device x clock x utilization x strategy x latency-target) grid out
  across worker processes under a two-phase schedule: per-device
  preparation (model fit + bundle selection, once per device, shipped as a
  :class:`PreparedDevice`) followed by cost-ordered work-stealing execution
  with per-task timeout, bounded retry and structured
  :class:`SweepFailure` records — one archivable journal per task,
* :mod:`repro.sweep.disk_cache` — :class:`DiskEvaluationCache`: JSON-lines
  estimator memoization that persists across processes and runs, layered
  under the in-memory :class:`~repro.search.cache.EvaluationCache`, with
  :func:`compact_cache_dir` compaction / GC (dedup, corrupt-line repair,
  age and size eviction),
* :mod:`repro.sweep.compare` — :func:`compare`: journal-driven
  cross-strategy / cross-device report (text and JSON).

Quickstart::

    from repro.sweep import SweepRunner, build_grid, compare

    tasks = build_grid("pynq-z1,ultra96", "scd,random", [20.0, 30.0])
    result = SweepRunner(tasks, workers=4, cache_dir=".sweep-cache",
                         timeout_s=300.0, retries=1).run()
    print(result.summary())          # includes any failed cells
    print(compare(result).render())
"""

from repro.sweep.compare import DeviceWinner, StrategySummary, SweepComparison, compare
from repro.sweep.disk_cache import (
    CacheDirStats,
    CompactionReport,
    DiskEvaluationCache,
    NamespaceStats,
    cache_dir_stats,
    coefficients_fingerprint,
    compact_cache_dir,
)
from repro.sweep.runner import (
    PreparedDevice,
    SweepFailure,
    SweepOutcome,
    SweepResult,
    SweepRunner,
    SweepTask,
    build_grid,
    expected_cost,
    prepare_device,
    run_sweep_task,
)

__all__ = [
    "SweepTask",
    "SweepOutcome",
    "SweepFailure",
    "SweepResult",
    "SweepRunner",
    "PreparedDevice",
    "build_grid",
    "expected_cost",
    "prepare_device",
    "run_sweep_task",
    "DiskEvaluationCache",
    "CacheDirStats",
    "NamespaceStats",
    "CompactionReport",
    "cache_dir_stats",
    "coefficients_fingerprint",
    "compact_cache_dir",
    "SweepComparison",
    "StrategySummary",
    "DeviceWinner",
    "compare",
]
