"""Process-based multi-device sweep engine with resilient scheduling.

The sweep subsystem scales the co-design search along the axes the paper
leaves open — "devices with more resources", alternative exploration
strategies, several latency targets, clock frequencies and utilization
limits at once:

* :mod:`repro.sweep.runner` — :func:`build_grid` / :class:`SweepRunner`:
  fan a (target x clock x utilization x strategy x latency-target) grid
  out across worker processes under a two-phase schedule: per-target
  preparation (model fit + bundle selection on the FPGA backend, fit-free
  prep on the GPU one; once per target, shipped as a
  :class:`PreparedTarget`) followed by cost-ordered work-stealing
  execution with per-task timeout, bounded retry and structured
  :class:`SweepFailure` records — one archivable journal per task.
  Targets span backends (see :mod:`repro.backend`): ``fpga:pynq-z1`` and
  ``gpu:jetson-tx2`` mix in one grid,
* :mod:`repro.sweep.disk_cache` — :class:`DiskEvaluationCache`: JSON-lines
  estimator memoization that persists across processes and runs, layered
  under the in-memory :class:`~repro.search.cache.EvaluationCache`, with
  :func:`compact_cache_dir` compaction / GC (dedup, corrupt-line repair,
  age and size eviction),
* :mod:`repro.sweep.checkpoint` — incremental sweep checkpoint
  (``_checkpoint.jsonl``, appended atomically as each cell settles) and
  the timestamped ``_timings.json`` cost-hint sidecar; powers
  ``SweepRunner(resume_from=...)`` / ``repro-codesign sweep --resume``,
* :mod:`repro.sweep.compare` — :func:`compare`: journal-driven
  cross-strategy / cross-device report (text and JSON), and
  :func:`diff_results`: checkpoint-aware per-uid delta table between two
  saved runs.

Cross-machine distribution lives in :mod:`repro.shard`: pass
``SweepRunner(transport=repro.shard.CoordinatorTransport(...))`` and the
same grid is leased to remote workers over stdlib HTTP, checkpointed into
the same ``_checkpoint.jsonl``, byte-identical to a local run.

Quickstart::

    from repro.sweep import SweepRunner, build_grid, compare

    tasks = build_grid("pynq-z1,ultra96", "scd,random", [20.0, 30.0])
    result = SweepRunner(tasks, workers=4, cache_dir=".sweep-cache",
                         timeout_s=300.0, retries=1).run()
    print(result.summary())          # includes any failed cells
    print(compare(result).render())

    # A sweep that died mid-run restarts from its checkpoint and re-runs
    # only the failed / missing cells (journals reused byte-identically):
    result = SweepRunner(tasks, workers=4, cache_dir=".sweep-cache",
                         resume_from=".sweep-cache/_checkpoint.jsonl").run()
"""

from repro.sweep.checkpoint import (
    CHECKPOINT_FILENAME,
    CheckpointStatus,
    CheckpointWriter,
    checkpoint_cells,
    compact_checkpoint,
    compact_timings,
    load_checkpoint,
    load_timings,
    save_timings,
    scan_checkpoint,
)
from repro.sweep.compare import (
    DeviceWinner,
    DiffRow,
    ParetoPoint,
    StrategySummary,
    SweepComparison,
    SweepDiff,
    compare,
    diff_results,
    load_run,
)
from repro.sweep.disk_cache import (
    CacheDirStats,
    CompactionReport,
    DiskEvaluationCache,
    NamespaceStats,
    append_cache_records,
    cache_dir_stats,
    coefficients_fingerprint,
    compact_cache_dir,
    read_cache_records,
)
from repro.sweep.spec import SweepSpec
from repro.sweep.runner import (
    PreparedDevice,
    PreparedTarget,
    SweepFailure,
    SweepOutcome,
    SweepResult,
    SweepRunner,
    SweepTask,
    build_grid,
    expected_cost,
    prepare_device,
    prepare_target,
    run_sweep_task,
)

__all__ = [
    "SweepTask",
    "SweepOutcome",
    "SweepFailure",
    "SweepResult",
    "SweepRunner",
    "PreparedDevice",
    "PreparedTarget",
    "build_grid",
    "expected_cost",
    "prepare_device",
    "prepare_target",
    "run_sweep_task",
    "DiskEvaluationCache",
    "CacheDirStats",
    "NamespaceStats",
    "CompactionReport",
    "cache_dir_stats",
    "coefficients_fingerprint",
    "compact_cache_dir",
    "read_cache_records",
    "append_cache_records",
    "SweepSpec",
    "CHECKPOINT_FILENAME",
    "CheckpointStatus",
    "CheckpointWriter",
    "load_checkpoint",
    "scan_checkpoint",
    "checkpoint_cells",
    "compact_checkpoint",
    "load_timings",
    "save_timings",
    "compact_timings",
    "SweepComparison",
    "StrategySummary",
    "DeviceWinner",
    "ParetoPoint",
    "compare",
    "SweepDiff",
    "DiffRow",
    "diff_results",
    "load_run",
]
