"""Process-based multi-device sweep engine with a persistent cache.

The sweep subsystem scales the co-design search along the axes the paper
leaves open — "devices with more resources", alternative exploration
strategies and several latency targets at once:

* :mod:`repro.sweep.runner` — :func:`build_grid` /
  :class:`SweepRunner`: fan a (device x strategy x latency-target) grid out
  across worker processes, one archivable journal per task,
* :mod:`repro.sweep.disk_cache` — :class:`DiskEvaluationCache`: JSON-lines
  estimator memoization that persists across processes and runs, layered
  under the in-memory :class:`~repro.search.cache.EvaluationCache`,
* :mod:`repro.sweep.compare` — :func:`compare`: journal-driven
  cross-strategy / cross-device report (text and JSON).

Quickstart::

    from repro.sweep import SweepRunner, build_grid, compare

    tasks = build_grid("pynq-z1,ultra96", "scd,random", [20.0, 30.0])
    result = SweepRunner(tasks, workers=4, cache_dir=".sweep-cache").run()
    print(result.summary())
    print(compare(result).render())
"""

from repro.sweep.compare import DeviceWinner, StrategySummary, SweepComparison, compare
from repro.sweep.disk_cache import DiskEvaluationCache, coefficients_fingerprint
from repro.sweep.runner import (
    SweepOutcome,
    SweepResult,
    SweepRunner,
    SweepTask,
    build_grid,
    run_sweep_task,
)

__all__ = [
    "SweepTask",
    "SweepOutcome",
    "SweepResult",
    "SweepRunner",
    "build_grid",
    "run_sweep_task",
    "DiskEvaluationCache",
    "coefficients_fingerprint",
    "SweepComparison",
    "StrategySummary",
    "DeviceWinner",
    "compare",
]
