"""Serializable sweep specification: one validated grid + runner-knob bundle.

The job service accepts sweeps over the wire, so the grid axes and
resilience knobs that ``repro-codesign sweep`` reads from argparse need a
JSON-round-trippable carrier that is validated **by the same parser
path**: :meth:`SweepSpec.from_payload` funnels every submitted spec
through :func:`repro.sweep.runner.build_grid`, so an unknown device,
strategy, backend prefix or out-of-range clock is rejected at submit time
with the exact error message the CLI would print — never discovered later
by a worker.

A spec is deliberately *pure data*: building the grid (:meth:`build_tasks`)
and the runner (:meth:`build_runner`) are derived operations, so the same
spec payload always produces the same task uids and therefore the same
journals — the byte-identity contract the checkpoint/resume machinery
depends on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields
from typing import Callable, Mapping, Optional

from repro.sweep.runner import SweepRunner, SweepTask, build_grid, run_sweep_task

__all__ = ["SweepSpec"]


def _as_float_tuple(value, label: str) -> tuple[float, ...]:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (float(value),)
    if isinstance(value, (list, tuple)):
        out = []
        for item in value:
            if isinstance(item, bool) or not isinstance(item, (int, float)):
                raise ValueError(f"'{label}' entries must be numbers, got {item!r}")
            out.append(float(item))
        if not out:
            raise ValueError(f"'{label}' must not be empty")
        return tuple(out)
    raise ValueError(f"'{label}' must be a number or a list of numbers")


def _as_axis(value, label: str) -> str:
    """Normalize a device/strategy axis to the CLI's comma-string form."""
    if isinstance(value, str):
        return value
    if isinstance(value, (list, tuple)) and all(isinstance(v, str) for v in value):
        return ",".join(value)
    raise ValueError(f"'{label}' must be a string or a list of strings")


@dataclass(frozen=True)
class SweepSpec:
    """Grid axes + runner knobs of one sweep, as plain JSON-able data."""

    devices: str = "pynq-z1"
    strategies: str = "scd"
    fps: tuple[float, ...] = (10.0, 15.0, 20.0)
    tolerance_ms: float = 8.0
    iterations: int = 120
    num_candidates: int = 2
    top_bundles: int = 5
    seed: int = 2019
    clocks_mhz: Optional[tuple[float, ...]] = None
    utilizations: tuple[float, ...] = (1.0,)
    timeout_s: Optional[float] = None
    timeout_scale: float = 3.0
    retries: int = 1
    retry_backoff_s: float = 0.1

    # ------------------------------------------------------------ validation
    def build_tasks(self) -> list[SweepTask]:
        """Expand the grid through the canonical (CLI) validation path."""
        return build_grid(
            self.devices,
            self.strategies,
            list(self.fps),
            tolerance_ms=self.tolerance_ms,
            iterations=self.iterations,
            num_candidates=self.num_candidates,
            top_bundles=self.top_bundles,
            seed=self.seed,
            clocks_mhz=list(self.clocks_mhz) if self.clocks_mhz is not None else None,
            utilizations=list(self.utilizations),
        )

    def build_runner(
        self,
        *,
        cache_dir: Optional[str],
        workers: int = 1,
        transport=None,
        resume_from=None,
        task_fn: Callable = run_sweep_task,
        clock: Callable[[], float] = time.time,
    ) -> SweepRunner:
        """Construct the runner this spec describes (knobs applied verbatim)."""
        return SweepRunner(
            self.build_tasks(),
            workers=workers,
            cache_dir=cache_dir,
            timeout_s=self.timeout_s,
            timeout_scale=self.timeout_scale,
            retries=self.retries,
            retry_backoff_s=self.retry_backoff_s,
            resume_from=resume_from,
            task_fn=task_fn,
            transport=transport,
            clock=clock,
        )

    # ------------------------------------------------------------- wire view
    def as_dict(self) -> dict:
        return {
            "devices": self.devices,
            "strategies": self.strategies,
            "fps": list(self.fps),
            "tolerance_ms": self.tolerance_ms,
            "iterations": self.iterations,
            "num_candidates": self.num_candidates,
            "top_bundles": self.top_bundles,
            "seed": self.seed,
            "clocks_mhz": list(self.clocks_mhz) if self.clocks_mhz is not None else None,
            "utilizations": list(self.utilizations),
            "timeout_s": self.timeout_s,
            "timeout_scale": self.timeout_scale,
            "retries": self.retries,
            "retry_backoff_s": self.retry_backoff_s,
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "SweepSpec":
        """Parse + validate a wire/JSON spec; raises ``ValueError`` on any defect.

        Unknown keys are rejected (a typoed knob silently falling back to
        its default would run the wrong sweep), and the resulting spec is
        grid-expanded once so every axis error surfaces at submit time.
        """
        if not isinstance(payload, Mapping):
            raise ValueError("sweep spec must be a JSON object")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown sweep spec field(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        data: dict = {}
        if "devices" in payload:
            data["devices"] = _as_axis(payload["devices"], "devices")
        if "strategies" in payload:
            data["strategies"] = _as_axis(payload["strategies"], "strategies")
        if "fps" in payload:
            data["fps"] = _as_float_tuple(payload["fps"], "fps")
        for name in ("tolerance_ms", "timeout_scale", "retry_backoff_s"):
            if name in payload:
                value = payload[name]
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise ValueError(f"'{name}' must be a number")
                data[name] = float(value)
        for name in ("iterations", "num_candidates", "top_bundles", "seed", "retries"):
            if name in payload:
                value = payload[name]
                if isinstance(value, bool) or not isinstance(value, int):
                    raise ValueError(f"'{name}' must be an integer")
                data[name] = value
        if payload.get("clocks_mhz") is not None:
            data["clocks_mhz"] = _as_float_tuple(payload["clocks_mhz"], "clocks_mhz")
        elif "clocks_mhz" in payload:
            data["clocks_mhz"] = None
        if "utilizations" in payload:
            data["utilizations"] = _as_float_tuple(payload["utilizations"], "utilizations")
        if payload.get("timeout_s") is not None:
            value = payload["timeout_s"]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError("'timeout_s' must be a number")
            data["timeout_s"] = float(value)
        spec = cls(**data)
        if spec.retries < 0:
            raise ValueError("'retries' must be >= 0")
        if spec.retry_backoff_s < 0:
            raise ValueError("'retry_backoff_s' must be >= 0")
        spec.build_tasks()  # same eager validation as `repro-codesign sweep`
        return spec

    @classmethod
    def from_args(cls, args) -> "SweepSpec":
        """Build a spec from the shared sweep argparse namespace."""
        clocks = getattr(args, "clocks", None)
        return cls(
            devices=args.devices,
            strategies=args.strategies,
            fps=tuple(float(v) for v in args.fps),
            tolerance_ms=float(args.tolerance_ms),
            iterations=int(args.iterations),
            num_candidates=int(args.candidates),
            top_bundles=int(args.top_bundles),
            seed=int(args.seed),
            clocks_mhz=tuple(float(v) for v in clocks) if clocks else None,
            utilizations=tuple(float(v) for v in args.utilizations),
            timeout_s=float(args.timeout_s) if args.timeout_s is not None else None,
            timeout_scale=float(args.timeout_scale),
            retries=int(args.retries),
            retry_backoff_s=float(args.retry_backoff_s),
        )
