"""Process-based multi-device sweep engine with resilient scheduling.

A sweep fans a (device x clock x utilization x strategy x latency-target)
grid out across **worker processes**.  The per-search
:class:`~repro.search.parallel.ParallelEvaluator` parallelises estimator
batches with threads *inside* one search; the sweep parallelises whole
co-design searches, which are CPU-bound Python, so processes are the right
executor here.  Every ingredient of a task is a picklable primitive
(:class:`SweepTask` carries names, numbers and a seed; the worker rebuilds
devices, estimators and flows on its side), which keeps the fan-out
start-method agnostic.

Execution is a **two-phase schedule**:

1. **Preparation** — the per-device analytical-model fit (co-design step 1)
   and bundle selection (step 2) are deterministic per (device, clock,
   utilization, top-bundles) and independent of the strategy / latency
   target, so they run *once per device* in the parent and are shipped to
   workers as a serializable :class:`PreparedTarget` artifact instead of
   being recomputed in every grid cell.
2. **Execution** — cells are dispatched longest-expected-first to a
   work-stealing pool of single-task worker processes (``schedule="steal"``,
   the default) or to a classic statically-chunked process pool
   (``schedule="chunked"``).  Expected costs come from the previous run's
   journal timings when a cache directory is given (``_timings.json``) and
   fall back to a deterministic budget heuristic.

The stealing scheduler owns each worker process, so it can enforce a
per-task wall-clock **timeout**, kill the stuck process and **retry** the
cell a bounded number of times.  A cell that keeps failing (timeout, raise,
crash or a garbage return value) ends up as a structured
:class:`SweepFailure` in the :class:`SweepResult` — the sweep always
completes and reports, it never hangs or silently drops cells.

Each task runs the remaining co-design pipeline (strategy-driven DNN
search, Auto-HLS refinement) and produces a :class:`SweepOutcome`: the
archivable :class:`~repro.search.session.SearchSession` journal plus cache
and timing accounting.  A task's journal depends only on the task itself —
never on the worker count, the schedule or the warmth of the disk cache —
so ``workers=8`` and ``workers=1``, stealing and chunked, all produce
identical journals.

When a cache directory is given, every worker layers the persistent
:class:`~repro.sweep.disk_cache.DiskEvaluationCache` under its in-memory
cache, so repeated sweeps and re-runs skip estimator calls entirely.

The cache directory also hosts two sidecars (see
:mod:`repro.sweep.checkpoint`): an **incremental checkpoint**
(``_checkpoint.jsonl``) the parent appends to the moment each cell
settles, and the journal-timings cost model (``_timings.json``).  A sweep
that dies mid-run — OOM, preemption, a poisoned cell exhausting its
retries — is restarted with ``SweepRunner(resume_from=...)`` (CLI:
``repro-codesign sweep --resume``): checkpointed outcomes are reused
verbatim (byte-identical journals) and only the failed and missing cells
re-execute.  Timing hints are also recorded for *failed* attempts, so a
cell that keeps timing out carries its real cost into the next run, where
the per-cell timeout scales with the hint (``timeout_s`` acts as a floor
under ``timeout_scale x expected seconds``) and retries back off
exponentially (deterministic, no jitter).

Fault injection (tests / CI): the environment variables
``REPRO_SWEEP_FAIL_TASKS`` and ``REPRO_SWEEP_STALL_TASKS`` hold
comma-separated task names (or uids); :func:`run_sweep_task` raises for
the former and blocks for the latter, which lets a smoke test poison
exactly one grid cell without patching code inside worker processes.
"""

from __future__ import annotations

import os
import pathlib
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import TYPE_CHECKING, Callable, Mapping, Optional, Sequence, Union

import repro.telemetry as telemetry
from repro.backend import backend_for, backend_name_for, resolve_targets
from repro.search import available_strategies
from repro.utils.logging import get_logger
from repro.utils.serialization import dump_json, load_json, to_jsonable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.analytical import AnalyticalModelCoefficients

logger = get_logger(__name__)

#: Name of the per-cache-dir journal-timings file feeding the cost model.
TIMINGS_FILENAME = "_timings.json"

#: Fault-injection environment variables (comma-separated task names).
FAIL_TASKS_ENV = "REPRO_SWEEP_FAIL_TASKS"
STALL_TASKS_ENV = "REPRO_SWEEP_STALL_TASKS"


def _env_task_names(variable: str) -> set[str]:
    return {part.strip() for part in os.environ.get(variable, "").split(",") if part.strip()}


def _fields_payload(cls, payload: Mapping) -> dict:
    """The subset of ``payload`` matching ``cls``'s dataclass fields.

    Round-tripped records carry a ``__type__`` tag (and possibly fields
    from a newer format version); both are dropped instead of breaking
    reconstruction.
    """
    names = {f.name for f in dataclass_fields(cls)}
    return {key: value for key, value in payload.items() if key in names}


@dataclass(frozen=True)
class SweepTask:
    """One cell of the sweep grid: device, clock, utilization, strategy, target.

    Deliberately made of picklable primitives only; the worker process
    rebuilds the heavyweight objects (device, estimator, flow) from them.
    ``clock_mhz=None`` means the device's default clock.
    """

    device: str
    strategy: str
    fps: float
    tolerance_ms: float = 8.0
    iterations: int = 120
    num_candidates: int = 2
    top_bundles: int = 5
    seed: int = 2019
    clock_mhz: Optional[float] = None
    utilization: float = 1.0

    @property
    def backend(self) -> str:
        """Backend name of this cell, derived from the device string.

        The device string *is* the backend axis: legacy FPGA cells carry
        bare display names (``PYNQ-Z1``), other backends a prefix
        (``gpu:jetson-tx2``) — so no new serialized field is needed and
        pre-backend checkpoints round-trip byte-identically.
        """
        return backend_name_for(self.device)

    @property
    def name(self) -> str:
        """Short display name: the grid axes a human sweeps over.

        Deliberately *not* unique across search budgets — two cells
        differing only in ``iterations`` or ``seed`` share a name.  Every
        persistent keying (timings, disk-cache shards, checkpoints) uses
        :attr:`uid` instead.
        """
        name = f"{self.device}-{self.strategy}-{self.fps:g}fps"
        if self.clock_mhz is not None:
            name += f"-{self.clock_mhz:g}MHz"
        if self.utilization != 1.0:
            name += f"-u{self.utilization:g}"
        return name

    @property
    def uid(self) -> str:
        """Fully qualified cell identity: :attr:`name` plus the budget.

        Folds in every remaining field (``tolerance_ms``, ``iterations``,
        ``num_candidates``, ``top_bundles``, ``seed``) so tasks that
        differ *only* in those can never alias each other in the
        ``_timings.json`` cost hints, the disk-cache shard names, or the
        checkpoint records.
        """
        return (
            f"{self.name}-t{self.tolerance_ms:g}-i{self.iterations}"
            f"-c{self.num_candidates}-b{self.top_bundles}-s{self.seed}"
        )

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SweepTask":
        """Rebuild a task from its JSON view (``to_jsonable`` round trip)."""
        data = _fields_payload(cls, payload)
        if data.get("clock_mhz") is not None:
            data["clock_mhz"] = float(data["clock_mhz"])
        return cls(**data)

    @property
    def prep_key(self) -> tuple:
        """Preparation cells with equal keys share one :class:`PreparedTarget`.

        The model fit and bundle selection depend on the device, the
        accelerator clock, the utilization limit and how many bundles are
        selected — not on the strategy, the latency target or the seed.
        """
        return (self.device, self.clock_mhz, self.utilization, self.top_bundles)


def build_grid(
    devices: Union[str, Sequence[str]],
    strategies: Union[str, Sequence[str]],
    fps_targets: Sequence[float],
    *,
    tolerance_ms: float = 8.0,
    iterations: int = 120,
    num_candidates: int = 2,
    top_bundles: int = 5,
    seed: int = 2019,
    clocks_mhz: Optional[Sequence[float]] = None,
    utilizations: Sequence[float] = (1.0,),
) -> list[SweepTask]:
    """Build the target x clock x utilization x strategy x fps task grid.

    ``devices`` accepts target specs (``backend:device``, e.g.
    ``fpga:pynq-z1`` or ``gpu:jetson-tx2``; bare names default to the fpga
    backend) as a comma-separated string or a sequence, so one grid can mix
    backends.  ``strategies`` likewise accepts a comma string or sequence.
    Both are validated eagerly — an unknown backend prefix or per-backend
    device name raises a :class:`ValueError` listing the registered
    backends and their devices before any worker is spawned.
    ``clocks_mhz=None`` (the default) keeps every target at its default
    clock; an explicit clock list is validated against each target's
    supported range.  ``utilizations`` restricts the usable fraction of the
    device resources per cell.  The grid order (targets outermost, fps
    innermost) is deterministic, and every axis is deduplicated — duplicate
    cells would run twice and make two workers append to the same
    disk-cache shard.
    """
    targets = resolve_targets(devices)
    if isinstance(strategies, str):
        strategy_names = [part.strip() for part in strategies.split(",") if part.strip()]
    else:
        strategy_names = [str(part).strip() for part in strategies if str(part).strip()]
    strategy_names = list(dict.fromkeys(strategy_names))
    if not strategy_names:
        raise ValueError("At least one strategy is required")
    known = set(available_strategies())
    for name in strategy_names:
        if name not in known:
            raise ValueError(
                f"Unknown search strategy '{name}'; available: {', '.join(sorted(known))}"
            )
    fps_values = list(dict.fromkeys(float(fps) for fps in fps_targets))
    if not fps_values:
        raise ValueError("At least one FPS target is required")
    if any(fps <= 0 for fps in fps_values):
        raise ValueError("FPS targets must be positive")
    if tolerance_ms <= 0:
        raise ValueError("tolerance_ms must be positive")
    if iterations <= 0 or num_candidates <= 0 or top_bundles <= 0:
        raise ValueError("iterations, num_candidates and top_bundles must be positive")

    if clocks_mhz is None:
        clock_values: list[Optional[float]] = [None]
    else:
        clock_values = list(dict.fromkeys(float(clock) for clock in clocks_mhz))
        if not clock_values:
            raise ValueError("At least one clock frequency is required")
        for target in targets:
            for clock in clock_values:
                target.backend.validate_clock(target.device, clock)
    utilization_values = list(dict.fromkeys(float(u) for u in utilizations))
    if not utilization_values:
        raise ValueError("At least one utilization limit is required")
    if any(not 0.0 < u <= 1.0 for u in utilization_values):
        raise ValueError("utilization limits must be in (0, 1]")

    return [
        SweepTask(
            device=target.canonical,
            strategy=strategy,
            fps=float(fps),
            tolerance_ms=tolerance_ms,
            iterations=iterations,
            num_candidates=num_candidates,
            top_bundles=top_bundles,
            seed=seed,
            clock_mhz=clock,
            utilization=utilization,
        )
        for target in targets
        for clock in clock_values
        for utilization in utilization_values
        for strategy in strategy_names
        for fps in fps_values
    ]


# ----------------------------------------------------------------- preparation
@dataclass(frozen=True)
class PreparedTarget:
    """Per-target preparation artifact shared by every cell of that target.

    Carries the result of co-design steps 1 and 2 (for the FPGA backend:
    fitted analytical-model coefficients and the selected bundle ids, in
    selection order; fit-free backends such as the GPU roofline carry
    ``coefficients=None`` and their deterministic selection) so the
    per-cell workers can jump straight to step 3.  Picklable, so it ships
    to worker processes unchanged — the coefficients are bit-exact, not a
    JSON round-trip.  ``backend`` tags which backend prepared it; the
    default keeps artifacts from pre-backend wire payloads valid.
    """

    device: str
    clock_mhz: float
    utilization: float
    top_bundles: int
    coefficients: Optional["AnalyticalModelCoefficients"]
    selected_bundle_ids: tuple[int, ...]
    fingerprint: str
    prep_duration_s: float = 0.0
    backend: str = "fpga"

    def matches(self, task: SweepTask) -> bool:
        """True when this artifact is valid for ``task``.

        A task without an explicit clock means the target default, so the
        artifact's clock must equal that default — an artifact fitted at
        another clock carries wrong coefficients and must be rejected.
        """
        if (
            task.device != self.device
            or task.utilization != self.utilization
            or task.top_bundles != self.top_bundles
        ):
            return False
        if task.clock_mhz is not None:
            return task.clock_mhz == self.clock_mhz
        try:
            task_backend = backend_for(task.device)
            default_clock = task_backend.default_clock_mhz(
                task_backend.device_of(task.device)
            )
        except (KeyError, ValueError):  # pragma: no cover - unknown device fails later
            return False
        return default_clock == self.clock_mhz

    def as_dict(self) -> dict:
        """Compact JSON view (the full coefficients stay pickle-only)."""
        return {
            "device": self.device,
            "clock_mhz": self.clock_mhz,
            "utilization": self.utilization,
            "top_bundles": self.top_bundles,
            "selected_bundle_ids": list(self.selected_bundle_ids),
            "fingerprint": self.fingerprint,
            "prep_duration_s": self.prep_duration_s,
            "backend": self.backend,
        }

    @property
    def wire_key(self) -> str:
        """Stable reference for shipping this artifact exactly once per key.

        Mirrors :attr:`SweepTask.prep_key` (not the coefficients
        fingerprint: two preparations differing only in ``top_bundles`` or
        ``utilization`` share a fit but select different bundles, so the
        fingerprint alone would alias them).  Floats are rendered with
        ``repr`` — exact, like ``prep_key``'s value equality — so two
        distinct preparations can never alias one key.
        """
        return (
            f"{self.device}|{self.clock_mhz!r}|{self.utilization!r}"
            f"|{self.top_bundles}"
        )

    def to_wire(self) -> dict:
        """Full JSON view, coefficients included, for cross-machine shipping.

        Unlike :meth:`as_dict`, every fitted coefficient travels along (for
        fit-free backends there are none and the key is absent).  Python's
        JSON encoder emits the shortest round-tripping ``repr`` of each
        float, so a ``to_wire`` → ``from_wire`` trip is bit-exact and a
        remote worker produces journals byte-identical to an in-process run
        with the pickled artifact.
        """
        from dataclasses import fields as coeff_fields

        payload = self.as_dict()
        if self.coefficients is not None:
            payload["coefficients"] = {
                field.name: float(getattr(self.coefficients, field.name))
                for field in coeff_fields(type(self.coefficients))
            }
        return payload

    @classmethod
    def from_wire(cls, payload: Mapping) -> "PreparedTarget":
        """Rebuild a shipped artifact from its :meth:`to_wire` JSON view.

        Payloads from pre-backend coordinators carry no ``backend`` key and
        default to ``fpga`` — for which the fitted coefficients remain
        mandatory; fit-free backends ship without them.
        """
        from repro.hw.analytical import AnalyticalModelCoefficients

        backend = str(payload.get("backend", "fpga"))
        coefficients_payload = payload.get("coefficients")
        if isinstance(coefficients_payload, Mapping):
            coefficients: Optional[AnalyticalModelCoefficients] = (
                AnalyticalModelCoefficients(
                    **{str(k): float(v) for k, v in coefficients_payload.items()}
                )
            )
        elif backend == "fpga":
            raise ValueError("wire payload is missing the fitted coefficients")
        else:
            coefficients = None
        return cls(
            device=str(payload["device"]),
            clock_mhz=float(payload["clock_mhz"]),
            utilization=float(payload["utilization"]),
            top_bundles=int(payload["top_bundles"]),
            coefficients=coefficients,
            selected_bundle_ids=tuple(int(b) for b in payload["selected_bundle_ids"]),
            fingerprint=str(payload["fingerprint"]),
            prep_duration_s=float(payload.get("prep_duration_s", 0.0)),
            backend=backend,
        )


#: Backward-compatible alias: the artifact was FPGA-only before the unified
#: backend seam; existing imports keep working.
PreparedDevice = PreparedTarget


def _task_flow(task: SweepTask):
    """Build the co-design flow for one sweep task (target resolved inside)."""
    from repro.core import CoDesignFlow, CoDesignInputs, LatencyTarget
    from repro.detection.task import DAC_SDC_TASK

    backend = backend_for(task.device)
    device = backend.device_of(task.device)
    clock = backend.validate_clock(device, task.clock_mhz) if task.clock_mhz is not None \
        else backend.default_clock_mhz(device)
    target = LatencyTarget(fps=task.fps, clock_mhz=clock, tolerance_ms=task.tolerance_ms)
    inputs = CoDesignInputs(
        task=DAC_SDC_TASK,
        device=device,
        latency_targets=(target,),
        utilization_limit=task.utilization,
    )
    flow = CoDesignFlow(
        inputs,
        candidates_per_bundle=task.num_candidates,
        top_n_bundles=task.top_bundles,
        scd_iterations=task.iterations,
        rng=task.seed,
        search_strategy=task.strategy,
        clock_mhz=clock,
        backend=backend,
    )
    return flow, device, target


def prepare_device(task: SweepTask) -> PreparedTarget:
    """Run co-design steps 1 and 2 once for a task's preparation cell.

    Both steps are deterministic for a given (device, clock, utilization,
    top-bundles) tuple, so the resulting artifact is valid for every grid
    cell sharing the task's :attr:`SweepTask.prep_key`.  On fit-free
    backends step 1 is a no-op and the artifact carries no coefficients.
    """
    start = time.perf_counter()
    with telemetry.trace("sweep.prep.device", device=task.device,
                         clock_mhz=task.clock_mhz, top_bundles=task.top_bundles,
                         backend=task.backend):
        flow, _, _ = _task_flow(task)
        flow.step1_modeling()
        _, _, selected = flow.step2_bundle_selection()
    return PreparedTarget(
        device=task.device,
        clock_mhz=flow.auto_hls.clock_mhz,
        utilization=task.utilization,
        top_bundles=task.top_bundles,
        coefficients=flow.auto_hls.coefficients,
        selected_bundle_ids=tuple(b.bundle_id for b in selected),
        fingerprint=flow.backend.engine_fingerprint(flow.auto_hls),
        prep_duration_s=time.perf_counter() - start,
        backend=flow.backend.name,
    )


#: Backward-compatible alias of :func:`prepare_device`.
prepare_target = prepare_device


def _prepare_device_pooled(task: SweepTask) -> tuple:
    """Pool-side preparation wrapper shipping the child's telemetry home.

    Returns ``(artifact, metrics)`` where ``metrics`` is the child's
    telemetry snapshot (``None`` when telemetry is disabled); the parent
    merges it so pooled preparations are accounted like serial ones.
    Module-level so it pickles under any start method.
    """
    telemetry.reset()
    artifact = prepare_device(task)
    return artifact, telemetry.snapshot()


@dataclass
class SweepOutcome:
    """Everything one sweep task produced (picklable, JSON-able)."""

    task: SweepTask
    journal: dict
    selected_bundles: list[int]
    num_candidates: int
    best_latency_ms: Optional[float]
    best_gap_ms: Optional[float]
    evaluations: int
    memory_hits: int
    memory_misses: int
    disk_hits: int
    disk_misses: int
    estimator_calls: int
    duration_s: float
    attempts: int = 1
    used_shared_prep: bool = False

    @property
    def disk_hit_rate(self) -> float:
        """Fraction of disk-layer requests served from disk (0 when unused)."""
        total = self.disk_hits + self.disk_misses
        return self.disk_hits / total if total else 0.0

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SweepOutcome":
        """Rebuild an outcome from its JSON view, journal included.

        The journal is already pure-JSON at creation time (see
        :func:`run_sweep_task`), so a load -> dump round trip is
        byte-identical — the property checkpoint/resume relies on.
        """
        data = _fields_payload(cls, payload)
        task = data.get("task")
        if not isinstance(task, Mapping):
            raise ValueError("outcome record is missing its task")
        data["task"] = SweepTask.from_dict(task)
        if not isinstance(data.get("journal"), dict):
            raise ValueError("outcome record is missing its journal")
        data["selected_bundles"] = [int(b) for b in data.get("selected_bundles", [])]
        return cls(**data)

    def summary(self) -> str:
        gap = f"{self.best_gap_ms:.2f} ms gap" if self.best_gap_ms is not None else "no candidate"
        line = (
            f"{self.task.name}: {self.num_candidates} candidates ({gap}), "
            f"{self.evaluations} evaluations, {self.estimator_calls} estimator calls"
        )
        if self.disk_hits or self.disk_misses:
            line += f", disk cache {self.disk_hit_rate:.0%} hit rate"
        line += f", {self.duration_s:.2f}s"
        if self.attempts > 1:
            line += f" (attempt {self.attempts})"
        return line


@dataclass
class SweepFailure:
    """Structured record of one grid cell that exhausted its retries."""

    task: SweepTask
    kind: str  # "timeout" | "error" | "crash" | "invalid-result"
    error: str
    attempts: int
    duration_s: float = 0.0

    def summary(self) -> str:
        return (
            f"{self.task.name}: FAILED ({self.kind}) after "
            f"{self.attempts} attempt{'s' if self.attempts != 1 else ''} — {self.error}"
        )

    def as_dict(self) -> dict:
        return {
            "task": to_jsonable(self.task),
            "kind": self.kind,
            "error": self.error,
            "attempts": self.attempts,
            "duration_s": self.duration_s,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SweepFailure":
        """Rebuild a failure record from its JSON view."""
        data = _fields_payload(cls, payload)
        task = data.get("task")
        if not isinstance(task, Mapping):
            raise ValueError("failure record is missing its task")
        data["task"] = SweepTask.from_dict(task)
        return cls(**data)


def run_sweep_task(
    task: SweepTask,
    cache_dir: Optional[str] = None,
    prepared: Optional[PreparedTarget] = None,
) -> SweepOutcome:
    """Execute one sweep task (this is the worker-process function).

    When ``prepared`` is given (and matches the task), co-design steps 1
    and 2 are skipped and the artifact's coefficients / bundle selection
    are applied instead; the journal is identical either way, because the
    preparation is deterministic and the search-side evaluation cache is
    reset when the search starts.
    """
    with telemetry.trace("sweep.cell", uid=task.uid, device=task.device,
                         strategy=task.strategy, backend=task.backend):
        return _run_sweep_task(task, cache_dir, prepared)


def _run_sweep_task(
    task: SweepTask,
    cache_dir: Optional[str],
    prepared: Optional[PreparedTarget],
) -> SweepOutcome:
    # Imported here so a forked/spawned worker resolves everything locally.
    from repro.core.auto_dnn import AutoDNN
    from repro.core.bundle_generation import get_bundle
    from repro.search import EvaluationCache, SearchSession
    from repro.sweep.disk_cache import DiskEvaluationCache

    fail_names = _env_task_names(FAIL_TASKS_ENV)
    if task.name in fail_names or task.uid in fail_names:
        raise RuntimeError(f"injected failure for task {task.name}")
    stall_names = _env_task_names(STALL_TASKS_ENV)
    if task.name in stall_names or task.uid in stall_names:
        time.sleep(3600.0)  # simulates a hung cell; killed by the scheduler

    start = time.perf_counter()
    flow, _, target = _task_flow(task)
    if prepared is not None and not prepared.matches(task):
        raise ValueError(
            f"PreparedTarget for {prepared.device}@{prepared.clock_mhz:g}MHz "
            f"does not match task {task.name}"
        )
    if prepared is not None:
        if prepared.coefficients is not None:
            flow.auto_hls.coefficients = prepared.coefficients
            if flow.evaluator is not None:
                flow.evaluator.coefficients = prepared.coefficients
        selected = [get_bundle(bundle_id) for bundle_id in prepared.selected_bundle_ids]
    else:
        flow.step1_modeling()
        _, _, selected = flow.step2_bundle_selection()

    # The disk cache can only exist after the model fit: its namespace
    # embeds the engine's model fingerprint (the fitted coefficients on the
    # FPGA backend, the roofline constants on the GPU one) so a refit can
    # never serve stale estimates.  The fit is deterministic per target, so
    # repeated sweeps land in the same namespace and hit.  The namespace
    # device is the task's canonical device string — identical to the
    # legacy display name for FPGA cells.
    disk: Optional[DiskEvaluationCache] = None
    if cache_dir is not None:
        disk = DiskEvaluationCache(
            flow.auto_hls.estimate,
            cache_dir,
            device=task.device,
            clock_mhz=flow.auto_hls.clock_mhz,
            context=flow.backend.engine_fingerprint(flow.auto_hls),
            # Shards are uid-keyed: two cells differing only in the search
            # budget or seed must not append to the same shard file.
            shard=task.uid,
        )
        flow.attach_evaluation_cache(EvaluationCache(disk))

    # Journal metadata excludes worker count, schedule, preparation mode and
    # cache warmth on purpose: the journal of a task must be identical
    # across execution modes.  The device value is the canonical device
    # string (== the legacy display name for FPGA cells, byte-identical).
    session = SearchSession(
        name=task.name,
        metadata={
            "device": task.device,
            "strategy": task.strategy,
            "fps": task.fps,
            "tolerance_ms": task.tolerance_ms,
            "iterations": task.iterations,
            "num_candidates": task.num_candidates,
            "top_bundles": task.top_bundles,
            "seed": task.seed,
            "clock_mhz": flow.auto_hls.clock_mhz,
            "utilization": task.utilization,
        },
    )
    candidates = flow.step3_search(selected, session=session)

    best = AutoDNN.best_per_target(candidates, [target]).get(target)
    gaps = [abs(c.latency_ms - target.latency_ms) for c in candidates]
    memory_stats = flow.auto_dnn.cache.stats()
    disk_stats = disk.stats() if disk is not None else None
    return SweepOutcome(
        task=task,
        journal=to_jsonable(session.as_dict()),
        selected_bundles=[b.bundle_id for b in selected],
        num_candidates=len(candidates),
        best_latency_ms=best.latency_ms if best is not None else None,
        best_gap_ms=min(gaps) if gaps else None,
        evaluations=len(session.records),
        memory_hits=memory_stats.hits,
        memory_misses=memory_stats.misses,
        disk_hits=disk_stats.hits if disk_stats else 0,
        disk_misses=disk_stats.misses if disk_stats else 0,
        estimator_calls=disk_stats.misses if disk_stats else memory_stats.misses,
        duration_s=time.perf_counter() - start,
        used_shared_prep=prepared is not None,
    )


def expected_cost(task: SweepTask, hints: Optional[Mapping[str, float]] = None) -> float:
    """Expected wall-clock cost of one cell, for longest-expected-first order.

    Prior journal timings (``hints``, keyed by task uid, with the display
    name accepted as a legacy fallback) win when present; otherwise a
    deterministic budget heuristic — evaluation budget scaled by the
    candidate count — keeps the ordering stable across runs.
    """
    if hints:
        for key in (task.uid, task.name):
            hinted = hints.get(key)
            if hinted is not None:
                try:
                    return float(hinted)
                except (TypeError, ValueError):
                    continue
    return float(task.iterations * task.num_candidates * task.top_bundles)


@dataclass
class SweepResult:
    """Outcome of one :meth:`SweepRunner.run` call."""

    outcomes: list[SweepOutcome]
    workers: int
    cache_dir: Optional[str] = None
    wall_time_s: float = 0.0
    failures: list[SweepFailure] = field(default_factory=list)
    schedule: str = "steal"
    preparations: list[PreparedTarget] = field(default_factory=list)
    prep_time_s: float = 0.0
    #: Cells reused verbatim from a checkpoint / prior result (resume).
    reused: int = 0

    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def estimator_calls(self) -> int:
        return sum(outcome.estimator_calls for outcome in self.outcomes)

    @property
    def ok(self) -> bool:
        """True when every grid cell produced an outcome."""
        return not self.failures

    def summary(self) -> str:
        mode = f"{self.workers} process{'es' if self.workers != 1 else ''}"
        header = (
            f"Sweep: {len(self.outcomes)} tasks on {mode}, "
            f"{self.estimator_calls} estimator calls, {self.wall_time_s:.2f}s wall"
        )
        if self.reused:
            header += f" ({self.reused} reused from checkpoint)"
        if self.preparations:
            header += f" ({len(self.preparations)} shared preparations, {self.prep_time_s:.2f}s)"
        if self.failures:
            header += f", {len(self.failures)} FAILED"
        lines = [header]
        lines.extend(f"  {outcome.summary()}" for outcome in self.outcomes)
        lines.extend(f"  {failure.summary()}" for failure in self.failures)
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "workers": self.workers,
            "schedule": self.schedule,
            "cache_dir": self.cache_dir,
            "wall_time_s": self.wall_time_s,
            "prep_time_s": self.prep_time_s,
            "reused": self.reused,
            "preparations": [prep.as_dict() for prep in self.preparations],
            "outcomes": [to_jsonable(outcome) for outcome in self.outcomes],
            "failures": [failure.as_dict() for failure in self.failures],
        }

    def save(self, path):
        """Write the result (journals included) as deterministic JSON."""
        return dump_json(self.as_dict(), path)

    @classmethod
    def load(cls, path) -> "SweepResult":
        """Load a result previously written by :meth:`save`.

        Outcomes and failures round-trip fully (journals included) and the
        loaded result can seed ``SweepRunner(resume_from=...)``.  Also
        accepts the ``{"sweep": ..., "comparison": ...}`` report files the
        CLI writes.  ``preparations`` are *not* reconstructed: the fitted
        coefficients are pickle-only and deliberately excluded from the
        JSON view.
        """
        payload = load_json(path)
        if not isinstance(payload, dict):
            raise ValueError(f"{path} does not contain a sweep result")
        if "outcomes" not in payload and isinstance(payload.get("sweep"), dict):
            payload = payload["sweep"]
        if not isinstance(payload.get("outcomes"), list):
            raise ValueError(f"{path} does not contain a sweep result")
        return cls(
            outcomes=[SweepOutcome.from_dict(o) for o in payload["outcomes"]],
            workers=int(payload.get("workers", 1)),
            cache_dir=payload.get("cache_dir"),
            wall_time_s=float(payload.get("wall_time_s", 0.0)),
            failures=[SweepFailure.from_dict(f) for f in payload.get("failures", [])],
            schedule=str(payload.get("schedule", "steal")),
            prep_time_s=float(payload.get("prep_time_s", 0.0)),
            reused=int(payload.get("reused", 0)),
        )


def _timed_call(task_fn, task, cache_dir, prepared) -> tuple:
    """Pool-side wrapper: run one cell and report its wall-clock either way.

    The chunked schedule cannot observe per-cell timing from the parent (a
    pool future's latency includes queue wait), and a raised exception
    carries no duration — so the worker measures it and ships
    ``("ok", value, seconds, metrics)`` or ``("error", message, seconds,
    metrics)`` back, where ``metrics`` is the worker's telemetry snapshot
    (``None`` when telemetry is disabled) for the parent to merge.
    Module-level so it pickles under any start method.
    """
    telemetry.reset()  # drop fork-inherited state; parent merges the snapshot
    start = time.perf_counter()
    try:
        value = task_fn(task, cache_dir, prepared)
    except Exception as exc:  # noqa: BLE001 - converted to a record
        return ("error", f"{type(exc).__name__}: {exc}",
                time.perf_counter() - start, telemetry.snapshot())
    return ("ok", value, time.perf_counter() - start, telemetry.snapshot())


def _dispatch_worker(conn, task_fn, task, cache_dir, prepared) -> None:
    """Child-process entry of the stealing scheduler: run, then report.

    The payload's third element is the worker's telemetry snapshot
    (``None`` when telemetry is disabled), merged into the parent registry;
    shipping it out-of-band keeps :class:`SweepOutcome` — and therefore the
    checkpoint bytes — independent of whether telemetry is on.
    """
    telemetry.reset()  # drop fork-inherited state; parent merges the snapshot
    try:
        result = task_fn(task, cache_dir, prepared)
        payload = ("ok", result, telemetry.snapshot())
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        payload = ("error", f"{type(exc).__name__}: {exc}", telemetry.snapshot())
    try:
        conn.send(payload)
    except Exception as exc:  # unpicklable result: report instead of dying
        try:
            conn.send(("error", f"unpicklable task result: {exc!r}", None))
        except Exception:  # pragma: no cover - pipe already gone
            pass
    finally:
        conn.close()


class _Attempt:
    """Parent-side bookkeeping of one in-flight worker process."""

    __slots__ = ("process", "conn", "started", "attempt")

    def __init__(self, process, conn, attempt: int) -> None:
        self.process = process
        self.conn = conn
        self.started = time.monotonic()
        self.attempt = attempt


class SweepRunner:
    """Fan a sweep grid out across worker processes, resiliently.

    ``workers=1`` (without a timeout) runs every task in-process (serial,
    easiest to debug); otherwise cells run in worker processes under one of
    two schedules:

    * ``"steal"`` (default) — a work-stealing pool of single-task
      processes: cells are dispatched longest-expected-first, an idle slot
      immediately pulls the next cell, and each attempt runs under the
      per-task wall-clock ``timeout_s`` with up to ``retries`` retries.
    * ``"chunked"`` — the classic static process-pool map; kept for
      comparison and as the determinism baseline.  It cannot kill a stuck
      worker, so combining it with ``timeout_s`` is rejected.

    Preparation (model fit + bundle selection) runs once per unique
    :attr:`SweepTask.prep_key` — fanned across a process pool when
    ``workers > 1`` and several preparations are needed — and is shipped
    to workers (see :class:`PreparedTarget`); pass
    ``share_preparation=False`` to restore the per-cell behaviour.
    Results are collected in task order in every mode, and each task's
    journal is independent of the execution mode, so all modes are
    interchangeable.

    ``resume_from`` accepts a checkpoint file (``_checkpoint.jsonl``), a
    saved result JSON (:meth:`SweepResult.save`, or the CLI's report
    file) or an in-memory :class:`SweepResult`: cells with a recorded
    outcome are reused verbatim and only the failed / missing cells
    execute.  ``retry_backoff_s`` is the base of the deterministic
    exponential retry backoff (0 disables it); ``timeout_scale`` scales
    the per-cell timeout from the cell's recorded cost hint, with
    ``timeout_s`` as the floor.

    ``transport`` swaps the execution phase out without touching any of
    the surrounding machinery (grid validation, shared preparation,
    resume, checkpointing, cost hints, result assembly): an object with an
    ``execute(runner, order, preparations)`` method receives the cost-
    ordered cell indices still to run and returns
    ``(outcomes_by_index, failures_by_index)``, streaming each settled
    cell through ``runner.settle_outcome`` / ``runner.settle_failure`` so
    the incremental checkpoint stays live.  ``transport=None`` (the
    default) keeps the built-in local schedules;
    :class:`repro.shard.CoordinatorTransport` serves the same cells to
    remote workers over HTTP instead.
    """

    SCHEDULES = ("steal", "chunked")

    #: Upper bound on one exponential retry-backoff delay (seconds).
    MAX_BACKOFF_S = 60.0

    #: Ceiling on hint-scaled timeouts, as a multiple of ``timeout_s``.
    #: A permanently stuck cell records ~its own timeout as the cost hint,
    #: so an uncapped ``timeout_scale x hint`` would grow geometrically
    #: across resumed runs; cells genuinely slower than this ceiling need a
    #: larger ``timeout_s``, not an unbounded one.
    MAX_TIMEOUT_GROWTH = 10.0

    def __init__(
        self,
        tasks: Sequence[SweepTask],
        workers: int = 1,
        cache_dir: Optional[str] = None,
        *,
        schedule: str = "steal",
        timeout_s: Optional[float] = None,
        timeout_scale: float = 3.0,
        retries: int = 1,
        retry_backoff_s: float = 0.1,
        cost_hints: Optional[Mapping[str, float]] = None,
        share_preparation: bool = True,
        resume_from: Union[str, pathlib.Path, SweepResult, None] = None,
        task_fn: Callable[..., SweepOutcome] = run_sweep_task,
        transport=None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if not tasks:
            raise ValueError("At least one sweep task is required")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if schedule not in self.SCHEDULES:
            raise ValueError(f"schedule must be one of {self.SCHEDULES}, got '{schedule}'")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if timeout_scale <= 0:
            raise ValueError("timeout_scale must be positive")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")
        if schedule == "chunked" and timeout_s is not None:
            raise ValueError(
                "per-task timeouts require the work-stealing schedule "
                "(a chunked pool cannot kill a stuck worker)"
            )
        seen: set[str] = set()
        for task in tasks:
            if task.uid in seen:
                raise ValueError(
                    f"duplicate sweep task '{task.uid}': identical cells would "
                    "race on the same cache shard, timing hint and checkpoint record"
                )
            seen.add(task.uid)
        self.tasks = list(tasks)
        self.workers = workers
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.schedule = schedule
        self.timeout_s = timeout_s
        self.timeout_scale = timeout_scale
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s
        self.cost_hints = dict(cost_hints) if cost_hints else None
        self.share_preparation = share_preparation
        self.resume_from = resume_from
        self.task_fn = task_fn
        if transport is not None and not callable(getattr(transport, "execute", None)):
            raise TypeError(
                "transport must provide an execute(runner, order, preparations) method"
            )
        self.transport = transport
        if not callable(clock):
            raise TypeError("clock must be a callable returning seconds since the epoch")
        #: Wall-clock source for every persisted timestamp (checkpoint
        #: records, timing hints, telemetry sidecar).  Injected so tests can
        #: freeze time and so telemetry ``ts`` values correlate with
        #: checkpoint ``ts`` values.
        self.clock = clock
        # Per-run state (filled by run()): effective per-index timeouts, the
        # incremental checkpoint writer and the parsed resume source.
        self._timeouts: dict[int, Optional[float]] = {}
        self._writer = None
        self._resume_checkpoint: Optional[tuple[pathlib.Path, set[str]]] = None

    # ------------------------------------------------------------ cost hints
    def _timings_path(self) -> Optional[pathlib.Path]:
        if self.cache_dir is None:
            return None
        return pathlib.Path(self.cache_dir) / TIMINGS_FILENAME

    def _load_cost_hints(self) -> dict[str, float]:
        hints: dict[str, float] = {}
        path = self._timings_path()
        if path is not None:
            from repro.sweep.checkpoint import load_timings

            hints.update(load_timings(path))
        if self.cost_hints:
            hints.update({
                str(name): float(value)
                for name, value in self.cost_hints.items()
                if isinstance(value, (int, float))
            })
        return hints

    def _save_timings(
        self,
        outcomes: Sequence[SweepOutcome],
        failures: Sequence[SweepFailure] = (),
    ) -> None:
        """Persist per-cell durations — including *failed* attempts.

        A cell that keeps timing out used to carry no hint at all and kept
        being scheduled (and timed out) as if it were cheap; recording the
        wall-clock spent per attempt lets the next run dispatch it first
        and scale its timeout up (see :meth:`_effective_timeout`).
        """
        path = self._timings_path()
        if path is None:
            return
        durations = {o.task.uid: o.duration_s for o in outcomes}
        for failure in failures:
            if failure.duration_s > 0 and failure.attempts > 0:
                durations[failure.task.uid] = failure.duration_s / failure.attempts
        if not durations:
            return
        from repro.sweep.checkpoint import save_timings

        save_timings(path, durations, now=self.clock())

    # ------------------------------------------------------- adaptive knobs
    def _effective_timeout(self, task: SweepTask, hints: Mapping[str, float]) -> Optional[float]:
        """Per-cell timeout: ``timeout_s`` floor, scaled from the cost hint.

        A flat per-sweep timeout punishes legitimately slow cells and
        wastes hours on cheap stuck ones.  When a real recorded duration
        exists for the cell, the effective timeout is
        ``max(timeout_s, timeout_scale * hint)``, capped at
        ``timeout_s * MAX_TIMEOUT_GROWTH``; the heuristic fallback of
        :func:`expected_cost` is *not* used here — it is a unitless budget,
        not seconds.
        """
        if self.timeout_s is None:
            return None
        hinted = hints.get(task.uid, hints.get(task.name))
        if isinstance(hinted, (int, float)) and not isinstance(hinted, bool) and hinted > 0:
            return min(
                max(self.timeout_s, self.timeout_scale * float(hinted)),
                self.timeout_s * self.MAX_TIMEOUT_GROWTH,
            )
        return self.timeout_s

    def _backoff_delay(self, failed_attempts: int) -> float:
        """Deterministic exponential backoff before retry N (no jitter)."""
        if self.retry_backoff_s <= 0 or failed_attempts <= 0:
            return 0.0
        return min(self.retry_backoff_s * (2.0 ** (failed_attempts - 1)),
                   self.MAX_BACKOFF_S)

    # ------------------------------------------------------- resume support
    def _load_resume(self) -> dict[int, SweepOutcome]:
        """Map grid indices to checkpointed outcomes reused verbatim.

        Records whose uid is not in the current grid (the checkpoint
        belongs to a different / edited grid) are ignored with a warning;
        prior *failures* are never reused — those cells re-run.
        """
        self._resume_checkpoint = None
        if self.resume_from is None:
            return {}
        if isinstance(self.resume_from, SweepResult):
            prior = {o.task.uid: o for o in self.resume_from.outcomes}
        else:
            path = pathlib.Path(self.resume_from)
            if not path.exists():
                raise FileNotFoundError(f"resume source {path} does not exist")
            if path.suffix == ".jsonl":
                from repro.sweep.checkpoint import load_checkpoint

                status = load_checkpoint(path)
                prior = dict(status.outcomes)
                if status.grid and set(status.grid) != {t.uid for t in self.tasks}:
                    logger.warning(
                        "resume: checkpoint %s was written for a different grid "
                        "(%d recorded vs %d current cells); only matching cells "
                        "are reused", path, len(status.grid), len(self.tasks),
                    )
                # Remember what the file holds so _open_checkpoint need not
                # parse it a second time when it is this run's checkpoint.
                self._resume_checkpoint = (path.resolve(), set(prior))
            else:
                prior = {o.task.uid: o for o in SweepResult.load(path).outcomes}
        by_uid = {task.uid: index for index, task in enumerate(self.tasks)}
        reused: dict[int, SweepOutcome] = {}
        unknown = 0
        for uid, outcome in prior.items():
            index = by_uid.get(uid)
            if index is None:
                unknown += 1
            else:
                reused[index] = outcome
        if unknown:
            logger.warning(
                "resume: ignoring %d recorded cell(s) not in the current grid "
                "(grid changed since the checkpoint was written)", unknown,
            )
        if reused:
            logger.info("resume: reusing %d/%d checkpointed cell(s)",
                        len(reused), len(self.tasks))
        return reused

    def _open_checkpoint(self, reused: Mapping[int, SweepOutcome]):
        """Start (or continue) the incremental checkpoint for this run."""
        if self.cache_dir is None:
            return None
        from repro.sweep.checkpoint import CHECKPOINT_FILENAME, CheckpointWriter

        path = pathlib.Path(self.cache_dir) / CHECKPOINT_FILENAME
        recorded = None
        if self._resume_checkpoint is not None \
                and self._resume_checkpoint[0] == path.resolve():
            recorded = self._resume_checkpoint[1]
        writer = CheckpointWriter(
            path,
            grid=[task.uid for task in self.tasks],
            fresh=self.resume_from is None,
            recorded=recorded,
            clock=self.clock,
        )
        # A resume seeded from a result JSON (or an in-memory result) may
        # target a cache dir whose checkpoint lacks the reused cells; back
        # them in so this run's checkpoint is itself complete and resumable.
        for outcome in reused.values():
            if not writer.has_outcome(outcome.task.uid):
                writer.record_outcome(outcome)
        return writer

    def settle_outcome(self, outcome: SweepOutcome) -> None:
        """Checkpoint one settled outcome (transports call this as cells land)."""
        if self._writer is not None:
            self._writer.record_outcome(outcome)
        reg = telemetry.registry()
        if reg is not None:
            reg.histogram("sweep.cell.duration_s").observe(outcome.duration_s)
            telemetry.event(
                "sweep.cell.completed", uid=outcome.task.uid,
                attempts=outcome.attempts, duration_s=round(outcome.duration_s, 6),
            )

    def settle_failure(self, failure: SweepFailure) -> None:
        """Checkpoint one settled failure (transports call this as cells land)."""
        if self._writer is not None:
            self._writer.record_failure(failure)
        telemetry.event(
            "sweep.cell.failed", uid=failure.task.uid,
            kind=failure.kind, attempts=failure.attempts,
        )

    # Internal spellings kept for the built-in schedules.
    _settled_outcome = settle_outcome
    _settled_failure = settle_failure

    def effective_timeout_for(self, index: int) -> Optional[float]:
        """The hint-scaled per-cell timeout computed for this run (or None)."""
        return self._timeouts.get(index, self.timeout_s)

    # ----------------------------------------------------------- preparation
    def _prepare_devices(self, tasks: Sequence[SweepTask]) -> dict[tuple, PreparedTarget]:
        """One :func:`prepare_device` per unique prep key, pooled when useful.

        With several distinct preparation cells and a multi-worker budget,
        the (CPU-bound, independent) model fits fan out across a process
        pool instead of running serially in the parent; the artifacts come
        back bit-exact because they are pickled, not re-derived.
        """
        unique: dict[tuple, SweepTask] = {}
        for task in tasks:
            unique.setdefault(task.prep_key, task)
        if self.workers > 1 and len(unique) > 1:
            representatives = list(unique.values())
            with ProcessPoolExecutor(
                max_workers=min(self.workers, len(representatives))
            ) as pool:
                shipped = list(pool.map(_prepare_device_pooled, representatives))
            artifacts = []
            for artifact, worker_metrics in shipped:
                telemetry.merge(worker_metrics)
                artifacts.append(artifact)
            return dict(zip(unique.keys(), artifacts))
        return {key: prepare_device(task) for key, task in unique.items()}

    # -------------------------------------------------------------- telemetry
    def _open_telemetry_sink(self):
        """Attach the ``_telemetry.jsonl`` sidecar when telemetry is on.

        Parent-process only: worker processes ship snapshots back over
        their result channels instead of writing to the file, so the
        sidecar sees one writer and each line is an atomic fsynced append.
        """
        if self.cache_dir is None or not telemetry.enabled():
            return None
        if telemetry.sink() is not None:
            # An outer owner (the job service's root sidecar) is already
            # attached; events keep flowing there — with job labels — and
            # this runner must not clobber or close it.
            return None
        from repro.telemetry import TELEMETRY_FILENAME, TelemetrySink

        path = pathlib.Path(self.cache_dir) / TELEMETRY_FILENAME
        sink = TelemetrySink(str(path), fresh=self.resume_from is None,
                             clock=self.clock)
        telemetry.set_sink(sink)
        return sink

    def _record_run_telemetry(self, result: SweepResult) -> None:
        """Run-level gauges plus a final full snapshot into the sidecar."""
        reg = telemetry.registry()
        if reg is None:
            return
        reg.gauge("sweep.cells.total").set(len(self.tasks))
        reg.gauge("sweep.cells.completed").set(len(result.outcomes))
        reg.gauge("sweep.cells.failed").set(len(result.failures))
        reg.gauge("sweep.cells.reused").set(result.reused)
        reg.gauge("sweep.workers").set(self.workers)
        reg.gauge("sweep.wall_time_s").set(result.wall_time_s)
        reg.gauge("sweep.prep_time_s").set(result.prep_time_s)
        sink = telemetry.sink()
        if sink is not None:
            sink.write_snapshot(reg.snapshot())

    # ------------------------------------------------------------- execution
    def run(self) -> SweepResult:
        sink = self._open_telemetry_sink()
        try:
            result = self._run()
            self._record_run_telemetry(result)
            return result
        finally:
            if sink is not None:
                telemetry.set_sink(None)

    def _run(self) -> SweepResult:
        start = time.perf_counter()

        reused = self._load_resume()
        to_run = [i for i in range(len(self.tasks)) if i not in reused]

        preparations: dict[tuple, PreparedTarget] = {}
        if self.share_preparation and to_run:
            with telemetry.trace("sweep.prep", cells=len(to_run)) as prep_span:
                preparations = self._prepare_devices([self.tasks[i] for i in to_run])
                prep_span.annotate(preparations=len(preparations))
        prep_time = time.perf_counter() - start

        hints = self._load_cost_hints()
        self._timeouts = {
            index: self._effective_timeout(self.tasks[index], hints)
            for index in to_run
        }
        order = sorted(
            to_run,
            key=lambda index: (-expected_cost(self.tasks[index], hints), index),
        )

        self._writer = self._open_checkpoint(reused)
        try:
            if not to_run:
                outcomes_by_index: dict[int, SweepOutcome] = {}
                failures_by_index: dict[int, SweepFailure] = {}
            elif self.transport is not None:
                outcomes_by_index, failures_by_index = \
                    self.transport.execute(self, order, preparations)
            elif self.workers == 1 and self.timeout_s is None:
                outcomes_by_index, failures_by_index = self._run_serial(to_run, preparations)
            elif self.schedule == "chunked":
                outcomes_by_index, failures_by_index = self._run_chunked(to_run, preparations)
            else:
                outcomes_by_index, failures_by_index = self._run_stealing(order, preparations)
        finally:
            self._writer = None

        executed = [outcomes_by_index[i] for i in sorted(outcomes_by_index)]
        failures = [failures_by_index[i] for i in sorted(failures_by_index)]
        # Reused outcomes re-persist their recorded durations: an
        # interrupted sweep never reached _save_timings, so without this a
        # resume would leave every reused cell hint-less next run.
        self._save_timings(executed + list(reused.values()), failures)
        outcomes_by_index.update(reused)
        outcomes = [outcomes_by_index[i] for i in sorted(outcomes_by_index)]
        wall = time.perf_counter() - start
        logger.info(
            "sweep finished: %d/%d tasks in %.2fs (%d failed, %d reused)",
            len(outcomes), len(self.tasks), wall, len(failures), len(reused),
        )
        return SweepResult(
            outcomes=outcomes,
            workers=self.workers,
            cache_dir=self.cache_dir,
            wall_time_s=wall,
            failures=failures,
            schedule=self.schedule,
            preparations=list(preparations.values()),
            prep_time_s=prep_time,
            reused=len(reused),
        )

    def _prepared_for(
        self, task: SweepTask, preparations: Mapping[tuple, PreparedTarget]
    ) -> Optional[PreparedTarget]:
        return preparations.get(task.prep_key)

    def _classify(self, value) -> tuple[Optional[SweepOutcome], Optional[tuple[str, str]]]:
        """Sort a worker return value into outcome vs (kind, error)."""
        if isinstance(value, SweepOutcome):
            return value, None
        return None, (
            "invalid-result",
            f"worker returned {type(value).__name__!s} instead of SweepOutcome",
        )

    def _run_serial(self, indices, preparations):
        """In-process execution (workers=1, no timeout): retry on raise."""
        outcomes: dict[int, SweepOutcome] = {}
        failures: dict[int, SweepFailure] = {}
        for index in indices:
            task = self.tasks[index]
            elapsed = 0.0
            for attempt in range(1, self.retries + 2):
                if attempt > 1:
                    time.sleep(self._backoff_delay(attempt - 1))
                attempt_start = time.perf_counter()
                try:
                    value = self.task_fn(task, self.cache_dir,
                                         self._prepared_for(task, preparations))
                except Exception as exc:  # noqa: BLE001 - converted to a record
                    elapsed += time.perf_counter() - attempt_start
                    verdict = ("error", f"{type(exc).__name__}: {exc}")
                else:
                    elapsed += time.perf_counter() - attempt_start
                    outcome, verdict = self._classify(value)
                    if outcome is not None:
                        outcome.attempts = attempt
                        outcomes[index] = outcome
                        self._settled_outcome(outcome)
                        break
                if attempt > self.retries:
                    failures[index] = SweepFailure(
                        task=task, kind=verdict[0], error=verdict[1],
                        attempts=attempt, duration_s=elapsed,
                    )
                    self._settled_failure(failures[index])
                else:
                    telemetry.event("sweep.cell.retry", uid=task.uid,
                                    attempt=attempt, kind=verdict[0])
                    logger.warning("task %s attempt %d failed (%s); retrying",
                                   task.name, attempt, verdict[1])
        return outcomes, failures

    def _run_chunked(self, indices, preparations):
        """Static chunked process-pool map (no timeout enforcement)."""
        from concurrent.futures.process import BrokenProcessPool

        outcomes: dict[int, SweepOutcome] = {}
        failures: dict[int, SweepFailure] = {}
        attempts = dict.fromkeys(indices, 0)
        spent = dict.fromkeys(indices, 0.0)
        remaining = list(indices)
        rounds_done = 0
        while remaining:
            if rounds_done:  # a retry round: deterministic exponential backoff
                time.sleep(self._backoff_delay(rounds_done))
            rounds_done += 1
            # Fresh pool per round: a worker that dies hard (segfault,
            # OOM-kill) breaks the whole executor, and a broken pool rejects
            # further submits — the retry round must not inherit it.
            broken: list[int] = []
            with ProcessPoolExecutor(max_workers=min(self.workers, len(remaining))) as pool:
                futures = {
                    pool.submit(
                        _timed_call, self.task_fn, self.tasks[index], self.cache_dir,
                        self._prepared_for(self.tasks[index], preparations),
                    ): index
                    for index in remaining
                }
                next_round: list[int] = []
                # Consume in completion order, not submission order: the
                # checkpoint must record each cell the moment it settles,
                # or a kill while one slow cell blocks the loop would lose
                # every finished-but-unconsumed cell.
                for future in as_completed(futures):
                    index = futures[future]
                    task = self.tasks[index]
                    attempts[index] += 1
                    worker_metrics = None
                    try:
                        status, value, duration, worker_metrics = future.result()
                    except BrokenProcessPool:
                        # One dying worker poisons every in-flight future of
                        # the pool; the blame cannot be attributed here, so
                        # the round does not count as an attempt for anyone
                        # and the affected cells rerun isolated (below).
                        attempts[index] -= 1
                        broken.append(index)
                        continue
                    except Exception as exc:  # unpicklable result, pool error
                        status, value, duration = \
                            "error", f"{type(exc).__name__}: {exc}", 0.0
                    telemetry.merge(worker_metrics)
                    spent[index] += duration
                    if status == "ok":
                        outcome, verdict = self._classify(value)
                    else:
                        outcome, verdict = None, ("error", str(value))
                    if outcome is not None:
                        outcome.attempts = attempts[index]
                        outcomes[index] = outcome
                        self._settled_outcome(outcome)
                    elif attempts[index] <= self.retries:
                        telemetry.event("sweep.cell.retry", uid=task.uid,
                                        attempt=attempts[index], kind=verdict[0])
                        logger.warning("task %s attempt %d failed (%s); retrying",
                                       task.name, attempts[index], verdict[1])
                        next_round.append(index)
                    else:
                        failures[index] = SweepFailure(
                            task=task, kind=verdict[0], error=verdict[1],
                            attempts=attempts[index], duration_s=spent[index],
                        )
                        self._settled_failure(failures[index])
                remaining = sorted(next_round)
            if broken:
                # Per-task process isolation attributes the crash to the
                # actual culprit instead of failing innocent cells.
                unresolved = sorted(broken + remaining)
                logger.warning(
                    "chunked pool broke (worker died); isolating %d remaining "
                    "cell(s) in per-task processes", len(unresolved),
                )
                iso_outcomes, iso_failures = self._run_stealing(
                    unresolved, preparations, attempts=attempts, spent=spent,
                )
                outcomes.update(iso_outcomes)
                failures.update(iso_failures)
                break
        return outcomes, failures

    def _run_stealing(self, order, preparations, attempts=None, spent=None):
        """Cost-ordered work-stealing pool with timeout kill and retry.

        ``order`` lists the task indices to run (dispatch order);
        ``attempts`` and ``spent`` optionally carry attempt counts and
        wall-clock already consumed (used when the chunked schedule
        degrades to isolated dispatch — losing them would undercount the
        failure records and the persisted cost hints).  Retried cells
        re-enter the queue after a deterministic exponential backoff, and
        each cell runs under its own effective timeout (``timeout_s``
        floor, scaled from the recorded cost hint).
        """
        import multiprocessing
        from multiprocessing import connection as mp_connection

        ctx = multiprocessing.get_context()
        pending = list(order)
        if attempts is None:
            attempts = dict.fromkeys(order, 0)
        if spent is None:
            spent = dict.fromkeys(order, 0.0)
        ready_at: dict[int, float] = {}
        running: dict[int, _Attempt] = {}
        outcomes: dict[int, SweepOutcome] = {}
        failures: dict[int, SweepFailure] = {}
        max_slots = min(self.workers, len(order))

        def settle(index: int, verdict: tuple[str, str]) -> None:
            """Retry the cell (after backoff) or record the failure."""
            task = self.tasks[index]
            if attempts[index] <= self.retries:
                telemetry.event("sweep.cell.retry", uid=task.uid,
                                attempt=attempts[index], kind=verdict[0])
                logger.warning("task %s attempt %d failed (%s); retrying",
                               task.name, attempts[index], verdict[1])
                delay = self._backoff_delay(attempts[index])
                if delay > 0:
                    ready_at[index] = time.monotonic() + delay
                pending.append(index)
            else:
                failures[index] = SweepFailure(
                    task=task, kind=verdict[0], error=verdict[1],
                    attempts=attempts[index], duration_s=spent[index],
                )
                self._settled_failure(failures[index])

        def reap(index: int) -> _Attempt:
            state = running.pop(index)
            spent[index] += time.monotonic() - state.started
            state.conn.close()
            return state

        try:
            while pending or running:
                now = time.monotonic()
                while pending and len(running) < max_slots:
                    # First queued cell whose backoff window has passed.
                    position = next(
                        (p for p, i in enumerate(pending)
                         if ready_at.get(i, 0.0) <= now),
                        None,
                    )
                    if position is None:
                        break
                    index = pending.pop(position)
                    attempts[index] += 1
                    task = self.tasks[index]
                    parent_conn, child_conn = ctx.Pipe(duplex=False)
                    process = ctx.Process(
                        target=_dispatch_worker,
                        args=(child_conn, self.task_fn, task, self.cache_dir,
                              self._prepared_for(task, preparations)),
                        daemon=True,
                    )
                    process.start()
                    child_conn.close()
                    running[index] = _Attempt(process, parent_conn, attempts[index])
                    telemetry.event("sweep.cell.dispatch", uid=task.uid,
                                    attempt=attempts[index])

                backing_off = [i for i in pending if ready_at.get(i, 0.0) > now]
                if not running:
                    # Every queued cell is inside its backoff window: sleep to
                    # the earliest release instead of spinning.
                    soonest = min(ready_at[i] for i in backing_off)
                    time.sleep(max(min(soonest - now, 1.0), 0.005))
                    continue

                # Without a timeout (and with no backoff release to watch for)
                # there is nothing to poll: block until a worker reports (or
                # dies, which EOFs its pipe).
                poll = self.timeout_s is not None or (
                    backing_off and len(running) < max_slots
                )
                ready = mp_connection.wait(
                    [state.conn for state in running.values()],
                    timeout=0.05 if poll else None,
                )
                ready_set = set(ready)
                now = time.monotonic()
                for index in list(running):
                    state = running[index]
                    limit = self._timeouts.get(index, self.timeout_s)
                    # Re-poll before any timeout verdict: a result that
                    # landed after the wait() snapshot must win over the
                    # deadline, or a completed cell would be killed and
                    # recorded as a timeout.
                    if state.conn in ready_set or state.conn.poll():
                        try:
                            message = state.conn.recv()
                            status, value = message[0], message[1]
                            telemetry.merge(message[2] if len(message) > 2 else None)
                        except (EOFError, OSError):
                            # The worker died without reporting (crash/kill).
                            reap(index).process.join(timeout=5.0)
                            settle(index, ("crash", "worker process died without a result"))
                            continue
                        reap(index).process.join(timeout=5.0)
                        if status == "ok":
                            outcome, verdict = self._classify(value)
                            if outcome is not None:
                                outcome.attempts = attempts[index]
                                outcomes[index] = outcome
                                self._settled_outcome(outcome)
                            else:
                                settle(index, verdict)
                        else:
                            settle(index, ("error", str(value)))
                    elif limit is not None and now - state.started > limit:
                        state.process.terminate()
                        state.process.join(timeout=1.0)
                        if state.process.is_alive():  # pragma: no cover - hard kill
                            state.process.kill()
                            state.process.join(timeout=5.0)
                        reap(index)
                        telemetry.event("sweep.cell.timeout", uid=self.tasks[index].uid,
                                        attempt=attempts[index], limit_s=limit)
                        settle(index, (
                            "timeout",
                            f"exceeded the {limit:g}s per-task timeout",
                        ))
        finally:
            for state in running.values():  # pragma: no cover - crash cleanup
                state.process.terminate()
                state.process.join(timeout=1.0)
                state.conn.close()
        return outcomes, failures
