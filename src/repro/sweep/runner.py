"""Process-based multi-device sweep engine.

A sweep fans a (device x strategy x latency-target) grid out across
**worker processes**.  The per-search :class:`~repro.search.parallel.ParallelEvaluator`
parallelises estimator batches with threads *inside* one search; the sweep
parallelises whole co-design searches, which are CPU-bound Python, so
processes are the right executor here.  Every ingredient of a task is a
picklable primitive (:class:`SweepTask` carries names, numbers and a seed;
the worker rebuilds devices, estimators and flows on its side), which keeps
the fan-out start-method agnostic.

Each task runs the full co-design pipeline (model fitting, bundle
selection, strategy-driven DNN search, Auto-HLS refinement) and produces a
:class:`SweepOutcome`: the archivable :class:`~repro.search.session.SearchSession`
journal plus cache and timing accounting.  A task's journal depends only on
the task itself — never on the worker count or on the warmth of the disk
cache — so ``workers=8`` and ``workers=1`` produce identical journals.

When a cache directory is given, every worker layers the persistent
:class:`~repro.sweep.disk_cache.DiskEvaluationCache` under its in-memory
cache, so repeated sweeps and re-runs skip estimator calls entirely.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.hw.device import resolve_devices
from repro.search import available_strategies
from repro.utils.logging import get_logger
from repro.utils.serialization import dump_json, to_jsonable

logger = get_logger(__name__)


@dataclass(frozen=True)
class SweepTask:
    """One cell of the sweep grid: a device, a strategy and a target.

    Deliberately made of picklable primitives only; the worker process
    rebuilds the heavyweight objects (device, estimator, flow) from them.
    """

    device: str
    strategy: str
    fps: float
    tolerance_ms: float = 8.0
    iterations: int = 120
    num_candidates: int = 2
    top_bundles: int = 5
    seed: int = 2019

    @property
    def name(self) -> str:
        return f"{self.device}-{self.strategy}-{self.fps:g}fps"


def build_grid(
    devices: Union[str, Sequence[str]],
    strategies: Union[str, Sequence[str]],
    fps_targets: Sequence[float],
    *,
    tolerance_ms: float = 8.0,
    iterations: int = 120,
    num_candidates: int = 2,
    top_bundles: int = 5,
    seed: int = 2019,
) -> list[SweepTask]:
    """Build the device x strategy x latency-target task grid.

    ``devices`` and ``strategies`` accept comma-separated strings or
    sequences of names; both are validated eagerly so a typo fails before
    any worker is spawned.  The grid order (devices outermost, targets
    innermost) is deterministic, and every axis is deduplicated — duplicate
    cells would run twice and make two workers append to the same
    disk-cache shard.
    """
    resolved_devices = resolve_devices(devices)
    if isinstance(strategies, str):
        strategy_names = [part.strip() for part in strategies.split(",") if part.strip()]
    else:
        strategy_names = [str(part).strip() for part in strategies if str(part).strip()]
    strategy_names = list(dict.fromkeys(strategy_names))
    if not strategy_names:
        raise ValueError("At least one strategy is required")
    known = set(available_strategies())
    for name in strategy_names:
        if name not in known:
            raise ValueError(
                f"Unknown search strategy '{name}'; available: {', '.join(sorted(known))}"
            )
    fps_values = list(dict.fromkeys(float(fps) for fps in fps_targets))
    if not fps_values:
        raise ValueError("At least one FPS target is required")
    if any(fps <= 0 for fps in fps_values):
        raise ValueError("FPS targets must be positive")
    if tolerance_ms <= 0:
        raise ValueError("tolerance_ms must be positive")
    if iterations <= 0 or num_candidates <= 0 or top_bundles <= 0:
        raise ValueError("iterations, num_candidates and top_bundles must be positive")
    return [
        SweepTask(
            device=device.name,
            strategy=strategy,
            fps=float(fps),
            tolerance_ms=tolerance_ms,
            iterations=iterations,
            num_candidates=num_candidates,
            top_bundles=top_bundles,
            seed=seed,
        )
        for device in resolved_devices
        for strategy in strategy_names
        for fps in fps_values
    ]


@dataclass
class SweepOutcome:
    """Everything one sweep task produced (picklable, JSON-able)."""

    task: SweepTask
    journal: dict
    selected_bundles: list[int]
    num_candidates: int
    best_latency_ms: Optional[float]
    best_gap_ms: Optional[float]
    evaluations: int
    memory_hits: int
    memory_misses: int
    disk_hits: int
    disk_misses: int
    estimator_calls: int
    duration_s: float

    @property
    def disk_hit_rate(self) -> float:
        """Fraction of disk-layer requests served from disk (0 when unused)."""
        total = self.disk_hits + self.disk_misses
        return self.disk_hits / total if total else 0.0

    def summary(self) -> str:
        gap = f"{self.best_gap_ms:.2f} ms gap" if self.best_gap_ms is not None else "no candidate"
        line = (
            f"{self.task.name}: {self.num_candidates} candidates ({gap}), "
            f"{self.evaluations} evaluations, {self.estimator_calls} estimator calls"
        )
        if self.disk_hits or self.disk_misses:
            line += f", disk cache {self.disk_hit_rate:.0%} hit rate"
        line += f", {self.duration_s:.2f}s"
        return line


def run_sweep_task(task: SweepTask, cache_dir: Optional[str] = None) -> SweepOutcome:
    """Execute one sweep task (this is the process-pool worker function)."""
    # Imported here so a forked/spawned worker resolves everything locally.
    from repro.core import CoDesignFlow, CoDesignInputs, LatencyTarget
    from repro.core.auto_dnn import AutoDNN
    from repro.detection.task import DAC_SDC_TASK
    from repro.hw.device import get_device
    from repro.search import EvaluationCache, SearchSession
    from repro.sweep.disk_cache import DiskEvaluationCache, coefficients_fingerprint

    start = time.perf_counter()
    device = get_device(task.device)
    target = LatencyTarget(
        fps=task.fps, clock_mhz=device.default_clock_mhz, tolerance_ms=task.tolerance_ms
    )
    inputs = CoDesignInputs(task=DAC_SDC_TASK, device=device, latency_targets=(target,))
    flow = CoDesignFlow(
        inputs,
        candidates_per_bundle=task.num_candidates,
        top_n_bundles=task.top_bundles,
        scd_iterations=task.iterations,
        rng=task.seed,
        search_strategy=task.strategy,
    )
    flow.step1_modeling()

    # The disk cache can only exist after step 1: its namespace embeds the
    # fitted-coefficients fingerprint so a refit can never serve stale
    # estimates.  The fit is deterministic per device, so repeated sweeps
    # land in the same namespace and hit.
    disk: Optional[DiskEvaluationCache] = None
    if cache_dir is not None:
        disk = DiskEvaluationCache(
            flow.auto_hls.estimate,
            cache_dir,
            device=device.name,
            clock_mhz=flow.auto_hls.clock_mhz,
            context=coefficients_fingerprint(flow.auto_hls.coefficients),
            shard=task.name,
        )
        flow.attach_evaluation_cache(EvaluationCache(disk))

    # Journal metadata excludes worker count and cache warmth on purpose:
    # the journal of a task must be identical across execution modes.
    session = SearchSession(
        name=task.name,
        metadata={
            "device": device.name,
            "strategy": task.strategy,
            "fps": task.fps,
            "tolerance_ms": task.tolerance_ms,
            "iterations": task.iterations,
            "num_candidates": task.num_candidates,
            "top_bundles": task.top_bundles,
            "seed": task.seed,
        },
    )
    _, _, selected = flow.step2_bundle_selection()
    candidates = flow.step3_search(selected, session=session)

    best = AutoDNN.best_per_target(candidates, [target]).get(target)
    gaps = [abs(c.latency_ms - target.latency_ms) for c in candidates]
    memory_stats = flow.auto_dnn.cache.stats()
    disk_stats = disk.stats() if disk is not None else None
    return SweepOutcome(
        task=task,
        journal=to_jsonable(session.as_dict()),
        selected_bundles=[b.bundle_id for b in selected],
        num_candidates=len(candidates),
        best_latency_ms=best.latency_ms if best is not None else None,
        best_gap_ms=min(gaps) if gaps else None,
        evaluations=len(session.records),
        memory_hits=memory_stats.hits,
        memory_misses=memory_stats.misses,
        disk_hits=disk_stats.hits if disk_stats else 0,
        disk_misses=disk_stats.misses if disk_stats else 0,
        estimator_calls=disk_stats.misses if disk_stats else memory_stats.misses,
        duration_s=time.perf_counter() - start,
    )


@dataclass
class SweepResult:
    """Outcome of one :meth:`SweepRunner.run` call."""

    outcomes: list[SweepOutcome]
    workers: int
    cache_dir: Optional[str] = None
    wall_time_s: float = 0.0

    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def estimator_calls(self) -> int:
        return sum(outcome.estimator_calls for outcome in self.outcomes)

    def summary(self) -> str:
        mode = f"{self.workers} process{'es' if self.workers != 1 else ''}"
        lines = [
            f"Sweep: {len(self.outcomes)} tasks on {mode}, "
            f"{self.estimator_calls} estimator calls, {self.wall_time_s:.2f}s wall"
        ]
        lines.extend(f"  {outcome.summary()}" for outcome in self.outcomes)
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "workers": self.workers,
            "cache_dir": self.cache_dir,
            "wall_time_s": self.wall_time_s,
            "outcomes": [to_jsonable(outcome) for outcome in self.outcomes],
        }

    def save(self, path):
        """Write the result (journals included) as deterministic JSON."""
        return dump_json(self.as_dict(), path)


class SweepRunner:
    """Fan a sweep grid out across worker processes.

    ``workers=1`` runs every task in-process (serial, easiest to debug);
    ``workers>1`` uses a :class:`~concurrent.futures.ProcessPoolExecutor`.
    Results are collected in task order either way, and each task's journal
    is independent of the execution mode, so the two are interchangeable.
    """

    def __init__(
        self,
        tasks: Sequence[SweepTask],
        workers: int = 1,
        cache_dir: Optional[str] = None,
    ) -> None:
        if not tasks:
            raise ValueError("At least one sweep task is required")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.tasks = list(tasks)
        self.workers = workers
        self.cache_dir = str(cache_dir) if cache_dir is not None else None

    def run(self) -> SweepResult:
        start = time.perf_counter()
        if self.workers == 1 or len(self.tasks) == 1:
            outcomes = [run_sweep_task(task, self.cache_dir) for task in self.tasks]
        else:
            with ProcessPoolExecutor(max_workers=min(self.workers, len(self.tasks))) as pool:
                futures = [
                    pool.submit(run_sweep_task, task, self.cache_dir) for task in self.tasks
                ]
                outcomes = [future.result() for future in futures]
        wall = time.perf_counter() - start
        logger.info("sweep finished: %d tasks in %.2fs", len(outcomes), wall)
        return SweepResult(
            outcomes=outcomes,
            workers=self.workers,
            cache_dir=self.cache_dir,
            wall_time_s=wall,
        )
