"""Cross-strategy / cross-device comparison and diffing of sweep outcomes.

The comparison is **journal-driven**: per-strategy evaluation counts, cache
hit rates and candidate counts are re-derived from each outcome's archived
:class:`~repro.search.session.SearchSession` journal (not from ad-hoc
counters), so the same report can be rebuilt later from saved sweep results
and is directly comparable across runs and machines.  It renders both as an
aligned plain-text table block (:meth:`SweepComparison.render`) and as a
JSON-able structure (:meth:`SweepComparison.as_dict`).

Outcomes are grouped by **backend** (derived from each task's target spec,
see :mod:`repro.backend`): the report carries one quality/cost Pareto front
per backend — best gap (ms) minimised against journaled evaluations
minimised — plus a cross-backend front whenever the sweep mixed targets
from more than one backend, so an FPGA device and a GPU baseline can be
compared on one curve.

:func:`diff_results` compares two *saved* runs cell by cell (keyed by task
uid): per-uid latency / gap deltas, outcome-status transitions
(ok ↔ failed ↔ missing) and the cells present in only one run.  Both sides
load **checkpoint-aware** via :func:`load_run`: a ``_checkpoint.jsonl``, a
``SweepResult.save`` JSON and the CLI's ``{"sweep": ...}`` report file are
all accepted, so a crashed run's checkpoint can be diffed directly against
its finished re-run.
"""

from __future__ import annotations

import math
import pathlib
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.backend import backend_name_for
from repro.core.pareto import pareto_front
from repro.sweep.runner import SweepFailure, SweepOutcome, SweepResult
from repro.utils.tables import render_table


@dataclass(frozen=True)
class StrategySummary:
    """Aggregated view of every task one strategy ran."""

    strategy: str
    tasks: int
    evaluations: int
    cached_evaluations: int
    candidates: int
    best_gap_ms: Optional[float]
    mean_gap_ms: Optional[float]
    disk_hits: int
    disk_misses: int
    estimator_calls: int
    duration_s: float

    @property
    def cache_hit_rate(self) -> float:
        """In-memory (journaled) cache hit rate across the strategy's tasks."""
        return self.cached_evaluations / self.evaluations if self.evaluations else 0.0

    @property
    def disk_hit_rate(self) -> float:
        total = self.disk_hits + self.disk_misses
        return self.disk_hits / total if total else 0.0


@dataclass(frozen=True)
class DeviceWinner:
    """The best strategy for one (device, latency-target) cell."""

    device: str
    fps: float
    strategy: str
    best_gap_ms: Optional[float]
    candidates: int


@dataclass(frozen=True)
class ParetoPoint:
    """One non-dominated cell on a (best gap, evaluations) front."""

    backend: str
    device: str
    fps: float
    strategy: str
    best_gap_ms: float
    evaluations: int

    def as_dict(self) -> dict:
        return {
            "backend": self.backend,
            "device": self.device,
            "fps": self.fps,
            "strategy": self.strategy,
            "best_gap_ms": self.best_gap_ms,
            "evaluations": self.evaluations,
        }


def _pareto(points: Sequence[ParetoPoint]) -> list[ParetoPoint]:
    """Front minimising both the latency gap and the evaluation cost."""
    return pareto_front(
        points,
        cost=lambda p: p.best_gap_ms,
        value=lambda p: -p.evaluations,
    )


@dataclass
class SweepComparison:
    """Comparison report over one sweep's outcomes."""

    strategies: list[StrategySummary]
    winners: list[DeviceWinner]
    totals: dict
    #: Per-backend quality/cost fronts, keyed by backend name (sorted keys).
    pareto_fronts: dict[str, list[ParetoPoint]] = field(default_factory=dict)
    #: Joint front across backends; empty unless the sweep mixed backends.
    cross_backend_front: list[ParetoPoint] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "strategies": [
                {
                    "strategy": s.strategy,
                    "tasks": s.tasks,
                    "evaluations": s.evaluations,
                    "cached_evaluations": s.cached_evaluations,
                    "cache_hit_rate": s.cache_hit_rate,
                    "candidates": s.candidates,
                    "best_gap_ms": s.best_gap_ms,
                    "mean_gap_ms": s.mean_gap_ms,
                    "disk_hits": s.disk_hits,
                    "disk_misses": s.disk_misses,
                    "disk_hit_rate": s.disk_hit_rate,
                    "estimator_calls": s.estimator_calls,
                    "duration_s": s.duration_s,
                }
                for s in self.strategies
            ],
            "winners": [
                {
                    "device": w.device,
                    "fps": w.fps,
                    "strategy": w.strategy,
                    "best_gap_ms": w.best_gap_ms,
                    "candidates": w.candidates,
                }
                for w in self.winners
            ],
            "pareto_fronts": {
                backend: [p.as_dict() for p in front]
                for backend, front in self.pareto_fronts.items()
            },
            "cross_backend_front": [p.as_dict() for p in self.cross_backend_front],
            "totals": dict(self.totals),
        }

    def render(self) -> str:
        strategy_rows = [
            [
                s.strategy,
                s.tasks,
                s.evaluations,
                f"{s.cache_hit_rate:.1%}",
                s.candidates,
                "-" if s.best_gap_ms is None else f"{s.best_gap_ms:.2f}",
                s.estimator_calls,
                f"{s.disk_hit_rate:.1%}" if (s.disk_hits or s.disk_misses) else "-",
                f"{s.duration_s:.2f}",
            ]
            for s in self.strategies
        ]
        winner_rows = [
            [
                w.device,
                f"{w.fps:g} FPS",
                w.strategy,
                "-" if w.best_gap_ms is None else f"{w.best_gap_ms:.2f}",
                w.candidates,
            ]
            for w in self.winners
        ]
        blocks = [
            render_table(
                ["strategy", "tasks", "evals", "cache hit", "cands",
                 "best gap (ms)", "est. calls", "disk hit", "wall (s)"],
                strategy_rows,
                title="Per-strategy comparison",
            ),
            render_table(
                ["device", "target", "winner", "best gap (ms)", "cands"],
                winner_rows,
                title="Per-device winners",
            ),
        ]
        for backend, front in self.pareto_fronts.items():
            blocks.append(render_table(
                ["device", "target", "strategy", "best gap (ms)", "evals"],
                [
                    [p.device, f"{p.fps:g} FPS", p.strategy,
                     f"{p.best_gap_ms:.2f}", p.evaluations]
                    for p in front
                ],
                title=f"Pareto front [backend={backend}] (gap vs evaluations)",
            ))
        if self.cross_backend_front:
            blocks.append(render_table(
                ["backend", "device", "target", "strategy",
                 "best gap (ms)", "evals"],
                [
                    [p.backend, p.device, f"{p.fps:g} FPS", p.strategy,
                     f"{p.best_gap_ms:.2f}", p.evaluations]
                    for p in self.cross_backend_front
                ],
                title="Cross-backend Pareto front (gap vs evaluations)",
            ))
        blocks.append(
                f"Totals: {self.totals['tasks']} tasks, "
                f"{self.totals['evaluations']} evaluations, "
                f"{self.totals['candidates']} candidates, "
                f"{self.totals['estimator_calls']} estimator calls"
                + (
                    f", {self.totals['failed_tasks']} failed cells"
                    if self.totals.get("failed_tasks") else ""
                )
                + (
                    f", {self.totals['reused_tasks']} reused cells"
                    if self.totals.get("reused_tasks") else ""
                )
        )
        text = "\n\n".join(blocks)
        # ljust-padded cells leave trailing spaces; strip them per line so
        # the report diffs cleanly and golden tests stay readable.
        return "\n".join(line.rstrip() for line in text.splitlines())


def _journal_counts(outcome: SweepOutcome) -> tuple[int, int, int]:
    """(evaluations, cached evaluations, candidates) from the journal."""
    records = outcome.journal.get("records", [])
    candidates = outcome.journal.get("candidates", [])
    cached = sum(1 for record in records if record.get("cached"))
    return len(records), cached, len(candidates)


def compare(outcomes: Sequence[SweepOutcome] | SweepResult) -> SweepComparison:
    """Build the cross-strategy / cross-device comparison report.

    Accepts a :class:`SweepResult` (failed cells are excluded from the
    statistics but counted in the totals, and checkpoint-reused cells are
    surfaced in the totals) or a plain outcome sequence.  Because the
    per-cell statistics are journal-driven and reused outcomes are
    replayed verbatim, a resumed sweep's report is indistinguishable from
    a single-shot run apart from the reused-cell count.
    """
    failed = 0
    reused = 0
    if isinstance(outcomes, SweepResult):
        failed = len(outcomes.failures)
        reused = outcomes.reused
        outcomes = outcomes.outcomes
    outcomes = list(outcomes)
    if not outcomes:
        raise ValueError("At least one surviving sweep outcome is required")

    # One journal scan per outcome; the loops below only index this.
    counts_by_outcome = {id(outcome): _journal_counts(outcome) for outcome in outcomes}

    strategies: list[StrategySummary] = []
    for strategy in sorted({outcome.task.strategy for outcome in outcomes}):
        mine = [outcome for outcome in outcomes if outcome.task.strategy == strategy]
        counts = [counts_by_outcome[id(outcome)] for outcome in mine]
        gaps = [o.best_gap_ms for o in mine if o.best_gap_ms is not None]
        strategies.append(StrategySummary(
            strategy=strategy,
            tasks=len(mine),
            evaluations=sum(c[0] for c in counts),
            cached_evaluations=sum(c[1] for c in counts),
            candidates=sum(c[2] for c in counts),
            best_gap_ms=min(gaps) if gaps else None,
            mean_gap_ms=sum(gaps) / len(gaps) if gaps else None,
            disk_hits=sum(o.disk_hits for o in mine),
            disk_misses=sum(o.disk_misses for o in mine),
            estimator_calls=sum(o.estimator_calls for o in mine),
            duration_s=sum(o.duration_s for o in mine),
        ))

    winners: list[DeviceWinner] = []
    cells = sorted({(o.task.device, o.task.fps) for o in outcomes})
    for device, fps in cells:
        contenders = [o for o in outcomes if (o.task.device, o.task.fps) == (device, fps)]
        # Tie-breaks use journal-derived counts only: estimator-call counts
        # depend on disk-cache warmth and would flip winners across re-runs.
        best = min(contenders, key=lambda o: (
            o.best_gap_ms if o.best_gap_ms is not None else math.inf,
            -counts_by_outcome[id(o)][2],
            counts_by_outcome[id(o)][0],
            o.task.strategy,
        ))
        winners.append(DeviceWinner(
            device=device,
            fps=fps,
            strategy=best.task.strategy,
            best_gap_ms=best.best_gap_ms,
            candidates=counts_by_outcome[id(best)][2],
        ))

    # Quality/cost Pareto fronts: per backend, plus a joint front when the
    # sweep mixed backends (e.g. FPGA devices against the GPU baseline).
    points = [
        ParetoPoint(
            backend=backend_name_for(o.task.device),
            device=o.task.device,
            fps=o.task.fps,
            strategy=o.task.strategy,
            best_gap_ms=o.best_gap_ms,
            evaluations=counts_by_outcome[id(o)][0],
        )
        for o in outcomes
        if o.best_gap_ms is not None
    ]
    pareto_fronts = {
        backend: _pareto([p for p in points if p.backend == backend])
        for backend in sorted({p.backend for p in points})
    }
    cross_backend_front = _pareto(points) if len(pareto_fronts) > 1 else []

    totals = {
        "tasks": len(outcomes),
        "failed_tasks": failed,
        "reused_tasks": reused,
        "evaluations": sum(s.evaluations for s in strategies),
        "candidates": sum(s.candidates for s in strategies),
        "estimator_calls": sum(s.estimator_calls for s in strategies),
        "disk_hits": sum(s.disk_hits for s in strategies),
        "disk_misses": sum(s.disk_misses for s in strategies),
        "duration_s": sum(s.duration_s for s in strategies),
    }
    return SweepComparison(
        strategies=strategies,
        winners=winners,
        totals=totals,
        pareto_fronts=pareto_fronts,
        cross_backend_front=cross_backend_front,
    )


# ------------------------------------------------------------------ run diff
_RunLike = Union[str, pathlib.Path, SweepResult]


def load_run(source: _RunLike) -> tuple[dict[str, SweepOutcome], dict[str, SweepFailure]]:
    """Load one run's settled cells keyed by task uid, checkpoint-aware.

    Accepts an in-memory :class:`SweepResult`, a saved result / CLI report
    JSON, or an incremental ``_checkpoint.jsonl`` (newest record per uid
    wins, exactly as ``--resume`` would read it).
    """
    if isinstance(source, SweepResult):
        return (
            {o.task.uid: o for o in source.outcomes},
            {f.task.uid: f for f in source.failures},
        )
    path = pathlib.Path(source)
    if path.suffix == ".jsonl":
        from repro.sweep.checkpoint import load_checkpoint

        status = load_checkpoint(path)
        return dict(status.outcomes), dict(status.failures)
    result = SweepResult.load(path)
    return (
        {o.task.uid: o for o in result.outcomes},
        {f.task.uid: f for f in result.failures},
    )


@dataclass(frozen=True)
class DiffRow:
    """One task uid's state in run A versus run B."""

    uid: str
    name: str
    status_a: str  # "ok" | "failed" | "missing"
    status_b: str
    backend: str = ""
    latency_a: Optional[float] = None
    latency_b: Optional[float] = None
    gap_a: Optional[float] = None
    gap_b: Optional[float] = None
    evaluations_a: Optional[int] = None
    evaluations_b: Optional[int] = None

    @property
    def latency_delta_ms(self) -> Optional[float]:
        if self.latency_a is None or self.latency_b is None:
            return None
        return self.latency_b - self.latency_a

    @property
    def gap_delta_ms(self) -> Optional[float]:
        if self.gap_a is None or self.gap_b is None:
            return None
        return self.gap_b - self.gap_a

    @property
    def changed(self) -> bool:
        """True when anything observable about the cell differs."""
        return (
            self.status_a != self.status_b
            or self.latency_a != self.latency_b
            or self.gap_a != self.gap_b
            or self.evaluations_a != self.evaluations_b
        )

    def as_dict(self) -> dict:
        return {
            "uid": self.uid,
            "name": self.name,
            "backend": self.backend,
            "status_a": self.status_a,
            "status_b": self.status_b,
            "latency_a": self.latency_a,
            "latency_b": self.latency_b,
            "latency_delta_ms": self.latency_delta_ms,
            "gap_a": self.gap_a,
            "gap_b": self.gap_b,
            "gap_delta_ms": self.gap_delta_ms,
            "evaluations_a": self.evaluations_a,
            "evaluations_b": self.evaluations_b,
            "changed": self.changed,
        }


@dataclass
class SweepDiff:
    """Per-uid delta view of two saved sweep runs."""

    label_a: str
    label_b: str
    rows: list[DiffRow] = field(default_factory=list)

    @property
    def changed(self) -> list[DiffRow]:
        return [row for row in self.rows if row.changed]

    @property
    def identical(self) -> bool:
        return not self.changed

    def as_dict(self) -> dict:
        return {
            "a": self.label_a,
            "b": self.label_b,
            "cells": len(self.rows),
            "changed": len(self.changed),
            "identical": self.identical,
            "rows": [row.as_dict() for row in self.rows],
        }

    def render(self, only_changed: bool = False) -> str:
        def fmt(value, pattern="{:.3f}") -> str:
            return "-" if value is None else pattern.format(value)

        rows = self.changed if only_changed else self.rows
        table_rows = [
            [
                row.name,
                row.backend or "-",
                row.status_a if row.status_a == row.status_b
                else f"{row.status_a} -> {row.status_b}",
                fmt(row.latency_a),
                fmt(row.latency_b),
                fmt(row.latency_delta_ms, "{:+.3f}"),
                fmt(row.gap_delta_ms, "{:+.3f}"),
                "-" if row.evaluations_a is None or row.evaluations_b is None
                else f"{row.evaluations_b - row.evaluations_a:+d}",
            ]
            for row in rows
        ]
        blocks = []
        if table_rows:
            blocks.append(render_table(
                ["cell", "backend", "status", "latency A (ms)", "latency B (ms)",
                 "Δ latency (ms)", "Δ gap (ms)", "Δ evals"],
                table_rows,
                title=f"Sweep diff: A={self.label_a}  B={self.label_b}",
            ))
        verdict = (
            "Runs are identical cell for cell."
            if self.identical
            else f"{len(self.changed)}/{len(self.rows)} cell(s) differ."
        )
        blocks.append(verdict)
        text = "\n\n".join(blocks)
        return "\n".join(line.rstrip() for line in text.splitlines())


def diff_results(
    a: _RunLike,
    b: _RunLike,
    *,
    label_a: Optional[str] = None,
    label_b: Optional[str] = None,
) -> SweepDiff:
    """Per-uid delta table between two saved runs (checkpoint-aware).

    Every uid present in either run gets a row; a cell missing from one
    side is reported with status ``missing`` rather than dropped, so a
    partial (crashed) run diffs cleanly against its completed re-run.
    """
    outcomes_a, failures_a = load_run(a)
    outcomes_b, failures_b = load_run(b)

    def describe(uid: str, outcomes, failures) -> tuple:
        outcome = outcomes.get(uid)
        if outcome is not None:
            return ("ok", outcome.task, outcome.best_latency_ms,
                    outcome.best_gap_ms, outcome.evaluations)
        failure = failures.get(uid)
        if failure is not None:
            return ("failed", failure.task, None, None, None)
        return ("missing", None, None, None, None)

    rows = []
    for uid in sorted(set(outcomes_a) | set(failures_a)
                      | set(outcomes_b) | set(failures_b)):
        status_a, task_a, latency_a, gap_a, evals_a = \
            describe(uid, outcomes_a, failures_a)
        status_b, task_b, latency_b, gap_b, evals_b = \
            describe(uid, outcomes_b, failures_b)
        task = task_a if task_a is not None else task_b
        rows.append(DiffRow(
            uid=uid,
            name=task.name if task is not None else uid,
            backend=backend_name_for(task.device) if task is not None else "",
            status_a=status_a,
            status_b=status_b,
            latency_a=latency_a,
            latency_b=latency_b,
            gap_a=gap_a,
            gap_b=gap_b,
            evaluations_a=evals_a,
            evaluations_b=evals_b,
        ))
    return SweepDiff(
        label_a=str(label_a if label_a is not None else a),
        label_b=str(label_b if label_b is not None else b),
        rows=rows,
    )
