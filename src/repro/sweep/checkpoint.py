"""Incremental sweep checkpoint and timing-hint sidecar persistence.

A long multi-device sweep writes two small sidecar files next to the
evaluation-cache shards inside its ``--cache-dir``:

``_checkpoint.jsonl``
    One JSON line per *settled* grid cell, appended by the parent the
    moment the cell's :class:`~repro.sweep.runner.SweepOutcome` or
    :class:`~repro.sweep.runner.SweepFailure` is final.  Each append is a
    single flushed+fsynced ``write`` of one full line, so a sweep killed
    at any point (OOM, preemption, ^C) leaves a checkpoint containing
    every cell that finished before the kill, possibly followed by one
    torn line, which the loader skips.  ``SweepRunner(resume_from=...)``
    replays the recorded outcomes verbatim and re-runs only the failed
    and missing cells.

``_timings.json``
    Per-cell wall-clock durations feeding the cost model
    (longest-expected-first dispatch and cost-hint-scaled timeouts).
    Each entry is ``{"duration_s": ..., "ts": ...}`` keyed by the task
    :attr:`~repro.sweep.runner.SweepTask.uid`; the write timestamp lets
    ``repro-codesign cache gc`` age-prune hints of grids that no longer
    run.  Legacy files holding plain floats still load (their timestamp
    is inherited from the file's mtime during compaction).

Both files are keyed by the task *uid* — the fully qualified cell
identity including the search budget and seed — never by the shorter
display name, so cells differing only in ``iterations`` or ``seed`` can
never alias each other's records.

Records are reconstructed through ``SweepOutcome.from_dict`` /
``SweepFailure.from_dict``; any line that fails to parse or rebuild is
counted as corrupt and skipped (and dropped by compaction), never
trusted.  When one uid appears several times — a resumed sweep appends a
fresh record for a re-run cell — the newest line wins, and an outcome
and a failure for the same uid supersede each other in file order.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence, Union

from repro.sweep.runner import SweepFailure, SweepOutcome
from repro.utils.logging import get_logger
from repro.utils.serialization import to_jsonable

logger = get_logger(__name__)

#: Name of the per-cache-dir incremental checkpoint (JSON lines).
CHECKPOINT_FILENAME = "_checkpoint.jsonl"

#: Checkpoint line format version (bumped on incompatible changes).
CHECKPOINT_VERSION = 1

_PathLike = Union[str, pathlib.Path]


def _iter_checkpoint_lines(path: pathlib.Path):
    """Yield ``(kind, uid, record)`` per checkpoint line.

    Shared line-level parsing for the loader, the cheap scanner and the
    compactor: JSON-decode, shape-check and kind/uid-validate every line,
    yielding ``("corrupt", None, None)`` for anything malformed and
    ``("header", None, record)`` for header lines.  Raises ``OSError``
    when the file cannot be read — each caller decides what that means.
    """
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:  # torn write at the kill point
            yield "corrupt", None, None
            continue
        if not isinstance(record, dict):
            yield "corrupt", None, None
            continue
        kind = record.get("kind")
        if kind == "header":
            yield "header", None, record
            continue
        uid = record.get("uid")
        if kind not in ("outcome", "failure") or not isinstance(uid, str):
            yield "corrupt", None, None
            continue
        yield kind, uid, record


# -------------------------------------------------------------- checkpointing
@dataclass
class CheckpointStatus:
    """Parsed view of one ``_checkpoint.jsonl`` file."""

    path: str
    grid: list[str] = field(default_factory=list)
    outcomes: dict[str, SweepOutcome] = field(default_factory=dict)
    failures: dict[str, SweepFailure] = field(default_factory=dict)
    records: int = 0
    corrupt_lines: int = 0

    @property
    def settled(self) -> int:
        """Number of cells with a current (newest-wins) record."""
        return len(self.outcomes) + len(self.failures)

    def summary(self) -> str:
        line = (
            f"checkpoint {self.path}: {len(self.outcomes)} completed, "
            f"{len(self.failures)} failed"
        )
        if self.corrupt_lines:
            line += f", {self.corrupt_lines} corrupt line(s)"
        return line


def load_checkpoint(path: _PathLike) -> CheckpointStatus:
    """Parse a checkpoint file; torn/garbage lines are counted and skipped.

    The newest record per task uid wins; an outcome supersedes an earlier
    failure of the same cell and vice versa (a resumed sweep appends the
    re-run's result after the original failure record).
    """
    path = pathlib.Path(path)
    status = CheckpointStatus(path=str(path))
    if not path.exists():
        return status
    try:
        parsed = list(_iter_checkpoint_lines(path))
    except OSError:  # pragma: no cover - unreadable checkpoint
        logger.warning("checkpoint %s is unreadable; treating it as empty", path)
        return status
    for kind, uid, record in parsed:
        if kind == "corrupt":
            status.corrupt_lines += 1
        elif kind == "header":
            version = record.get("version")
            if isinstance(version, int) and version > CHECKPOINT_VERSION:
                logger.warning(
                    "checkpoint %s was written by a newer format "
                    "(version %d, this build reads %d); records may be misread",
                    path, version, CHECKPOINT_VERSION,
                )
            grid = record.get("grid")
            if isinstance(grid, list):
                status.grid = [str(u) for u in grid]
        elif kind == "outcome":
            try:
                outcome = SweepOutcome.from_dict(record.get("outcome") or {})
            except (KeyError, TypeError, ValueError):
                status.corrupt_lines += 1
                continue
            if outcome.task.uid != uid:
                status.corrupt_lines += 1
                continue
            status.outcomes[uid] = outcome
            status.failures.pop(uid, None)
            status.records += 1
        else:  # failure
            try:
                failure = SweepFailure.from_dict(record.get("failure") or {})
            except (KeyError, TypeError, ValueError):
                status.corrupt_lines += 1
                continue
            if failure.task.uid != uid:
                status.corrupt_lines += 1
                continue
            status.failures[uid] = failure
            status.outcomes.pop(uid, None)
            status.records += 1
    if status.corrupt_lines:
        logger.warning(
            "checkpoint %s: skipped %d corrupt line(s); "
            "run 'repro-codesign cache gc' to repair it",
            path, status.corrupt_lines,
        )
    return status


def scan_checkpoint(path: _PathLike) -> tuple[int, int, int]:
    """Cheap ``(outcomes, failures, corrupt_lines)`` count, newest-wins.

    For status displays (``cache stats``) only: validates line shape
    (JSON dict, known kind, string uid) but does *not* reconstruct the
    embedded records — a week-long grid's checkpoint embeds every cell's
    full journal, and rebuilding all of them to report three integers
    would load the whole sweep into memory.  Payload-level corruption
    (which :func:`load_checkpoint` counts as corrupt) is therefore
    classified by its ``kind`` here.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return 0, 0, 0
    kinds: dict[str, str] = {}
    corrupt = 0
    try:
        for kind, uid, _record in _iter_checkpoint_lines(path):
            if kind == "corrupt":
                corrupt += 1
            elif kind != "header":
                kinds[uid] = kind
    except OSError:  # pragma: no cover - unreadable checkpoint
        return 0, 0, 0
    outcomes = sum(1 for kind in kinds.values() if kind == "outcome")
    return outcomes, len(kinds) - outcomes, corrupt


def checkpoint_cells(path: _PathLike) -> dict[str, str]:
    """Newest-wins ``{uid: "outcome" | "failure"}`` map, without payloads.

    The per-cell counterpart of :func:`scan_checkpoint`: status surfaces
    (the job service's per-cell progress view) need to know *which* cells
    settled, not what they produced, so the embedded journals are never
    reconstructed.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return {}
    kinds: dict[str, str] = {}
    try:
        for kind, uid, _record in _iter_checkpoint_lines(path):
            if kind in ("outcome", "failure"):
                kinds[uid] = kind
    except OSError:  # pragma: no cover - unreadable checkpoint
        return {}
    return kinds


class CheckpointWriter:
    """Append settled-cell records to a checkpoint, one atomic line each.

    ``fresh=True`` (a sweep that is *not* resuming) truncates any previous
    checkpoint and writes a header carrying the grid's task uids, so a
    later ``--resume`` can report a grid mismatch.  ``fresh=False`` keeps
    the existing file, appends a new header describing the *current* grid
    (the newest header wins on load, so the file never misdescribes what
    a further resume would run), and then appends records — a resumed
    sweep that dies can itself be resumed.

    Every record is written as one ``write()`` of a full line on an
    append-mode handle, flushed and fsynced before the handle closes:
    a parent killed mid-sweep loses at most the line being written, which
    the loader skips as corrupt.

    The writer is **thread-safe**: a lock serialises appends and the
    recorded-uid bookkeeping, because the shard coordinator settles cells
    from concurrent HTTP handler threads (several workers reporting at
    once) while the local schedules settle from a single thread.

    All timestamps come from the injected ``clock`` (default
    :func:`time.time`): tests freeze it to make checkpoint bytes
    reproducible, and telemetry span records share the same clock so their
    ``ts`` values correlate with checkpoint ``ts`` values.
    """

    def __init__(
        self,
        path: _PathLike,
        grid: Sequence[str],
        fresh: bool = True,
        recorded: Optional[set[str]] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._recorded: set[str] = set()
        self._clock = clock
        header = {
            "kind": "header",
            "version": CHECKPOINT_VERSION,
            "grid": [str(uid) for uid in grid],
            "ts": round(self._clock(), 3),
        }
        if fresh or not self.path.exists():
            self.path.write_text(json.dumps(header, sort_keys=True) + "\n",
                                 encoding="utf-8")
            return
        self._append(header)
        if recorded is not None:
            # The caller already parsed this checkpoint (resume path):
            # don't reconstruct every journal a second time just to learn
            # which uids are present.
            self._recorded = set(recorded)
        else:
            self._recorded = set(load_checkpoint(self.path).outcomes)

    def has_outcome(self, uid: str) -> bool:
        """True when the checkpoint already holds an outcome for ``uid``."""
        with self._lock:
            return uid in self._recorded

    def record_outcome(self, outcome: SweepOutcome) -> None:
        record = {
            "kind": "outcome",
            "uid": outcome.task.uid,
            "outcome": to_jsonable(outcome),
            "ts": round(self._clock(), 3),
        }
        with self._lock:
            self._append(record)
            self._recorded.add(outcome.task.uid)

    def record_failure(self, failure: SweepFailure) -> None:
        record = {
            "kind": "failure",
            "uid": failure.task.uid,
            "failure": failure.as_dict(),
            "ts": round(self._clock(), 3),
        }
        with self._lock:
            self._append(record)
            self._recorded.discard(failure.task.uid)

    def _append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        try:
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()
                os.fsync(handle.fileno())
        except OSError:  # pragma: no cover - best-effort persistence
            logger.warning("could not append to checkpoint %s", self.path)


def compact_checkpoint(
    path: _PathLike,
    *,
    max_age_days: Optional[float] = None,
    now: Optional[float] = None,
) -> tuple[int, int, int]:
    """Rewrite a checkpoint: newest record per uid, drop corrupt, age-evict.

    Returns ``(records_kept, records_pruned, corrupt_lines_dropped)``.
    The newest header is preserved; records older than ``max_age_days``
    (by their line timestamp, falling back to the file's mtime) are
    evicted.  The rewrite is atomic (temp file + rename).  A missing file
    is a no-op.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return 0, 0, 0
    now = time.time() if now is None else float(now)
    try:
        mtime = path.stat().st_mtime
        parsed = list(_iter_checkpoint_lines(path))
    except OSError:  # pragma: no cover - unreadable checkpoint
        logger.warning("checkpoint %s is unreadable; leaving it untouched", path)
        return 0, 0, 0

    header: Optional[dict] = None
    newest: dict[str, dict] = {}
    total = 0
    corrupt = 0
    for kind, uid, record in parsed:
        if kind == "corrupt":
            corrupt += 1
            continue
        if kind == "header":
            header = record
            continue
        payload = record.get("outcome") if kind == "outcome" else record.get("failure")
        if not isinstance(payload, dict):
            corrupt += 1
            continue
        try:
            if kind == "outcome":
                rebuilt_uid = SweepOutcome.from_dict(payload).task.uid
            else:
                rebuilt_uid = SweepFailure.from_dict(payload).task.uid
        except (KeyError, TypeError, ValueError):
            corrupt += 1
            continue
        if rebuilt_uid != uid:
            # The loader rejects such a line as corrupt; keeping it here
            # would let it clobber a good record of the same uid.
            corrupt += 1
            continue
        if not isinstance(record.get("ts"), (int, float)):
            record["ts"] = round(mtime, 3)
        total += 1
        newest[uid] = record  # later lines win

    kept = dict(newest)
    if max_age_days is not None:
        cutoff = now - max_age_days * 86400.0
        kept = {uid: rec for uid, rec in kept.items() if rec["ts"] >= cutoff}
    pruned = total - len(kept)

    payload_lines = []
    if header is not None:
        payload_lines.append(json.dumps(header, sort_keys=True))
    for uid in sorted(kept, key=lambda u: (kept[u]["ts"], u)):
        payload_lines.append(json.dumps(kept[uid], sort_keys=True))
    tmp = path.with_suffix(".jsonl.tmp")
    tmp.write_text("".join(line + "\n" for line in payload_lines), encoding="utf-8")
    os.replace(tmp, path)
    return len(kept), pruned, corrupt


# ------------------------------------------------------------- timing sidecar
def _normalize_timing(value, fallback_ts: float) -> Optional[dict]:
    """Coerce one raw timings entry into ``{"duration_s", "ts"}`` or None."""
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return {"duration_s": float(value), "ts": round(fallback_ts, 3)}
    if isinstance(value, dict) and isinstance(value.get("duration_s"), (int, float)) \
            and not isinstance(value.get("duration_s"), bool):
        ts = value.get("ts")
        return {
            "duration_s": float(value["duration_s"]),
            "ts": round(float(ts), 3) if isinstance(ts, (int, float)) else round(fallback_ts, 3),
        }
    return None


def _read_raw_timings(path: pathlib.Path) -> Optional[dict]:
    if not path.exists():
        return {}
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        logger.warning("ignoring unreadable timings file %s", path)
        return None
    if not isinstance(payload, dict):
        logger.warning("ignoring malformed timings file %s", path)
        return None
    return payload


def load_timings(path: _PathLike) -> dict[str, float]:
    """Load cost hints: ``{task uid: duration seconds}``.

    Accepts both the timestamped record format and legacy plain-float
    files; garbage entries are silently dropped.
    """
    path = pathlib.Path(path)
    raw = _read_raw_timings(path)
    if not raw:
        return {}
    hints: dict[str, float] = {}
    for name, value in raw.items():
        record = _normalize_timing(value, 0.0)
        if record is not None:
            hints[str(name)] = record["duration_s"]
    return hints


def save_timings(
    path: _PathLike,
    durations: Mapping[str, float],
    now: Optional[float] = None,
) -> None:
    """Merge ``durations`` (uid -> seconds) into the timings file atomically."""
    if not durations:
        return
    path = pathlib.Path(path)
    now = time.time() if now is None else float(now)
    raw = _read_raw_timings(path)
    merged: dict[str, dict] = {}
    if raw:
        mtime = path.stat().st_mtime if path.exists() else now
        for name, value in raw.items():
            record = _normalize_timing(value, mtime)
            if record is not None:
                merged[str(name)] = record
    for uid, duration in durations.items():
        merged[str(uid)] = {"duration_s": round(float(duration), 6),
                            "ts": round(now, 3)}
    tmp = path.with_suffix(".json.tmp")
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_text(json.dumps(merged, sort_keys=True, indent=0) + "\n",
                       encoding="utf-8")
        os.replace(tmp, path)
    except OSError:  # pragma: no cover - best-effort persistence
        logger.warning("could not persist sweep timings to %s", path)


def compact_timings(
    path: _PathLike,
    *,
    max_age_days: Optional[float] = None,
    now: Optional[float] = None,
) -> tuple[int, int]:
    """Prune the timings file: drop garbage entries and age-evict stale ones.

    Stale cost hints accumulate forever otherwise — every grid ever swept
    against a cache directory leaves its task uids behind.  Entries whose
    timestamp (or the file's mtime, for legacy plain-float entries) is
    older than ``max_age_days`` are evicted.  Returns ``(kept, pruned)``;
    a missing or unreadable file is a no-op.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return 0, 0
    now = time.time() if now is None else float(now)
    raw = _read_raw_timings(path)
    if raw is None:
        return 0, 0
    mtime = path.stat().st_mtime
    kept: dict[str, dict] = {}
    total = len(raw)
    for name, value in raw.items():
        record = _normalize_timing(value, mtime)
        if record is None:
            continue
        if max_age_days is not None and record["ts"] < now - max_age_days * 86400.0:
            continue
        kept[str(name)] = record
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(kept, sort_keys=True, indent=0) + "\n",
                   encoding="utf-8")
    os.replace(tmp, path)
    return len(kept), total - len(kept)
