"""Persistent on-disk evaluation cache (JSON-lines).

:class:`DiskEvaluationCache` memoizes analytical-estimator calls *across
process boundaries and across runs*: every newly estimated configuration is
appended as one JSON line to a shard file inside the cache directory, and a
fresh instance reloads every shard on open.  It exposes the same callable
protocol as a plain estimator, so it layers *under* the in-memory
:class:`repro.search.cache.EvaluationCache`::

    disk = DiskEvaluationCache(auto_hls.estimate, cache_dir,
                               device=device.name, clock_mhz=100.0,
                               context=coefficients_fingerprint(coeffs))
    cache = EvaluationCache(disk)   # memory layer on top

With that stack, a repeated same-seed sweep serves every estimate from disk
and never invokes the estimator at all (``disk.misses`` is the exact count
of real estimator invocations).

Entries are namespaced by ``device @ clock | context``: an estimate is only
valid for the device, accelerator clock and fitted model coefficients it was
computed under, so the context should embed a coefficients fingerprint
(:func:`coefficients_fingerprint`).  Writes go to a per-instance shard file,
which keeps concurrent sweep workers from interleaving appends; reads scan
every shard of the instance's namespace (shard file names are
namespace-prefixed, so other devices' shards are never parsed), so workers
still share each other's results on the next run.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import re
import threading
from typing import TYPE_CHECKING, Callable, Optional

from repro.hw.analytical import PerformanceEstimate
from repro.hw.resource import ResourceVector
from repro.search.cache import CacheStats, config_cache_key
from repro.utils.logging import get_logger
from repro.utils.serialization import to_jsonable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.dnn_config import DNNConfig
    from repro.hw.analytical import AnalyticalModelCoefficients

logger = get_logger(__name__)


def coefficients_fingerprint(coefficients: "AnalyticalModelCoefficients") -> str:
    """Short, stable fingerprint of a set of analytical-model coefficients.

    Embedded in the disk-cache namespace so that entries computed under one
    coefficient fit can never be served after a refit changed the model.
    """
    payload = json.dumps(to_jsonable(coefficients), sort_keys=True)
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:12]


def _sanitize(name: str) -> str:
    """Make ``name`` safe as a file-name stem."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", name).strip("_") or "cache"


def _estimate_payload(estimate: PerformanceEstimate) -> dict:
    return {
        "latency_ms": float(estimate.latency_ms),
        "compute_ms": float(estimate.compute_ms),
        "data_movement_ms": float(estimate.data_movement_ms),
        "resources": {
            "lut": float(estimate.resources.lut),
            "ff": float(estimate.resources.ff),
            "dsp": float(estimate.resources.dsp),
            "bram": float(estimate.resources.bram),
        },
    }


def _estimate_from_payload(payload: dict) -> Optional[PerformanceEstimate]:
    try:
        resources = payload.get("resources", {})
        return PerformanceEstimate(
            latency_ms=float(payload["latency_ms"]),
            resources=ResourceVector(
                lut=float(resources.get("lut", 0.0)),
                ff=float(resources.get("ff", 0.0)),
                dsp=float(resources.get("dsp", 0.0)),
                bram=float(resources.get("bram", 0.0)),
            ),
            compute_ms=float(payload.get("compute_ms", 0.0)),
            data_movement_ms=float(payload.get("data_movement_ms", 0.0)),
        )
    except (KeyError, TypeError, ValueError):
        return None


class DiskEvaluationCache:
    """JSON-lines-backed estimator memoization, shared across runs.

    Parameters
    ----------
    estimator:
        The underlying estimator invoked on a miss.
    directory:
        Cache directory; created when missing.  Every shard of this
        instance's namespace in it is loaded on open.
    device:
        Device name the estimates belong to (part of the namespace).
    clock_mhz:
        Accelerator clock the estimates were computed at.
    context:
        Extra namespace component, typically a coefficients fingerprint.
    shard:
        Stem of the shard file new entries are appended to.  Give every
        concurrent writer (one sweep task = one worker process) a unique
        shard so appends never interleave; defaults to the namespace.
    """

    def __init__(
        self,
        estimator: Callable[["DNNConfig"], PerformanceEstimate],
        directory,
        *,
        device: str,
        clock_mhz: float = 100.0,
        context: str = "",
        shard: Optional[str] = None,
        key_fn: Callable[["DNNConfig"], str] = config_cache_key,
    ) -> None:
        self.estimator = estimator
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.key_fn = key_fn
        self.namespace = f"{device}@{clock_mhz:g}MHz"
        if context:
            self.namespace += f"|{context}"
        # Shard files are namespace-prefixed so loading can skip shards of
        # other devices / coefficient fits without parsing them.
        self._prefix = _sanitize(self.namespace)
        self.shard_path = self.directory / f"{self._prefix}--{_sanitize(shard or 'main')}.jsonl"
        self._store: dict[str, PerformanceEstimate] = {}
        self._hits = 0
        self._misses = 0
        self._lock = threading.Lock()
        self._load()

    # ------------------------------------------------------------ persistence
    def _load(self) -> None:
        loaded = 0
        # Only shards of this namespace are parsed; the per-record namespace
        # check below stays as a guard against sanitization collisions.
        for path in sorted(self.directory.glob(f"{self._prefix}--*.jsonl")):
            try:
                lines = path.read_text().splitlines()
            except OSError:  # pragma: no cover - unreadable shard
                continue
            for line in lines:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:  # torn write: skip the line
                    continue
                if record.get("namespace") != self.namespace:
                    continue
                estimate = _estimate_from_payload(record.get("estimate", {}))
                key = record.get("key")
                if estimate is not None and isinstance(key, str):
                    self._store[key] = estimate
                    loaded += 1
        if loaded:
            logger.debug("disk cache loaded %d entries for %s", loaded, self.namespace)

    def _append(self, key: str, estimate: PerformanceEstimate) -> None:
        record = {
            "namespace": self.namespace,
            "key": key,
            "estimate": _estimate_payload(estimate),
        }
        with self.shard_path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    # ------------------------------------------------------------- evaluation
    def __call__(self, config: "DNNConfig") -> PerformanceEstimate:
        return self.evaluate(config)

    def evaluate(self, config: "DNNConfig") -> PerformanceEstimate:
        return self.evaluate_with_info(config)[0]

    def evaluate_with_info(self, config: "DNNConfig") -> tuple[PerformanceEstimate, bool]:
        """Evaluate one config; returns ``(estimate, served_from_disk)``."""
        key = self.key_fn(config)
        with self._lock:
            cached = self._store.get(key)
            if cached is not None:
                self._hits += 1
                return cached, True
        value = self.estimator(config)
        with self._lock:
            self._misses += 1
            if key not in self._store:
                self._store[key] = value
                self._append(key, value)
        return value, False

    # ------------------------------------------------------------ bookkeeping
    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        """Real estimator invocations (disk misses)."""
        return self._misses

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses, size=len(self._store))

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, config: "DNNConfig") -> bool:
        return self.key_fn(config) in self._store
