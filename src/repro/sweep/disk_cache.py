"""Persistent on-disk evaluation cache (JSON-lines).

:class:`DiskEvaluationCache` memoizes analytical-estimator calls *across
process boundaries and across runs*: every newly estimated configuration is
appended as one JSON line to a shard file inside the cache directory, and a
fresh instance reloads every shard on open.  It exposes the same callable
protocol as a plain estimator, so it layers *under* the in-memory
:class:`repro.search.cache.EvaluationCache`::

    disk = DiskEvaluationCache(auto_hls.estimate, cache_dir,
                               device=device.name, clock_mhz=100.0,
                               context=coefficients_fingerprint(coeffs))
    cache = EvaluationCache(disk)   # memory layer on top

With that stack, a repeated same-seed sweep serves every estimate from disk
and never invokes the estimator at all (``disk.misses`` is the exact count
of real estimator invocations).

Entries are namespaced by ``device @ clock | context``: an estimate is only
valid for the device, accelerator clock and fitted model coefficients it was
computed under, so the context should embed a coefficients fingerprint
(:func:`coefficients_fingerprint`).  Writes go to a per-instance shard file,
which keeps concurrent sweep workers from interleaving appends; reads scan
every shard of the instance's namespace (shard file names are
namespace-prefixed, so other devices' shards are never parsed), so workers
still share each other's results on the next run.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import re
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence

import repro.telemetry as telemetry
from repro.hw.analytical import PerformanceEstimate
from repro.hw.resource import ResourceVector
from repro.search.cache import CacheStats, config_cache_key, resolve_batch_estimator
from repro.utils.logging import get_logger
from repro.utils.serialization import to_jsonable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.dnn_config import DNNConfig
    from repro.hw.analytical import AnalyticalModelCoefficients

logger = get_logger(__name__)


def coefficients_fingerprint(coefficients: "AnalyticalModelCoefficients") -> str:
    """Short, stable fingerprint of a set of analytical-model coefficients.

    Embedded in the disk-cache namespace so that entries computed under one
    coefficient fit can never be served after a refit changed the model.
    """
    payload = json.dumps(to_jsonable(coefficients), sort_keys=True)
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:12]


def _sanitize(name: str) -> str:
    """Make ``name`` safe as a file-name stem."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", name).strip("_") or "cache"


def _estimate_payload(estimate: PerformanceEstimate) -> dict:
    return {
        "latency_ms": float(estimate.latency_ms),
        "compute_ms": float(estimate.compute_ms),
        "data_movement_ms": float(estimate.data_movement_ms),
        "resources": {
            "lut": float(estimate.resources.lut),
            "ff": float(estimate.resources.ff),
            "dsp": float(estimate.resources.dsp),
            "bram": float(estimate.resources.bram),
        },
    }


def _estimate_from_payload(payload: dict) -> Optional[PerformanceEstimate]:
    try:
        resources = payload.get("resources", {})
        return PerformanceEstimate(
            latency_ms=float(payload["latency_ms"]),
            resources=ResourceVector(
                lut=float(resources.get("lut", 0.0)),
                ff=float(resources.get("ff", 0.0)),
                dsp=float(resources.get("dsp", 0.0)),
                bram=float(resources.get("bram", 0.0)),
            ),
            compute_ms=float(payload.get("compute_ms", 0.0)),
            data_movement_ms=float(payload.get("data_movement_ms", 0.0)),
        )
    except (KeyError, TypeError, ValueError):
        return None


class DiskEvaluationCache:
    """JSON-lines-backed estimator memoization, shared across runs.

    Parameters
    ----------
    estimator:
        The underlying estimator invoked on a miss.
    directory:
        Cache directory; created when missing.  Every shard of this
        instance's namespace in it is loaded on open.
    device:
        Device name the estimates belong to (part of the namespace).
    clock_mhz:
        Accelerator clock the estimates were computed at.
    context:
        Extra namespace component, typically a coefficients fingerprint.
    shard:
        Stem of the shard file new entries are appended to.  Give every
        concurrent writer (one sweep task = one worker process) a unique
        shard so appends never interleave; defaults to the namespace.
    clock:
        Wall-clock source for the per-record ``ts`` timestamps (default
        :func:`time.time`) — the same injected-clock contract as the
        checkpoint, timings and telemetry sidecars, so frozen-clock tests
        get byte-stable shard records.
    """

    def __init__(
        self,
        estimator: Callable[["DNNConfig"], PerformanceEstimate],
        directory,
        *,
        device: str,
        clock_mhz: float = 100.0,
        context: str = "",
        shard: Optional[str] = None,
        key_fn: Callable[["DNNConfig"], str] = config_cache_key,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.estimator = estimator
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.key_fn = key_fn
        self.namespace = f"{device}@{clock_mhz:g}MHz"
        if context:
            self.namespace += f"|{context}"
        # Shard files are namespace-prefixed so loading can skip shards of
        # other devices / coefficient fits without parsing them.
        self._prefix = _sanitize(self.namespace)
        self.shard_path = self.directory / f"{self._prefix}--{_sanitize(shard or 'main')}.jsonl"
        self._store: dict[str, PerformanceEstimate] = {}
        self._hits = 0
        self._misses = 0
        self._lock = threading.Lock()
        self._clock = clock
        self._load()

    # ------------------------------------------------------------ persistence
    def _load(self) -> None:
        loaded = 0
        # Only shards of this namespace are parsed; the per-record namespace
        # check below stays as a guard against sanitization collisions.
        for path in sorted(self.directory.glob(f"{self._prefix}--*.jsonl")):
            try:
                lines = path.read_text().splitlines()
            except OSError:  # pragma: no cover - unreadable shard
                continue
            corrupt = 0
            for line in lines:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:  # torn write: skip the line
                    corrupt += 1
                    continue
                if not isinstance(record, dict) or record.get("namespace") != self.namespace:
                    continue
                estimate = _estimate_from_payload(record.get("estimate", {}))
                key = record.get("key")
                if estimate is not None and isinstance(key, str):
                    self._store[key] = estimate
                    loaded += 1
            if corrupt:
                logger.warning(
                    "disk cache shard %s: skipped %d corrupt line(s); "
                    "run 'repro-codesign cache gc' to repair it",
                    path.name, corrupt,
                )
        if loaded:
            logger.debug("disk cache loaded %d entries for %s", loaded, self.namespace)

    def _append(self, key: str, estimate: PerformanceEstimate) -> None:
        record = {
            "namespace": self.namespace,
            "key": key,
            "estimate": _estimate_payload(estimate),
            "ts": round(self._clock(), 3),
        }
        with self.shard_path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    def _append_many(self, entries: Sequence[tuple[str, PerformanceEstimate]]) -> None:
        """Append many records with one shard-file open (and one ``ts``).

        Record format and order match a sequence of :meth:`_append` calls, so
        shards written by the batched path replay identically.
        """
        if not entries:
            return
        ts = round(self._clock(), 3)
        lines = [
            json.dumps(
                {
                    "namespace": self.namespace,
                    "key": key,
                    "estimate": _estimate_payload(estimate),
                    "ts": ts,
                },
                sort_keys=True,
            ) + "\n"
            for key, estimate in entries
        ]
        with self.shard_path.open("a", encoding="utf-8") as handle:
            handle.write("".join(lines))

    # ------------------------------------------------------------- evaluation
    def __call__(self, config: "DNNConfig") -> PerformanceEstimate:
        return self.evaluate(config)

    def evaluate(self, config: "DNNConfig") -> PerformanceEstimate:
        return self.evaluate_with_info(config)[0]

    def evaluate_with_info(self, config: "DNNConfig") -> tuple[PerformanceEstimate, bool]:
        """Evaluate one config; returns ``(estimate, served_from_disk)``."""
        key = self.key_fn(config)
        reg = telemetry.registry()
        with self._lock:
            cached = self._store.get(key)
            if cached is not None:
                self._hits += 1
                if reg is not None:
                    reg.counter("sweep.disk_cache.hits").inc()
                return cached, True
        value = self.estimator(config)
        with self._lock:
            self._misses += 1
            if key not in self._store:
                self._store[key] = value
                self._append(key, value)
        if reg is not None:
            reg.counter("sweep.disk_cache.misses").inc()
        return value, False

    def estimate_batch(self, configs: Sequence["DNNConfig"]) -> list[PerformanceEstimate]:
        """Evaluate a batch: bulk disk lookup, one estimator batch, one append.

        ``misses`` still counts exactly the configs the underlying estimator
        scored (one per unique missing key — the in-memory layer above
        already deduplicates, so in the sweep stack this equals the scalar
        path's count record for record).  The underlying estimator's own
        ``estimate_batch`` is used when it offers one; results and shard
        records are bit-identical either way.
        """
        keys = [self.key_fn(config) for config in configs]
        results: list = [None] * len(configs)
        missing: dict[str, int] = {}
        batch_hits = 0
        with self._lock:
            for index, key in enumerate(keys):
                value = self._store.get(key)
                if value is not None:
                    results[index] = value
                    self._hits += 1
                    batch_hits += 1
                elif key not in missing:
                    missing[key] = index
        batch_misses = 0
        representatives = [configs[index] for index in missing.values()]
        if representatives:
            batch_estimate = resolve_batch_estimator(self.estimator)
            if batch_estimate is not None and len(representatives) > 1:
                values = batch_estimate(representatives)
            else:
                values = [self.estimator(config) for config in representatives]
            with self._lock:
                fresh: list[tuple[str, PerformanceEstimate]] = []
                for key, value in zip(missing, values):
                    self._misses += 1
                    batch_misses += 1
                    if key not in self._store:
                        self._store[key] = value
                        fresh.append((key, value))
                self._append_many(fresh)
        with self._lock:
            for index, key in enumerate(keys):
                if results[index] is None:
                    results[index] = self._store[key]
        reg = telemetry.registry()
        if reg is not None:
            if batch_hits:
                reg.counter("sweep.disk_cache.hits").inc(batch_hits)
            if batch_misses:
                reg.counter("sweep.disk_cache.misses").inc(batch_misses)
        return results

    # ------------------------------------------------------------- bulk access
    def get_many(self, configs: Sequence["DNNConfig"]) -> list:
        """Bulk lookup; ``None`` marks configs absent from the disk store.

        A pure read: found entries count as hits, absent ones leave
        ``misses`` untouched (that counter is reserved for real estimator
        invocations).
        """
        reg = telemetry.registry()
        results: list = []
        found = 0
        with self._lock:
            for config in configs:
                value = self._store.get(self.key_fn(config))
                if value is not None:
                    self._hits += 1
                    found += 1
                results.append(value)
        if reg is not None:
            if found:
                reg.counter("sweep.disk_cache.hits").inc(found)
        return results

    def put_many(
        self, configs: Sequence["DNNConfig"], estimates: Sequence[PerformanceEstimate]
    ) -> None:
        """Persist precomputed estimates; counter-neutral, one shard append."""
        if len(configs) != len(estimates):
            raise ValueError("configs and estimates must have the same length")
        with self._lock:
            fresh: list[tuple[str, PerformanceEstimate]] = []
            for config, value in zip(configs, estimates):
                key = self.key_fn(config)
                if key not in self._store:
                    self._store[key] = value
                    fresh.append((key, value))
            self._append_many(fresh)

    # ------------------------------------------------------------ bookkeeping
    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        """Real estimator invocations (disk misses)."""
        return self._misses

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses, size=len(self._store))

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, config: "DNNConfig") -> bool:
        return self.key_fn(config) in self._store


# --------------------------------------------------------- compaction and GC
@dataclass(frozen=True)
class CompactionReport:
    """What one :func:`compact_cache_dir` pass did to a cache directory."""

    shards_before: int
    shards_after: int
    entries_before: int
    entries_kept: int
    duplicates_dropped: int
    corrupt_lines_dropped: int
    evicted_by_age: int
    evicted_by_size: int
    bytes_before: int
    bytes_after: int
    #: Stale / garbage ``_timings.json`` cost hints dropped.
    timing_entries_pruned: int = 0
    #: Superseded / corrupt / aged ``_checkpoint.jsonl`` records dropped.
    checkpoint_records_pruned: int = 0

    def summary(self) -> str:
        line = (
            f"compaction: {self.shards_before} -> {self.shards_after} shards, "
            f"{self.entries_before} -> {self.entries_kept} entries "
            f"({self.duplicates_dropped} duplicates, "
            f"{self.corrupt_lines_dropped} corrupt lines, "
            f"{self.evicted_by_age} age-evicted, {self.evicted_by_size} size-evicted), "
            f"{self.bytes_before} -> {self.bytes_after} bytes"
        )
        if self.timing_entries_pruned or self.checkpoint_records_pruned:
            line += (
                f"; sidecars: {self.timing_entries_pruned} timing hint(s) and "
                f"{self.checkpoint_records_pruned} checkpoint record(s) pruned"
            )
        return line


@dataclass(frozen=True)
class NamespaceStats:
    """Per-namespace view of one cache directory."""

    namespace: str
    entries: int
    shards: int
    bytes: int


@dataclass(frozen=True)
class CacheDirStats:
    """Aggregate view of one cache directory (see :func:`cache_dir_stats`).

    Corrupt lines and duplicates are directory-level counts: a torn line
    cannot be attributed to a namespace because it does not parse.
    """

    directory: str
    namespaces: list[NamespaceStats] = field(default_factory=list)
    corrupt_lines: int = 0
    duplicates: int = 0
    total_shards: int = 0
    total_bytes: int = 0
    #: Cost hints in the ``_timings.json`` sidecar (0 when absent).
    timing_entries: int = 0
    #: Settled cells currently recorded in ``_checkpoint.jsonl``.
    checkpoint_outcomes: int = 0
    checkpoint_failures: int = 0
    checkpoint_corrupt_lines: int = 0

    @property
    def entries(self) -> int:
        return sum(ns.entries for ns in self.namespaces)

    @property
    def checkpoint_records(self) -> int:
        return self.checkpoint_outcomes + self.checkpoint_failures


def _scan_cache_dir(directory: pathlib.Path):
    """Parse every shard; returns (records, corrupt, duplicates, bytes, shards).

    ``records`` maps ``(namespace, key)`` to the newest valid record line
    (dict).  Records missing a timestamp inherit their shard's mtime, so
    pre-timestamp caches still age-evict sensibly.
    """
    records: dict[tuple[str, str], dict] = {}
    corrupt = 0
    duplicates = 0
    total_bytes = 0
    # Underscore-prefixed files are sidecars (checkpoint, timings tempfiles),
    # not estimate shards: scanning them would misreport every checkpoint
    # line as corrupt — and compaction would delete the file.
    shard_paths = sorted(
        path for path in directory.glob("*.jsonl") if not path.name.startswith("_")
    )
    for path in shard_paths:
        try:
            mtime = path.stat().st_mtime
            text = path.read_text()
        except OSError:  # pragma: no cover - unreadable shard
            continue
        total_bytes += len(text.encode("utf-8"))
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                corrupt += 1
                continue
            namespace = record.get("namespace") if isinstance(record, dict) else None
            key = record.get("key") if isinstance(record, dict) else None
            estimate = _estimate_from_payload(record.get("estimate", {})) \
                if isinstance(record, dict) else None
            if not isinstance(namespace, str) or not isinstance(key, str) \
                    or estimate is None:
                corrupt += 1
                continue
            if not isinstance(record.get("ts"), (int, float)):
                record["ts"] = round(mtime, 3)
            slot = (namespace, key)
            if slot in records:
                duplicates += 1
                if record["ts"] >= records[slot]["ts"]:
                    records[slot] = record
            else:
                records[slot] = record
    return records, corrupt, duplicates, total_bytes, shard_paths


def _sidecar_stats(directory: pathlib.Path) -> tuple[int, int, int, int]:
    """(timing entries, checkpoint outcomes, failures, corrupt lines).

    Uses the cheap checkpoint scan — a stats command must not rebuild
    every recorded journal just to count them.
    """
    from repro.sweep.checkpoint import CHECKPOINT_FILENAME, load_timings, scan_checkpoint
    from repro.sweep.runner import TIMINGS_FILENAME

    timing_entries = len(load_timings(directory / TIMINGS_FILENAME))
    outcomes, failures, corrupt = scan_checkpoint(directory / CHECKPOINT_FILENAME)
    return timing_entries, outcomes, failures, corrupt


def cache_dir_stats(directory) -> CacheDirStats:
    """Summarise a cache directory (sidecars included) without modifying it."""
    directory = pathlib.Path(directory)
    records, corrupt, duplicates, total_bytes, shard_paths = _scan_cache_dir(directory)
    timing_entries, ck_outcomes, ck_failures, ck_corrupt = _sidecar_stats(directory)
    by_namespace: dict[str, dict] = {}
    for (namespace, _key), record in records.items():
        info = by_namespace.setdefault(namespace, {"entries": 0, "bytes": 0})
        info["entries"] += 1
        info["bytes"] += len(json.dumps(record, sort_keys=True)) + 1
    stats = []
    for namespace in sorted(by_namespace):
        info = by_namespace[namespace]
        prefix = f"{_sanitize(namespace)}--"
        shards = sum(1 for path in shard_paths if path.name.startswith(prefix))
        stats.append(NamespaceStats(
            namespace=namespace,
            entries=info["entries"],
            shards=shards,
            bytes=info["bytes"],
        ))
    return CacheDirStats(
        directory=str(directory),
        namespaces=stats,
        corrupt_lines=corrupt,
        duplicates=duplicates,
        total_shards=len(shard_paths),
        total_bytes=total_bytes,
        timing_entries=timing_entries,
        checkpoint_outcomes=ck_outcomes,
        checkpoint_failures=ck_failures,
        checkpoint_corrupt_lines=ck_corrupt,
    )


def compact_cache_dir(
    directory,
    *,
    max_age_days: Optional[float] = None,
    max_size_mb: Optional[float] = None,
    now: Optional[float] = None,
) -> CompactionReport:
    """Compact a cache directory: dedup, drop corrupt lines, evict by budget.

    All shards are parsed, corrupt / torn lines are dropped, duplicate
    ``(namespace, key)`` entries collapse to their newest record, entries
    older than ``max_age_days`` are evicted, then the oldest remaining
    entries are evicted until the directory fits ``max_size_mb``.  Each
    namespace is rewritten as a single ``<prefix>--main.jsonl`` shard
    (atomically: temp file + rename), and stale shard files are removed.
    The sidecars are pruned in the same pass: garbage and (under
    ``max_age_days``) stale ``_timings.json`` cost hints of grids that no
    longer run, plus superseded / corrupt / aged ``_checkpoint.jsonl``
    records — without this, every grid ever swept against the directory
    leaves its task uids behind forever.

    Run this offline — concurrent sweep writers appending to a shard being
    rewritten would lose their appends.
    """
    directory = pathlib.Path(directory)
    if max_age_days is not None and max_age_days <= 0:
        raise ValueError("max_age_days must be positive")
    if max_size_mb is not None and max_size_mb <= 0:
        raise ValueError("max_size_mb must be positive")
    now = time.time() if now is None else float(now)

    records, corrupt, duplicates, bytes_before, shard_paths = _scan_cache_dir(directory)
    entries_before = len(records) + duplicates

    evicted_age = 0
    if max_age_days is not None:
        cutoff = now - max_age_days * 86400.0
        fresh = {slot: rec for slot, rec in records.items() if rec["ts"] >= cutoff}
        evicted_age = len(records) - len(fresh)
        records = fresh

    # Oldest-first size eviction against the serialized-line budget.
    lines = {
        slot: json.dumps(record, sort_keys=True) + "\n"
        for slot, record in records.items()
    }
    evicted_size = 0
    if max_size_mb is not None:
        budget = max_size_mb * 1024 * 1024
        total = sum(len(line.encode("utf-8")) for line in lines.values())
        for slot in sorted(records, key=lambda s: (records[s]["ts"], s)):
            if total <= budget:
                break
            total -= len(lines[slot].encode("utf-8"))
            del records[slot]
            del lines[slot]
            evicted_size += 1

    # Rewrite one shard per (sanitized) namespace; records of distinct
    # namespaces that sanitize to the same prefix share a file — harmless,
    # the loader checks the per-record namespace anyway.
    by_prefix: dict[str, list[tuple]] = {}
    for slot in sorted(records, key=lambda s: (s[0], records[s]["ts"], s[1])):
        by_prefix.setdefault(_sanitize(slot[0]), []).append(slot)
    written: set[str] = set()
    bytes_after = 0
    for prefix, slots in by_prefix.items():
        name = f"{prefix}--main.jsonl"
        payload = "".join(lines[slot] for slot in slots)
        tmp = directory / (name + ".tmp")
        tmp.write_text(payload, encoding="utf-8")
        os.replace(tmp, directory / name)
        written.add(name)
        bytes_after += len(payload.encode("utf-8"))
    for path in shard_paths:
        if path.name not in written:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - already gone
                pass

    from repro.sweep.checkpoint import (
        CHECKPOINT_FILENAME,
        compact_checkpoint,
        compact_timings,
    )
    from repro.sweep.runner import TIMINGS_FILENAME

    _, timings_pruned = compact_timings(
        directory / TIMINGS_FILENAME, max_age_days=max_age_days, now=now,
    )
    _, ck_pruned, ck_corrupt = compact_checkpoint(
        directory / CHECKPOINT_FILENAME, max_age_days=max_age_days, now=now,
    )

    reg = telemetry.registry()
    if reg is not None:
        if evicted_age or evicted_size:
            reg.counter("sweep.disk_cache.evicted").inc(evicted_age + evicted_size)
        telemetry.event(
            "sweep.disk_cache.compacted",
            kept=len(records), duplicates=duplicates, corrupt=corrupt,
            evicted_by_age=evicted_age, evicted_by_size=evicted_size,
        )

    report = CompactionReport(
        shards_before=len(shard_paths),
        shards_after=len(written),
        entries_before=entries_before,
        entries_kept=len(records),
        duplicates_dropped=duplicates,
        corrupt_lines_dropped=corrupt,
        evicted_by_age=evicted_age,
        evicted_by_size=evicted_size,
        bytes_before=bytes_before,
        bytes_after=bytes_after,
        timing_entries_pruned=timings_pruned,
        checkpoint_records_pruned=ck_pruned + ck_corrupt,
    )
    logger.info("%s", report.summary())
    return report


# ------------------------------------------------------------- wire exchange
def read_cache_records(directory, namespaces: Optional[Sequence[str]] = None) -> list[dict]:
    """Export a cache directory's records as wire-ready JSON dicts.

    Deduplicated (newest per ``(namespace, key)``), deterministically
    ordered, optionally filtered to ``namespaces``.  This is the payload of
    the shard protocol's ``/v1/cache/pull`` — the record shape is exactly
    the on-disk JSONL line, so the receiving side can append verbatim.
    """
    directory = pathlib.Path(directory)
    if not directory.is_dir():
        return []
    records, _corrupt, _dups, _bytes, _shards = _scan_cache_dir(directory)
    wanted = set(namespaces) if namespaces is not None else None
    return [
        record
        for (namespace, _key), record in sorted(records.items())
        if wanted is None or namespace in wanted
    ]


def append_cache_records(directory, records: Sequence[dict], *, shard: str = "pushed") -> int:
    """Merge wire cache records into ``directory``; returns how many were new.

    Malformed records are dropped, records whose ``(namespace, key)`` the
    directory already holds are skipped (pushes are idempotent), and fresh
    records are appended to per-namespace ``<ns>--<shard>.jsonl`` files in
    the exact on-disk format, so a :class:`DiskEvaluationCache` opened on
    the directory picks them up as ordinary shards.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    existing, _corrupt, _dups, _bytes, _shards = _scan_cache_dir(directory)
    seen = set(existing)
    fresh_lines: dict[str, list[str]] = {}
    accepted = 0
    for record in records:
        if not isinstance(record, dict):
            continue
        namespace = record.get("namespace")
        key = record.get("key")
        estimate = _estimate_from_payload(record.get("estimate", {}))
        if not isinstance(namespace, str) or not isinstance(key, str) \
                or estimate is None:
            continue
        if (namespace, key) in seen:
            continue
        seen.add((namespace, key))
        ts = record.get("ts")
        line = json.dumps({
            "namespace": namespace,
            "key": key,
            "estimate": _estimate_payload(estimate),
            # Keep the producer's timestamp; a missing one falls back to 0.0
            # ("oldest"), never to this machine's wall clock.
            "ts": round(float(ts), 3) if isinstance(ts, (int, float)) else 0.0,
        }, sort_keys=True)
        fresh_lines.setdefault(_sanitize(namespace), []).append(line)
        accepted += 1
    for prefix, lines in fresh_lines.items():
        path = directory / f"{prefix}--{_sanitize(shard)}.jsonl"
        with path.open("a", encoding="utf-8") as handle:
            handle.write("".join(line + "\n" for line in lines))
    return accepted
