"""Stochastic Coordinate Descent (SCD) DNN search unit (Algorithm 1).

Given an initial candidate DNN, a latency target with a tolerance band and a
resource constraint, the SCD unit repeatedly perturbs the candidate along one
of three coordinates chosen uniformly at random:

* ``N`` — the number of bundle replications,
* ``Pi`` — the channel-expansion configuration,
* ``X`` — the down-sampling configuration,

estimating the latency change of a unit move along each coordinate and
scaling the applied step by ``|Lat_target - Lat| / dLat`` so that larger
latency gaps translate into larger structural moves.  Moves that would
violate the resource constraint are rejected.  Every time the candidate's
estimated latency falls inside the tolerance band it is recorded, and the
search continues until ``K`` candidates have been collected (or the move
budget is exhausted).

The three coordinate moves are exposed as module-level functions
(:func:`move_n`, :func:`move_pi`, :func:`move_x`) so that the alternative
exploration strategies in :mod:`repro.search` operate over exactly the same
move set as Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

from repro.core.constraints import LatencyTarget, ResourceConstraint
from repro.core.dnn_config import DNNConfig
from repro.hw.analytical import PerformanceEstimate
from repro.search.cache import EvaluationCache, config_cache_key
from repro.utils.logging import get_logger
from repro.utils.rng import RNGLike, ensure_rng

logger = get_logger(__name__)

#: Channel-expansion factors available to the SCD unit (Sec. 5.2.2).
EXPANSION_FACTORS: tuple[float, ...] = (1.2, 1.3, 1.5, 1.75, 2.0)

#: Names of the three search coordinates of Algorithm 1.
MOVE_NAMES: tuple[str, ...] = ("N", "Pi", "X")

#: An estimator maps a candidate configuration to (latency, resources).
Estimator = Callable[[DNNConfig], PerformanceEstimate]


# ---------------------------------------------------------------------- moves
def move_n(
    config: DNNConfig, direction: int, steps: int = 1, max_repetitions: int = 8
) -> Optional[DNNConfig]:
    """Add / remove bundle replications (the ``N`` coordinate)."""
    new_reps = config.num_repetitions + direction * max(steps, 1)
    new_reps = max(1, min(new_reps, max_repetitions))
    if new_reps == config.num_repetitions:
        return None
    expansion = list(config.channel_expansion)
    downsample = list(config.downsample)
    while len(expansion) < new_reps:
        expansion.append(expansion[-1])
        downsample.append(0)
    expansion = expansion[:new_reps]
    downsample = downsample[:new_reps]
    return config.with_updates(
        num_repetitions=new_reps,
        channel_expansion=tuple(expansion),
        downsample=tuple(downsample),
    )


def move_pi(config: DNNConfig, direction: int, steps: int = 1) -> Optional[DNNConfig]:
    """Grow / shrink channel-expansion factors (the ``Pi`` coordinate).

    A unit move shifts one repetition's expansion factor to the next
    (or previous) value of the discrete factor set; larger steps shift
    more repetitions.
    """
    expansion = list(config.channel_expansion)
    order = range(len(expansion)) if direction > 0 else range(len(expansion) - 1, -1, -1)
    changed = 0
    for index in order:
        if changed >= max(steps, 1):
            break
        current = expansion[index]
        # Snap to the closest allowed factor, then move one notch.
        closest = min(range(len(EXPANSION_FACTORS)),
                      key=lambda i: abs(EXPANSION_FACTORS[i] - current))
        target = closest + (1 if direction > 0 else -1)
        if 0 <= target < len(EXPANSION_FACTORS):
            expansion[index] = EXPANSION_FACTORS[target]
            changed += 1
    if not changed:
        return None
    return config.with_updates(channel_expansion=tuple(expansion))


def move_x(config: DNNConfig, direction: int, steps: int = 1) -> Optional[DNNConfig]:
    """Insert / remove down-sampling layers (the ``X`` coordinate).

    Removing a down-sample (direction > 0) keeps feature maps larger and
    therefore *increases* latency; inserting one (direction < 0)
    decreases it.
    """
    downsample = list(config.downsample)
    changed = 0
    if direction > 0:
        for i in range(len(downsample) - 1, -1, -1):
            if changed >= max(steps, 1):
                break
            if downsample[i] == 1 and sum(downsample) > 1:
                downsample[i] = 0
                changed += 1
    else:
        for i in range(len(downsample)):
            if changed >= max(steps, 1):
                break
            if downsample[i] == 0:
                downsample[i] = 1
                changed += 1
    if not changed:
        return None
    return config.with_updates(downsample=tuple(downsample))


def apply_move(
    name: str,
    config: DNNConfig,
    direction: int,
    steps: int = 1,
    max_repetitions: int = 8,
) -> Optional[DNNConfig]:
    """Apply one named coordinate move; returns ``None`` when it is a no-op."""
    if name == "N":
        return move_n(config, direction, steps, max_repetitions)
    if name == "Pi":
        return move_pi(config, direction, steps)
    if name == "X":
        return move_x(config, direction, steps)
    raise ValueError(f"Unknown move '{name}'; expected one of {MOVE_NAMES}")


@dataclass
class SCDResult:
    """Outcome of one SCD search run."""

    candidates: list[DNNConfig]
    estimates: list[PerformanceEstimate]
    iterations: int
    converged: bool

    def __len__(self) -> int:
        return len(self.candidates)


class SCDUnit:
    """The stochastic coordinate descent search of Algorithm 1.

    Parameters
    ----------
    cache:
        Controls memoization of estimator calls.  ``None`` (default) wraps
        ``estimator`` in a fresh :class:`repro.search.cache.EvaluationCache`
        (the current config is re-estimated on every loop iteration, so
        caching is a direct hot-path win); an existing cache instance is
        shared as-is; ``False`` disables memoization entirely.
    batch_scorer:
        Optional callable scoring a whole sequence of configs at once
        (``configs -> [PerformanceEstimate, ...]`` in input order).  The
        per-iteration unit-move probes — one candidate per coordinate — are
        routed through it so a vectorized estimator scores them in one
        call.  The Explorer adapter passes its journaling
        ``score_generation`` here; results must be bit-identical to the
        scalar ``estimator`` path (see
        :func:`repro.search.cache.resolve_batch_estimator`).
    """

    def __init__(
        self,
        estimator: Estimator,
        latency_target: LatencyTarget,
        resource_constraint: ResourceConstraint,
        max_repetitions: int = 8,
        max_iterations: int = 400,
        rng: RNGLike = None,
        cache: Union[EvaluationCache, bool, None] = None,
        batch_scorer: Optional[Callable[[Sequence[DNNConfig]], Sequence[PerformanceEstimate]]] = None,
    ) -> None:
        if max_repetitions <= 0 or max_iterations <= 0:
            raise ValueError("max_repetitions and max_iterations must be positive")
        self.estimator = estimator
        self.latency_target = latency_target
        self.resource_constraint = resource_constraint
        self.max_repetitions = max_repetitions
        self.max_iterations = max_iterations
        self.rng = ensure_rng(rng)
        if cache is False:
            self.cache: Optional[EvaluationCache] = None
        elif cache is None or cache is True:
            self.cache = EvaluationCache(estimator)
        else:
            self.cache = cache
        self.batch_scorer = batch_scorer

    # ------------------------------------------------------------- moves
    def _move_n(self, config: DNNConfig, direction: int, steps: int = 1) -> Optional[DNNConfig]:
        return move_n(config, direction, steps, self.max_repetitions)

    def _move_pi(self, config: DNNConfig, direction: int, steps: int = 1) -> Optional[DNNConfig]:
        return move_pi(config, direction, steps)

    def _move_x(self, config: DNNConfig, direction: int, steps: int = 1) -> Optional[DNNConfig]:
        return move_x(config, direction, steps)

    # ------------------------------------------------------------ search loop
    def _latency(self, config: DNNConfig) -> PerformanceEstimate:
        if self.cache is not None:
            return self.cache.evaluate(config)
        return self.estimator(config)

    def _score_units(self, configs: Sequence[DNNConfig]) -> list[PerformanceEstimate]:
        """Score one iteration's unit-move probes, batched when possible.

        Delegates to ``batch_scorer`` when one was provided, else to the
        shared cache's vectorized ``evaluate_batch``; both contracts
        guarantee bit-identical results to the scalar path, which remains
        the fallback (and the single-probe fast path).
        """
        if len(configs) > 1:
            if self.batch_scorer is not None:
                return list(self.batch_scorer(configs))
            if self.cache is not None:
                return list(self.cache.evaluate_batch(configs))
        return [self._latency(config) for config in configs]

    def _direction_towards_target(self, latency_gap_ms: float) -> int:
        """+1 grows the network (raises latency), -1 shrinks it."""
        return 1 if latency_gap_ms > 0 else -1

    def search(self, initial: DNNConfig, num_candidates: int = 3) -> SCDResult:
        """Run Algorithm 1 starting from ``initial`` until K candidates are found."""
        if num_candidates <= 0:
            raise ValueError("num_candidates must be positive")
        target_ms = self.latency_target.latency_ms
        moves = {
            "N": self._move_n,
            "Pi": self._move_pi,
            "X": self._move_x,
        }

        current = initial
        candidates: list[DNNConfig] = []
        estimates: list[PerformanceEstimate] = []
        seen: set[str] = set()
        iterations = 0

        while len(candidates) < num_candidates and iterations < self.max_iterations:
            iterations += 1
            estimate = self._latency(current)
            lat = estimate.latency_ms
            gap = target_ms - lat

            if self.latency_target.within_band(lat) and self.resource_constraint.satisfied_by(
                estimate.resources
            ):
                # Dedup on the structural cache key: describe() summarises the
                # Pi / X vectors as "maximum N channels" and would alias
                # distinct in-band candidates, silently dropping them.
                key = config_cache_key(current)
                if key not in seen:
                    seen.add(key)
                    candidates.append(current)
                    estimates.append(estimate)
                    logger.debug(
                        "SCD candidate %d/%d: %.1f ms (target %.1f ms)",
                        len(candidates), num_candidates, lat, target_ms,
                    )
                # Perturb away from the accepted candidate to find a distinct one.
                current = self._perturb(current)
                continue

            direction = self._direction_towards_target(gap)

            # Estimate the latency change of a unit move along each
            # coordinate.  The probes are scored as one batch (vectorized
            # estimators see all coordinates at once) in moves order, so the
            # evaluation journal matches the historical scalar loop exactly.
            units: list[tuple[str, DNNConfig]] = []
            for name, move in moves.items():
                unit = move(current, direction, steps=1)
                if unit is not None:
                    units.append((name, unit))
            deltas: dict[str, tuple[DNNConfig, float]] = {}
            for (name, unit), unit_estimate in zip(
                units, self._score_units([unit for _, unit in units])
            ):
                delta = unit_estimate.latency_ms - lat
                if abs(delta) > 1e-9:
                    deltas[name] = (unit, delta)
            if not deltas:
                current = self._perturb(current)
                continue

            # Pick one coordinate uniformly at random (line 10 of Algorithm 1).
            name = list(deltas)[int(self.rng.integers(0, len(deltas)))]
            _, unit_delta = deltas[name]
            steps = max(int(abs(gap) // abs(unit_delta)), 1)
            proposal = moves[name](current, direction, steps=steps) or deltas[name][0]

            proposal_estimate = self._latency(proposal)
            if self.resource_constraint.satisfied_by(proposal_estimate.resources):
                current = proposal
            else:
                # Resource violation: fall back to the unit move if it fits,
                # otherwise shrink the network.
                unit_config, _ = deltas[name]
                unit_estimate = self._latency(unit_config)
                if self.resource_constraint.satisfied_by(unit_estimate.resources):
                    current = unit_config
                else:
                    shrunk = self._move_pi(current, -1) or self._move_n(current, -1)
                    current = shrunk or current

        converged = len(candidates) >= num_candidates
        if not converged:
            logger.warning(
                "SCD stopped after %d iterations with %d/%d candidates",
                iterations, len(candidates), num_candidates,
            )
        return SCDResult(
            candidates=candidates,
            estimates=estimates,
            iterations=iterations,
            converged=converged,
        )

    # ----------------------------------------------------------------- helpers
    def _perturb(self, config: DNNConfig) -> DNNConfig:
        """Random small perturbation used to diversify accepted candidates."""
        choice = int(self.rng.integers(0, 3))
        direction = 1 if self.rng.random() < 0.5 else -1
        move = [self._move_n, self._move_pi, self._move_x][choice]
        perturbed = move(config, direction, steps=1)
        return perturbed or config
