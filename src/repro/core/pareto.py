"""Pareto-front utilities used by the bundle evaluation step."""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")


def pareto_front(
    items: Sequence[T],
    cost: Callable[[T], float],
    value: Callable[[T], float],
) -> list[T]:
    """Return the items that are Pareto-optimal for (minimise cost, maximise value).

    An item is dominated when another item has *both* a lower-or-equal cost
    and a higher-or-equal value, with at least one strict inequality.  The
    returned list is sorted by increasing cost.
    """
    items = list(items)
    front: list[T] = []
    for candidate in items:
        dominated = False
        for other in items:
            if other is candidate:
                continue
            better_cost = cost(other) <= cost(candidate)
            better_value = value(other) >= value(candidate)
            strictly = cost(other) < cost(candidate) or value(other) > value(candidate)
            if better_cost and better_value and strictly:
                dominated = True
                break
        if not dominated:
            front.append(candidate)
    return sorted(front, key=cost)


def group_by(
    items: Iterable[T], key: Callable[[T], float], num_groups: int
) -> dict[int, list[T]]:
    """Partition ``items`` into ``num_groups`` equal-width bins of ``key``.

    Used to group bundles "with similar resource usage (e.g. DSPs)" before
    per-group Pareto selection, as described in Sec. 5.1.1.
    """
    items = list(items)
    if not items:
        return {}
    if num_groups <= 0:
        raise ValueError("num_groups must be positive")
    keys = [key(item) for item in items]
    lo, hi = min(keys), max(keys)
    width = (hi - lo) / num_groups if hi > lo else 1.0
    groups: dict[int, list[T]] = {}
    for item, k in zip(items, keys):
        index = min(int((k - lo) / width), num_groups - 1) if width > 0 else 0
        groups.setdefault(index, []).append(item)
    return groups
