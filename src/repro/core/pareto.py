"""Pareto-front utilities used by the bundle evaluation step."""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")


def pareto_front(
    items: Sequence[T],
    cost: Callable[[T], float],
    value: Callable[[T], float],
) -> list[T]:
    """Return the items that are Pareto-optimal for (minimise cost, maximise value).

    An item is dominated when another item has *both* a lower-or-equal cost
    and a higher-or-equal value, with at least one strict inequality.  The
    returned list is sorted by increasing cost.
    """
    items = list(items)
    # cost()/value() may be arbitrarily expensive; evaluate each exactly once.
    costs = [cost(item) for item in items]
    values = [value(item) for item in items]
    # O(n log n) sweep in ascending cost order: an item survives iff its
    # value strictly exceeds every strictly-cheaper item's value (otherwise
    # the cheaper item dominates via the strict cost inequality) and ties
    # the best value within its own equal-cost group (a same-cost item with
    # strictly higher value dominates; exact (cost, value) duplicates do not
    # dominate each other and all survive).  The stable sort keeps equal-cost
    # items in input order, matching the order the O(n^2) scan produced.
    order = sorted(range(len(items)), key=lambda i: costs[i])
    front: list[T] = []
    best_value = float("-inf")
    pos = 0
    while pos < len(order):
        end = pos
        group_best = float("-inf")
        while end < len(order) and costs[order[end]] == costs[order[pos]]:
            group_best = max(group_best, values[order[end]])
            end += 1
        if group_best > best_value:
            front.extend(
                items[i] for i in order[pos:end] if values[i] == group_best
            )
            best_value = group_best
        pos = end
    return front


def group_by(
    items: Iterable[T], key: Callable[[T], float], num_groups: int
) -> dict[int, list[T]]:
    """Partition ``items`` into ``num_groups`` equal-width bins of ``key``.

    Used to group bundles "with similar resource usage (e.g. DSPs)" before
    per-group Pareto selection, as described in Sec. 5.1.1.
    """
    items = list(items)
    if not items:
        return {}
    if num_groups <= 0:
        raise ValueError("num_groups must be positive")
    keys = [key(item) for item in items]
    lo, hi = min(keys), max(keys)
    width = (hi - lo) / num_groups if hi > lo else 1.0
    groups: dict[int, list[T]] = {}
    for item, k in zip(items, keys):
        index = min(int((k - lo) / width), num_groups - 1)
        groups.setdefault(index, []).append(item)
    return groups
