"""Pareto-front utilities used by the bundle evaluation step."""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")


def pareto_front(
    items: Sequence[T],
    cost: Callable[[T], float],
    value: Callable[[T], float],
) -> list[T]:
    """Return the items that are Pareto-optimal for (minimise cost, maximise value).

    An item is dominated when another item has *both* a lower-or-equal cost
    and a higher-or-equal value, with at least one strict inequality.  The
    returned list is sorted by increasing cost.
    """
    items = list(items)
    # cost()/value() may be arbitrarily expensive; evaluate each exactly once
    # instead of O(n^2) times inside the dominance loop.
    costs = [cost(item) for item in items]
    values = [value(item) for item in items]
    front: list[tuple[float, T]] = []
    for i, candidate in enumerate(items):
        dominated = False
        for j in range(len(items)):
            if j == i:
                continue
            better_cost = costs[j] <= costs[i]
            better_value = values[j] >= values[i]
            strictly = costs[j] < costs[i] or values[j] > values[i]
            if better_cost and better_value and strictly:
                dominated = True
                break
        if not dominated:
            front.append((costs[i], candidate))
    front.sort(key=lambda pair: pair[0])
    return [candidate for _, candidate in front]


def group_by(
    items: Iterable[T], key: Callable[[T], float], num_groups: int
) -> dict[int, list[T]]:
    """Partition ``items`` into ``num_groups`` equal-width bins of ``key``.

    Used to group bundles "with similar resource usage (e.g. DSPs)" before
    per-group Pareto selection, as described in Sec. 5.1.1.
    """
    items = list(items)
    if not items:
        return {}
    if num_groups <= 0:
        raise ValueError("num_groups must be positive")
    keys = [key(item) for item in items]
    lo, hi = min(keys), max(keys)
    width = (hi - lo) / num_groups if hi > lo else 1.0
    groups: dict[int, list[T]] = {}
    for item, k in zip(items, keys):
        index = min(int((k - lo) / width), num_groups - 1) if width > 0 else 0
        groups.setdefault(index, []).append(item)
    return groups
