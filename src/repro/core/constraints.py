"""Search constraints: latency targets and resource budgets."""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.device import FPGADevice
from repro.hw.resource import ResourceVector


@dataclass(frozen=True)
class LatencyTarget:
    """A latency / throughput target for the DNN search.

    The paper expresses targets as frames per second at a clock frequency
    (10 / 15 / 20 FPS at 100 MHz); the SCD unit works with the equivalent
    single-frame latency target plus a tolerance band ``[target - eps,
    target + eps]``.
    """

    fps: float
    clock_mhz: float = 100.0
    tolerance_ms: float = 8.0

    def __post_init__(self) -> None:
        if self.fps <= 0:
            raise ValueError("fps must be positive")
        if self.clock_mhz <= 0:
            raise ValueError("clock_mhz must be positive")
        if self.tolerance_ms <= 0:
            raise ValueError("tolerance_ms must be positive")

    @property
    def latency_ms(self) -> float:
        """Single-frame latency target in milliseconds."""
        return 1000.0 / self.fps

    def within_band(self, latency_ms: float) -> bool:
        """True when ``latency_ms`` is inside the tolerance band."""
        return abs(latency_ms - self.latency_ms) < self.tolerance_ms

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.fps:.0f} FPS @ {self.clock_mhz:.0f} MHz (±{self.tolerance_ms:.0f} ms)"


@dataclass(frozen=True)
class ResourceConstraint:
    """A resource budget, usually the full capacity of the target device."""

    budget: ResourceVector
    utilization_limit: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.utilization_limit <= 1.0:
            raise ValueError("utilization_limit must be in (0, 1]")

    @classmethod
    def for_device(cls, device: FPGADevice, utilization_limit: float = 1.0) -> "ResourceConstraint":
        """Build the constraint corresponding to a device's full capacity."""
        return cls(budget=device.resources, utilization_limit=utilization_limit)

    @property
    def effective_budget(self) -> ResourceVector:
        """The budget scaled by the utilization limit."""
        return self.budget.scale(self.utilization_limit)

    def satisfied_by(self, usage: ResourceVector) -> bool:
        """True when ``usage`` fits within the effective budget."""
        return usage.fits_within(self.effective_budget)
