"""Bundle-Arch: the hardware-aware DNN building-block template.

A *Bundle* is a short sequence of DNN layers used as the basic building
block of the searched networks (Sec. 4.1-4.2).  Each computational layer of
a bundle maps to one IP template of the accelerator; activation (and
optionally normalisation) follows each computational layer.  DNN models are
built by replicating, shaping and configuring a bundle bottom-up, with
down-sampling spots reserved between replications and channel-expansion
spots reserved between IPs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

#: Computational layer kinds a bundle may contain.
_COMPUTE_KINDS = ("conv", "dwconv")
#: Non-computational kinds.
_AUX_KINDS = ("pool", "norm", "activation")


@dataclass(frozen=True)
class LayerSpec:
    """One layer inside a bundle.

    Attributes
    ----------
    kind:
        ``conv``, ``dwconv``, ``pool``, ``norm`` or ``activation``.
    kernel:
        Kernel size (ignored for ``norm`` / ``activation``).
    expand:
        Whether the channel-expansion spot *after* this layer is active:
        when the bundle is instantiated with a channel-expansion factor, the
        output channel count of this layer is the expanded one.  Only
        meaningful for standard convolutions (depth-wise convolutions cannot
        change the channel count).
    """

    kind: str
    kernel: int = 1
    expand: bool = False

    def __post_init__(self) -> None:
        if self.kind not in _COMPUTE_KINDS + _AUX_KINDS:
            raise ValueError(f"Unknown layer kind '{self.kind}'")
        if self.kernel <= 0:
            raise ValueError("kernel must be positive")
        if self.expand and self.kind != "conv":
            raise ValueError("Only standard convolutions can expand channels")

    @property
    def is_compute(self) -> bool:
        return self.kind in _COMPUTE_KINDS

    @property
    def ip_key(self) -> str:
        """Key of the IP template this layer maps to."""
        if self.kind in _COMPUTE_KINDS:
            return f"{self.kind}{self.kernel}x{self.kernel}"
        return self.kind

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_compute:
            return self.ip_key
        return self.kind


@dataclass(frozen=True)
class Bundle:
    """A hardware-aware DNN building block.

    Attributes
    ----------
    bundle_id:
        Numeric identifier (matches the bundle IDs used in the paper's
        figures when the default catalogue is used).
    layers:
        Ordered layer specs.  At most ``max_compute_ips`` computational
        layers are allowed (two, for IoT-scale devices).
    name:
        Optional human-readable name.
    """

    bundle_id: int
    layers: tuple[LayerSpec, ...]
    name: str = ""

    #: Maximum computational IPs per bundle (Sec. 4.2: limited to two
    #: because the target IoT devices have scarce resources).
    max_compute_ips: int = 2

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("A bundle needs at least one layer")
        n_compute = len(self.compute_layers)
        if n_compute == 0:
            raise ValueError("A bundle needs at least one computational layer")
        if n_compute > self.max_compute_ips:
            raise ValueError(
                f"Bundle {self.bundle_id} has {n_compute} computational IPs; "
                f"at most {self.max_compute_ips} are allowed"
            )

    # ------------------------------------------------------------ properties
    @property
    def compute_layers(self) -> tuple[LayerSpec, ...]:
        """The computational (conv / dwconv) layers of the bundle."""
        return tuple(l for l in self.layers if l.is_compute)

    @property
    def signature(self) -> str:
        """Composition string, e.g. ``"dwconv3x3+conv1x1"``.

        The signature identifies the bundle's computational structure; it is
        the key used by the surrogate accuracy model and by reports.
        """
        return "+".join(l.ip_key for l in self.compute_layers)

    @property
    def ip_keys(self) -> list[str]:
        """Distinct IP templates required to implement the bundle."""
        keys: list[str] = []
        for layer in self.layers:
            if layer.ip_key not in keys:
                keys.append(layer.ip_key)
        return keys

    @property
    def can_expand_channels(self) -> bool:
        """True when the bundle contains a channel-expanding convolution."""
        return any(l.kind == "conv" for l in self.layers)

    @property
    def display_name(self) -> str:
        return self.name or f"Bundle {self.bundle_id} <{self.signature}>"

    # --------------------------------------------------------------- factory
    @classmethod
    def from_signature(
        cls, bundle_id: int, signature: str, activation: bool = True, name: str = ""
    ) -> "Bundle":
        """Build a bundle from a composition string like ``"dwconv3x3+conv1x1"``.

        An activation spec is inserted after each computational layer when
        ``activation`` is true.  The last standard convolution is marked as
        the channel-expansion spot.
        """
        parts = [p.strip() for p in signature.split("+") if p.strip()]
        if not parts:
            raise ValueError("Empty bundle signature")
        specs: list[LayerSpec] = []
        conv_positions = [i for i, p in enumerate(parts) if not p.startswith("dw")]
        expand_index = conv_positions[-1] if conv_positions else -1
        for i, part in enumerate(parts):
            kind = "dwconv" if part.startswith("dw") else "conv"
            kernel = None
            for k in (7, 5, 3, 1):
                if f"{k}x{k}" in part:
                    kernel = k
                    break
            if kernel is None:
                raise ValueError(f"Cannot parse kernel size from '{part}'")
            specs.append(LayerSpec(kind=kind, kernel=kernel, expand=(i == expand_index)))
            if activation:
                specs.append(LayerSpec(kind="activation"))
        return cls(bundle_id=bundle_id, layers=tuple(specs), name=name)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.display_name
