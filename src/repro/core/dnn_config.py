"""Candidate DNN configuration and its builders.

A :class:`DNNConfig` describes one candidate DNN in the search space: the
bundle it is built from, the number of bundle replications ``N``, the
channel-expansion vector ``Pi``, the down-sampling vector ``X``, the
activation (which fixes the feature-map quantization), the weight bit width
and the accelerator parallelism factor ``PF``.

The config can be turned into:

* a :class:`repro.hw.workload.NetworkWorkload` for latency / resource
  estimation (:meth:`DNNConfig.to_workload`),
* a trainable :class:`repro.nn.model.Sequential` (:meth:`DNNConfig.to_model`),
* :class:`repro.detection.accuracy_model.CandidateFeatures` for the surrogate
  accuracy model (:meth:`DNNConfig.features`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.core.bundle import Bundle
from repro.detection.accuracy_model import CandidateFeatures
from repro.detection.task import DetectionTask
from repro.hw.workload import LayerWorkload, NetworkWorkload
from repro.nn import (
    BatchNorm2D,
    BBoxHead,
    Conv2D,
    DepthwiseConv2D,
    MaxPool2D,
    Sequential,
    make_activation,
)
from repro.nn.quantization import scheme_for_activation
from repro.utils.rng import RNGLike

#: Channel counts are rounded to multiples of this value so that the
#: accelerator's parallel lanes divide them evenly.
CHANNEL_ROUND = 8


def _round_channels(value: float, minimum: int = CHANNEL_ROUND) -> int:
    """Round a channel count to the nearest hardware-friendly multiple."""
    rounded = int(round(value / CHANNEL_ROUND)) * CHANNEL_ROUND
    return max(rounded, minimum)


@dataclass(frozen=True)
class DNNConfig:
    """One candidate DNN in the co-design search space.

    Attributes
    ----------
    bundle:
        The building block.
    task:
        Target detection task (fixes the input resolution).
    num_repetitions:
        ``N`` — how many times the bundle is replicated.
    channel_expansion:
        ``Pi`` — per-repetition channel-expansion factor (length must equal
        ``num_repetitions``).
    downsample:
        ``X`` — per-repetition 0/1 flags; a 1 inserts a down-sampling layer
        before that repetition (the reserved down-sampling spots between
        bundles).
    stem_channels:
        Output channels of the fixed stem convolution.
    activation:
        ``relu`` / ``relu4`` / ``relu8``; also fixes the feature-map bits.
    weight_bits:
        Weight quantization bit width.
    parallel_factor:
        Accelerator parallelism factor ``PF`` shared by all IP instances.
    max_channels:
        Hard cap on channel width (matches the "maximum N channels"
        annotations of Fig. 6).
    """

    bundle: Bundle
    task: DetectionTask
    num_repetitions: int = 3
    channel_expansion: tuple[float, ...] = ()
    downsample: tuple[int, ...] = ()
    stem_channels: int = 48
    activation: str = "relu4"
    weight_bits: int = 8
    parallel_factor: int = 16
    max_channels: int = 512
    name: str = ""

    def __post_init__(self) -> None:
        if self.num_repetitions <= 0:
            raise ValueError("num_repetitions must be positive")
        if self.stem_channels <= 0 or self.max_channels <= 0:
            raise ValueError("channel counts must be positive")
        if self.parallel_factor <= 0:
            raise ValueError("parallel_factor must be positive")
        expansion = self.channel_expansion or tuple([1.5] * self.num_repetitions)
        downsample = self.downsample or tuple(
            1 if i < min(self.num_repetitions, 4) else 0 for i in range(self.num_repetitions)
        )
        if len(expansion) != self.num_repetitions:
            raise ValueError("channel_expansion length must equal num_repetitions")
        if len(downsample) != self.num_repetitions:
            raise ValueError("downsample length must equal num_repetitions")
        if any(f <= 0 for f in expansion):
            raise ValueError("channel expansion factors must be positive")
        if any(flag not in (0, 1) for flag in downsample):
            raise ValueError("downsample entries must be 0 or 1")
        object.__setattr__(self, "channel_expansion", tuple(expansion))
        object.__setattr__(self, "downsample", tuple(downsample))

    # -------------------------------------------------------------- metadata
    @property
    def feature_bits(self) -> int:
        """Feature-map bit width implied by the activation choice."""
        return scheme_for_activation(self.activation, self.weight_bits).feature_bits

    @property
    def display_name(self) -> str:
        return self.name or (
            f"B{self.bundle.bundle_id}-N{self.num_repetitions}-"
            f"{self.activation}-pf{self.parallel_factor}"
        )

    def with_updates(self, **kwargs) -> "DNNConfig":
        """Copy with selected fields replaced (used by the SCD moves)."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------- structure
    def channel_schedule(self) -> list[int]:
        """Output channel count of each bundle repetition (after expansion)."""
        channels: list[int] = []
        current = float(self.stem_channels)
        for factor in self.channel_expansion:
            current = min(current * factor, float(self.max_channels))
            channels.append(_round_channels(current))
            current = float(channels[-1])
        return channels

    def spatial_schedule(self) -> list[tuple[int, int]]:
        """Input spatial size (H, W) of each bundle repetition."""
        _, h, w = self.task.input_shape
        # The stem convolution always halves the resolution once.
        h, w = max(h // 2, 1), max(w // 2, 1)
        sizes: list[tuple[int, int]] = []
        for flag in self.downsample:
            if flag:
                h, w = max(h // 2, 1), max(w // 2, 1)
            sizes.append((h, w))
        return sizes

    # -------------------------------------------------------------- workload
    def to_workload(self) -> NetworkWorkload:
        """Build the hardware workload description of this candidate."""
        c_in, h_in, w_in = self.task.input_shape
        layers: list[LayerWorkload] = []

        # Stem: a fixed 3x3 convolution with stride 2 that lifts the input to
        # stem_channels (the "fixed head" of construction method #1).
        layers.append(LayerWorkload(
            kind="conv", kernel=3, in_channels=c_in, out_channels=self.stem_channels,
            in_height=h_in, in_width=w_in, stride=2, bundle_index=-1,
        ))

        channels = self.channel_schedule()
        sizes = self.spatial_schedule()
        in_channels = self.stem_channels
        for rep in range(self.num_repetitions):
            h, w = sizes[rep]
            out_channels = channels[rep]
            stride_pending = bool(self.downsample[rep])
            current_in = in_channels
            for spec in self.bundle.layers:
                if spec.kind == "activation":
                    layers.append(LayerWorkload(
                        kind="activation", kernel=1, in_channels=current_in,
                        out_channels=current_in, in_height=h, in_width=w,
                        bundle_index=rep,
                    ))
                    continue
                if spec.kind == "norm":
                    layers.append(LayerWorkload(
                        kind="norm", kernel=1, in_channels=current_in,
                        out_channels=current_in, in_height=h, in_width=w,
                        bundle_index=rep,
                    ))
                    continue
                if spec.kind == "pool":
                    layers.append(LayerWorkload(
                        kind="pool", kernel=2, in_channels=current_in,
                        out_channels=current_in, in_height=h, in_width=w,
                        stride=2, bundle_index=rep,
                    ))
                    h, w = max(h // 2, 1), max(w // 2, 1)
                    continue
                # Computational layer.  The down-sampling spot reserved before
                # this repetition is realised as stride 2 on its first
                # computational layer.
                stride = 2 if stride_pending else 1
                stride_pending = False
                if spec.kind == "dwconv":
                    layer_out = current_in
                else:
                    layer_out = out_channels if spec.expand else current_in
                # A stride-2 layer keeps the pre-halving spatial size as its
                # input; the workload spatial bookkeeping already reflects the
                # halved size, so undo it for this layer's input dims.
                in_h, in_w = (h * 2, w * 2) if stride == 2 else (h, w)
                layers.append(LayerWorkload(
                    kind=spec.kind, kernel=spec.kernel, in_channels=current_in,
                    out_channels=layer_out, in_height=in_h, in_width=in_w,
                    stride=stride, bundle_index=rep,
                ))
                current_in = layer_out
            in_channels = current_in

        # Detection head: a 1x1 convolution to 4 outputs followed by global
        # pooling (modelled as the "head" workload kind).
        final_h, final_w = sizes[-1] if sizes else (max(h_in // 2, 1), max(w_in // 2, 1))
        layers.append(LayerWorkload(
            kind="head", kernel=1, in_channels=in_channels, out_channels=4,
            in_height=final_h, in_width=final_w, bundle_index=-1,
        ))

        return NetworkWorkload(
            layers=layers,
            input_shape=self.task.input_shape,
            weight_bits=self.weight_bits,
            feature_bits=self.feature_bits,
            name=self.display_name,
            bundle_signature=self.bundle.signature,
        )

    # ----------------------------------------------------------------- model
    def to_model(self, rng: RNGLike = None) -> Sequential:
        """Build a trainable numpy model matching this configuration."""
        c_in, _, _ = self.task.input_shape
        model = Sequential(name=self.display_name)
        model.add(Conv2D(c_in, self.stem_channels, 3, stride=2, rng=rng, name="stem"))
        model.add(BatchNorm2D(self.stem_channels, name="stem_bn"))
        model.add(make_activation(self.activation))

        channels = self.channel_schedule()
        in_channels = self.stem_channels
        for rep in range(self.num_repetitions):
            out_channels = channels[rep]
            stride_pending = bool(self.downsample[rep])
            current_in = in_channels
            for spec in self.bundle.layers:
                if spec.kind == "activation":
                    model.add(make_activation(self.activation))
                    continue
                if spec.kind == "norm":
                    model.add(BatchNorm2D(current_in, name=f"b{rep}_bn"))
                    continue
                if spec.kind == "pool":
                    model.add(MaxPool2D(2, name=f"b{rep}_pool"))
                    continue
                stride = 2 if stride_pending else 1
                stride_pending = False
                if spec.kind == "dwconv":
                    model.add(DepthwiseConv2D(current_in, spec.kernel, stride=stride, rng=rng,
                                              name=f"b{rep}_dw{spec.kernel}"))
                else:
                    layer_out = out_channels if spec.expand else current_in
                    model.add(Conv2D(current_in, layer_out, spec.kernel, stride=stride, rng=rng,
                                     name=f"b{rep}_conv{spec.kernel}"))
                    current_in = layer_out
            in_channels = current_in

        model.add(BBoxHead(in_channels, rng=rng))
        return model

    # -------------------------------------------------------------- features
    def features(
        self, epochs: int = 200, workload: Optional[NetworkWorkload] = None
    ) -> CandidateFeatures:
        """Structural features for the surrogate accuracy model.

        ``workload`` accepts a precomputed :meth:`to_workload` result so
        callers that already built one (e.g. the batched estimator's workload
        cache) do not pay for a second construction.
        """
        if workload is None:
            workload = self.to_workload()
        return CandidateFeatures(
            macs=float(workload.total_macs),
            params=workload.total_params,
            depth=workload.compute_depth,
            max_channels=workload.max_channels,
            num_downsamples=workload.num_downsamples,
            feature_bits=self.feature_bits,
            weight_bits=self.weight_bits,
            bundle_signature=self.bundle.signature,
            input_pixels=self.task.input_pixels,
            epochs=epochs,
        )

    def describe(self) -> str:
        """Readable summary similar to the annotations of Fig. 6."""
        channels = self.channel_schedule()
        return (
            f"{self.display_name}: Bundle {self.bundle.bundle_id} "
            f"<{self.bundle.signature}>, {self.num_repetitions} bundle replications, "
            f"maximum {max(channels)} channels, "
            f"{self.feature_bits}-bit feature map ({self.activation}), "
            f"{self.weight_bits}-bit weights, PF={self.parallel_factor}"
        )
