"""Auto-HLS: accelerator generation and precise performance feedback.

Auto-HLS plays two roles in the co-design flow (Fig. 1):

* during modelling (Co-Design Step 1), it samples representative
  configurations to fit the analytical-model coefficients (alpha, beta,
  Gamma, phi, gamma),
* during search (Co-Design Step 3), it takes the DNNs produced by the SCD
  unit, generates their accelerators (synthesizable C code) and returns the
  more precise latency / resource results which are fed back to the search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.dnn_config import DNNConfig
from repro.hw.analytical import (
    AnalyticalModelCoefficients,
    DEFAULT_COEFFICIENTS,
    DNNPerformanceModel,
    PerformanceEstimate,
)
from repro.hw.batch import BatchedDNNEstimator
from repro.hw.device import FPGADevice
from repro.hw.hls.codegen import GeneratedDesign, HLSCodeGenerator
from repro.hw.hls.report import HLSReport
from repro.hw.hls.synthesis import HLSSynthesisSimulator
from repro.hw.sampling import SamplingResult, fit_coefficients
from repro.hw.tile_arch import TileArchAccelerator
from repro.hw.workload import NetworkWorkload
from repro.utils.logging import get_logger

logger = get_logger(__name__)


@dataclass
class AutoHLSResult:
    """Everything Auto-HLS produces for one candidate DNN."""

    config: DNNConfig
    accelerator: TileArchAccelerator
    design: GeneratedDesign
    report: HLSReport
    analytical: PerformanceEstimate

    @property
    def latency_ms(self) -> float:
        """Post-synthesis latency (the precise feedback value)."""
        return self.report.latency_ms

    @property
    def fps(self) -> float:
        return self.report.fps


class AutoHLS:
    """Automatic accelerator generation for searched DNNs."""

    def __init__(
        self,
        device: FPGADevice,
        clock_mhz: Optional[float] = None,
        coefficients: AnalyticalModelCoefficients = DEFAULT_COEFFICIENTS,
    ) -> None:
        self.device = device
        self.clock_mhz = clock_mhz or device.default_clock_mhz
        self.coefficients = coefficients
        # Lazily built; its group-statics caches survive fit_models refits
        # because coefficients and clock are per-call inputs.
        self._batch_estimator: Optional[BatchedDNNEstimator] = None

    # ----------------------------------------------------------- accelerator
    def build_accelerator(
        self, config: DNNConfig, clock_mhz: Optional[float] = None
    ) -> TileArchAccelerator:
        """Assemble the Tile-Arch accelerator for a candidate DNN."""
        workload = config.to_workload()
        return TileArchAccelerator.build(
            workload,
            self.device,
            parallel_factor=config.parallel_factor,
            clock_mhz=clock_mhz or self.clock_mhz,
        )

    def estimate(self, config: DNNConfig) -> PerformanceEstimate:
        """Fast analytical latency / resource estimate (used inside SCD)."""
        accelerator = self.build_accelerator(config)
        return DNNPerformanceModel(accelerator, self.coefficients).estimate()

    def estimate_batch(self, configs: Sequence[DNNConfig]) -> list[PerformanceEstimate]:
        """Vectorized :meth:`estimate` over many configs (bit-identical).

        ``EvaluationCache.evaluate_batch`` discovers this method through
        :func:`repro.search.cache.resolve_batch_estimator` even when it was
        handed the bound ``estimate`` method, so every generation-sized batch
        in the search strategies takes the NumPy path automatically.
        """
        if self._batch_estimator is None:
            self._batch_estimator = BatchedDNNEstimator(self.device)
        return self._batch_estimator.estimate_batch(
            configs, coefficients=self.coefficients, clock_mhz=self.clock_mhz
        )

    # --------------------------------------------------------------- synthesis
    def generate(
        self,
        config: DNNConfig,
        clock_mhz: Optional[float] = None,
        include_support_files: bool = True,
    ) -> AutoHLSResult:
        """Generate C code, synthesise it and return the full result.

        When ``include_support_files`` is true the generated bundle also
        contains a C testbench, the HLS synthesis Tcl script and a Makefile,
        so it can be handed to an HLS tool as-is.
        """
        accelerator = self.build_accelerator(config, clock_mhz=clock_mhz)
        generator = HLSCodeGenerator(accelerator, design_name=config.display_name.replace("-", "_"))
        design = generator.generate()
        if include_support_files:
            from repro.hw.hls.testbench import generate_support_files

            design.extra_files.update(generate_support_files(design, accelerator))
        report = HLSSynthesisSimulator(accelerator).synthesise(design)
        analytical = DNNPerformanceModel(accelerator, self.coefficients).estimate()
        logger.debug("Auto-HLS generated %s: %s", design.name, report.summary())
        return AutoHLSResult(
            config=config,
            accelerator=accelerator,
            design=design,
            report=report,
            analytical=analytical,
        )

    # ---------------------------------------------------------------- fitting
    def fit_models(
        self, sample_workloads: list[NetworkWorkload], parallel_factor: int = 8
    ) -> SamplingResult:
        """Fit the analytical-model coefficients from sampled configurations.

        The fitted coefficients are stored on the engine and used by all
        subsequent :meth:`estimate` calls.
        """
        result = fit_coefficients(
            sample_workloads, self.device, parallel_factor=parallel_factor, base=self.coefficients
        )
        self.coefficients = result.coefficients
        logger.info(
            "Auto-HLS sampling fitted alpha=%.3f beta=%.3f (mean rel. err. %.1f%%)",
            result.coefficients.alpha,
            result.coefficients.beta,
            100.0 * result.mean_relative_error,
        )
        return result
