"""Auto-DNN: the hardware-aware DNN model search engine.

Auto-DNN (Sec. 5.2) is the primary component of the co-design flow.  For
each selected bundle it

1. **initialises** a candidate DNN (``DNN_i^k0``): the bundle is replicated
   ``N_i`` times, initial down-sampling layers are inserted between
   replications, channel-expansion factors start at 1 or 2 depending on the
   layer type, and the hardware variables (PF, quantization) are set so that
   IP instances can be reused across layers — with PF maximised under the
   resource budget,
2. runs the **SCD unit** to find ``K`` DNNs whose estimated latency falls
   within the target band and whose resources fit the device,
3. hands the candidates to **Auto-HLS** for precise latency / resource
   feedback and to the accuracy model (proxy training or surrogate) for
   their achievable accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.auto_hls import AutoHLS, AutoHLSResult
from repro.core.bundle import Bundle
from repro.core.constraints import LatencyTarget, ResourceConstraint
from repro.core.dnn_config import DNNConfig
from repro.detection.accuracy_model import AccuracyModel, SurrogateAccuracyModel
from repro.detection.task import DetectionTask
from repro.hw.analytical import PerformanceEstimate
from repro.hw.device import FPGADevice
from repro.search import EvaluationCache, ParallelEvaluator, SearchSession, create_explorer
from repro.utils.logging import get_logger
from repro.utils.rng import RNGLike, ensure_rng

logger = get_logger(__name__)


@dataclass
class DNNCandidate:
    """A searched DNN candidate with its accuracy and hardware results."""

    config: DNNConfig
    accuracy: float
    estimate: PerformanceEstimate
    hls: Optional[AutoHLSResult] = None
    latency_target: Optional[LatencyTarget] = None

    @property
    def latency_ms(self) -> float:
        """Best available latency: post-synthesis when present, else analytical."""
        if self.hls is not None:
            return self.hls.latency_ms
        return self.estimate.latency_ms

    @property
    def fps(self) -> float:
        return 1000.0 / self.latency_ms if self.latency_ms > 0 else float("inf")

    def summary(self) -> str:
        return (
            f"{self.config.describe()} | IoU={self.accuracy:.3f} "
            f"| {self.latency_ms:.1f} ms ({self.fps:.1f} FPS)"
        )


class AutoDNN:
    """Hardware-aware DNN search and update (Co-Design Step 3)."""

    def __init__(
        self,
        task: DetectionTask,
        device: FPGADevice,
        auto_hls: Optional[AutoHLS] = None,
        accuracy_model: Optional[AccuracyModel] = None,
        resource_constraint: Optional[ResourceConstraint] = None,
        stem_channels: int = 48,
        max_channels: int = 512,
        weight_bits: int = 8,
        candidates_per_bundle: int = 3,
        fine_tune_epochs: int = 200,
        rng: RNGLike = None,
        strategy: str = "scd",
        workers: int = 1,
        session: Optional[SearchSession] = None,
        cache: Optional[EvaluationCache] = None,
    ) -> None:
        self.task = task
        self.device = device
        self.auto_hls = auto_hls or AutoHLS(device)
        self.accuracy_model = accuracy_model or SurrogateAccuracyModel()
        self.resource_constraint = resource_constraint or ResourceConstraint.for_device(device)
        self.stem_channels = stem_channels
        self.max_channels = max_channels
        self.weight_bits = weight_bits
        self.candidates_per_bundle = candidates_per_bundle
        self.fine_tune_epochs = fine_tune_epochs
        self.rng = ensure_rng(rng)
        self.strategy = strategy
        self.workers = workers
        self.session = session
        #: Memoizes estimator calls across bundles, targets and activations.
        # Explicit None check: an empty EvaluationCache is falsy (__len__ == 0).
        self.cache = cache if cache is not None else EvaluationCache(self.auto_hls.estimate)
        self._parallel: Optional[ParallelEvaluator] = None

    # ---------------------------------------------------------- initialization
    def initialize(
        self,
        bundle: Bundle,
        activation: str = "relu4",
        num_repetitions: int = 3,
    ) -> DNNConfig:
        """Build the initial candidate ``DNN_i^k0`` for a bundle.

        Channel expansion starts at 2 for standard-convolution bundles (they
        can grow channels cheaply) and 1.5 for depth-wise bundles; initial
        down-sampling layers are inserted between the first replications.
        The parallel factor is then maximised under the resource constraint.
        """
        has_dw = any(l.kind == "dwconv" for l in bundle.compute_layers)
        init_factor = 1.5 if has_dw else 2.0
        expansion = tuple([init_factor] * num_repetitions)
        downsample = tuple(1 if i < min(num_repetitions, 4) else 0 for i in range(num_repetitions))
        config = DNNConfig(
            bundle=bundle,
            task=self.task,
            num_repetitions=num_repetitions,
            channel_expansion=expansion,
            downsample=downsample,
            stem_channels=self.stem_channels,
            activation=activation,
            weight_bits=self.weight_bits,
            parallel_factor=4,
            max_channels=self.max_channels,
        )
        return self.maximize_parallel_factor(config)

    def maximize_parallel_factor(
        self, config: DNNConfig, factors: Sequence[int] = (4, 8, 16, 32, 64, 128, 256)
    ) -> DNNConfig:
        """Set PF to the largest value whose accelerator still fits the device."""
        best = config
        for pf in sorted(factors):
            candidate = config.with_updates(parallel_factor=pf)
            estimate = self.cache.evaluate(candidate)
            if self.resource_constraint.satisfied_by(estimate.resources):
                best = candidate
            else:
                break
        return best

    # ----------------------------------------------------------------- search
    def _parallel_for(self, workers: int) -> ParallelEvaluator:
        """Worker pool shared across the whole search sweep."""
        if self._parallel is None or self._parallel.workers != workers:
            if self._parallel is not None:
                self._parallel.close()
            self._parallel = ParallelEvaluator(self.cache.estimator, workers=workers)
        return self._parallel

    def close(self) -> None:
        """Release the shared worker pool."""
        if self._parallel is not None:
            self._parallel.close()
            self._parallel = None

    def search_bundle(
        self,
        bundle: Bundle,
        latency_target: LatencyTarget,
        activation: str = "relu4",
        num_candidates: Optional[int] = None,
        max_iterations: int = 200,
        strategy: Optional[str] = None,
        session: Optional[SearchSession] = None,
        workers: Optional[int] = None,
    ) -> list[DNNCandidate]:
        """Search K candidate DNNs for one bundle under one latency target."""
        num_candidates = num_candidates or self.candidates_per_bundle
        strategy = strategy or self.strategy
        initial = self.initialize(bundle, activation=activation)
        explorer = create_explorer(
            strategy,
            latency_target=latency_target,
            resource_constraint=self.resource_constraint,
            max_iterations=max_iterations,
            rng=self.rng,
            cache=self.cache,
            session=session if session is not None else self.session,
            parallel=self._parallel_for(workers if workers is not None else self.workers),
        )
        result = explorer.explore(initial, num_candidates=num_candidates)

        candidates: list[DNNCandidate] = []
        for config, estimate in zip(result.candidates, result.estimates):
            accuracy = self.accuracy_model.predict(config.features(epochs=self.fine_tune_epochs))
            candidates.append(DNNCandidate(
                config=config,
                accuracy=accuracy,
                estimate=estimate,
                latency_target=latency_target,
            ))
        logger.info(
            "Auto-DNN: bundle %d, target %s -> %d candidates "
            "(%s strategy, %d iterations, %d evaluations)",
            bundle.bundle_id, latency_target, len(candidates),
            result.strategy, result.iterations, result.evaluations,
        )
        return candidates

    def search(
        self,
        bundles: Sequence[Bundle],
        latency_targets: Sequence[LatencyTarget],
        activations: Sequence[str] = ("relu4", "relu"),
        num_candidates: Optional[int] = None,
        max_iterations: int = 200,
        strategy: Optional[str] = None,
        session: Optional[SearchSession] = None,
        workers: Optional[int] = None,
    ) -> list[DNNCandidate]:
        """Search candidates across bundles, latency targets and activations.

        The evaluation cache is cleared on entry (the Auto-HLS coefficients
        may have been refit since earlier estimates) and then shared across
        the whole bundle x target x activation sweep, as is the parallel
        worker pool.
        """
        self.cache.clear()
        all_candidates: list[DNNCandidate] = []
        for target in latency_targets:
            for bundle in bundles:
                for activation in activations:
                    all_candidates.extend(self.search_bundle(
                        bundle, target, activation=activation,
                        num_candidates=num_candidates, max_iterations=max_iterations,
                        strategy=strategy, session=session, workers=workers,
                    ))
        if session is not None:
            session.attach_cache_stats(self.cache.stats())
        return all_candidates

    # ---------------------------------------------------------------- update
    def refine_with_hls(self, candidates: Sequence[DNNCandidate]) -> list[DNNCandidate]:
        """Run Auto-HLS on every candidate to attach precise hardware results.

        Estimation engines without a ``generate`` step (e.g. the GPU roofline
        engine — there is no HLS artifact to emit) pass candidates through
        unchanged.
        """
        if getattr(self.auto_hls, "generate", None) is None:
            return list(candidates)
        refined: list[DNNCandidate] = []
        for candidate in candidates:
            hls = self.auto_hls.generate(candidate.config)
            refined.append(DNNCandidate(
                config=candidate.config,
                accuracy=candidate.accuracy,
                estimate=candidate.estimate,
                hls=hls,
                latency_target=candidate.latency_target,
            ))
        return refined

    @staticmethod
    def best_per_target(
        candidates: Sequence[DNNCandidate],
        latency_targets: Sequence[LatencyTarget],
    ) -> dict[LatencyTarget, Optional[DNNCandidate]]:
        """Pick the highest-accuracy candidate inside each target's band."""
        best: dict[LatencyTarget, Optional[DNNCandidate]] = {}
        for target in latency_targets:
            in_band = [
                c for c in candidates
                if target.within_band(c.latency_ms)
            ]
            best[target] = max(in_band, key=lambda c: c.accuracy, default=None)
        return best
