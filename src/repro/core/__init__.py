"""The FPGA/DNN co-design methodology (the paper's primary contribution).

Components (Sec. 3.2 of the paper):

* **Bundle-Arch** (:mod:`repro.core.bundle`, :mod:`repro.core.bundle_generation`)
  — the hardware-aware DNN building-block template and the automatic bundle
  generation from the IP pool,
* **Auto-DNN** (:mod:`repro.core.bundle_evaluation`, :mod:`repro.core.scd`,
  :mod:`repro.core.auto_dnn`) — bundle evaluation / selection and the
  hardware-aware DNN search with stochastic coordinate descent,
* **Tile-Arch** lives in :mod:`repro.hw.tile_arch`,
* **Auto-HLS** (:mod:`repro.core.auto_hls`) — accelerator generation and
  latency / resource feedback,
* the overall three-step co-design flow (:mod:`repro.core.codesign`).
"""

from repro.core.design_space import CoDesignSpace, DesignPoint
from repro.core.bundle import Bundle, LayerSpec
from repro.core.bundle_generation import default_bundle_catalog, generate_bundles
from repro.core.dnn_config import DNNConfig
from repro.core.constraints import LatencyTarget, ResourceConstraint
from repro.core.pareto import pareto_front
from repro.core.bundle_evaluation import (
    BundleEvaluation,
    BundleEvaluator,
    FineGrainedEvaluation,
)
from repro.core.scd import SCDUnit, SCDResult
from repro.core.auto_hls import AutoHLS, AutoHLSResult
from repro.core.auto_dnn import AutoDNN, DNNCandidate
from repro.core.codesign import CoDesignFlow, CoDesignInputs, CoDesignResult

__all__ = [
    "CoDesignSpace",
    "DesignPoint",
    "Bundle",
    "LayerSpec",
    "default_bundle_catalog",
    "generate_bundles",
    "DNNConfig",
    "LatencyTarget",
    "ResourceConstraint",
    "pareto_front",
    "BundleEvaluation",
    "BundleEvaluator",
    "FineGrainedEvaluation",
    "SCDUnit",
    "SCDResult",
    "AutoHLS",
    "AutoHLSResult",
    "AutoDNN",
    "DNNCandidate",
    "CoDesignFlow",
    "CoDesignInputs",
    "CoDesignResult",
]
