"""The co-design space (Table 1 of the paper).

A :class:`DesignPoint` captures every variable of Table 1 — the DNN-side
structure (number of layers, channel expansions, down-sampling layers) and
the FPGA-side configuration (IP instances, parallelism factors, quantization
schemes, layer-to-IP mapping) — so that one object fully specifies both the
DNN model and its accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.bundle import Bundle
from repro.nn.quantization import QuantizationScheme


@dataclass(frozen=True)
class IPInstanceSpec:
    """Configuration ``<PF_j, Q_j>`` of one IP instance ``p_j`` (Table 1)."""

    ip_template: str
    parallel_factor: int
    quantization: QuantizationScheme
    layers: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.parallel_factor <= 0:
            raise ValueError("parallel_factor must be positive")


@dataclass(frozen=True)
class DesignPoint:
    """A fully specified point in the FPGA/DNN co-design space.

    Attributes
    ----------
    num_layers:
        ``L`` — total number of DNN layers.
    ip_templates:
        ``IP_1 .. IP_m`` — available IP template keys.
    ip_instances:
        ``p_1 .. p_n`` — configured IP instances with their ``<PF_j, Q_j>``
        and the layer indices they serve.
    channel_expansion:
        ``<f_ch1, ..., f_chL>`` — channel-expansion factor per bundle
        repetition.
    downsample_layers:
        ``ds_1 .. ds_k`` — indices of the bundle boundaries where a
        down-sampling layer is inserted.
    downsample_factor:
        ``f_ds`` — the spatial reduction factor of each down-sampling layer.
    bundle:
        The Bundle the DNN is built from (the paper's DNN template).
    """

    num_layers: int
    ip_templates: tuple[str, ...]
    ip_instances: tuple[IPInstanceSpec, ...]
    channel_expansion: tuple[float, ...]
    downsample_layers: tuple[int, ...]
    downsample_factor: int = 2
    bundle: Bundle | None = None

    def __post_init__(self) -> None:
        if self.num_layers <= 0:
            raise ValueError("num_layers must be positive")
        if self.downsample_factor <= 1:
            raise ValueError("downsample_factor must be at least 2")
        if any(f <= 0 for f in self.channel_expansion):
            raise ValueError("channel expansion factors must be positive")
        for ds in self.downsample_layers:
            if ds < 0:
                raise ValueError("downsample layer indices must be non-negative")

    # ------------------------------------------------------------ properties
    @property
    def affects(self) -> Mapping[str, tuple[str, ...]]:
        """Which objectives each variable group affects (the A/P/R column)."""
        return {
            "num_layers": ("accuracy", "performance", "resource"),
            "ip_templates": ("accuracy", "performance", "resource"),
            "ip_instances": ("performance", "resource"),
            "ip_configurations": ("accuracy", "performance", "resource"),
            "layer_mapping": ("accuracy", "performance"),
            "channel_expansion": ("accuracy", "performance", "resource"),
            "downsample_layers": ("accuracy", "performance", "resource"),
            "downsample_factor": ("accuracy", "performance", "resource"),
        }

    @property
    def num_ip_instances(self) -> int:
        return len(self.ip_instances)

    def describe(self) -> str:
        """Readable multi-line description of the design point."""
        lines = [
            f"Design point: L={self.num_layers} layers",
            f"  IP templates     : {', '.join(self.ip_templates)}",
            f"  IP instances     : "
            + "; ".join(
                f"{s.ip_template}(PF={s.parallel_factor}, Q={s.quantization.name})"
                for s in self.ip_instances
            ),
            f"  channel expansion: {list(self.channel_expansion)}",
            f"  downsampling     : at {list(self.downsample_layers)} (factor {self.downsample_factor})",
        ]
        if self.bundle is not None:
            lines.insert(1, f"  bundle           : {self.bundle.display_name}")
        return "\n".join(lines)


@dataclass(frozen=True)
class CoDesignSpace:
    """Bounds of the co-design space explored by Auto-DNN.

    Attributes
    ----------
    bundles:
        Candidate bundles (after selection).
    parallel_factors:
        PF values available to IP instances.
    quantizations:
        Quantization schemes available to IP instances.
    channel_expansion_factors:
        The discrete channel-expansion factors the SCD unit may use
        (Sec. 5.2.2: {1.2, 1.3, 1.5, 1.75, 2}).
    max_repetitions:
        Upper bound on bundle replications.
    max_downsamples:
        Upper bound on the number of down-sampling layers.
    """

    bundles: tuple[Bundle, ...]
    parallel_factors: tuple[int, ...] = (4, 8, 16, 32)
    quantizations: tuple[QuantizationScheme, ...] = ()
    channel_expansion_factors: tuple[float, ...] = (1.2, 1.3, 1.5, 1.75, 2.0)
    max_repetitions: int = 8
    max_downsamples: int = 6

    def __post_init__(self) -> None:
        if not self.bundles:
            raise ValueError("The co-design space needs at least one bundle")
        if self.max_repetitions <= 0 or self.max_downsamples < 0:
            raise ValueError("Invalid repetition / downsample bounds")

    @property
    def approximate_size(self) -> float:
        """Order-of-magnitude estimate of the number of distinct design points.

        Illustrates the observation that the joint space is exponentially
        larger than either the DNN-only or accelerator-only spaces.
        """
        per_bundle = (
            self.max_repetitions
            * (len(self.channel_expansion_factors) ** self.max_repetitions)
            * (2 ** self.max_downsamples)
            * len(self.parallel_factors)
            * max(len(self.quantizations), 1)
        )
        return float(len(self.bundles) * per_bundle)
