"""Bundle evaluation and selection (Co-Design Step 2, Sec. 5.1).

Coarse-grained evaluation captures a three-dimensional feature — latency,
resource and accuracy — for every bundle candidate, using two DNN
construction methods:

* **method #1**: a DNN template with a fixed head and tail and one bundle
  replication inserted in the middle,
* **method #2**: the bundle replicated ``n`` times.

Bundles with similar resource usage are grouped and a Pareto curve is
generated per group; bundles on the Pareto curves are selected.  A
fine-grained evaluation then varies the replication count and the activation
function (ReLU / ReLU4 / ReLU8, which ties to feature-map quantization) for
the selected bundles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import repro.telemetry as telemetry
from repro.core.bundle import Bundle
from repro.core.dnn_config import DNNConfig
from repro.core.pareto import group_by, pareto_front
from repro.detection.accuracy_model import AccuracyModel, SurrogateAccuracyModel
from repro.detection.task import DetectionTask
from repro.hw.analytical import AnalyticalModelCoefficients, DEFAULT_COEFFICIENTS, DNNPerformanceModel
from repro.hw.batch import BatchedDNNEstimator
from repro.hw.device import FPGADevice
from repro.hw.resource import ResourceVector
from repro.hw.tile_arch import TileArchAccelerator
from repro.hw.workload import NetworkWorkload
from repro.utils.logging import get_logger

logger = get_logger(__name__)

#: Proxy-training length used for bundle evaluation (the paper uses 20).
PROXY_EPOCHS = 20


@dataclass
class BundleEvaluation:
    """Coarse-grained evaluation record of one bundle at one parallel factor."""

    bundle: Bundle
    parallel_factor: int
    latency_ms: float
    accuracy: float
    resources: ResourceVector
    dsp: float
    method: int
    config: DNNConfig

    @property
    def bundle_id(self) -> int:
        return self.bundle.bundle_id


@dataclass
class FineGrainedEvaluation:
    """Fine-grained evaluation record: bundle x replication count x activation."""

    bundle: Bundle
    num_repetitions: int
    activation: str
    latency_ms: float
    accuracy: float
    resources: ResourceVector
    config: DNNConfig

    @property
    def bundle_id(self) -> int:
        return self.bundle.bundle_id


def best_evaluation_per_bundle(
    evaluations: Sequence[BundleEvaluation],
) -> list[BundleEvaluation]:
    """Reduce evaluations to each bundle's lowest-latency record.

    Coarse evaluation scores every bundle at several parallel factors; both
    Pareto selection and top-N ranking want one representative per bundle —
    the fastest one.  Ties keep the first record seen, and the returned list
    preserves first-seen bundle order.
    """
    best: dict[int, BundleEvaluation] = {}
    for ev in evaluations:
        current = best.get(ev.bundle_id)
        if current is None or ev.latency_ms < current.latency_ms:
            best[ev.bundle_id] = ev
    return list(best.values())


class BundleEvaluator:
    """Coarse- and fine-grained bundle evaluation and Pareto selection.

    Both evaluation passes score their whole bundle cross-product (bundle x
    parallel factor, or bundle x replication x activation) through the
    vectorized :class:`repro.hw.batch.BatchedDNNEstimator` in one call;
    ``batched=False`` forces the scalar per-config path.  The two paths are
    bit-identical — the golden-equivalence suite asserts it — so the switch
    only changes speed.
    """

    def __init__(
        self,
        task: DetectionTask,
        device: FPGADevice,
        accuracy_model: Optional[AccuracyModel] = None,
        coefficients: AnalyticalModelCoefficients = DEFAULT_COEFFICIENTS,
        clock_mhz: Optional[float] = None,
        stem_channels: int = 48,
        method2_repetitions: int = 3,
        batched: bool = True,
    ) -> None:
        self.task = task
        self.device = device
        self.accuracy_model = accuracy_model or SurrogateAccuracyModel()
        self.coefficients = coefficients
        self.clock_mhz = clock_mhz or device.default_clock_mhz
        self.stem_channels = stem_channels
        self.method2_repetitions = method2_repetitions
        self.batched = batched
        self._batch_estimator: Optional[BatchedDNNEstimator] = None

    # ----------------------------------------------------------- construction
    def _config_for(
        self,
        bundle: Bundle,
        method: int,
        parallel_factor: int,
        activation: str = "relu4",
        num_repetitions: Optional[int] = None,
    ) -> DNNConfig:
        """Build the evaluation DNN for a bundle under one construction method."""
        if method == 1:
            reps = 1 if num_repetitions is None else num_repetitions
        elif method == 2:
            reps = self.method2_repetitions if num_repetitions is None else num_repetitions
        else:
            raise ValueError("method must be 1 or 2")
        expansion = tuple([1.5] * reps)
        downsample = tuple([1] * min(reps, 4) + [0] * max(reps - 4, 0))
        return DNNConfig(
            bundle=bundle,
            task=self.task,
            num_repetitions=reps,
            channel_expansion=expansion,
            downsample=downsample,
            stem_channels=self.stem_channels,
            activation=activation,
            parallel_factor=parallel_factor,
            name=f"eval-m{method}-b{bundle.bundle_id}-pf{parallel_factor}",
        )

    def _estimate(self, config: DNNConfig) -> tuple[float, ResourceVector]:
        """Scalar analytical latency (ms) and resources of one configuration."""
        workload = config.to_workload()
        accelerator = TileArchAccelerator.build(
            workload, self.device, parallel_factor=config.parallel_factor,
            clock_mhz=self.clock_mhz,
        )
        estimate = DNNPerformanceModel(accelerator, self.coefficients).estimate()
        return estimate.latency_ms, estimate.resources

    def _estimate_many(self, configs: Sequence[DNNConfig]) -> list[tuple[float, ResourceVector]]:
        """Latency / resources of many configurations, batched when enabled."""
        if not self.batched:
            return [self._estimate(config) for config in configs]
        if self._batch_estimator is None:
            self._batch_estimator = BatchedDNNEstimator(self.device)
        estimates = self._batch_estimator.estimate_batch(
            configs, coefficients=self.coefficients, clock_mhz=self.clock_mhz
        )
        return [(est.latency_ms, est.resources) for est in estimates]

    def _cached_workload(self, config: DNNConfig) -> Optional[NetworkWorkload]:
        """The batched estimator's workload for ``config``, if one exists.

        Handed to :meth:`DNNConfig.features` so the accuracy pass does not
        rebuild a workload the latency pass already constructed.
        """
        if self._batch_estimator is None:
            return None
        return self._batch_estimator.workload_for(config)

    def _accuracy(
        self,
        config: DNNConfig,
        epochs: int = PROXY_EPOCHS,
        workload: Optional[NetworkWorkload] = None,
    ) -> float:
        """Accuracy of the evaluation DNN after proxy training."""
        return self.accuracy_model.predict(config.features(epochs=epochs, workload=workload))

    # --------------------------------------------------------- coarse-grained
    def coarse_evaluate(
        self,
        bundles: Sequence[Bundle],
        parallel_factors: Sequence[int] = (4, 8, 16),
        method: int = 1,
    ) -> list[BundleEvaluation]:
        """Coarse-grained evaluation of every bundle at every parallel factor.

        Accuracy does not depend on the parallel factor (it only changes the
        hardware implementation), so it is computed once per bundle.
        """
        if not parallel_factors:
            raise ValueError("parallel_factors must contain at least one parallel factor")
        evaluations: list[BundleEvaluation] = []
        with telemetry.trace("core.bundle_evaluation.coarse", method=method,
                             bundles=len(bundles)):
            # The full bundle x parallel-factor cross-product is scored in
            # one batched call; records are assembled in the same
            # (bundle-major, factor-minor) order the scalar loop produced.
            configs = [
                self._config_for(bundle, method, pf)
                for bundle in bundles
                for pf in parallel_factors
            ]
            estimates = self._estimate_many(configs)
            cursor = 0
            for bundle in bundles:
                probe = self._config_for(bundle, method, parallel_factors[0])
                accuracy = self._accuracy(probe, workload=self._cached_workload(probe))
                for pf in parallel_factors:
                    config = configs[cursor]
                    latency, resources = estimates[cursor]
                    cursor += 1
                    evaluations.append(BundleEvaluation(
                        bundle=bundle,
                        parallel_factor=pf,
                        latency_ms=latency,
                        accuracy=accuracy,
                        resources=resources,
                        dsp=resources.dsp,
                        method=method,
                        config=config,
                    ))
        reg = telemetry.registry()
        if reg is not None:
            reg.counter("core.bundle_evaluation.evaluations").inc(len(evaluations))
        logger.info("Coarse evaluation (method #%d): %d records", method, len(evaluations))
        return evaluations

    # ---------------------------------------------------------- Pareto select
    @staticmethod
    def pareto_bundles(
        evaluations: Sequence[BundleEvaluation], num_resource_groups: int = 3
    ) -> list[int]:
        """Bundle IDs on the per-resource-group Pareto curves.

        Bundles are first grouped by their DSP usage (the binding resource on
        DSP-starved IoT devices), then a latency-vs-accuracy Pareto front is
        computed per group; the union of front members is returned.
        """
        records = best_evaluation_per_bundle(evaluations)
        groups = group_by(records, key=lambda e: e.dsp, num_groups=num_resource_groups)
        selected: set[int] = set()
        for members in groups.values():
            front = pareto_front(members, cost=lambda e: e.latency_ms, value=lambda e: e.accuracy)
            selected.update(e.bundle_id for e in front)
        return sorted(selected)

    def select_top_bundles(
        self,
        evaluations: Sequence[BundleEvaluation],
        top_n: int = 5,
        latency_weight: float = 0.15,
        min_accuracy_fraction: float = 0.72,
        num_resource_groups: int = 3,
    ) -> list[Bundle]:
        """Select the top-N promising bundles for DNN exploration.

        Selection keeps only Pareto members (per resource group), discards
        bundles whose accuracy potential is far below the best observed one
        (they cannot contribute competitive DNNs however cheap they are), and
        ranks the remainder by a score combining accuracy potential and
        hardware efficiency (normalised latency), as Sec. 4.2 prescribes
        ("the most promising ones will be selected ... based on their
        potential accuracy contributions and hardware characteristics").
        """
        if not evaluations:
            raise ValueError("No evaluations to select from")
        pareto_ids = set(self.pareto_bundles(evaluations, num_resource_groups))
        candidates = [
            ev for ev in best_evaluation_per_bundle(evaluations)
            if ev.bundle_id in pareto_ids
        ]
        max_latency = max(ev.latency_ms for ev in candidates)
        if max_latency <= 0:
            raise ValueError(
                "All candidate latencies are non-positive; cannot rank bundles "
                "by normalised latency (check the analytical model inputs)"
            )
        best_accuracy = max(ev.accuracy for ev in candidates)
        candidates = [
            ev for ev in candidates if ev.accuracy >= min_accuracy_fraction * best_accuracy
        ]

        def score(ev: BundleEvaluation) -> float:
            return ev.accuracy - latency_weight * (ev.latency_ms / max_latency)

        ranked = sorted(candidates, key=score, reverse=True)
        selected = [ev.bundle for ev in ranked[:top_n]]
        logger.info(
            "Selected bundles: %s", ", ".join(str(b.bundle_id) for b in selected)
        )
        return selected

    # ------------------------------------------------------------ fine-grained
    def fine_evaluate(
        self,
        bundles: Sequence[Bundle],
        activations: Sequence[str] = ("relu", "relu8", "relu4"),
        repetition_counts: Sequence[int] = (2, 3, 4),
        parallel_factor: int = 16,
    ) -> list[FineGrainedEvaluation]:
        """Fine-grained evaluation of the selected bundles (Fig. 5)."""
        results: list[FineGrainedEvaluation] = []
        with telemetry.trace("core.bundle_evaluation.fine", bundles=len(bundles)):
            # One batched call over the bundle x replication x activation
            # cross-product; assembly preserves the scalar loop order.
            grid = [
                (bundle, reps, activation)
                for bundle in bundles
                for reps in repetition_counts
                for activation in activations
            ]
            configs = [
                self._config_for(
                    bundle, method=2, parallel_factor=parallel_factor,
                    activation=activation, num_repetitions=reps,
                )
                for bundle, reps, activation in grid
            ]
            estimates = self._estimate_many(configs)
            for (bundle, reps, activation), config, (latency, resources) in zip(
                grid, configs, estimates
            ):
                accuracy = self._accuracy(config, workload=self._cached_workload(config))
                results.append(FineGrainedEvaluation(
                    bundle=bundle,
                    num_repetitions=reps,
                    activation=activation,
                    latency_ms=latency,
                    accuracy=accuracy,
                    resources=resources,
                    config=config,
                ))
        reg = telemetry.registry()
        if reg is not None:
            reg.counter("core.bundle_evaluation.evaluations").inc(len(results))
        logger.info("Fine-grained evaluation: %d records", len(results))
        return results
