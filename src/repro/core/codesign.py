"""The overall co-design flow (Fig. 1 / Sec. 3.2).

The flow takes the target ML task, the FPGA device (resource budget) and the
performance targets, and runs the three co-design steps:

1. **Building block and DNN modelling** — analytical latency / resource
   models are constructed for the bundles and the DNNs built from them; the
   model coefficients are fitted via Auto-HLS sampling.
2. **Building block selection** — coarse- and fine-grained evaluation of the
   bundle candidates; the bundles on the (per-resource-group) Pareto curves
   are selected.
3. **Hardware-aware DNN search and update** — Auto-DNN explores DNNs with
   SCD under the resource and latency constraints; outputs are passed to
   Auto-HLS for precise performance / resource results; the DNNs meeting the
   requirements are output for training and fine-tuning.

The outputs are the software side (DNN models) and the hardware side (their
FPGA accelerators, i.e. generated HLS C code plus synthesis reports).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.backend import Backend, infer_backend
from repro.core.auto_dnn import AutoDNN, DNNCandidate
from repro.core.auto_hls import AutoHLS
from repro.core.bundle import Bundle
from repro.core.bundle_evaluation import BundleEvaluation, BundleEvaluator, FineGrainedEvaluation
from repro.core.bundle_generation import default_bundle_catalog
from repro.core.constraints import LatencyTarget, ResourceConstraint
from repro.detection.accuracy_model import AccuracyModel, SurrogateAccuracyModel
from repro.detection.task import DAC_SDC_TASK, DetectionTask
from repro.hw.device import FPGADevice, PYNQ_Z1
from repro.hw.sampling import SamplingResult
from repro.search import EvaluationCache, SearchSession
from repro.utils.logging import get_logger
from repro.utils.rng import RNGLike

logger = get_logger(__name__)


@dataclass
class CoDesignInputs:
    """Inputs of the co-design flow (left-hand side of Fig. 1)."""

    task: DetectionTask = DAC_SDC_TASK
    device: FPGADevice = PYNQ_Z1
    latency_targets: tuple[LatencyTarget, ...] = (
        LatencyTarget(fps=10.0),
        LatencyTarget(fps=15.0),
        LatencyTarget(fps=20.0),
    )
    bundles: tuple[Bundle, ...] = ()
    utilization_limit: float = 1.0

    def __post_init__(self) -> None:
        if not self.latency_targets:
            raise ValueError("At least one latency target is required")
        if not self.bundles:
            self.bundles = tuple(default_bundle_catalog())

    @property
    def resource_constraint(self) -> ResourceConstraint:
        return ResourceConstraint.for_device(self.device, self.utilization_limit)


@dataclass
class CoDesignResult:
    """Outputs of the co-design flow (right-hand side of Fig. 1)."""

    inputs: CoDesignInputs
    sampling: Optional[SamplingResult]
    coarse_evaluations: list[BundleEvaluation]
    fine_evaluations: list[FineGrainedEvaluation]
    selected_bundles: list[Bundle]
    candidates: list[DNNCandidate]
    best_per_target: dict[LatencyTarget, Optional[DNNCandidate]]

    @property
    def final_designs(self) -> list[DNNCandidate]:
        """The best candidate per latency target (DNN1-3 of the paper)."""
        return [c for c in self.best_per_target.values() if c is not None]

    def summary(self) -> str:
        """Readable multi-line summary of the flow outcome."""
        lines = [
            f"Co-design flow on {self.inputs.device.name} for task '{self.inputs.task.name}'",
            f"  bundle candidates : {len(self.inputs.bundles)}",
            f"  selected bundles  : {[b.bundle_id for b in self.selected_bundles]}",
            f"  explored DNNs     : {len(self.candidates)}",
        ]
        for target, candidate in self.best_per_target.items():
            if candidate is None:
                lines.append(f"  {target}: no candidate met the target")
            else:
                lines.append(f"  {target}: {candidate.summary()}")
        return "\n".join(lines)


class CoDesignFlow:
    """End-to-end automatic hardware/DNN co-design.

    The hardware substrate is pluggable: ``backend`` (a
    :class:`repro.backend.Backend`) supplies target resolution, the
    estimation engine, the resource budget and the step-1/2 preparation
    shape.  When omitted it is inferred from ``inputs.device`` — an
    :class:`~repro.hw.device.FPGADevice` selects the FPGA backend (the
    paper's flow, unchanged), a :class:`~repro.gpu.device.GPUDevice` the
    fit-free GPU roofline backend.
    """

    def __init__(
        self,
        inputs: CoDesignInputs,
        accuracy_model: Optional[AccuracyModel] = None,
        candidates_per_bundle: int = 2,
        top_n_bundles: int = 5,
        scd_iterations: int = 120,
        rng: RNGLike = 2019,
        search_strategy: str = "scd",
        search_workers: int = 1,
        evaluation_cache: Optional[EvaluationCache] = None,
        clock_mhz: Optional[float] = None,
        backend: Optional[Backend] = None,
    ) -> None:
        self.inputs = inputs
        self.backend = backend if backend is not None else infer_backend(inputs.device)
        self.accuracy_model = accuracy_model or SurrogateAccuracyModel()
        self.candidates_per_bundle = candidates_per_bundle
        self.top_n_bundles = top_n_bundles
        self.scd_iterations = scd_iterations
        self.rng = rng
        self.search_strategy = search_strategy
        self.search_workers = search_workers
        if clock_mhz is not None:
            clock_mhz = self.backend.validate_clock(inputs.device, clock_mhz)
        self.clock_mhz = clock_mhz or self.backend.default_clock_mhz(inputs.device)
        self.resource_constraint = self.backend.resource_constraint(
            inputs.device, inputs.utilization_limit
        )

        self.auto_hls = self.backend.create_engine(inputs.device, clock_mhz=self.clock_mhz)
        self.evaluator = self.backend.create_bundle_evaluator(
            inputs.task, inputs.device, self.accuracy_model
        )
        self.auto_dnn = AutoDNN(
            task=inputs.task,
            device=inputs.device,
            auto_hls=self.auto_hls,
            accuracy_model=self.accuracy_model,
            resource_constraint=self.resource_constraint,
            candidates_per_bundle=candidates_per_bundle,
            rng=rng,
            strategy=search_strategy,
            workers=search_workers,
            cache=evaluation_cache,
        )

    def attach_evaluation_cache(self, cache: EvaluationCache) -> None:
        """Swap the search-side evaluation cache after construction.

        The sweep engine uses this to layer a persistent
        :class:`~repro.sweep.disk_cache.DiskEvaluationCache` under the
        in-memory cache once step 1 has fitted the model coefficients (the
        disk namespace embeds their fingerprint, so the cache can only be
        built post-fit).
        """
        self.auto_dnn.cache = cache
        # Drop any existing worker pool: it is bound to the old cache's
        # estimator and would silently bypass the new cache on batch misses.
        self.auto_dnn.close()

    # ------------------------------------------------------------------ steps
    def step1_modeling(
        self, sample_bundle_ids: Sequence[int] = (1, 7, 13)
    ) -> Optional[SamplingResult]:
        """Co-Design Step 1: fit the analytical models via Auto-HLS sampling.

        Fit-free backends (the GPU roofline) have nothing to fit; the step
        is a no-op returning ``None`` so ``run()`` stays backend-agnostic.
        """
        if not self.backend.requires_fit:
            return None
        samples = []
        for bundle in self.inputs.bundles:
            if bundle.bundle_id in sample_bundle_ids:
                config = self.auto_dnn.initialize(bundle)
                samples.append(config.to_workload())
        if not samples:
            config = self.auto_dnn.initialize(self.inputs.bundles[0])
            samples.append(config.to_workload())
        result = self.auto_hls.fit_models(samples)
        # Propagate the fitted coefficients to the evaluator as well.
        self.evaluator.coefficients = result.coefficients
        return result

    def step2_bundle_selection(
        self, parallel_factors: Sequence[int] = (4, 8, 16)
    ) -> tuple[list[BundleEvaluation], list[FineGrainedEvaluation], list[Bundle]]:
        """Co-Design Step 2: coarse / fine bundle evaluation and selection.

        Backends without a bundle evaluator (``evaluator is None``) select
        deterministically via :meth:`repro.backend.Backend.select_bundles`
        and report no coarse/fine evaluations.
        """
        if self.evaluator is None:
            selected = self.backend.select_bundles(
                self.inputs.bundles, self.top_n_bundles
            )
            return [], [], list(selected)
        coarse = self.evaluator.coarse_evaluate(
            self.inputs.bundles, parallel_factors=parallel_factors, method=1
        )
        selected = self.evaluator.select_top_bundles(coarse, top_n=self.top_n_bundles)
        fine = self.evaluator.fine_evaluate(selected)
        return coarse, fine, selected

    def step3_search(
        self,
        selected: Sequence[Bundle],
        strategy: Optional[str] = None,
        workers: Optional[int] = None,
        session: Optional[SearchSession] = None,
    ) -> list[DNNCandidate]:
        """Co-Design Step 3: hardware-aware DNN search and update.

        ``strategy`` selects a registered exploration strategy (``scd``,
        ``random``, ``evolutionary``, ``annealing``; defaults to the flow's
        ``search_strategy``), ``workers`` overrides the number of parallel
        evaluation threads for this call only, and ``session`` collects the
        evaluation journal.
        """
        candidates = self.auto_dnn.search(
            selected,
            self.inputs.latency_targets,
            num_candidates=self.candidates_per_bundle,
            max_iterations=self.scd_iterations,
            strategy=strategy or self.search_strategy,
            session=session,
            workers=workers,
        )
        return self.auto_dnn.refine_with_hls(candidates)

    # -------------------------------------------------------------------- run
    def run(self, fit_models: bool = True) -> CoDesignResult:
        """Run the full three-step co-design flow."""
        sampling = self.step1_modeling() if fit_models else None
        coarse, fine, selected = self.step2_bundle_selection()
        candidates = self.step3_search(selected)
        best = AutoDNN.best_per_target(candidates, self.inputs.latency_targets)
        result = CoDesignResult(
            inputs=self.inputs,
            sampling=sampling,
            coarse_evaluations=coarse,
            fine_evaluations=fine,
            selected_bundles=selected,
            candidates=candidates,
            best_per_target=best,
        )
        logger.info("Co-design flow finished:\n%s", result.summary())
        return result
