"""Automatic bundle generation from the IP pool.

Sec. 4.2: bundles are generated from the IP pool (conv 1x1 / 3x3 / 5x5,
depth-wise conv 3x3 / 5x5 / 7x7, pooling, normalisation, activation) with at
most two computational IPs per bundle; 18 bundle candidates are generated
offline and used for DNN exploration.

Two entry points are provided:

* :func:`default_bundle_catalog` — the fixed, numbered catalogue of 18
  bundles used throughout the reproduction (the numbering is chosen so the
  bundles highlighted in the paper's figures keep their IDs, e.g. Bundle 13
  is ``dw-conv3x3 + conv1x1``),
* :func:`generate_bundles` — a generic combinatorial generator for arbitrary
  IP pools and compute-IP limits, used to scale the methodology to richer
  pools ("it can be easily extended to support more IPs for devices with
  more resources").
"""

from __future__ import annotations

from itertools import combinations_with_replacement, permutations
from typing import Iterable, Sequence

from repro.core.bundle import Bundle

#: Composition strings of the default 18-bundle catalogue, ordered so that
#: the bundle IDs referenced in the paper's figures map onto the same
#: structures (Bundle 13 = dw-conv3x3 + conv1x1, the block of the final
#: DNN1-3 designs; Bundles 1 / 3 are the convolution-heavy high-accuracy
#: blocks).
DEFAULT_BUNDLE_SIGNATURES: tuple[str, ...] = (
    "conv3x3+conv1x1",      # 1
    "conv3x3+conv3x3",      # 2
    "conv5x5+conv1x1",      # 3
    "conv5x5+conv3x3",      # 4
    "conv1x1+conv3x3",      # 5
    "conv1x1+conv5x5",      # 6
    "conv3x3",              # 7
    "conv5x5",              # 8
    "conv1x1",              # 9
    "dwconv3x3",            # 10
    "dwconv5x5",            # 11
    "dwconv7x7",            # 12
    "dwconv3x3+conv1x1",    # 13
    "dwconv5x5+conv1x1",    # 14
    "dwconv7x7+conv1x1",    # 15
    "conv1x1+dwconv3x3",    # 16
    "conv1x1+dwconv5x5",    # 17
    "conv1x1+dwconv7x7",    # 18
)


def default_bundle_catalog() -> list[Bundle]:
    """The 18 bundle candidates used for the paper's experiments."""
    return [
        Bundle.from_signature(i + 1, signature)
        for i, signature in enumerate(DEFAULT_BUNDLE_SIGNATURES)
    ]


def get_bundle(bundle_id: int) -> Bundle:
    """Look up a bundle from the default catalogue by its ID (1-based)."""
    catalog = default_bundle_catalog()
    for bundle in catalog:
        if bundle.bundle_id == bundle_id:
            return bundle
    raise KeyError(f"No bundle with id {bundle_id}; valid ids are 1..{len(catalog)}")


#: Computational IP keys of the default pool.
DEFAULT_COMPUTE_IPS: tuple[str, ...] = (
    "conv1x1", "conv3x3", "conv5x5", "dwconv3x3", "dwconv5x5", "dwconv7x7",
)


def generate_bundles(
    compute_ips: Sequence[str] = DEFAULT_COMPUTE_IPS,
    max_compute_ips: int = 2,
    include_single_ip: bool = True,
    require_channel_mixing: bool = False,
) -> list[Bundle]:
    """Enumerate bundle candidates from a pool of computational IPs.

    Parameters
    ----------
    compute_ips:
        IP keys to combine (e.g. ``"conv3x3"``, ``"dwconv5x5"``).
    max_compute_ips:
        Maximum number of computational IPs per bundle.
    include_single_ip:
        Whether single-IP bundles are emitted.
    require_channel_mixing:
        When true, bundles whose computational layers are all depth-wise
        (no channel mixing at all) are skipped.

    Returns
    -------
    list[Bundle]
        Bundles numbered sequentially from 1 in enumeration order.
    """
    if max_compute_ips <= 0:
        raise ValueError("max_compute_ips must be positive")
    seen: set[str] = set()
    signatures: list[str] = []

    sizes = range(1 if include_single_ip else 2, max_compute_ips + 1)
    for size in sizes:
        for combo in combinations_with_replacement(compute_ips, size):
            for ordering in permutations(combo):
                signature = "+".join(ordering)
                if signature in seen:
                    continue
                if require_channel_mixing and all(p.startswith("dw") for p in ordering):
                    continue
                seen.add(signature)
                signatures.append(signature)

    return [Bundle.from_signature(i + 1, s) for i, s in enumerate(signatures)]
