"""Plain-text table rendering used by experiment drivers and the CLI.

The benchmark harness prints the same rows the paper reports; this module
keeps the formatting in one place so the output of every experiment looks
consistent.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _stringify(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 1000 else f"{value:,.1f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    str_rows = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def render_kv(title: str, mapping: dict[str, object]) -> str:
    """Render a key/value block (used for headline claims summaries)."""
    width = max((len(k) for k in mapping), default=0)
    lines = [title]
    lines.extend(f"  {k.ljust(width)} : {_stringify(v)}" for k, v in mapping.items())
    return "\n".join(lines)
