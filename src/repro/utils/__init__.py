"""Shared utilities: logging, RNG handling, serialization and table rendering."""

from repro.utils.logging import get_logger
from repro.utils.rng import ensure_rng
from repro.utils.tables import render_table

__all__ = ["get_logger", "ensure_rng", "render_table"]
