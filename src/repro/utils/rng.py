"""Random-number-generator helpers.

Every stochastic component in the library accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None``.  :func:`ensure_rng`
normalises these into a ``Generator`` so that experiments are reproducible
end to end.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RNGLike = Union[int, np.random.Generator, None]


def ensure_rng(rng: RNGLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` (fresh default generator), an integer seed, or an existing
        generator (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"Cannot build a Generator from {type(rng).__name__}")


def spawn_rngs(rng: RNGLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``."""
    base = ensure_rng(rng)
    seeds = base.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]
