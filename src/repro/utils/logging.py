"""Logging helpers.

The library uses the standard :mod:`logging` module so that applications
embedding the co-design flow can control verbosity through the usual
``logging`` configuration machinery.
"""

from __future__ import annotations

import logging

_FORMAT = "%(asctime)s %(name)s %(levelname)s: %(message)s"


def get_logger(name: str, level: int | None = None) -> logging.Logger:
    """Return a namespaced logger under the ``repro`` hierarchy.

    Parameters
    ----------
    name:
        Module name; typically ``__name__`` of the caller.
    level:
        Optional explicit level.  When omitted the logger inherits the level
        of its ancestors.
    """
    if not name.startswith("repro"):
        name = f"repro.{name}"
    logger = logging.getLogger(name)
    if level is not None:
        logger.setLevel(level)
    return logger


def configure_logging(level: int | str = logging.INFO) -> None:
    """Configure a basic console handler for the ``repro`` logger tree.

    Safe to call multiple times; subsequent calls only adjust the level —
    of the logger *and* of the handlers installed earlier, so lowering to
    ``DEBUG`` after an initial ``INFO`` call actually emits debug records.
    Accepts a numeric level or a name like ``"debug"``.
    """
    if isinstance(level, str):
        parsed = logging.getLevelName(level.strip().upper())
        if not isinstance(parsed, int):
            raise ValueError(f"unknown log level {level!r}")
        level = parsed
    root = logging.getLogger("repro")
    root.setLevel(level)
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        root.addHandler(handler)
    for handler in root.handlers:
        handler.setLevel(level)
