"""JSON serialization of experiment results.

Experiment drivers return nested dataclasses (rows, evaluations, candidates).
This module converts them into plain JSON-compatible structures so results
can be archived, diffed across runs, or post-processed into plots, and loads
them back as dictionaries.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any

import numpy as np


def to_jsonable(obj: Any, _depth: int = 0) -> Any:
    """Recursively convert ``obj`` into JSON-serialisable structures.

    Dataclasses become dictionaries (with a ``__type__`` tag), numpy scalars
    and arrays become Python scalars and lists, mappings and sequences are
    converted element-wise, and objects exposing ``as_dict`` use it.  Depth is
    bounded to protect against accidental cycles.
    """
    if _depth > 24:
        return str(obj)
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        payload = {
            field.name: to_jsonable(getattr(obj, field.name), _depth + 1)
            for field in dataclasses.fields(obj)
        }
        payload["__type__"] = type(obj).__name__
        return payload
    if isinstance(obj, dict):
        return {str(key): to_jsonable(value, _depth + 1) for key, value in obj.items()}
    if isinstance(obj, (list, tuple, set)):
        return [to_jsonable(item, _depth + 1) for item in obj]
    if hasattr(obj, "as_dict") and callable(obj.as_dict):
        return to_jsonable(obj.as_dict(), _depth + 1)
    # Fall back to the readable representation for anything exotic.
    return str(obj)


def dump_json(obj: Any, path: str | pathlib.Path, indent: int = 2) -> pathlib.Path:
    """Serialise ``obj`` to ``path`` as JSON; returns the path written."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_jsonable(obj), indent=indent, sort_keys=True))
    return path


def load_json(path: str | pathlib.Path) -> Any:
    """Load a JSON file previously written by :func:`dump_json`."""
    return json.loads(pathlib.Path(path).read_text())
