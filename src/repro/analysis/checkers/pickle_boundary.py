"""``pickle-boundary``: boundary-crossing classes stay picklable.

Sweep cells run in spawned worker processes (PR 3), shard workers receive
``PreparedTarget`` artifacts over HTTP (PR 5), and worker metrics travel
back as ``MetricsSnapshot`` payloads (PR 6).  Every one of those objects
crosses a process or wire boundary, so holding a ``threading.Lock``, an
open file, a socket or an executor in an instance attribute turns the
first dispatch into a ``TypeError: cannot pickle`` — at runtime, on the
worker, far from the constructor that planted it.

A class is treated as boundary-crossing when it

* is one of the repo's known payload classes (``PreparedTarget`` — or its
  legacy alias ``PreparedDevice`` — ``SweepTask``, ``SweepOutcome``,
  ``SweepFailure``, ``MetricsSnapshot``),
* subclasses one of them by name (a backend-specific ``PreparedTarget``
  variant is a payload wherever its base is), or
* defines ``to_wire`` / ``from_wire`` (the PR 5 wire-marshalling marker
  every ``PreparedTarget`` implementation carries).

Classes that define ``__getstate__`` or ``__reduce__`` opted into custom
pickling and are exempt — they already decided what crosses.
"""

from __future__ import annotations

import ast

from repro.analysis.core import (
    Checker,
    Finding,
    ModuleContext,
    collect_imports,
    dotted_name,
    register,
)

#: Classes that cross process/wire boundaries by design (worker payloads).
BOUNDARY_CLASS_NAMES = frozenset({
    "PreparedTarget", "PreparedDevice", "SweepTask", "SweepOutcome",
    "SweepFailure", "MetricsSnapshot",
})

#: Methods whose presence marks a class as wire-crossing.
_WIRE_MARKERS = frozenset({"to_wire", "from_wire"})

_PICKLE_OPT_OUT = frozenset({"__getstate__", "__reduce__", "__reduce_ex__"})

#: Factory calls producing unpicklable values (qualified name -> label).
_UNPICKLABLE_FACTORIES = {
    "threading.Lock": "a threading.Lock",
    "threading.RLock": "a threading.RLock",
    "threading.Condition": "a threading.Condition",
    "threading.Event": "a threading.Event",
    "threading.Semaphore": "a threading.Semaphore",
    "threading.BoundedSemaphore": "a threading.BoundedSemaphore",
    "open": "an open file handle",
    "io.open": "an open file handle",
    "socket.socket": "a socket",
    "socket.create_connection": "a socket",
    "subprocess.Popen": "a subprocess handle",
    "ThreadPoolExecutor": "a thread-pool executor",
    "ProcessPoolExecutor": "a process-pool executor",
}


def _factory_label(imports, func: ast.AST) -> str | None:
    name = dotted_name(func)
    if name is None:
        return None
    if name in _UNPICKLABLE_FACTORIES:
        return _UNPICKLABLE_FACTORIES[name]
    # Resolve from-imports: `from threading import Lock` -> threading.Lock.
    _module_aliases, from_imports = imports
    origin = from_imports.get(name)
    if origin is not None and origin in _UNPICKLABLE_FACTORIES:
        return _UNPICKLABLE_FACTORIES[origin]
    tail = name.rsplit(".", 1)[-1]
    if tail in ("ThreadPoolExecutor", "ProcessPoolExecutor"):
        return _UNPICKLABLE_FACTORIES[tail]
    return None


@register
class PickleBoundaryChecker(Checker):
    rule = "pickle-boundary"
    description = (
        "boundary-crossing class (worker payload / to_wire) assigns an "
        "unpicklable attribute in __init__"
    )
    contract = (
        "PR 3/5/6: PreparedTarget, SweepTask, outcomes and metrics "
        "snapshots cross process pools and the shard HTTP wire; they must "
        "never hold locks, files, sockets or executors"
    )

    def run(self, ctx: ModuleContext) -> list[Finding]:
        imports = collect_imports(ctx.tree)
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                stmt.name for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            # Subclasses of a known payload class are payloads too: the
            # base's to_wire/from_wire may live out of this module's AST.
            base_names = {
                (dotted_name(base) or "").rsplit(".", 1)[-1]
                for base in node.bases
            }
            boundary = node.name in BOUNDARY_CLASS_NAMES \
                or bool(base_names & BOUNDARY_CLASS_NAMES) \
                or bool(methods & _WIRE_MARKERS)
            if not boundary or methods & _PICKLE_OPT_OUT:
                continue
            findings.extend(self._check_class(ctx, imports, node))
        return findings

    def _check_class(self, ctx: ModuleContext, imports,
                     cls: ast.ClassDef) -> list[Finding]:
        findings: list[Finding] = []
        why = (f"{cls.name} crosses a process/wire boundary "
               "(worker payload, payload subclass or to_wire/from_wire class)")
        # Dataclass-style field defaults in the class body.
        for stmt in cls.body:
            value = None
            if isinstance(stmt, ast.AnnAssign):
                value = stmt.value
            elif isinstance(stmt, ast.Assign):
                value = stmt.value
            if not isinstance(value, ast.Call):
                continue
            label = _factory_label(imports, value.func)
            if label is not None:
                findings.append(ctx.finding(
                    self.rule, stmt,
                    f"{why}; a class-level default holding {label} makes "
                    "every instance unpicklable",
                ))
                continue
            if dotted_name(value.func) in ("field", "dataclasses.field"):
                for keyword in value.keywords:
                    if keyword.arg != "default_factory":
                        continue
                    factory = dotted_name(keyword.value)
                    target = _UNPICKLABLE_FACTORIES.get(factory or "")
                    if target is None and factory is not None:
                        origin = imports[1].get(factory)
                        target = _UNPICKLABLE_FACTORIES.get(origin or "")
                    if target is not None:
                        findings.append(ctx.finding(
                            self.rule, stmt,
                            f"{why}; field(default_factory=...) plants "
                            f"{target} in every instance",
                        ))
        # self.<attr> = <unpicklable factory>() inside __init__ / __post_init__.
        for stmt in cls.body:
            if not (isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and stmt.name in ("__init__", "__post_init__")):
                continue
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Assign) \
                        or not isinstance(node.value, ast.Call):
                    continue
                if not any(
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    for target in node.targets
                ):
                    continue
                label = _factory_label(imports, node.value.func)
                if label is not None:
                    findings.append(ctx.finding(
                        self.rule, node,
                        f"{why}; assigning {label} in {stmt.name} makes the "
                        "instance unpicklable the moment it is dispatched",
                    ))
        return findings
