"""``no-wall-clock``: persisted timestamps must come from an injected clock.

PR 6 routed every persisted timestamp — checkpoint records, timing
sidecars, the telemetry sink — through one injected ``clock`` callable so
tests can freeze it and artefact bytes stay reproducible.  A stray
``time.time()`` (or ``datetime.now()``) deep inside a persistence path
silently re-introduces wall-clock nondeterminism; the PR 6 sweep missed
exactly one such call (``DiskEvaluationCache._append``), which this rule
now catches mechanically.

Allowed spellings (the *injection seams*):

* A bare ``time.time`` **reference** — e.g. the idiomatic default
  ``clock: Callable[[], float] = time.time`` — is not a call and is never
  flagged.
* The optional-parameter fallback ``now = time.time() if now is None
  else float(now)`` (or the equivalent ``if now is None:`` statement),
  where ``now`` is a parameter of the enclosing function: that *is* the
  seam callers inject through.

Durations measured with ``time.monotonic()`` / ``time.perf_counter()``
are not wall-clock timestamps and are always allowed.
"""

from __future__ import annotations

import ast

from repro.analysis.core import (
    Checker,
    Finding,
    ModuleContext,
    dotted_name,
    is_compare_to_none,
    register,
)

#: Call targets that read the wall clock.
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "date.today",
    "datetime.date.today",
}


@register
class WallClockChecker(Checker):
    rule = "no-wall-clock"
    description = (
        "direct time.time()/datetime.now() call outside an injected-clock seam"
    )
    contract = (
        "PR 6: every persisted timestamp flows through one injected clock "
        "(CheckpointWriter/save_timings/TelemetrySink) so frozen-clock tests "
        "can reproduce artefact bytes"
    )

    def run(self, ctx: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name not in _WALL_CLOCK_CALLS:
                continue
            if self._is_injection_seam(ctx, node):
                continue
            findings.append(ctx.finding(
                self.rule, node,
                f"{name}() reads the wall clock directly; thread the injected "
                "clock through (clock=... parameter, or a `now = time.time() "
                "if now is None` seam) so frozen-clock tests stay byte-stable",
            ))
        return findings

    @staticmethod
    def _is_injection_seam(ctx: ModuleContext, call: ast.Call) -> bool:
        function = ctx.enclosing_function(call)
        if function is None:
            return False
        args = function.args
        params = {
            arg.arg
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]
        }
        for ancestor in ctx.ancestors(call):
            if ancestor is function:
                break
            test = None
            scope = None
            if isinstance(ancestor, ast.IfExp):
                test, scope = ancestor.test, ancestor.body
            elif isinstance(ancestor, ast.If):
                test, scope = ancestor.test, ancestor
            if test is None:
                continue
            compare = is_compare_to_none(test)
            if compare is None:
                continue
            name, negated = compare
            if negated or name not in params:
                continue
            if isinstance(ancestor, ast.IfExp):
                # `now = time.time() if now is None else float(now)`
                if any(node is call for node in ast.walk(scope)):
                    return True
            elif any(node is call for stmt in ancestor.body
                     for node in ast.walk(stmt)):
                # `if now is None: now = time.time()` (not the else branch)
                return True
        return False
