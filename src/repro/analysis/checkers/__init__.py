"""Built-in invariant checkers.

Importing this package registers every built-in checker with the
:mod:`repro.analysis.core` registry; :func:`repro.analysis.all_checkers`
triggers the import lazily.  Each module holds exactly one rule so new
contracts land as new files, not edits to a monolith.
"""

from repro.analysis.checkers import (  # noqa: F401 - registration side effects
    jsonl_contract,
    lock_discipline,
    pickle_boundary,
    telemetry_cost,
    unseeded_random,
    wall_clock,
)
