"""``telemetry-zero-cost``: registry handles are guarded, or the facade is used.

PR 6's core contract: with telemetry disabled, ``telemetry.registry()``
returns ``None`` and every instrumented hot path must reduce to one
attribute load plus an ``is None`` test.  The safe spellings are:

* the facade — ``telemetry.event(...)``, ``with telemetry.trace(...)``,
  ``telemetry.snapshot()/merge()/reset()`` — which all no-op internally;
* ``reg = telemetry.registry()`` followed by uses *guarded* by
  ``if reg is not None:`` (or an early ``if reg is None: return``).

An **unguarded** attribute call on the registry handle is both a perf
leak and a latent crash: the moment telemetry is off, ``reg`` is ``None``
and ``reg.counter(...)`` raises ``AttributeError`` — precisely in the
paths only exercised with telemetry disabled.  Chaining straight off the
accessor (``telemetry.registry().counter(...)``) is unguardable by
construction and always flagged.
"""

from __future__ import annotations

import ast
from typing import Optional, Union

from repro.analysis.core import (
    Checker,
    Finding,
    ModuleContext,
    collect_imports,
    dotted_name,
    is_compare_to_none,
    register,
)


def _is_registry_accessor(ctx_imports, func: ast.AST) -> bool:
    """True for ``telemetry.registry`` / ``registry`` (imported) references."""
    module_aliases, from_imports = ctx_imports
    name = dotted_name(func)
    if name is None:
        return False
    parts = name.split(".")
    if len(parts) == 2 and parts[1] == "registry":
        # `import repro.telemetry as telemetry` lands in module_aliases;
        # `from repro import telemetry` binds the same module via from_imports.
        origin = module_aliases.get(parts[0]) or from_imports.get(parts[0], "")
        if origin.endswith("telemetry"):
            return True
    if len(parts) == 1 and from_imports.get(parts[0], "").endswith(
            "telemetry.registry"):
        return True
    return False


@register
class TelemetryZeroCostChecker(Checker):
    rule = "telemetry-zero-cost"
    description = (
        "unguarded use of the Optional registry handle returned by "
        "telemetry.registry()"
    )
    contract = (
        "PR 6: registry() is None while telemetry is off; hot-path "
        "instrumentation is a single `is None` test, and direct registry "
        "calls must sit behind that guard (or use the telemetry.event/trace "
        "facade, which no-ops internally)"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        # The facade's own implementation legitimately touches _registry.
        return "/telemetry/" not in ctx.path.resolve().as_posix()

    def run(self, ctx: ModuleContext) -> list[Finding]:
        imports = collect_imports(ctx.tree)
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # (a) chained: telemetry.registry().counter(...)
            if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Call) \
                    and _is_registry_accessor(imports, func.value.func):
                findings.append(ctx.finding(
                    self.rule, node,
                    "chaining off telemetry.registry() crashes when telemetry "
                    "is disabled (registry() is None); bind it to a local and "
                    "guard with `if reg is not None:`",
                ))
                continue
            # (b) reg = telemetry.registry(); later unguarded reg.counter(...)
            if not (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)):
                continue
            handle = func.value.id
            function = ctx.enclosing_function(node)
            if function is None or not self._binds_registry(
                    imports, function, handle):
                continue
            if not self._is_guarded(ctx, node, function, handle):
                findings.append(ctx.finding(
                    self.rule, node,
                    f"`{handle}` holds telemetry.registry(), which is None "
                    "while telemetry is disabled; guard this call with "
                    f"`if {handle} is not None:` (or an early "
                    f"`if {handle} is None: return`)",
                ))
        return findings

    @staticmethod
    def _binds_registry(
        imports,
        function: Union[ast.FunctionDef, ast.AsyncFunctionDef],
        handle: str,
    ) -> bool:
        for node in ast.walk(function):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call) \
                    and _is_registry_accessor(imports, node.value.func):
                if any(isinstance(target, ast.Name) and target.id == handle
                       for target in node.targets):
                    return True
        return False

    @staticmethod
    def _is_guarded(
        ctx: ModuleContext,
        call: ast.Call,
        function: Union[ast.FunctionDef, ast.AsyncFunctionDef],
        handle: str,
    ) -> bool:
        # Lexical ancestor guard: `if reg is not None:` body, the else branch
        # of `if reg is None:`, or a plain truthiness test `if reg:`.
        for ancestor in ctx.ancestors(call):
            if ancestor is function:
                break
            if not isinstance(ancestor, ast.If):
                continue
            compare = is_compare_to_none(ancestor.test)
            if compare is not None and compare[0] == handle:
                negated = compare[1]
                in_body = any(node is call for stmt in ancestor.body
                              for node in ast.walk(stmt))
                if negated and in_body:
                    return True
                if not negated and not in_body:
                    return True
            elif isinstance(ancestor.test, ast.Name) \
                    and ancestor.test.id == handle:
                if any(node is call for stmt in ancestor.body
                       for node in ast.walk(stmt)):
                    return True
        # Early-exit guard anywhere above the call in the same function:
        # `if reg is None: return` dominates the straight-line uses below it.
        call_line = getattr(call, "lineno", 0)
        for node in ast.walk(function):
            if not isinstance(node, ast.If) or getattr(node, "lineno", 0) >= call_line:
                continue
            compare = is_compare_to_none(node.test)
            if compare is None or compare[0] != handle or compare[1]:
                continue
            if node.body and isinstance(
                    node.body[-1],
                    (ast.Return, ast.Raise, ast.Continue, ast.Break)):
                return True
        return False
