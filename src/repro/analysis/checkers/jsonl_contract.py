"""``jsonl-contract``: sidecar writers fsync per line, readers tolerate torn tails.

PR 4 and PR 6 established one durability contract for the underscore
sidecars (``_checkpoint.jsonl``, ``_telemetry.jsonl``): every record is
appended as a single ``write()`` of one full line, flushed and fsynced
before the handle closes — a parent killed mid-sweep loses at most the
line being written — and every reader treats a line that fails to parse
as a torn tail: counted, skipped, never trusted and never fatal.

A module is in scope when it *declares* a sidecar filename — a
module-level string constant matching ``_*.jsonl`` (the underscore prefix
is what keeps these files out of the cache-shard scanner).  Within such a
module:

* **writer side** — a ``with open(..., "a")`` (or ``path.open("a")``)
  block that ``.write()``s must also ``.flush()`` and ``os.fsync()``
  inside the same block; an append missing either can tear arbitrarily
  far back on crash, not just the final line.  Atomic temp-file+rename
  rewrites (``write_text`` + ``os.replace``) are a different, equally
  valid idiom and are not append-mode, so they pass untouched.
* **reader side** — every ``json.loads(...)`` must sit inside a ``try``
  whose handlers catch ``json.JSONDecodeError`` (or ``ValueError`` /
  ``Exception``), because the one guaranteed input is a torn final line.
"""

from __future__ import annotations

import ast
import re
from typing import Optional

from repro.analysis.core import (
    Checker,
    Finding,
    ModuleContext,
    collect_imports,
    dotted_name,
    register,
)

_SIDECAR_NAME_RE = re.compile(r"^_[A-Za-z0-9_.-]*\.jsonl$")

_TOLERANT_HANDLERS = {"JSONDecodeError", "ValueError", "Exception"}


def _declares_sidecar_constant(tree: ast.Module) -> bool:
    for stmt in tree.body:
        targets = []
        value = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.target is not None:
            targets, value = [stmt.target], stmt.value
        if not targets or not isinstance(value, ast.Constant) \
                or not isinstance(value.value, str):
            continue
        if _SIDECAR_NAME_RE.match(value.value):
            return True
    return False


def _append_mode(call: ast.Call) -> bool:
    """True when an ``open``/``.open`` call opens in append mode."""
    name = dotted_name(call.func)
    if name in ("open", "io.open"):
        mode_index = 1
    elif isinstance(call.func, ast.Attribute) and call.func.attr == "open":
        mode_index = 0
    else:
        return False
    mode: Optional[ast.expr] = None
    if len(call.args) > mode_index:
        mode = call.args[mode_index]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    return isinstance(mode, ast.Constant) and isinstance(mode.value, str) \
        and mode.value.startswith("a")


def _handler_names(handler: ast.ExceptHandler) -> set[str]:
    node = handler.type
    names: set[str] = set()
    if node is None:
        return {"Exception"}  # bare except tolerates everything
    nodes = node.elts if isinstance(node, ast.Tuple) else [node]
    for item in nodes:
        name = dotted_name(item)
        if name is not None:
            names.add(name.rsplit(".", 1)[-1])
    return names


@register
class JsonlContractChecker(Checker):
    rule = "jsonl-contract"
    description = (
        "sidecar module appends without flush+fsync, or parses lines "
        "without tolerating a torn tail"
    )
    contract = (
        "PR 4/6: _checkpoint.jsonl/_telemetry.jsonl appends are one "
        "flushed+fsynced line each; readers count and skip unparseable "
        "lines (a kill can always tear the final line)"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return _declares_sidecar_constant(ctx.tree)

    def run(self, ctx: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        findings.extend(self._check_writers(ctx))
        findings.extend(self._check_readers(ctx))
        return findings

    def _check_writers(self, ctx: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            if not any(isinstance(item.context_expr, ast.Call)
                       and _append_mode(item.context_expr)
                       for item in node.items):
                continue
            writes = flushes = fsyncs = False
            for inner in ast.walk(node):
                if not isinstance(inner, ast.Call):
                    continue
                if isinstance(inner.func, ast.Attribute):
                    if inner.func.attr == "write":
                        writes = True
                    elif inner.func.attr == "flush":
                        flushes = True
                if dotted_name(inner.func) == "os.fsync":
                    fsyncs = True
            if writes and not (flushes and fsyncs):
                missing = []
                if not flushes:
                    missing.append("flush()")
                if not fsyncs:
                    missing.append("os.fsync()")
                findings.append(ctx.finding(
                    self.rule, node,
                    "sidecar append writes without "
                    + " and ".join(missing)
                    + "; a crash may then tear more than the final line, "
                    "which resume cannot repair",
                ))
        return findings

    def _check_readers(self, ctx: ModuleContext) -> list[Finding]:
        _module_aliases, from_imports = collect_imports(ctx.tree)
        loads_aliases = {
            name for name, origin in from_imports.items()
            if origin == "json.loads"
        }
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name != "json.loads" and name not in loads_aliases:
                continue
            if not self._tolerates_torn_line(ctx, node):
                findings.append(ctx.finding(
                    self.rule, node,
                    "sidecar reader must tolerate a torn tail: wrap "
                    "json.loads in try/except json.JSONDecodeError and "
                    "skip (and count) the corrupt line",
                ))
        return findings

    @staticmethod
    def _tolerates_torn_line(ctx: ModuleContext, call: ast.Call) -> bool:
        for ancestor in ctx.ancestors(call):
            if not isinstance(ancestor, ast.Try):
                continue
            in_body = any(
                any(node is call for node in ast.walk(stmt))
                for stmt in ancestor.body
            )
            if in_body and any(
                _handler_names(handler) & _TOLERANT_HANDLERS
                for handler in ancestor.handlers
            ):
                return True
        return False
