"""``no-unseeded-random``: search/sweep/shard draw randomness from a threaded RNG.

Since PR 1 every exploration strategy receives a seeded
``numpy.random.Generator`` (``self.rng``, derived from the task seed), and
PR 2/4 made the sweep's journals byte-identical across worker counts and
resumes on the strength of that determinism.  One call into the *module
level* ``random`` / ``numpy.random`` global state anywhere in ``search/``,
``sweep/`` or ``shard/`` breaks all of it — the global RNG is shared
across threads, unseeded by default, and invisible to the task uid.

Flagged: calls through the stdlib ``random`` module's global instance
(``random.random()``, ``random.choice()``, a bare ``randint()`` imported
from it, ``random.seed()``) and through numpy's legacy global state
(``np.random.rand()``, ``np.random.seed()``).  Constructing an explicitly
seeded source — ``random.Random(seed)``, ``np.random.default_rng(seed)``,
``np.random.Generator``/``SeedSequence`` — is the fix, not a violation.
"""

from __future__ import annotations

import ast

from repro.analysis.core import (
    Checker,
    Finding,
    ModuleContext,
    collect_imports,
    dotted_name,
    register,
)

#: Constructors of explicitly seeded randomness sources (allowed).
_SEEDED_FACTORIES = {"Random", "SystemRandom", "default_rng", "Generator",
                     "SeedSequence", "getstate", "setstate"}

_SCOPE_MARKERS = ("/search/", "/sweep/", "/shard/", "/service/")


@register
class UnseededRandomChecker(Checker):
    rule = "no-unseeded-random"
    description = (
        "module-level random.* / np.random.* global-state call in "
        "search/, sweep/ or shard/"
    )
    contract = (
        "PR 1-4: strategies draw from a seeded Generator threaded through "
        "the task (self.rng / SweepTask.seed); journals must stay "
        "byte-identical across workers=1 vs N and across resumes"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        path = ctx.path.resolve().as_posix()
        return any(marker in path for marker in _SCOPE_MARKERS)

    def run(self, ctx: ModuleContext) -> list[Finding]:
        module_aliases, from_imports = collect_imports(ctx.tree)
        random_aliases = {
            alias for alias, module in module_aliases.items() if module == "random"
        }
        numpy_aliases = {
            alias for alias, module in module_aliases.items()
            if module in ("numpy", "numpy.random")
        }
        numpy_random_aliases = {
            alias for alias, module in module_aliases.items()
            if module == "numpy.random"
        }
        stdlib_from = {
            name for name, origin in from_imports.items()
            if origin.startswith("random.")
            and origin.split(".", 1)[1] not in _SEEDED_FACTORIES
        }
        numpy_from = {
            name for name, origin in from_imports.items()
            if origin.startswith("numpy.random.")
            and origin.rsplit(".", 1)[1] not in _SEEDED_FACTORIES
        }

        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            flagged = None
            if len(parts) == 2 and parts[0] in random_aliases \
                    and parts[1] not in _SEEDED_FACTORIES:
                flagged = f"stdlib random global state ({name})"
            elif len(parts) == 1 and parts[0] in stdlib_from | numpy_from:
                flagged = f"global-RNG function imported from random ({name})"
            elif len(parts) == 3 and parts[0] in numpy_aliases \
                    and parts[1] == "random" and parts[2] not in _SEEDED_FACTORIES:
                flagged = f"numpy legacy global RNG ({name})"
            elif len(parts) == 2 and parts[0] in numpy_random_aliases \
                    and parts[1] not in _SEEDED_FACTORIES:
                flagged = f"numpy legacy global RNG ({name})"
            if flagged is not None:
                findings.append(ctx.finding(
                    self.rule, node,
                    f"{flagged} is unseeded and shared across threads; draw "
                    "from the seeded Generator threaded through the task "
                    "(self.rng / np.random.default_rng(seed)) instead",
                ))
        return findings
