"""``lock-discipline``: no telemetry, callbacks or blocking I/O under a lock.

PR 5/6 hardened the shard path around one rule: ``LeaseBoard`` mutates
its state under ``self._lock`` but fires telemetry events and the
``on_outcome``/``on_failure`` settle callbacks *after* releasing it —
the telemetry sink fsyncs per record and the checkpoint writer hits disk,
so doing either under the board lock would serialise every HTTP handler
thread behind a disk flush (and a user callback could re-enter the board
and deadlock).  The established pattern is: collect events into a local
list inside the critical section, fire them after the ``with`` block.

This rule flags, lexically inside any ``with self._lock:`` (or other
``*lock`` attribute) body in the scoped modules (``shard/``,
``sweep/checkpoint.py``, ``telemetry/sink.py``):

* telemetry facade calls (``telemetry.event`` / ``telemetry.trace``),
* callback invocations (``self.on_*``-style attributes),
* blocking file/socket/sleep calls (``open``, ``os.fsync``,
  ``os.replace``, ``time.sleep``, ``urlopen``, ``sendall``/``recv``,
  ``write_text``/``read_text``).

Code that *intends* serialised I/O under its lock (the fsynced sidecar
writers, whose lock exists precisely to order appends) documents that
decision with a justified ``# repro: disable=lock-discipline`` — the
deviation then lives next to the code instead of in reviewers' heads.
Nested function bodies are skipped (deferred execution happens later).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    Checker,
    Finding,
    ModuleContext,
    collect_imports,
    dotted_name,
    register,
)

_SCOPE_MARKERS = ("/shard/", "/service/")
_SCOPE_SUFFIXES = ("sweep/checkpoint.py", "telemetry/sink.py")

#: Fully qualified blocking calls.
_BLOCKING_CALLS = {
    "os.fsync": "os.fsync() blocks on disk",
    "os.replace": "os.replace() blocks on disk",
    "time.sleep": "time.sleep() parks the thread",
    "open": "open() blocks on disk",
    "io.open": "open() blocks on disk",
    "socket.create_connection": "socket dial blocks on the network",
}

#: Method names that block regardless of the receiver.
_BLOCKING_METHODS = {
    "open": "file open blocks on disk",
    "write_text": "file write blocks on disk",
    "read_text": "file read blocks on disk",
    "urlopen": "HTTP round trip blocks on the network",
    "sendall": "socket send blocks on the network",
    "recv": "socket receive blocks on the network",
}


def _is_lock_context(expr: ast.AST) -> bool:
    """True for ``self._lock`` / ``board.lock``-style context expressions."""
    if isinstance(expr, ast.Call):  # e.g. contextlib helpers wrapping a lock
        expr = expr.func
    if isinstance(expr, ast.Attribute):
        attr = expr.attr
        return attr == "lock" or attr.endswith("_lock")
    if isinstance(expr, ast.Name):
        name = expr.id
        return name == "lock" or name.endswith("_lock")
    return False


def _walk_skipping_functions(statements) -> Iterator[ast.AST]:
    """Walk statements, excluding nested function/lambda bodies (deferred)."""
    stack = list(statements)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            stack.append(child)


@register
class LockDisciplineChecker(Checker):
    rule = "lock-discipline"
    description = (
        "telemetry event, user callback or blocking I/O lexically inside a "
        "`with ...lock:` body"
    )
    contract = (
        "PR 5/6: LeaseBoard and the sweep settle path collect events under "
        "the lock and fire them after releasing it; the fsyncing sink and "
        "checkpoint writer must never run inside another component's lock"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        path = ctx.path.resolve().as_posix()
        return any(marker in path for marker in _SCOPE_MARKERS) \
            or path.endswith(_SCOPE_SUFFIXES)

    def run(self, ctx: ModuleContext) -> list[Finding]:
        imports = collect_imports(ctx.tree)
        _module_aliases, from_imports = imports
        telemetry_names = {
            name for name, origin in from_imports.items()
            if origin.endswith(("telemetry.event", "telemetry.trace",
                                "trace.event", "trace.trace"))
        }
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            if not any(_is_lock_context(item.context_expr)
                       for item in node.items):
                continue
            for inner in _walk_skipping_functions(node.body):
                if not isinstance(inner, ast.Call):
                    continue
                reason = self._classify(imports, telemetry_names, inner)
                if reason is not None:
                    findings.append(ctx.finding(
                        self.rule, inner,
                        f"{reason} while holding the lock; collect it in the "
                        "critical section and run it after the `with` block "
                        "releases the lock",
                    ))
        return findings

    @staticmethod
    def _classify(imports, telemetry_names: set, call: ast.Call):
        module_aliases, from_imports = imports
        name = dotted_name(call.func)
        if name is not None:
            parts = name.split(".")
            if len(parts) == 2 and parts[1] in ("event", "trace"):
                # Covers both `import repro.telemetry as telemetry` and
                # `from repro import telemetry`.
                origin = module_aliases.get(parts[0]) \
                    or from_imports.get(parts[0], "")
                if origin.endswith("telemetry"):
                    return (f"telemetry {parts[1]} fires "
                            "(the sink fsyncs per record)")
            if len(parts) == 1 and parts[0] in telemetry_names:
                return "telemetry call fires (the sink fsyncs per record)"
            if name in _BLOCKING_CALLS:
                return _BLOCKING_CALLS[name]
        if isinstance(call.func, ast.Attribute):
            attr = call.func.attr
            if attr.startswith("on_"):
                return f"user callback {attr}() runs (it may fsync or re-enter)"
            if attr in _BLOCKING_METHODS:
                return _BLOCKING_METHODS[attr]
        return None
