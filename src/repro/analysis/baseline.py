"""Committed baseline of grandfathered lint findings.

A baseline lets the lint gate turn on *hard* the day a new rule lands:
pre-existing violations are recorded once (fingerprinted by rule, file
and offending source line — not line number, so unrelated edits don't
disturb them) and stop failing the run, while any **new** violation of
the same rule fails immediately.  Entries disappear naturally: fixing or
even touching a grandfathered line changes its fingerprint, and
``lint --update-baseline`` rewrites the file to exactly the current
finding set (pruning entries that no longer match anything).

The file is JSON, sorted and newline-terminated, so diffs stay reviewable.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable, Optional, Union

from repro.analysis.core import Finding
from repro.utils.logging import get_logger

logger = get_logger(__name__)

_PathLike = Union[str, pathlib.Path]

#: Default committed baseline filename, discovered upward from the lint root.
BASELINE_FILENAME = ".repro-lint-baseline.json"

BASELINE_VERSION = 1


def load_baseline(path: _PathLike) -> frozenset[str]:
    """The grandfathered fingerprint set; missing file = empty baseline."""
    path = pathlib.Path(path)
    if not path.exists():
        return frozenset()
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        # A garbage baseline must fail findings, not excuse them.
        logger.warning("ignoring unreadable lint baseline %s: %s", path, exc)
        return frozenset()
    if not isinstance(payload, dict):
        logger.warning("ignoring malformed lint baseline %s", path)
        return frozenset()
    fingerprints = set()
    for entry in payload.get("findings", []):
        if isinstance(entry, dict) and isinstance(entry.get("fingerprint"), str):
            fingerprints.add(entry["fingerprint"])
    return frozenset(fingerprints)


def save_baseline(path: _PathLike, findings: Iterable[Finding]) -> pathlib.Path:
    """Write ``findings`` as the new baseline (sorted, stable, diffable)."""
    path = pathlib.Path(path)
    entries = sorted(
        (
            {
                "fingerprint": finding.fingerprint(),
                "rule": finding.rule,
                "path": finding.path,
                "snippet": finding.snippet,
                "message": finding.message,
            }
            for finding in findings
        ),
        key=lambda entry: (entry["path"], entry["rule"], entry["fingerprint"]),
    )
    payload = {"version": BASELINE_VERSION, "findings": entries}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def discover_baseline(start: _PathLike) -> Optional[pathlib.Path]:
    """Find the nearest committed baseline walking up from ``start``."""
    current = pathlib.Path(start).resolve()
    if current.is_file():
        current = current.parent
    for directory in [current, *current.parents]:
        candidate = directory / BASELINE_FILENAME
        if candidate.exists():
            return candidate
    return None
