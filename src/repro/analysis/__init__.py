"""``repro.analysis`` — AST-based invariant linter for the repo's contracts.

Six PRs layered hard invariants onto this codebase — byte-identical
journals across worker counts, injected clocks behind every persisted
timestamp, picklable worker payloads, telemetry events fired outside the
lease-board lock, fsynced torn-tail-tolerant sidecars.  Until now each
contract was enforced only by runtime tests that had to *happen* to
exercise the offending path; this package machine-checks them at review
time, the way production stacks gate merges on race detectors.

Usage::

    from repro.analysis import lint_paths
    report = lint_paths(["src"])
    assert report.ok, report.render()

or from the CLI::

    repro-codesign lint [--json] [--rule no-wall-clock] [PATHS ...]

Violations are fixed, or suppressed *with a justification*
(``# repro: disable=<rule> -- why this deviation is safe``), or
grandfathered in the committed baseline (``.repro-lint-baseline.json``).
See :mod:`repro.analysis.core` for the framework and
:mod:`repro.analysis.checkers` for the built-in rules.
"""

from repro.analysis.baseline import (
    BASELINE_FILENAME,
    discover_baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.core import (
    Checker,
    Finding,
    LintReport,
    ModuleContext,
    all_checkers,
    available_rules,
    iter_python_files,
    lint_file,
    lint_paths,
    parse_suppressions,
    register,
)

__all__ = [
    "BASELINE_FILENAME",
    "Checker",
    "Finding",
    "LintReport",
    "ModuleContext",
    "all_checkers",
    "available_rules",
    "discover_baseline",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "parse_suppressions",
    "register",
    "save_baseline",
]
