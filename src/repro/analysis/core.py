"""Core of the ``repro.analysis`` invariant linter.

The linter parses every Python module under the given paths with the
stdlib :mod:`ast` and runs a registry of pluggable **checkers** over each
tree.  A checker encodes one repo contract (injected clocks, telemetry
zero-cost guards, lock discipline, ...) as a purely lexical rule, so the
contract is enforced at review time instead of depending on a runtime
test happening to exercise the offending path.

Three escape hatches keep the gate workable:

* **Inline suppressions** — ``# repro: disable=<rule> -- <justification>``
  on the offending line (or on a comment line directly above it).  The
  justification after ``--`` is mandatory; a bare suppression is itself
  reported as a ``suppression-format`` finding, so every silenced
  contract violation carries its one-line rationale in the diff.
* **Baseline** — a committed JSON file of grandfathered finding
  fingerprints (see :mod:`repro.analysis.baseline`); matching findings
  are reported separately and do not fail the run.  Fingerprints hash the
  offending *source line*, not its line number, so unrelated edits above
  a grandfathered finding do not un-grandfather it.
* **Rule filter** — ``lint --rule <id>`` runs a subset of the registry.

Checkers are registered with :func:`register` and discovered via
``import repro.analysis.checkers`` (the package imports every built-in
checker module for its side effect).
"""

from __future__ import annotations

import ast
import hashlib
import pathlib
import re
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional, Sequence, Union

from repro.utils.logging import get_logger

logger = get_logger(__name__)

_PathLike = Union[str, pathlib.Path]

#: Rule id of the meta-finding for malformed / unjustified suppressions.
SUPPRESSION_RULE = "suppression-format"

#: Rule id reported when a file does not parse at all.
PARSE_RULE = "parse-error"


# ------------------------------------------------------------------ findings
@dataclass(frozen=True)
class Finding:
    """One contract violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: The stripped source line, used for stable fingerprints and display.
    snippet: str = ""

    def fingerprint(self) -> str:
        """Line-number-independent identity used by the baseline file.

        Hashes the rule, the file and the offending source text; edits
        elsewhere in the file do not invalidate a grandfathered finding,
        while any edit to the flagged line itself does.
        """
        payload = f"{self.rule}|{self.path}|{self.snippet}"
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint(),
        }


# -------------------------------------------------------------- suppressions
#: Grammar: "repro: disable=" + comma-separated rule ids + " -- " + why.
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*disable=([A-Za-z0-9_,\- ]+?)\s*(?:--\s*(\S.*?))?\s*$"
)


@dataclass
class Suppression:
    """One parsed ``# repro: disable=`` comment."""

    line: int            # line the suppression applies to
    comment_line: int    # line the comment physically sits on
    rules: tuple[str, ...]
    justification: str   # empty = malformed (reported, never honoured)

    def covers(self, finding: Finding) -> bool:
        return finding.line == self.line and (
            finding.rule in self.rules or "*" in self.rules
        )


def parse_suppressions(lines: Sequence[str]) -> list[Suppression]:
    """Extract suppressions from raw source lines.

    A suppression on a pure comment line applies to the next non-blank,
    non-comment line (so long statements can keep the justification
    readable above them); a trailing comment applies to its own line.
    """
    suppressions: list[Suppression] = []
    for index, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        rules = tuple(
            rule.strip() for rule in match.group(1).split(",") if rule.strip()
        )
        target = index
        if text.lstrip().startswith("#"):
            for offset, later in enumerate(lines[index:], start=index + 1):
                stripped = later.strip()
                if stripped and not stripped.startswith("#"):
                    target = offset
                    break
        suppressions.append(Suppression(
            line=target,
            comment_line=index,
            rules=rules,
            justification=(match.group(2) or "").strip(),
        ))
    return suppressions


# ------------------------------------------------------------ module context
class ModuleContext:
    """Everything a checker needs to inspect one parsed module."""

    def __init__(self, path: pathlib.Path, display_path: str, source: str,
                 tree: ast.Module) -> None:
        self.path = path
        self.display_path = display_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self._parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self._parents[child] = node

    # ------------------------------------------------------------- navigation
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[Union[ast.FunctionDef, ast.AsyncFunctionDef]]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    # --------------------------------------------------------------- findings
    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        return Finding(rule=rule, path=self.display_path, line=line, col=col,
                       message=message, snippet=snippet)


# --------------------------------------------------------------- AST helpers
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def collect_imports(tree: ast.Module) -> tuple[dict[str, str], dict[str, str]]:
    """``(module_aliases, from_imports)`` for the whole module.

    ``module_aliases`` maps a bound name to the imported module path
    (``{"np": "numpy"}``); ``from_imports`` maps a bound name to its fully
    qualified origin (``{"loads": "json.loads"}``).  Function-local imports
    are included — checkers care about what a name means, not where the
    import statement sits.
    """
    module_aliases: dict[str, str] = {}
    from_imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                module_aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                from_imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return module_aliases, from_imports


def is_compare_to_none(node: ast.AST) -> Optional[tuple[str, bool]]:
    """``("name", negated)`` for ``X is None`` / ``X is not None`` tests."""
    if (
        isinstance(node, ast.Compare)
        and len(node.ops) == 1
        and isinstance(node.ops[0], (ast.Is, ast.IsNot))
        and isinstance(node.left, ast.Name)
        and len(node.comparators) == 1
        and isinstance(node.comparators[0], ast.Constant)
        and node.comparators[0].value is None
    ):
        return node.left.id, isinstance(node.ops[0], ast.IsNot)
    return None


def contains(root: ast.AST, target: ast.AST) -> bool:
    return any(node is target for node in ast.walk(root))


def statements_contain(statements: Iterable[ast.stmt], target: ast.AST) -> bool:
    return any(contains(stmt, target) for stmt in statements)


# ------------------------------------------------------------------ checkers
class Checker:
    """Base class: one rule, one contract, one ``run`` pass per module."""

    #: Unique rule id (kebab-case), used in CLI filters and suppressions.
    rule: str = ""
    #: One-line description shown by ``lint --list-rules``.
    description: str = ""
    #: The repo contract this rule encodes (and which PR introduced it).
    contract: str = ""

    def applies_to(self, ctx: ModuleContext) -> bool:
        """Module scope hook; default is every scanned module."""
        return True

    def run(self, ctx: ModuleContext) -> list[Finding]:  # pragma: no cover
        raise NotImplementedError


_REGISTRY: dict[str, Checker] = {}


def register(cls: type) -> type:
    """Class decorator adding a checker to the global registry."""
    if not issubclass(cls, Checker) or not cls.rule:
        raise TypeError(f"{cls!r} is not a Checker with a rule id")
    if cls.rule in _REGISTRY:
        raise ValueError(f"duplicate checker rule '{cls.rule}'")
    _REGISTRY[cls.rule] = cls()
    return cls


def all_checkers() -> dict[str, Checker]:
    """The registered checkers, importing the built-ins on first use."""
    import repro.analysis.checkers  # noqa: F401 - registration side effect
    return dict(_REGISTRY)


def available_rules() -> list[str]:
    return sorted(all_checkers())


# -------------------------------------------------------------------- runner
@dataclass
class LintReport:
    """Outcome of one lint pass over a set of paths."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[tuple[Finding, str]] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    files: int = 0
    rules: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when nothing unsuppressed and un-grandfathered was found."""
        return not self.findings

    def summary(self) -> str:
        return (
            f"lint: {self.files} file(s), {len(self.rules)} rule(s): "
            f"{len(self.findings)} finding(s), {len(self.suppressed)} "
            f"suppressed, {len(self.baselined)} baselined"
        )

    def render(self) -> str:
        parts = [finding.render() for finding in self.findings]
        parts.append(self.summary())
        return "\n".join(parts)

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "files": self.files,
            "rules": list(self.rules),
            "findings": [finding.as_dict() for finding in self.findings],
            "suppressed": [
                {**finding.as_dict(), "justification": justification}
                for finding, justification in self.suppressed
            ],
            "baselined": [finding.as_dict() for finding in self.baselined],
        }


def iter_python_files(paths: Sequence[_PathLike]) -> list[pathlib.Path]:
    """Every ``.py`` file under ``paths``, skipping caches and hidden dirs."""
    files: list[pathlib.Path] = []
    seen: set[pathlib.Path] = set()
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_file():
            candidates = [path] if path.suffix == ".py" else []
        elif path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            raise FileNotFoundError(f"lint path does not exist: {path}")
        for candidate in candidates:
            parts = candidate.parts
            if any(part == "__pycache__" or part.startswith(".") for part in parts[:-1]):
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(candidate)
    return files


def _display_path(path: pathlib.Path) -> str:
    """Stable, short display path: cwd-relative when possible."""
    try:
        return path.resolve().relative_to(pathlib.Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_file(
    path: _PathLike,
    checkers: Optional[dict[str, Checker]] = None,
) -> tuple[list[Finding], list[tuple[Finding, str]]]:
    """Lint one file; returns ``(active findings, suppressed findings)``."""
    path = pathlib.Path(path)
    checkers = all_checkers() if checkers is None else checkers
    display = _display_path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [Finding(PARSE_RULE, display, 1, 0, f"cannot read file: {exc}")], []
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Finding(
            PARSE_RULE, display, exc.lineno or 1, exc.offset or 0,
            f"file does not parse: {exc.msg}",
        )], []

    ctx = ModuleContext(path, display, source, tree)
    raw: list[Finding] = []
    for checker in checkers.values():
        if checker.applies_to(ctx):
            raw.extend(checker.run(ctx))

    suppressions = parse_suppressions(ctx.lines)
    active: list[Finding] = []
    suppressed: list[tuple[Finding, str]] = []
    # Suppressions are validated against the full registry, not just the
    # checkers selected for this run — `lint --rule X` must not start
    # reporting every other rule's suppression as unknown.
    known = set(all_checkers()) | {SUPPRESSION_RULE, PARSE_RULE}
    for suppression in suppressions:
        if not suppression.justification:
            active.append(Finding(
                SUPPRESSION_RULE, display, suppression.comment_line, 0,
                "suppression needs a justification: "
                "# repro: disable=<rule> -- <why this is safe>",
                snippet=ctx.lines[suppression.comment_line - 1].strip(),
            ))
        for rule in suppression.rules:
            if rule != "*" and rule not in known:
                active.append(Finding(
                    SUPPRESSION_RULE, display, suppression.comment_line, 0,
                    f"suppression names unknown rule '{rule}'",
                    snippet=ctx.lines[suppression.comment_line - 1].strip(),
                ))
    for finding in raw:
        match = next(
            (s for s in suppressions if s.justification and s.covers(finding)),
            None,
        )
        if match is not None:
            suppressed.append((finding, match.justification))
        else:
            active.append(finding)
    active.sort(key=lambda f: (f.line, f.col, f.rule))
    return active, suppressed


def lint_paths(
    paths: Sequence[_PathLike],
    *,
    rules: Optional[Sequence[str]] = None,
    baseline: Optional[_PathLike] = None,
) -> LintReport:
    """Lint every Python file under ``paths``.

    ``rules`` restricts the registry to the named rule ids (unknown ids
    raise ``ValueError``); ``baseline`` points at a grandfathered-findings
    file whose fingerprints are excused (but still reported separately).
    """
    checkers = all_checkers()
    if rules:
        unknown = sorted(set(rules) - set(checkers))
        if unknown:
            raise ValueError(
                f"unknown rule(s): {', '.join(unknown)}; "
                f"available: {', '.join(sorted(checkers))}"
            )
        checkers = {rule: checkers[rule] for rule in rules}

    from repro.analysis.baseline import load_baseline

    grandfathered = load_baseline(baseline) if baseline is not None else frozenset()

    report = LintReport(rules=sorted(checkers))
    for path in iter_python_files(paths):
        report.files += 1
        active, suppressed = lint_file(path, checkers)
        report.suppressed.extend(suppressed)
        for finding in active:
            if finding.fingerprint() in grandfathered:
                report.baselined.append(finding)
            else:
                report.findings.append(finding)
    return report
