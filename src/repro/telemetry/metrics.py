"""Process-local metrics primitives: counters, gauges, histograms.

The registry is intentionally stdlib-only and self-contained so that every
layer of the code base (search, sweep, shard, hw) can depend on it without
creating import cycles.  Snapshots are plain picklable dataclasses so worker
processes can ship their measurements back to the parent over the existing
``multiprocessing`` channels, where they are merged into the parent registry.

Design rules:

* **Zero cost when disabled** — instrumented code asks the module-level
  :func:`repro.telemetry.registry` accessor for the active registry and does
  nothing when it returns ``None``.  No locks are taken, no strings are
  formatted.
* **Thread-safe** — a single registry may be written from request-handler
  threads (shard coordinator), the heartbeat thread and the scheduler loop
  at the same time.
* **Mergeable** — counters add, histogram bucket counts add, gauges take the
  most recent value.  This makes parent/child aggregation associative.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "DEFAULT_LATENCY_BUCKETS_S",
]

#: Default latency buckets (seconds).  They span sub-millisecond analytical
#: model calls up to multi-minute sweep cells; the terminal bucket is +inf.
DEFAULT_LATENCY_BUCKETS_S: tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1,
    0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0, float("inf"),
)


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (amount={amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """Last-value-wins instantaneous measurement."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram of observations.

    ``buckets`` are inclusive upper bounds; the final bound must be ``+inf``
    (it is appended automatically when missing).  Only bucket counts, the
    running sum and min/max are retained — not individual observations —
    so snapshots stay small no matter how hot the instrumented path is.
    """

    __slots__ = ("name", "buckets", "_counts", "_sum", "_min", "_max", "_total", "_lock")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        if sorted(bounds) != list(bounds):
            raise ValueError(f"histogram {name!r} buckets must be sorted: {bounds}")
        if bounds[-1] != float("inf"):
            bounds = bounds + (float("inf"),)
        self.name = name
        self.buckets = bounds
        self._counts = [0] * len(bounds)
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._total = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[i] += 1
                    break
            self._sum += value
            self._total += 1
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    def snapshot(self) -> "HistogramSnapshot":
        with self._lock:
            return HistogramSnapshot(
                buckets=self.buckets,
                counts=tuple(self._counts),
                total=self._total,
                sum=self._sum,
                min=self._min,
                max=self._max,
            )


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable, picklable view of a :class:`Histogram`."""

    buckets: tuple[float, ...]
    counts: tuple[int, ...]
    total: int
    sum: float
    min: Optional[float]
    max: Optional[float]

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.total if self.total else None

    def as_dict(self) -> dict:
        return {
            "buckets": ["inf" if b == float("inf") else b for b in self.buckets],
            "counts": list(self.counts),
            "total": self.total,
            "sum": round(self.sum, 9),
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "HistogramSnapshot":
        return cls(
            buckets=tuple(float(b) for b in data["buckets"]),
            counts=tuple(int(c) for c in data["counts"]),
            total=int(data["total"]),
            sum=float(data["sum"]),
            min=data.get("min"),
            max=data.get("max"),
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable, picklable view of a whole :class:`MetricsRegistry`."""

    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {k: self.histograms[k].as_dict() for k in sorted(self.histograms)},
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "MetricsSnapshot":
        return cls(
            counters=dict(data.get("counters", {})),
            gauges=dict(data.get("gauges", {})),
            histograms={
                name: HistogramSnapshot.from_dict(h)
                for name, h in data.get("histograms", {}).items()
            },
        )


class MetricsRegistry:
    """Thread-safe collection of named instruments.

    Instruments are created lazily on first use; asking twice for the same
    name returns the same instrument.  A name may only be used for one
    instrument kind.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                self._check_free(name, "counter")
                inst = self._counters[name] = Counter(name)
            return inst

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                self._check_free(name, "gauge")
                inst = self._gauges[name] = Gauge(name)
            return inst

    def histogram(self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S) -> Histogram:
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                self._check_free(name, "histogram")
                inst = self._histograms[name] = Histogram(name, buckets)
            return inst

    def _check_free(self, name: str, kind: str) -> None:
        for pool, other in ((self._counters, "counter"), (self._gauges, "gauge"), (self._histograms, "histogram")):
            if other != kind and name in pool:
                raise ValueError(f"metric {name!r} already registered as a {other}")

    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            counters = {name: c.value for name, c in self._counters.items()}
            gauges = {name: g.value for name, g in self._gauges.items()}
            histograms = {name: h.snapshot() for name, h in self._histograms.items()}
        return MetricsSnapshot(counters=counters, gauges=gauges, histograms=histograms)

    def merge(self, other: MetricsSnapshot) -> None:
        """Fold a snapshot (typically from a worker process) into this registry.

        Counters and histogram bucket counts add; gauges take the snapshot's
        value (last write wins).  Histograms must share bucket bounds.
        """
        for name, value in other.counters.items():
            self.counter(name).inc(value)
        for name, value in other.gauges.items():
            self.gauge(name).set(value)
        for name, snap in other.histograms.items():
            hist = self.histogram(name, snap.buckets)
            if hist.buckets != snap.buckets:
                raise ValueError(f"histogram {name!r} bucket mismatch: {hist.buckets} vs {snap.buckets}")
            with hist._lock:
                for i, count in enumerate(snap.counts):
                    hist._counts[i] += count
                hist._sum += snap.sum
                hist._total += snap.total
                if snap.min is not None and (hist._min is None or snap.min < hist._min):
                    hist._min = snap.min
                if snap.max is not None and (hist._max is None or snap.max > hist._max):
                    hist._max = snap.max
