"""Telemetry sidecar file: fsynced ``_telemetry.jsonl`` next to the checkpoint.

The sidecar follows the same durability contract as ``_checkpoint.jsonl``:
each record is one JSON object on one line, appended with a single
``write()`` call and fsynced, so a crash can at worst leave a torn final
line which the reader tolerates.  The leading underscore keeps the file
invisible to the disk-cache shard scanner and its garbage collector.

Record kinds:

* ``header``   — written when the sink is opened; carries the version.
* ``span``     — a completed ``trace()`` block (name, duration, attributes).
* ``event``    — a point-in-time occurrence (retry, lease grant, ...).
* ``snapshot`` — a full :class:`~repro.telemetry.metrics.MetricsSnapshot`,
  usually written once when a run finishes.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from repro.telemetry.metrics import MetricsSnapshot
from repro.utils.logging import get_logger

logger = get_logger(__name__)

__all__ = ["TELEMETRY_FILENAME", "TELEMETRY_VERSION", "TelemetrySink", "TelemetryLog", "read_telemetry"]

#: Sidecar file name; the underscore prefix keeps it out of cache-shard scans.
TELEMETRY_FILENAME = "_telemetry.jsonl"
TELEMETRY_VERSION = 1


class TelemetrySink:
    """Append-only, fsynced JSONL writer for telemetry records."""

    def __init__(
        self,
        path: str,
        *,
        fresh: bool = True,
        clock: Callable[[], float] = time.time,
        fsync: bool = True,
    ) -> None:
        self.path = path
        self._clock = clock
        self._fsync = fsync
        self._lock = threading.Lock()
        self._failed = False
        mode = "w" if fresh else "a"
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, mode, encoding="utf-8"):
            pass
        self._append({"kind": "header", "version": TELEMETRY_VERSION})

    def _append(self, record: dict) -> None:
        record = dict(record)
        record["ts"] = round(self._clock(), 3)
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        with self._lock:
            if self._failed:
                return
            try:
                # repro: disable=lock-discipline -- this lock exists to order appends; it is leaf-level (never taken while any other lock is held) and nothing re-enters under it
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(line)
                    handle.flush()
                    if self._fsync:
                        # repro: disable=lock-discipline -- per-record fsync IS the sidecar durability contract; callers (LeaseBoard, SweepRunner) already fire events outside their own locks
                        os.fsync(handle.fileno())
            except OSError as exc:
                # Telemetry must never take the run down with it.
                self._failed = True
                logger.warning("telemetry sink disabled after write failure on %s: %s", self.path, exc)

    def write_span(self, name: str, duration_s: float, attrs: Optional[Mapping] = None) -> None:
        record = {"kind": "span", "name": name, "duration_s": round(float(duration_s), 6)}
        if attrs:
            record["attrs"] = dict(attrs)
        self._append(record)

    def write_event(self, name: str, attrs: Optional[Mapping] = None) -> None:
        record = {"kind": "event", "name": name}
        if attrs:
            record["attrs"] = dict(attrs)
        self._append(record)

    def write_snapshot(self, snapshot: MetricsSnapshot) -> None:
        self._append({"kind": "snapshot", "metrics": snapshot.as_dict()})


@dataclass
class TelemetryLog:
    """Parsed contents of a ``_telemetry.jsonl`` sidecar."""

    path: str
    version: Optional[int] = None
    spans: list = field(default_factory=list)
    events: list = field(default_factory=list)
    snapshots: list = field(default_factory=list)
    records: int = 0
    corrupt_lines: int = 0

    @property
    def last_snapshot(self) -> Optional[MetricsSnapshot]:
        if not self.snapshots:
            return None
        return MetricsSnapshot.from_dict(self.snapshots[-1]["metrics"])


def read_telemetry(path: str) -> TelemetryLog:
    """Load a telemetry sidecar, tolerating a torn (partial) final line.

    A torn or otherwise corrupt line is counted in ``corrupt_lines`` and
    skipped; everything parseable is kept.  Missing file yields an empty log.
    """
    log = TelemetryLog(path=path)
    if not os.path.exists(path):
        return log
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                log.corrupt_lines += 1
                continue
            if not isinstance(record, dict):
                log.corrupt_lines += 1
                continue
            log.records += 1
            kind = record.get("kind")
            if kind == "header":
                log.version = record.get("version")
            elif kind == "span":
                log.spans.append(record)
            elif kind == "event":
                log.events.append(record)
            elif kind == "snapshot":
                log.snapshots.append(record)
    return log
