"""Run summaries from the checkpoint + telemetry sidecar pair.

``repro-codesign telemetry report`` aggregates two sources found in a
sweep's ``--cache-dir``:

* ``_checkpoint.jsonl`` — always present for checkpointed sweeps, telemetry
  on or off: per-cell durations, attempt counts, cache hit/miss accounting
  and failure kinds, so the report works even for runs that never enabled
  telemetry;
* ``_telemetry.jsonl`` — when present, enriches the report with span
  aggregates, scheduler events (retries, timeout kills, lease lifecycle)
  and the final metrics snapshot, including per-worker throughput for
  shard runs.

The module also hosts :func:`write_bench_json`, the perf-trajectory
emitter used by the benchmark suite to produce ``BENCH_sweep.json``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.telemetry.metrics import MetricsSnapshot
from repro.telemetry.sink import TELEMETRY_FILENAME, read_telemetry

__all__ = [
    "REPORT_DURATION_BUCKETS_S",
    "CellTiming",
    "TelemetryReport",
    "build_report",
    "duration_histogram",
    "write_bench_json",
]

#: Bucket upper bounds (seconds) for the rendered cell-duration histogram.
REPORT_DURATION_BUCKETS_S: tuple[float, ...] = (
    0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0, float("inf"),
)


@dataclass(frozen=True)
class CellTiming:
    """One settled cell's wall clock, for the slowest-cells table."""

    uid: str
    duration_s: float
    attempts: int


def duration_histogram(
    durations: Sequence[float],
    buckets: Sequence[float] = REPORT_DURATION_BUCKETS_S,
) -> list[tuple[str, int]]:
    """Bucket durations into ``(label, count)`` rows for text rendering."""
    counts = [0] * len(buckets)
    for value in durations:
        for i, bound in enumerate(buckets):
            if value <= bound:
                counts[i] += 1
                break
    rows: list[tuple[str, int]] = []
    for i, bound in enumerate(buckets):
        if bound == float("inf"):
            previous = buckets[i - 1] if i else 0.0
            label = f">{previous:g}s"
        else:
            label = f"<={bound:g}s"
        rows.append((label, counts[i]))
    return rows


@dataclass
class TelemetryReport:
    """Aggregated view of one sweep run (see :func:`build_report`)."""

    cache_dir: str
    cells_completed: int = 0
    cells_failed: int = 0
    memory_hits: int = 0
    memory_misses: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    evaluations: int = 0
    estimator_calls: int = 0
    retried_cells: int = 0
    extra_attempts: int = 0
    failure_kinds: dict = field(default_factory=dict)
    timings: list = field(default_factory=list)
    per_worker: dict = field(default_factory=dict)
    events: dict = field(default_factory=dict)
    spans: dict = field(default_factory=dict)
    snapshot: Optional[MetricsSnapshot] = None
    checkpoint_records: int = 0
    telemetry_records: int = 0
    telemetry_corrupt: int = 0

    @property
    def has_data(self) -> bool:
        return bool(self.checkpoint_records or self.telemetry_records
                    or self.cells_completed or self.cells_failed)

    @property
    def memory_hit_rate(self) -> float:
        total = self.memory_hits + self.memory_misses
        return self.memory_hits / total if total else 0.0

    @property
    def disk_hit_rate(self) -> float:
        total = self.disk_hits + self.disk_misses
        return self.disk_hits / total if total else 0.0

    @property
    def timeout_kills(self) -> int:
        """Timeout kills observed by the scheduler (sidecar events)."""
        return int(self.events.get("sweep.cell.timeout", 0))

    @property
    def timeout_failures(self) -> int:
        """Cells that settled as failures of kind ``timeout``."""
        return int(self.failure_kinds.get("timeout", 0))

    def as_dict(self) -> dict:
        return {
            "cache_dir": self.cache_dir,
            "cells": {
                "completed": self.cells_completed,
                "failed": self.cells_failed,
                "retried": self.retried_cells,
                "extra_attempts": self.extra_attempts,
            },
            "cache": {
                "memory_hits": self.memory_hits,
                "memory_misses": self.memory_misses,
                "memory_hit_rate": round(self.memory_hit_rate, 4),
                "disk_hits": self.disk_hits,
                "disk_misses": self.disk_misses,
                "disk_hit_rate": round(self.disk_hit_rate, 4),
            },
            "evaluations": self.evaluations,
            "estimator_calls": self.estimator_calls,
            "failure_kinds": {k: self.failure_kinds[k] for k in sorted(self.failure_kinds)},
            "timeouts": {"kills": self.timeout_kills, "failures": self.timeout_failures},
            "slowest_cells": [
                {"uid": t.uid, "duration_s": round(t.duration_s, 3), "attempts": t.attempts}
                for t in self.timings
            ],
            "duration_histogram": [
                {"bucket": label, "count": count}
                for label, count in duration_histogram([t.duration_s for t in self.timings])
            ],
            "per_worker": {k: self.per_worker[k] for k in sorted(self.per_worker)},
            "events": {k: self.events[k] for k in sorted(self.events)},
            "spans": {k: self.spans[k] for k in sorted(self.spans)},
            "telemetry": {
                "records": self.telemetry_records,
                "corrupt_lines": self.telemetry_corrupt,
                "snapshot": self.snapshot.as_dict() if self.snapshot else None,
            },
        }

    def render(self, top: int = 5) -> str:
        lines = [f"Telemetry report for {self.cache_dir}"]
        lines.append(
            f"  Cells: {self.cells_completed} completed, {self.cells_failed} failed"
        )
        mem_total = self.memory_hits + self.memory_misses
        disk_total = self.disk_hits + self.disk_misses
        cache_line = (
            f"  Cache hit rate: memory {self.memory_hit_rate:.1%}"
            f" ({self.memory_hits}/{mem_total})"
        )
        if disk_total:
            cache_line += f", disk {self.disk_hit_rate:.1%} ({self.disk_hits}/{disk_total})"
        lines.append(cache_line)
        lines.append(
            f"  Evaluations: {self.evaluations} ({self.estimator_calls} estimator calls)"
        )
        retry_line = (
            f"  Retries: {self.retried_cells} cell(s) retried, "
            f"{self.extra_attempts} extra attempt(s)"
        )
        if self.telemetry_records:
            retry_line += f"; timeout kills: {self.timeout_kills}"
        lines.append(retry_line)
        lines.append(f"  Timeout failures: {self.timeout_failures}")
        if self.failure_kinds:
            kinds = ", ".join(f"{k}={self.failure_kinds[k]}" for k in sorted(self.failure_kinds))
            lines.append(f"  Failure kinds: {kinds}")
        if self.timings:
            lines.append(f"  Top {min(top, len(self.timings))} slowest cells:")
            for timing in self.timings[:top]:
                attempt_note = f" ({timing.attempts} attempts)" if timing.attempts > 1 else ""
                lines.append(f"    {timing.duration_s:8.2f}s  {timing.uid}{attempt_note}")
            lines.append("  Cell duration histogram:")
            rows = duration_histogram([t.duration_s for t in self.timings])
            peak = max(count for _, count in rows) or 1
            for label, count in rows:
                bar = "#" * round(20 * count / peak) if count else ""
                lines.append(f"    {label:>8} | {bar}{' ' if bar else ''}{count}")
        if self.per_worker:
            lines.append("  Per-worker throughput:")
            for name in sorted(self.per_worker):
                stats = self.per_worker[name]
                cells = stats.get("cells", 0)
                busy = stats.get("busy_s", 0.0)
                rate = cells / busy if busy else 0.0
                lines.append(
                    f"    {name}: {cells} cell(s), {busy:.2f}s busy"
                    + (f", {rate:.3f} cells/s" if rate else "")
                )
        if self.spans:
            lines.append("  Spans (_telemetry.jsonl):")
            for name in sorted(self.spans):
                agg = self.spans[name]
                lines.append(
                    f"    {name}: {agg['count']} x, total {agg['total_s']:.2f}s"
                )
        if self.telemetry_corrupt:
            lines.append(f"  Telemetry sidecar: {self.telemetry_corrupt} corrupt line(s) skipped")
        return "\n".join(lines)


def build_report(cache_dir: str) -> TelemetryReport:
    """Aggregate the checkpoint and (optional) telemetry sidecar of a run."""
    # Imported lazily: repro.sweep imports repro.telemetry at module load,
    # so the reverse import has to happen at call time.
    from repro.sweep.checkpoint import CHECKPOINT_FILENAME, load_checkpoint

    report = TelemetryReport(cache_dir=str(cache_dir))
    status = load_checkpoint(os.path.join(cache_dir, CHECKPOINT_FILENAME))
    report.checkpoint_records = status.records
    timings: list[CellTiming] = []
    for uid, outcome in status.outcomes.items():
        report.cells_completed += 1
        report.memory_hits += outcome.memory_hits
        report.memory_misses += outcome.memory_misses
        report.disk_hits += outcome.disk_hits
        report.disk_misses += outcome.disk_misses
        report.evaluations += outcome.evaluations
        report.estimator_calls += outcome.estimator_calls
        if outcome.attempts > 1:
            report.retried_cells += 1
            report.extra_attempts += outcome.attempts - 1
        timings.append(CellTiming(uid=uid, duration_s=outcome.duration_s,
                                  attempts=outcome.attempts))
    for uid, failure in status.failures.items():
        report.cells_failed += 1
        report.failure_kinds[failure.kind] = report.failure_kinds.get(failure.kind, 0) + 1
        if failure.attempts > 1:
            report.retried_cells += 1
            report.extra_attempts += failure.attempts - 1
    report.timings = sorted(timings, key=lambda t: (-t.duration_s, t.uid))

    log = read_telemetry(os.path.join(cache_dir, TELEMETRY_FILENAME))
    report.telemetry_records = log.records
    report.telemetry_corrupt = log.corrupt_lines
    for record in log.events:
        name = record.get("name", "?")
        report.events[name] = report.events.get(name, 0) + 1
        if name == "shard.cell.completed":
            attrs = record.get("attrs") or {}
            worker = str(attrs.get("worker", "?"))
            stats = report.per_worker.setdefault(worker, {"cells": 0, "busy_s": 0.0})
            stats["cells"] += 1
            duration = attrs.get("duration_s")
            if isinstance(duration, (int, float)):
                stats["busy_s"] = round(stats["busy_s"] + float(duration), 6)
    for record in log.spans:
        name = record.get("name", "?")
        agg = report.spans.setdefault(name, {"count": 0, "total_s": 0.0})
        agg["count"] += 1
        duration = record.get("duration_s")
        if isinstance(duration, (int, float)):
            agg["total_s"] = round(agg["total_s"] + float(duration), 6)
    report.snapshot = log.last_snapshot
    return report


def write_bench_json(
    path: str,
    *,
    bench: str,
    metrics: Mapping[str, float],
    meta: Optional[Mapping] = None,
    snapshot: Optional[MetricsSnapshot] = None,
) -> str:
    """Write a ``BENCH_*.json`` perf-trajectory artifact atomically.

    The flat ``metrics`` mapping is the machine-comparable surface future
    PRs are gated against; ``meta`` describes the workload that produced
    the numbers, and ``snapshot`` optionally embeds the full telemetry
    snapshot for drill-down.
    """
    payload: dict = {
        "bench": bench,
        "version": 1,
        "metrics": {key: metrics[key] for key in sorted(metrics)},
    }
    if meta:
        payload["meta"] = {key: meta[key] for key in sorted(meta)}
    if snapshot is not None:
        payload["telemetry"] = snapshot.as_dict()
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path
