"""Metrics, tracing and run-report layer (observability subsystem).

Stdlib-only instrumentation shared by every layer of the reproduction:

* :mod:`repro.telemetry.metrics` — :class:`MetricsRegistry` with counters,
  gauges and fixed-bucket histograms; thread-safe, with picklable
  mergeable snapshots so worker processes ship measurements back to the
  sweep parent over the existing result channels,
* :mod:`repro.telemetry.trace` — the global on/off switch
  (:func:`enable` / :func:`disable`, propagated to worker processes via
  ``REPRO_TELEMETRY``) and the span tracer
  (``with trace("sweep.cell", uid=...)``) plus point :func:`event`
  records,
* :mod:`repro.telemetry.sink` — the fsynced ``_telemetry.jsonl`` sidecar
  written next to ``_checkpoint.jsonl`` (same torn-tail-tolerant reader
  contract),
* :mod:`repro.telemetry.report` — ``repro-codesign telemetry report``
  aggregation and the ``BENCH_*.json`` perf-trajectory emitter.

Everything is **zero-cost when disabled** — instrumented call sites do a
single ``registry() is None`` check — and **non-perturbing**: journals and
checkpoints are byte-identical with telemetry on or off (tested).

Quickstart::

    from repro import telemetry

    telemetry.enable()
    result = SweepRunner(tasks, cache_dir="cache").run()
    print(telemetry.registry().snapshot().as_dict())
    print(telemetry.build_report("cache").render())
"""

from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.telemetry.sink import (
    TELEMETRY_FILENAME,
    TELEMETRY_VERSION,
    TelemetryLog,
    TelemetrySink,
    read_telemetry,
)
from repro.telemetry.trace import (
    ENV_FLAG,
    Span,
    disable,
    enable,
    enabled,
    event,
    merge,
    registry,
    reset,
    set_sink,
    sink,
    snapshot,
    trace,
)
from repro.telemetry.report import (
    REPORT_DURATION_BUCKETS_S,
    CellTiming,
    TelemetryReport,
    build_report,
    duration_histogram,
    write_bench_json,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "DEFAULT_LATENCY_BUCKETS_S",
    "TELEMETRY_FILENAME",
    "TELEMETRY_VERSION",
    "TelemetrySink",
    "TelemetryLog",
    "read_telemetry",
    "ENV_FLAG",
    "Span",
    "enable",
    "disable",
    "enabled",
    "registry",
    "reset",
    "snapshot",
    "merge",
    "set_sink",
    "sink",
    "trace",
    "event",
    "REPORT_DURATION_BUCKETS_S",
    "CellTiming",
    "TelemetryReport",
    "build_report",
    "duration_histogram",
    "write_bench_json",
]
