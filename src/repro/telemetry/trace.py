"""Global telemetry runtime state and the span-based tracer.

The whole subsystem hangs off one module-level optional registry:

* ``registry()`` returns ``None`` while telemetry is disabled — every
  instrumented call site checks this first, making the disabled path a
  single attribute load and ``is None`` test (zero-cost-when-disabled).
* ``enable()`` installs a fresh :class:`MetricsRegistry` and exports
  ``REPRO_TELEMETRY=1`` so worker processes spawned afterwards enable
  themselves at import time.
* ``reset()`` is called at worker entry points: it installs a fresh
  registry (dropping any state inherited through ``fork``, which would
  otherwise be double-counted when the worker's snapshot is merged back
  into the parent) and detaches any inherited sink (the sidecar file is
  owned by the parent process only).

Spans::

    with trace("sweep.cell", uid=task.uid) as span:
        ...
        span.annotate(outcome="ok")

Each completed span increments ``<name>.count``, observes
``<name>.seconds`` in a histogram, and — when a sink is attached — appends
a ``span`` record to ``_telemetry.jsonl``.  When telemetry is disabled the
context manager yields a shared no-op span without touching the clock.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.telemetry.metrics import MetricsRegistry, MetricsSnapshot
from repro.telemetry.sink import TelemetrySink

__all__ = [
    "ENV_FLAG",
    "enable",
    "disable",
    "enabled",
    "registry",
    "reset",
    "snapshot",
    "merge",
    "set_sink",
    "sink",
    "trace",
    "event",
    "Span",
]

#: Environment flag checked at import time so spawned worker processes
#: inherit the parent's telemetry on/off decision.
ENV_FLAG = "REPRO_TELEMETRY"

_registry: Optional[MetricsRegistry] = None
_sink: Optional[TelemetrySink] = None


def enable(fresh: bool = False) -> MetricsRegistry:
    """Turn telemetry on (idempotent); return the active registry.

    ``fresh=True`` discards any existing registry contents.
    """
    global _registry
    if _registry is None or fresh:
        _registry = MetricsRegistry()
    os.environ[ENV_FLAG] = "1"
    return _registry


def disable() -> None:
    """Turn telemetry off and drop all recorded state."""
    global _registry, _sink
    _registry = None
    _sink = None
    os.environ.pop(ENV_FLAG, None)


def enabled() -> bool:
    return _registry is not None


def registry() -> Optional[MetricsRegistry]:
    """The active registry, or ``None`` when telemetry is disabled."""
    return _registry


def reset() -> None:
    """Worker-process entry hook: fresh registry, no inherited sink.

    No-op while telemetry is disabled.
    """
    global _registry, _sink
    _sink = None
    if _registry is not None:
        _registry = MetricsRegistry()


def snapshot() -> Optional[MetricsSnapshot]:
    """Snapshot the active registry, or ``None`` when disabled."""
    if _registry is None:
        return None
    return _registry.snapshot()


def merge(snap: Optional[MetricsSnapshot]) -> None:
    """Fold a worker snapshot into the active registry (no-op if disabled)."""
    if snap is not None and _registry is not None:
        _registry.merge(snap)


def set_sink(new_sink: Optional[TelemetrySink]) -> None:
    global _sink
    _sink = new_sink


def sink() -> Optional[TelemetrySink]:
    return _sink


class Span:
    """A live span; ``annotate()`` attaches attributes before it closes."""

    __slots__ = ("name", "attrs", "_active")

    def __init__(self, name: str, attrs: dict, active: bool = True) -> None:
        self.name = name
        self.attrs = attrs
        self._active = active

    def annotate(self, **attrs) -> None:
        if self._active:
            self.attrs.update(attrs)


#: Shared inert span yielded while telemetry is disabled.
_NULL_SPAN = Span("", {}, active=False)


@contextmanager
def trace(name: str, **attrs) -> Iterator[Span]:
    """Time a block; record count, latency histogram, and a sink span record."""
    reg = _registry
    if reg is None:
        yield _NULL_SPAN
        return
    span = Span(name, dict(attrs))
    start = time.perf_counter()
    try:
        yield span
    finally:
        duration = time.perf_counter() - start
        reg.counter(f"{name}.count").inc()
        reg.histogram(f"{name}.seconds").observe(duration)
        out = _sink
        if out is not None:
            out.write_span(name, duration, span.attrs)


def event(name: str, **attrs) -> None:
    """Record a point-in-time occurrence (no-op while disabled).

    Increments ``<name>.count`` and, when a sink is attached, appends an
    ``event`` record with the given attributes.
    """
    reg = _registry
    if reg is None:
        return
    reg.counter(f"{name}.count").inc()
    out = _sink
    if out is not None:
        out.write_event(name, attrs if attrs else None)


if os.environ.get(ENV_FLAG, "").strip() not in ("", "0"):
    # Spawned worker processes inherit the parent's environment; enabling at
    # import time means their measurements exist before any instrumentation
    # runs, ready to be snapshot and merged back into the parent.
    enable()
