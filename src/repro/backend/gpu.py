"""The GPU backend: the Table 2 embedded-GPU baselines as a search target.

Lifts the roofline models of :mod:`repro.gpu` (device, latency, power) —
previously reachable only from ``experiments/table2.py`` — behind the
:class:`~repro.backend.base.Backend` protocol, so GPU targets flow through
the same search/sweep/shard/compare path as FPGAs:

* target specs are ``gpu:<slug>`` (``gpu:jetson-tx2``); the canonical device
  string keeps the prefix so GPU cells never collide with legacy FPGA
  namespaces,
* the estimation engine is :class:`repro.gpu.estimator.GPURooflineEngine`
  (scalar + bit-identical batch),
* preparation is fit-free: no model sampling, no coefficients; bundle
  selection deterministically takes the first ``top_n`` catalogue bundles,
* the resource budget is unbounded — an embedded GPU has no LUT/FF/DSP/BRAM
  budget, so the search is constrained by the latency band alone,
* the clock is fixed at the board clock (``--clocks`` values other than the
  board clock are rejected).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.backend.base import Backend, backend_catalog
from repro.gpu.device import (
    GPUDevice,
    get_gpu_device,
    gpu_device_slug,
    list_gpu_devices,
)
from repro.gpu.estimator import GPURooflineEngine
from repro.gpu.power import GPUPowerModel


class GPUBackend(Backend):
    """Target resolution, estimation and fit-free prep for GPU devices."""

    name = "gpu"
    requires_fit = False

    # ------------------------------------------------------------ resolution
    def device_names(self) -> list[str]:
        return list_gpu_devices()

    def resolve_device(self, name: str) -> GPUDevice:
        try:
            return get_gpu_device(name)
        except KeyError:
            raise ValueError(
                f"Unknown gpu device '{name}'. {backend_catalog()}"
            ) from None

    def canonical_name(self, device: GPUDevice) -> str:
        return f"gpu:{gpu_device_slug(device)}"

    # ----------------------------------------------------------- clock/budget
    def default_clock_mhz(self, device: GPUDevice) -> float:
        return device.clock_mhz

    def validate_clock(self, device: GPUDevice, clock_mhz: float) -> float:
        return device.validate_clock(clock_mhz)

    def resource_constraint(self, device: GPUDevice, utilization_limit: float = 1.0):
        from repro.core.constraints import ResourceConstraint
        from repro.hw.resource import ResourceVector

        # No FPGA-style fabric budget: every config fits, and the roofline
        # estimates report zero resources, so the latency band is the only
        # active constraint.
        budget = ResourceVector(
            lut=math.inf, ff=math.inf, dsp=math.inf, bram=math.inf
        )
        return ResourceConstraint(budget=budget, utilization_limit=utilization_limit)

    # ------------------------------------------------------------- estimation
    def create_engine(self, device: GPUDevice, clock_mhz: Optional[float] = None):
        return GPURooflineEngine(device, clock_mhz=clock_mhz)

    def engine_fingerprint(self, engine) -> str:
        return engine.fingerprint()

    # ------------------------------------------------------------------ power
    def power_model(self, device: GPUDevice):
        return GPUPowerModel(device)
